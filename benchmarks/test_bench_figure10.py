"""Figure 10 benchmark: 100-streamlet aggregation per stream-slot."""

from repro.experiments.figure10 import run_figure10
from repro.metrics.report import render_table

FRAMES = 16_000  # per slot; scaled from the paper's 64000 for bench time


def test_figure10_streamlet_aggregation(benchmark, report):
    result = benchmark.pedantic(
        run_figure10, args=(FRAMES,), rounds=1, iterations=1
    )
    rep = result.representative_mbps()
    rows = [[group, f"{mbps:.4f}"] for group, mbps in rep.items()]
    body = render_table(["slot/set", "streamlet MBps (mean)"], rows)
    body += (
        "\npaper: slots at 2/2/4/8 MBps with 100 streamlets each -> "
        "0.02 / 0.02 / 0.04 MBps per streamlet; slot 4's set 1 at double "
        "set 2's bandwidth"
    )
    report("Figure 10: Aggregation of 100 Streamlets into a Stream-slot", body)

    assert abs(rep["slot1/set1"] - 0.02) < 0.005
    assert abs(rep["slot3/set1"] - 0.04) < 0.01
    assert abs(rep["slot4/set1"] / rep["slot4/set2"] - 2.0) < 0.2
