"""Micro-benchmarks of the behavioral model's own hot paths.

Not a paper figure — these keep the simulation usable at the 64000-
frame experiment scale (profile-first discipline from the HPC guides).
"""

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.sim.ring import ArrivalRing


def _loaded_scheduler(n_slots: int, depth: int = 4096):
    arch = ArchConfig(n_slots=n_slots, routing=Routing.WR, wrap=False)
    scheduler = ShareStreamsScheduler(
        arch,
        [
            StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
            for i in range(n_slots)
        ],
    )
    for sid in range(n_slots):
        for k in range(depth):
            scheduler.enqueue(sid, deadline=(sid + 1) + k, arrival=k)
    return scheduler


def test_decision_cycle_rate_4_slots(benchmark, report):
    scheduler = _loaded_scheduler(4)
    clock = {"t": 0}

    def one_cycle():
        t = clock["t"]
        clock["t"] += 1
        return scheduler.decision_cycle(
            t % 4000, consume="none", count_misses=False
        )

    benchmark(one_cycle)
    report(
        "Model speed: 4-slot decision cycle",
        f"~{1 / benchmark.stats.stats.mean:,.0f} behavioral decisions/s "
        f"(hardware model target: cycle-accurate, not wall-clock parity)",
    )


def test_decision_cycle_rate_32_slots(benchmark):
    scheduler = _loaded_scheduler(32, depth=256)
    clock = {"t": 0}

    def one_cycle():
        t = clock["t"]
        clock["t"] += 1
        return scheduler.decision_cycle(
            t % 250, consume="none", count_misses=False
        )

    benchmark(one_cycle)


def test_arrival_ring_batch_throughput(benchmark, report):
    ring = ArrivalRing(1 << 16)
    batch = np.arange(1024, dtype=np.uint16)

    def push_pop():
        ring.push_batch(batch)
        return ring.pop_batch(1024)

    out = benchmark(push_pop)
    assert len(out) == 1024
    report(
        "Model speed: 16-bit arrival-ring batched transfer",
        f"1024-offset batch in {benchmark.stats.stats.mean * 1e6:.1f} us "
        "(vectorized ring, no per-element Python)",
    )
