"""Wire-speed feasibility bench: the paper's italicized claim.

"Our Virtex I implementation can easily meet the packet-time
requirements of all frame sizes (64-byte and 1500-byte) on gigabit
links, and 1500-byte frames on 10Gbps links."  This bench sweeps the
(slots, frame size, link rate, emission mode) grid and prints the
utilization the line-card sustains at each point, plus the admission
headroom arithmetic behind QoS bounds.
"""

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.framework.admission import StreamRequest, admit
from repro.linecard import Linecard
from repro.metrics.report import render_table


def _linecard(n, routing):
    arch = ArchConfig(n_slots=n, routing=routing)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n)
    ]
    return Linecard(arch, streams)


def test_wirespeed_utilization(benchmark, report):
    def sweep():
        rows = []
        for n in (4, 32):
            wr = _linecard(n, Routing.WR)
            ba = _linecard(n, Routing.BA)
            for size in (64, 1500):
                for label, rate in (("1G", 1e9), ("10G", 1e10)):
                    rows.append(
                        [
                            n,
                            size,
                            label,
                            f"{wr.wire_speed_utilization(rate, size):.2f}",
                            f"{ba.wire_speed_utilization(rate, size, block=True):.2f}",
                        ]
                    )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    body = render_table(
        ["slots", "frame B", "link", "WR utilization", "BA block utilization"],
        rows,
    )
    body += (
        "\npaper claim: all frame sizes at 1G and 1500B at 10G met; "
        "64B at 10G is the case block decisions rescue"
    )
    report("Wire-speed feasibility (packet-times vs decision times)", body)

    by_key = {(r[0], r[1], r[2]): (float(r[3]), float(r[4])) for r in rows}
    assert by_key[(32, 64, "1G")][0] == 1.0
    assert by_key[(32, 1500, "10G")][0] == 1.0
    assert by_key[(32, 64, "10G")][0] < 1.0  # WR cannot
    assert by_key[(32, 64, "10G")][1] == 1.0  # block can


def test_admission_headroom(benchmark, report):
    def sweep():
        rows = []
        for tolerance in ((0, 0), (1, 4), (1, 2), (3, 4)):
            x, y = tolerance
            requests = [
                StreamRequest(
                    stream_id=i, period=4.0, loss_numerator=x, loss_denominator=y
                )
                for i in range(4)
            ]
            decision = admit(requests)
            rows.append(
                [
                    f"{x}/{y}" if y else "none",
                    f"{decision.total_utilization:.3f}",
                    "yes" if decision.admitted else "no",
                    f"{decision.headroom:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    body = render_table(
        ["window tolerance x/y", "required utilization", "admitted", "best-effort headroom"],
        rows,
    )
    body += "\nloss tolerance converts directly into best-effort headroom"
    report("Admission control: QoS bounds vs loss tolerance", body)
    assert rows[0][2] == "yes"
    headrooms = [float(r[3]) for r in rows]
    assert headrooms == sorted(headrooms)
