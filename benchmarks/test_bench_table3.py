"""Table 3 benchmark: block decisions vs max-finding at full paper scale.

Regenerates the paper's headline table — missed deadlines and decision
cycles for the max-finding, block/max-first and block/min-first
configurations with 4 streams and 64000 frames — and benchmarks the
cycle-level scheduler run that produces it.
"""

from repro.core.config import BlockMode
from repro.experiments.table3 import run_block, run_max_finding
from repro.metrics.report import render_table

#: Full paper scale: 16000 frames per stream (64000 total).
FRAMES = 16_000

PAPER_ROWS = {
    "max_finding": {"missed": (63986, 63987, 63988, 63989), "cycles": 64000},
    "block_max_first": {"missed": (0, 0, 0, 0), "cycles": 16000},
    "block_min_first": {
        "missed": (27839, 27214, 22621, 29311),
        "cycles": 16000,
    },
}


def _render(results) -> str:
    headers = [
        "Stream-Slot",
        "Max-finding missed",
        "MF winner cycles",
        "Max-first missed",
        "Min-first missed",
        "Block winner cycles",
    ]
    mf, bmax, bmin = results
    rows = []
    for i in range(4):
        rows.append(
            [
                f"Stream {i + 1}",
                mf.rows[i].missed_deadlines,
                mf.rows[i].winner_cycles,
                bmax.rows[i].missed_deadlines,
                bmin.rows[i].missed_deadlines,
                bmax.rows[i].winner_cycles,
            ]
        )
    rows.append(
        [
            "Total",
            mf.total_missed,
            mf.decision_cycles,
            bmax.total_missed,
            bmin.total_missed,
            bmax.decision_cycles,
        ]
    )
    body = render_table(headers, rows)
    body += (
        "\npaper totals: max-finding 255,950 missed / 64,000 cycles; "
        "max-first 0 missed / 16,000 cycles (4,000 wins each); "
        "min-first 106,985 missed / 16,000 cycles"
    )
    return body


def test_table3_full_scale(benchmark, report):
    def run_all():
        return (
            run_max_finding(FRAMES),
            run_block(BlockMode.MAX_FIRST, FRAMES),
            run_block(BlockMode.MIN_FIRST, FRAMES),
        )

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mf, bmax, bmin = results
    report("Table 3: Comparing Block Decisions and Max-finding", _render(results))

    # Reproduction assertions (shape, per EXPERIMENTS.md):
    assert mf.decision_cycles == 64_000
    assert bmax.decision_cycles == 16_000
    for row in mf.rows:
        assert row.missed_deadlines >= 63_980
    assert bmax.total_missed == 0
    for row in bmax.rows:
        assert 3_900 <= row.winner_cycles <= 4_100
    assert bmin.total_missed > 16_000
