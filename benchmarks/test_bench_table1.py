"""Table 1 benchmark: discipline-family comparison + behavioral witnesses."""

from repro.experiments.table1 import (
    build_table1,
    witness_dwcs_dynamics,
    witness_tag_stability,
)
from repro.metrics.report import render_table


def test_table1_families(benchmark, report):
    rows = benchmark(build_table1)
    body = render_table(
        ["Characteristic", "Priority-class", "Fair-queuing", "Window-constrained"],
        [
            [r.characteristic, r.priority_class, r.fair_queuing, r.window_constrained]
            for r in rows
        ],
    )
    body += (
        f"\nwitness: fair-queuing tags immutable after enqueue = "
        f"{witness_tag_stability()}; DWCS priorities change every "
        f"decision cycle = {witness_dwcs_dynamics()}"
    )
    report("Table 1: Comparing Scheduling Disciplines", body)
    assert len(rows) == 5
    assert witness_tag_stability() and witness_dwcs_dynamics()
