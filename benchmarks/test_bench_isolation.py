"""Per-flow isolation bench: the Section 5.2 line-card contrast.

Quantifies the paper's qualitative comparison with the Cisco GSR
line-card (8 queues, DRR + RED) and the Teracross chip (4 service
classes, no per-flow queuing): real-time deadline misses and the
urgent flows' p99 delay under an identical heterogeneous workload.
"""

from repro.experiments.isolation import run_isolation
from repro.metrics.report import render_table


def test_isolation_comparison(benchmark, report):
    results = benchmark.pedantic(run_isolation, rounds=1, iterations=1)
    rows = [
        [
            r.system,
            r.queues,
            r.rt_packets,
            r.rt_late_or_dropped,
            f"{r.rt_miss_rate:.1%}",
            f"{r.tight_flow_p99_delay:.1f}",
            r.be_packets_served,
        ]
        for r in results
    ]
    body = render_table(
        [
            "system",
            "queues",
            "rt packets",
            "rt late/lost",
            "rt miss rate",
            "tight-flow p99 delay",
            "be served",
        ],
        rows,
    )
    body += (
        "\npaper (qualitative): ShareStreams offers 32 per-flow queues "
        "with DWCS vs GSR's 8 DRR+RED queues and Teracross's 4 classes "
        "without per-flow queuing"
    )
    report("Section 5.2: per-flow isolation vs line-card peers", body)

    by_prefix = {r.system.split(" ")[0]: r for r in results}
    assert by_prefix["ShareStreams"].rt_miss_rate == 0.0
    assert by_prefix["GSR-style"].rt_miss_rate > 0.05
    assert (
        by_prefix["Teracross-style"].tight_flow_p99_delay
        > by_prefix["ShareStreams"].tight_flow_p99_delay
    )
