"""Conformance-monitoring overhead: rollups must stay cheap.

The ConformanceMonitor sits on the same per-decision hook as the
metrics observer, so its streaming rollup + SLO evaluation must not
turn monitoring into a second scheduler.  Acceptance gate: the
monitor-enabled run costs at most 2x a bare MetricsObserver run
(lower-envelope minima of interleaved series, same discipline as
``test_bench_observability``), and telemetry-off remains the one
``is not None`` guard per cycle.

Set ``MONITOR_BENCH_JSON=/path/report.json`` to write the measured
numbers as a machine-readable artifact (the CI ``monitor`` job uploads
it).
"""

from __future__ import annotations

import os
import time

from _schema import bench_record, write_bench
from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.observability import (
    ConformanceMonitor,
    MetricsObserver,
    MetricsRegistry,
    StreamSlo,
)

N_SLOTS = 4
CYCLES = 3000
REPEATS = 5
WARMUP = 200
WINDOW = 256
#: Acceptance gate: monitor-enabled <= 2x bare-metrics (lower envelope).
OVERHEAD_BOUND = 2.0
#: The two interleaved series' minima must agree before we trust them.
STABILITY_BOUND = 1.05
MAX_ATTEMPTS = 4


def _arch_streams() -> tuple[ArchConfig, list[StreamConfig]]:
    arch = ArchConfig(n_slots=N_SLOTS, routing=Routing.WR, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(N_SLOTS)
    ]
    return arch, streams


def _run_feed(scheduler: ShareStreamsScheduler, t0: int, n: int) -> None:
    for t in range(t0, t0 + n):
        for sid in range(N_SLOTS):
            scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
        scheduler.decision_cycle(t, consume="winner", count_misses=True)


def _make_metrics_observer():
    return MetricsObserver(MetricsRegistry())


def _make_monitor():
    return ConformanceMonitor(
        [
            StreamSlo(sid=i, miss_budget=WINDOW, min_share=0.0, max_share=1.0)
            for i in range(N_SLOTS)
        ],
        window_cycles=WINDOW,
        flight_capacity=16,
    )


def _time_run(observer) -> float:
    scheduler = ShareStreamsScheduler(*_arch_streams(), observer=observer)
    _run_feed(scheduler, 0, WARMUP)
    start = time.perf_counter()
    _run_feed(scheduler, WARMUP, CYCLES)
    return time.perf_counter() - start


def _interleaved_minima(make_observer) -> tuple[float, float]:
    """Lower-envelope minima of two interleaved series and their spread."""
    series_a, series_b = [], []
    for _ in range(REPEATS):
        series_a.append(_time_run(make_observer()))
        series_b.append(_time_run(make_observer()))
    min_a, min_b = min(series_a), min(series_b)
    hi, lo = max(min_a, min_b), min(min_a, min_b)
    return lo, hi / lo


def _stable_minimum(make_observer) -> tuple[float, float]:
    for _ in range(MAX_ATTEMPTS):
        lo, spread = _interleaved_minima(make_observer)
        if spread < STABILITY_BOUND:
            break
    return lo, spread


def test_monitor_overhead_vs_bare_metrics(report):
    off, off_spread = _stable_minimum(lambda: None)
    metrics, metrics_spread = _stable_minimum(_make_metrics_observer)
    monitor, monitor_spread = _stable_minimum(_make_monitor)

    metrics_ratio = metrics / off
    monitor_ratio = monitor / metrics
    shape = {"cycles": CYCLES, "n_slots": N_SLOTS, "window_cycles": WINDOW}
    artifact = os.environ.get("MONITOR_BENCH_JSON")
    if artifact:
        write_bench(
            artifact,
            "monitor",
            [
                bench_record(
                    "telemetry_off_us", off * 1e6, "us",
                    direction="lower", spread=off_spread, **shape,
                ),
                bench_record(
                    "metrics_observer_us", metrics * 1e6, "us",
                    direction="lower", spread=metrics_spread, **shape,
                ),
                bench_record(
                    "conformance_monitor_us", monitor * 1e6, "us",
                    direction="lower", spread=monitor_spread, **shape,
                ),
                bench_record(
                    "metrics_vs_off_ratio", metrics_ratio, "ratio", **shape
                ),
                bench_record(
                    "monitor_vs_metrics_ratio", monitor_ratio, "ratio",
                    direction="lower", bound=OVERHEAD_BOUND, **shape,
                ),
            ],
            workload="periodic EDF feed, 4 slots, interleaved "
            "lower-envelope minima",
        )

    report(
        "Conformance-monitoring overhead (periodic EDF feed, 4 slots)",
        "\n".join(
            [
                f"cycles per run:        {CYCLES}",
                f"telemetry off:         {off * 1e6:8.1f} us",
                f"bare MetricsObserver:  {metrics * 1e6:8.1f} us"
                f"  ({metrics_ratio:.2f}x off)",
                f"ConformanceMonitor:    {monitor * 1e6:8.1f} us"
                f"  ({monitor_ratio:.2f}x metrics)",
            ]
            + ([f"json artifact:         {artifact}"] if artifact else [])
        ),
    )

    assert monitor_ratio < OVERHEAD_BOUND, (
        f"rollup+SLO monitoring costs {monitor_ratio:.2f}x a bare "
        f"MetricsObserver run (bound {OVERHEAD_BOUND}x): the streaming "
        f"rollup is doing too much per-cycle work"
    )


def test_monitor_actually_monitored(report):
    """The timed configuration is live — windows close, SLOs evaluate."""
    monitor = _make_monitor()
    scheduler = ShareStreamsScheduler(*_arch_streams(), observer=monitor)
    _run_feed(scheduler, 0, WARMUP + CYCLES)
    monitor.finalize()
    assert monitor.rollup.windows_closed == (WARMUP + CYCLES) // WINDOW + 1
    assert monitor.slo.windows_evaluated == monitor.rollup.windows_closed
    assert monitor.violations == []  # generous budgets: clean run
    report(
        "Monitored run sanity",
        f"{monitor.rollup.windows_closed} windows closed and evaluated, "
        f"0 violations (budgets sized to the feed)",
    )


def test_telemetry_off_is_one_guard_per_cycle(report):
    scheduler = ShareStreamsScheduler(*_arch_streams(), observer=None)
    _run_feed(scheduler, 0, 200)
    assert scheduler.observer is None
    report(
        "Telemetry-off path",
        "observer=None run completed; per-cycle cost is one "
        "`is not None` guard (no monitor imports, no rollup state)",
    )
