"""Ablation: 16-bit serial deadline arithmetic vs ideal integers.

DESIGN.md's interpretation note: hardware deadline comparisons are
16-bit serial (wrap-aware), correct only while live deadlines stay
within half the field's range (32,768 time units).  The overloaded
max-finding workload violates that — head deadlines fall ever further
behind the clock — so a pure-hardware counter *stops registering
misses* once staleness crosses the horizon, while the ideal-arithmetic
model keeps counting.  This ablation measures exactly where the two
diverge, quantifying why Table 3 is reproduced in ideal mode (and what
the real hardware's counters would have done on longer runs).
"""

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.metrics.report import render_table


def _run(wrap: bool, n_cycles: int) -> tuple[list[int], int]:
    arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=wrap)
    s = ShareStreamsScheduler(
        arch,
        [
            StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
            for i in range(4)
        ],
    )
    for t in range(n_cycles):
        for sid in range(4):
            s.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
        s.decision_cycle(t, consume="winner", count_misses=True)
    misses = [s.slot(i).counters.missed_deadlines for i in range(4)]
    return misses, sum(misses)


def test_ablation_wrap_horizon(benchmark, report):
    def sweep():
        rows = []
        # Head staleness grows ~3t/4; it crosses the 32,768 horizon
        # near t ~= 43,700 on this workload.
        for n_cycles in (8_000, 24_000, 48_000):
            _, ideal = _run(False, n_cycles)
            _, wrapped = _run(True, n_cycles)
            rows.append(
                [
                    n_cycles,
                    ideal,
                    wrapped,
                    f"{wrapped / ideal:.2f}" if ideal else "-",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    body = render_table(
        [
            "decision cycles",
            "ideal-arithmetic misses",
            "16-bit serial misses",
            "serial/ideal",
        ],
        rows,
    )
    body += (
        "\nwithin the horizon the two agree exactly; past ~43.7k cycles "
        "the wrapped comparator sees stale heads as 'future' and the "
        "hardware counters undercount — the documented reason Table 3 "
        "runs in ideal mode"
    )
    report("Ablation: serial (16-bit) vs ideal deadline arithmetic", body)

    by_cycles = {r[0]: r for r in rows}
    # In-horizon: identical counts.
    assert by_cycles[8_000][1] == by_cycles[8_000][2]
    assert by_cycles[24_000][1] == by_cycles[24_000][2]
    # Past the horizon: the wrapped counter falls behind.
    assert by_cycles[48_000][2] < by_cycles[48_000][1]
