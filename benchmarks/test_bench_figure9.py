"""Figure 9 benchmark: queuing delay under the bursty generator."""

from repro.experiments.figure9 import run_figure9
from repro.metrics.report import render_series, render_table

BURST = 4000  # the paper's 4000-frame bursts


def test_figure9_queuing_delay(benchmark, report):
    result = benchmark.pedantic(
        run_figure9,
        kwargs={"n_bursts": 3, "burst_size": BURST},
        rounds=1,
        iterations=1,
    )
    delays = result.mean_delays_us()
    rows = [
        [
            f"Stream {sid + 1}",
            f"{delays[sid] / 1e3:.2f}",
            f"{result.series[sid].max_us / 1e3:.2f}",
            f"{result.zigzag_score(sid, BURST):.2f}",
        ]
        for sid in sorted(delays)
    ]
    body = render_table(
        ["stream", "mean delay ms", "max delay ms", "zigzag score"], rows
    )
    body += (
        "\npaper: zig-zag from multi-ms inter-burst delay after each 4000 "
        "frames; reduced delay for stream 4 consistent with its 4x share\n"
    )
    for sid in sorted(delays):
        s = result.series[sid]
        body += (
            render_series(
                f"stream {sid + 1} delay",
                s.departures_us / 1e6,
                s.delays_us / 1e3,
                max_points=12,
                x_unit="s",
                y_unit="ms",
            )
            + "\n"
        )
    report("Figure 9: Queuing Delay of Streams 1-4", body.rstrip())

    assert delays[3] == min(delays.values())
    assert result.zigzag_score(0, BURST) > 2.0
