"""Telemetry overhead: disabled observability must cost nothing.

The engines' only telemetry cost when disabled is one ``is not None``
test per decision cycle — the same guard structure the trace hook has
always had, so the disabled path *is* the baseline path.  This
benchmark makes that claim measurable and keeps it true:

* two interleaved series of disabled periodic-EDF-feed runs are
  timed; their per-series minima must agree within 5% (the lower
  envelope of a loop doing no hidden per-cycle telemetry work is
  tight, while scheduler noise inflates means and medians arbitrarily
  on shared machines).  A bounded retry loop absorbs pathologically
  noisy samples;
* the fully-enabled run (trace + metrics) is timed against it and the
  ratio reported, so a regression that makes "enabled" accidentally
  become "always on" shows up as a disabled-time jump;
* a disabled run must record nothing anywhere.
"""

from __future__ import annotations

import time

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.observability import Observability

N_SLOTS = 4
CYCLES = 3000
REPEATS = 5
WARMUP = 200
#: Acceptance gate: the two disabled series' minima agree within 5%
#: ("<5% slowdown disabled vs baseline" — the disabled path *is* the
#: baseline path, so its lower envelope must be reproducible).
STABILITY_BOUND = 1.05
#: Timing attempts before declaring the spread real (each attempt is
#: two full interleaved series; noise spikes on shared machines are
#: common enough that a single attempt would flake).
MAX_ATTEMPTS = 4


def _arch_streams() -> tuple[ArchConfig, list[StreamConfig]]:
    arch = ArchConfig(n_slots=N_SLOTS, routing=Routing.WR, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(N_SLOTS)
    ]
    return arch, streams


def _run_feed(scheduler: ShareStreamsScheduler, t0: int, n: int) -> None:
    for t in range(t0, t0 + n):
        for sid in range(N_SLOTS):
            scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
        scheduler.decision_cycle(t, consume="winner", count_misses=True)


def _time_run(observer) -> float:
    scheduler = ShareStreamsScheduler(*_arch_streams(), observer=observer)
    _run_feed(scheduler, 0, WARMUP)
    start = time.perf_counter()
    _run_feed(scheduler, WARMUP, CYCLES)
    return time.perf_counter() - start


def _disabled_spread() -> tuple[float, float, float]:
    """Minima of two interleaved disabled series and their ratio."""
    series_a, series_b = [], []
    for _ in range(REPEATS):
        series_a.append(_time_run(None))
        series_b.append(_time_run(None))
    min_a, min_b = min(series_a), min(series_b)
    hi, lo = max(min_a, min_b), min(min_a, min_b)
    return lo, hi, hi / lo


def test_disabled_telemetry_overhead(report):
    for _ in range(MAX_ATTEMPTS):
        lo, hi, ratio = _disabled_spread()
        if ratio < STABILITY_BOUND:
            break
    enabled_obs = Observability(profile=False)
    enabled_runs = 3
    enabled = min(_time_run(enabled_obs) for _ in range(enabled_runs))

    enabled_ratio = enabled / lo
    report(
        "Telemetry overhead (periodic EDF feed, 4 slots)",
        "\n".join(
            [
                f"cycles per run:          {CYCLES}",
                f"disabled series minima:  {lo * 1e6:8.1f} / "
                f"{hi * 1e6:8.1f} us  ({(ratio - 1) * 100:+.2f}% spread)",
                f"enabled (trace+metrics): {enabled * 1e6:8.1f} us"
                f"  ({enabled_ratio:.2f}x disabled)",
            ]
        ),
    )

    assert ratio < STABILITY_BOUND, (
        f"disabled-telemetry lower-envelope spread {ratio:.3f}x exceeds "
        f"{STABILITY_BOUND}x: the disabled path is doing per-cycle work"
    )
    # Telemetry that was enabled actually recorded every run.
    assert enabled_obs.recorder.recorded >= CYCLES
    assert (
        enabled_obs.metrics.counter("sharestreams_decisions_total").value()
        == enabled_runs * (WARMUP + CYCLES)
    )


def test_disabled_run_records_nothing(report):
    bystander = Observability()
    scheduler = ShareStreamsScheduler(*_arch_streams(), observer=None)
    _run_feed(scheduler, 0, 200)
    assert scheduler.observer is None
    assert bystander.recorder.recorded == 0
    snapshot = bystander.metrics.snapshot()
    assert all(not family["samples"] for family in snapshot.values())
    report(
        "Disabled telemetry is inert",
        "observer=None run recorded 0 events, 0 samples (as required)",
    )
