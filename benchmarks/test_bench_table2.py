"""Table 2 benchmark: decision-rule coverage and single-decision latency."""

from repro.core.attributes import HardwareAttributes
from repro.core.decision_block import DecisionBlock
from repro.experiments.table2 import run_rule_coverage
from repro.metrics.report import render_table


def test_table2_rule_coverage(benchmark, report):
    cov = benchmark.pedantic(run_rule_coverage, rounds=3, iterations=1)
    body = render_table(
        ["Rule (Table 2)", "pairs resolved"],
        sorted(
            ((rule.value, count) for rule, count in cov.counts.items()),
            key=lambda r: -r[1],
        ),
    )
    report("Table 2: Scheduler Decision Rules (coverage)", body)
    assert cov.all_rules_fired


def test_table2_decision_latency(benchmark, report):
    """Per-pair decision cost of the behavioral Decision block model
    (the hardware does this in a single cycle)."""
    block = DecisionBlock()
    a = HardwareAttributes(sid=0, deadline=10, loss_numerator=1, loss_denominator=2)
    b = HardwareAttributes(sid=1, deadline=10, loss_numerator=1, loss_denominator=4)
    result = benchmark(block.decide, a, b)
    report(
        "Table 2: single Decision block evaluation",
        f"winner=stream {result.winner.sid} via rule {result.rule.value}",
    )
    assert result.winner.sid == 1
