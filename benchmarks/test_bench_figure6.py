"""Figure 6 benchmark: the four-stream scheduler timeline."""

from repro.experiments.figure6 import render_timeline, run_figure6


def test_figure6_timeline(benchmark, report):
    timeline = benchmark(run_figure6, 6)
    report("Figure 6: ShareStreams Scheduler Timeline", render_timeline(timeline))
    # LOAD once, then 6 SCHEDULE/PRIORITY_UPDATE pairs.
    assert len(timeline) == 1 + 2 * 6
