"""Span-tracing overhead: the disabled path must stay near zero.

Every tentpole instrumentation site (pool items, bucket pre-pass,
tensor-engine phases, churn rollups) guards on one ``tracer is not
None`` test, so a run with tracing *disabled* must be indistinguishable
from the pre-instrumentation baseline.  Measured with the same
discipline as ``test_bench_monitor``: two interleaved disabled-path
series, lower-envelope minima, and the acceptance gate that their
spread stays within ``OVERHEAD_BOUND`` (<= 2% — the guard is not
allowed to cost measurable time).  The tracing-*enabled* ratio is
reported alongside (phases add two clock reads per decision cycle).

Machine-readable results land in ``BENCH_TRACING.json`` at the repo
root (``benchmarks/_schema.py`` record format; the CI ``tracing`` job
uploads it).
"""

from __future__ import annotations

import time
from pathlib import Path

from _schema import bench_record, write_bench
from repro.core.differential import bucket_key, generate_scenario, run_bucket
from repro.observability.spans import SpanTracer

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_TRACING.json"

BUCKET_SIZE = 4
CYCLES = 120
REPEATS = 3
#: Acceptance gate: the disabled path may not exceed its own interleaved
#: baseline by more than 2% (one `is not None` guard per site).
OVERHEAD_BOUND = 1.02
MAX_ATTEMPTS = 5


def _same_shape_bucket() -> list:
    """First BUCKET_SIZE generated scenarios sharing one bucket key."""
    groups: dict[tuple, list] = {}
    for seed in range(500):
        scenario = generate_scenario(seed, n_cycles=CYCLES)
        group = groups.setdefault(bucket_key(scenario), [])
        group.append(scenario)
        if len(group) == BUCKET_SIZE:
            return group
    raise AssertionError("no same-shape bucket found in 500 seeds")


def _time_bucket(scenarios, tracer) -> float:
    start = time.perf_counter()
    run_bucket(scenarios, tracer=tracer)
    return time.perf_counter() - start


def _interleaved_disabled_minima(scenarios) -> tuple[float, float, float]:
    """Minima of two interleaved tracer=None series and their spread."""
    series_a, series_b = [], []
    for _ in range(REPEATS):
        series_a.append(_time_bucket(scenarios, None))
        series_b.append(_time_bucket(scenarios, None))
    min_a, min_b = min(series_a), min(series_b)
    hi, lo = max(min_a, min_b), min(min_a, min_b)
    return lo, hi, hi / lo


def test_disabled_tracing_within_2_percent(report):
    scenarios = _same_shape_bucket()
    run_bucket(scenarios)  # warmup

    for _ in range(MAX_ATTEMPTS):
        lo, hi, spread = _interleaved_disabled_minima(scenarios)
        if spread <= OVERHEAD_BOUND:
            break

    # Enabled ratio (informational): spans recorded, phases profiled.
    enabled_runs = []
    for _ in range(REPEATS):
        tracer = SpanTracer("bench")
        enabled_runs.append(_time_bucket(scenarios, tracer))
    enabled = min(enabled_runs)
    assert tracer.records(), "enabled run recorded no spans"
    enabled_ratio = enabled / lo

    shape = {
        "scenarios": BUCKET_SIZE,
        "cycles": CYCLES,
        "slots": scenarios[0].n_slots,
    }
    write_bench(
        OUTPUT,
        "tracing",
        [
            bench_record(
                "disabled_bucket_us", lo * 1e6, "us",
                direction="lower", **shape,
            ),
            bench_record(
                "disabled_spread", spread, "ratio",
                direction="lower", bound=OVERHEAD_BOUND,
                tolerance=0.05, **shape,
            ),
            bench_record(
                "enabled_bucket_us", enabled * 1e6, "us",
                direction="lower", **shape,
            ),
            bench_record(
                "enabled_vs_disabled", enabled_ratio, "ratio", **shape
            ),
            bench_record("spans_recorded", len(tracer.records()), **shape),
        ],
        workload=f"run_bucket: {BUCKET_SIZE} same-shape scenarios x "
        f"{CYCLES} cycles, interleaved lower-envelope minima",
    )

    report(
        "Span-tracing overhead (tensorized bucket, tracer=None vs traced)",
        "\n".join(
            [
                f"bucket:            {BUCKET_SIZE} scenarios x {CYCLES} "
                f"cycles, {scenarios[0].n_slots} slots",
                f"disabled path:     {lo * 1e6:9.1f} us (interleaved "
                f"minima spread {spread:.4f}x, bound {OVERHEAD_BOUND}x)",
                f"tracing enabled:   {enabled * 1e6:9.1f} us "
                f"({enabled_ratio:.3f}x, {len(tracer.records())} spans)",
                f"artifact:          {OUTPUT.name}",
            ]
        ),
    )

    assert spread <= OVERHEAD_BOUND, (
        f"two interleaved tracer=None runs differ by {spread:.4f}x "
        f"(bound {OVERHEAD_BOUND}x): the disabled tracing path costs "
        f"measurable time or the host is too noisy to certify it"
    )


def test_disabled_run_records_nothing(report):
    """tracer=None really is off: no contextvar leaks, no span state."""
    from repro.observability.spans import current_tracer

    scenarios = _same_shape_bucket()[:2]
    assert current_tracer() is None
    run_bucket(scenarios)
    assert current_tracer() is None
    report(
        "Disabled-path sanity",
        "run_bucket(tracer=None) leaves no active tracer and records "
        "no spans; per-site cost is one `is not None` guard",
    )
