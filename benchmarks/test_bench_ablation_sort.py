"""Ablation: paper's log2(N) recirculation vs full bitonic schedule.

DESIGN.md flags the paper's "sorted list in log2(N) cycles" claim: the
single-stage recirculation certifies the max but not a total order.
This ablation measures (a) the cycle cost of each schedule and (b) the
block-order quality (fraction of emitted blocks that are exactly
sorted) over random workloads.
"""

from repro.experiments.ablations import sort_schedule_sweep
from repro.metrics.report import render_table


def test_ablation_sort_schedule(benchmark, report):
    points = benchmark.pedantic(sort_schedule_sweep, rounds=1, iterations=1)
    by_key = {(p.schedule, p.n_slots): p for p in points}
    rows = []
    for n in (4, 8, 16, 32):
        paper = by_key[("paper", n)]
        bitonic = by_key[("bitonic", n)]
        rows.append(
            [
                n,
                paper.passes,
                f"{paper.fully_sorted_fraction:.2f}",
                bitonic.passes,
                f"{bitonic.fully_sorted_fraction:.2f}",
            ]
        )
    body = render_table(
        [
            "slots",
            "paper passes",
            "paper: blocks fully sorted",
            "bitonic passes",
            "bitonic: blocks fully sorted",
        ],
        rows,
    )
    body += (
        "\nthe max (and Table 3's results) is certified in log2(N) passes "
        "either way; a certified total order costs k(k+1)/2 passes"
    )
    report("Ablation: recirculation schedule vs block-order quality", body)

    assert all(
        by_key[("bitonic", n)].fully_sorted_fraction == 1.0
        for n in (4, 8, 16, 32)
    )
    assert by_key[("paper", 32)].fully_sorted_fraction < 1.0
