"""Sharded-runner benchmark: parallel campaign speed and cache warmth.

Benchmarks the differential cross-validation campaign through
``repro.runner`` three ways — sequential, sharded across every
available core, and from a warm on-disk scenario cache — and checks
the two load-bearing properties on real timings:

* the merged summary is byte-identical however the campaign executed;
* a warm cache re-run does essentially no scheduling work.

Wall-clock *speedup* from sharding is only asserted as "did not fall
off a cliff" (CI runners and dev laptops share cores unpredictably);
the cache ratio is asserted strictly, since skipping the work is the
entire point.
"""

import time

from repro.core.differential import campaign
from repro.runner import available_parallelism

#: Enough seeds that fork/merge overhead cannot dominate the timing.
SEEDS = range(48)
CYCLES = 300


def _timed(**kwargs):
    start = time.perf_counter()
    result = campaign(SEEDS, n_cycles=CYCLES, **kwargs)
    return result, time.perf_counter() - start


def test_parallel_campaign_equality_and_timing(benchmark, report):
    workers = available_parallelism()
    sequential, t_seq = _timed(workers=1)

    result = benchmark.pedantic(
        lambda: campaign(SEEDS, n_cycles=CYCLES, workers=workers),
        rounds=1,
        iterations=1,
    )
    t_par = benchmark.stats.stats.mean

    assert result.passed and sequential.passed
    assert result.summary_json() == sequential.summary_json()
    report(
        "Sharded differential campaign",
        f"{result.scenarios} scenarios x {CYCLES} cycles\n"
        f"sequential: {t_seq:.2f}s, {workers} workers: {t_par:.2f}s "
        f"({t_seq / t_par:.2f}x)",
    )
    # Sharding must never be catastrophically slower than sequential
    # (real speedup needs real cores; CI runners may have few).
    assert t_par < t_seq * 3


def test_cache_warm_rerun_is_fast(benchmark, report, tmp_path):
    cold, t_cold = _timed(workers=1, cache_dir=tmp_path)
    assert cold.executed == cold.scenarios

    warm = benchmark.pedantic(
        lambda: campaign(SEEDS, n_cycles=CYCLES, workers=1, cache_dir=tmp_path),
        rounds=1,
        iterations=1,
    )
    t_warm = benchmark.stats.stats.mean

    assert warm.cached == warm.scenarios and warm.executed == 0
    assert warm.summary_json() == cold.summary_json()
    report(
        "Warm scenario cache",
        f"cold: {t_cold:.2f}s, warm: {t_warm:.3f}s "
        f"({t_cold / t_warm:.0f}x)",
    )
    # Reading ~50 small JSON files must beat re-running ~50 simulations
    # by a wide margin; 2x is an extremely loose floor for "it cached".
    assert t_warm < t_cold * 0.5
