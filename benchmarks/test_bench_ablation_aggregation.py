"""Ablation: aggregation degree vs per-streamlet QoS granularity.

Section 5.1: aggregation trades per-stream QoS for scale ("QoS is
provided at a coarser granularity to achieve scale in a cost-effective
fashion").  This ablation sweeps streamlets-per-slot and reports the
per-streamlet bandwidth and the FPGA state storage saved versus giving
every streamlet its own Register Base block.
"""

import pytest

from repro.experiments.ablations import aggregation_sweep
from repro.metrics.report import render_table


def test_ablation_aggregation_degree(benchmark, report):
    rows = benchmark.pedantic(aggregation_sweep, rounds=1, iterations=1)
    body = render_table(
        [
            "streamlets/slot",
            "total streams",
            "slot1 streamlet MBps",
            "slot4/set1 streamlet MBps",
            "dedicated slices",
            "aggregated slices",
            "FPGA state saved",
        ],
        [
            [
                r["degree"],
                r["total_streams"],
                f"{r['slot1_streamlet_mbps']:.4f}",
                f"{r['slot4_set1_streamlet_mbps']:.4f}",
                r["dedicated_slices"],
                r["aggregated_slices"],
                f"{r['dedicated_slices'] / r['aggregated_slices']:.0f}x",
            ]
            for r in rows
        ],
    )
    body += (
        "\nper-streamlet bandwidth scales as slot share / degree; FPGA "
        "register area stays constant while stream count scales on "
        "cheap processor memory"
    )
    report("Ablation: streamlet aggregation degree", body)

    by_degree = {r["degree"]: r["slot1_streamlet_mbps"] for r in rows}
    assert by_degree[50] / by_degree[100] == pytest.approx(2.0, rel=0.2)
    assert by_degree[100] / by_degree[200] == pytest.approx(2.0, rel=0.3)
