"""Backend crossover study: the same campaign on every array backend.

The array-API refactor (``repro.core.backend``) exists so the ``(S, N)``
campaign engine can run on accelerator libraries without forking the
kernels.  This benchmark reproduces the CPU-vs-accelerator crossover
methodology from the tensor-network literature: sweep the campaign
shape — S scenarios x N streams — through the *identical* periodic EDF
workload on each installable backend, record scenario-cycles/second,
and print the S x N crossover table (rate ratio vs the NumPy
baseline).  On hosts missing an optional library or GPU the sweep
degrades to skip-with-reason per backend (the availability report from
:func:`repro.core.backend.available_backends`), never to silence.

Machine-readable results land in ``BENCH_BACKENDS.json`` at the repo
root via the shared ``write_bench`` envelope, so the perf-trend layer
(``repro bench trend``) folds backend rates into the trajectory like
every other bench artifact.

Byte-identity across backends is *asserted* here too (cheap, and it
turns the perf sweep into one more differential fixture), but the real
equivalence gate is ``tests/test_backend_equivalence.py`` plus the CI
backend matrix.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from _schema import bench_record, write_bench
from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.backend import available_backends, resolve_backend
from repro.core.config import ArchConfig, Routing
from repro.core.tensor_engine import CampaignEngine

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_BACKENDS.json"

SCENARIO_COUNTS = (1, 16, 64)
SLOT_COUNTS = (8, 32)

_CYCLES = {8: 300, 32: 150}
_WARMUP = 8


def _arch_streams(n_slots: int) -> tuple[ArchConfig, list[StreamConfig]]:
    arch = ArchConfig(n_slots=n_slots, routing=Routing.WR, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n_slots)
    ]
    return arch, streams


def _run(backend, s_count: int, n_slots: int, cycles: int):
    """One timed campaign run; returns (rate, per-stream win counts)."""
    arch, streams = _arch_streams(n_slots)
    engine = CampaignEngine(
        arch, [list(streams) for _ in range(s_count)], engine_backend=backend
    )
    engine.run_periodic(_WARMUP, step=1)
    engine = CampaignEngine(
        arch, [list(streams) for _ in range(s_count)], engine_backend=backend
    )
    start = time.perf_counter()
    results = engine.run_periodic(cycles, step=1)
    rate = s_count * cycles / (time.perf_counter() - start)
    return rate, np.stack([r.wins for r in results])


def test_backend_crossover(report):
    availability = available_backends()
    usable = [name for name, reason in availability.items() if reason is None]
    skipped = {
        name: reason
        for name, reason in availability.items()
        if reason is not None
    }
    assert "numpy" in usable  # the baseline backend is a hard dependency

    records = []
    rates: dict[tuple[str, int, int], float] = {}
    baseline_wins: dict[tuple[int, int], np.ndarray] = {}
    for name in usable:
        backend = resolve_backend(name)
        for n in SLOT_COUNTS:
            for s in SCENARIO_COUNTS:
                rate, wins = _run(backend, s, n, _CYCLES[n])
                rates[(name, s, n)] = rate
                if name == "numpy":
                    baseline_wins[(s, n)] = wins
                else:
                    # The sweep doubles as a cheap differential check.
                    np.testing.assert_array_equal(
                        wins, baseline_wins[(s, n)],
                        err_msg=f"{name} diverged at S={s} N={n}",
                    )
                # Backend and shape live in the record *name*
                # (``backend_ops.numpy.s16n32``) so trend tables and
                # regression reports read without metadata lookups;
                # metadata keeps the raw parameters for filtering.
                records.append(
                    bench_record(
                        f"backend_ops.{name}.s{s}n{n}",
                        rate, "scenario-cycles/s",
                        backend=name, scenarios=s, slots=n,
                        direction="higher",
                    )
                )

    # Crossover table: each backend's rate as a ratio of NumPy's at the
    # same (S, N) point — ratios > 1 mark where the backend wins.
    rows = []
    header = "S x N      " + "".join(f"{name:>18}" for name in usable)
    rows.append(header)
    for n in SLOT_COUNTS:
        for s in SCENARIO_COUNTS:
            base = rates[("numpy", s, n)]
            cells = []
            for name in usable:
                rate = rates[(name, s, n)]
                cells.append(f"{rate:>10,.0f} ({rate / base:>4.2f}x)")
                if name != "numpy":
                    records.append(
                        bench_record(
                            f"backend_vs_numpy.{name}.s{s}n{n}",
                            rate / base, "ratio",
                            backend=name, scenarios=s, slots=n,
                            direction="higher",
                        )
                    )
            rows.append(f"S={s:>3} N={n:>3}" + "".join(cells))
    for name, reason in skipped.items():
        rows.append(f"skipped {name}: {reason}")

    write_bench(
        OUTPUT,
        "backends",
        records,
        workload="periodic EDF feed, one arrival per stream per "
        "decision cycle, per array backend",
    )
    report(
        "Backend crossover: scenario-cycles/s by (S, N) and backend",
        "\n".join(rows),
    )

    if len(usable) == 1:
        pytest.skip(
            "only the numpy backend is installed — no crossover to "
            'measure (pip install -e ".[backends]" for torch/'
            "array-api-strict; cupy needs a CUDA runtime). "
            f"NumPy rates recorded in {OUTPUT.name}."
        )
