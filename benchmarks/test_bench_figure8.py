"""Figure 8 benchmark: fair bandwidth allocation 1:1:2:4 at full scale."""

from repro.experiments.figure8 import run_figure8
from repro.metrics.report import render_series, render_table

#: The paper transfers 64000 arrival times per queue.
FRAMES = 64_000


def test_figure8_bandwidth_allocation(benchmark, report):
    result = benchmark.pedantic(
        run_figure8, args=(FRAMES,), rounds=1, iterations=1
    )
    rows = [
        [f"Stream {sid + 1}", f"{mbps:.2f}", f"{result.ratios[sid]:.2f}"]
        for sid, mbps in sorted(result.steady_mbps.items())
    ]
    body = render_table(
        ["stream", "steady MBps", "ratio"], rows
    )
    body += "\npaper: 2.0 / 2.0 / 4.0 / 8.0 MBps (1:1:2:4)\n"
    for sid, series in sorted(result.series.items()):
        body += (
            render_series(
                f"stream {sid + 1}",
                series.times_us / 1e6,
                series.mbps,
                max_points=12,
                x_unit="s",
                y_unit="MBps",
            )
            + "\n"
        )
    report("Figure 8: Fair Bandwidth Allocation (1:1:2:4)", body.rstrip())

    assert abs(result.ratios[3] - 4.0) < 0.2
    assert abs(result.steady_mbps[3] - 8.0) < 0.5
    assert abs(result.ratios[2] - 2.0) < 0.1
