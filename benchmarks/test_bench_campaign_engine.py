"""Campaign throughput: tensor engine vs per-scenario execution.

Runs the identical periodic EDF campaign — S same-shape scenarios of N
streams each — three ways and reports *scenario-cycles per second*
(one scenario advancing one decision cycle = one op):

* **reference** — the cycle-level object model, one scenario at a time
  (its rate is per-scenario, independent of S);
* **batch** — one :class:`BatchScheduler` per scenario, run serially
  (the pre-tensor campaign shape: fast cycles, but the Python
  per-cycle loop is paid S times);
* **tensor** — one :class:`CampaignEngine` holding all S scenarios as
  rows of its ``(S, N)`` state, so the whole campaign pays the Python
  per-cycle loop once.

The crossover table lands in ``docs/ENGINES.md``; the machine-readable
results are written to ``BENCH_CAMPAIGN.json`` at the repo root (CI
uploads it as an artifact).  The assert pins the acceptance bar:
>= 5x over per-scenario batch execution at S=64.
"""

from __future__ import annotations

import time
from pathlib import Path

from _schema import bench_record, write_bench
from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import BatchScheduler
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.core.tensor_engine import CampaignEngine

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_CAMPAIGN.json"

SCENARIO_COUNTS = (1, 16, 64)
SLOT_COUNTS = (8, 32)

#: Timed decision cycles per scenario (rates are compared, not totals;
#: the reference engine gets fewer so the harness stays fast).
_CYCLES = {8: 400, 32: 250}
_REFERENCE_CYCLES = {8: 300, 32: 120}
_WARMUP = 8


def _arch_streams(n_slots: int) -> tuple[ArchConfig, list[StreamConfig]]:
    arch = ArchConfig(n_slots=n_slots, routing=Routing.WR, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n_slots)
    ]
    return arch, streams


def _feed(scheduler, t: int, n_slots: int) -> None:
    for sid in range(n_slots):
        scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)


def _reference_rate(n_slots: int) -> float:
    """Scenario-cycles/second of the object model (per-scenario; the
    campaign runs scenarios serially so the rate is S-independent)."""
    scheduler = ShareStreamsScheduler(*_arch_streams(n_slots))
    cycles = _REFERENCE_CYCLES[n_slots]

    def run(t0: int, n: int) -> None:
        for t in range(t0, t0 + n):
            _feed(scheduler, t, n_slots)
            scheduler.decision_cycle(t, consume="winner", count_misses=True)

    run(0, _WARMUP)
    start = time.perf_counter()
    run(_WARMUP, cycles)
    return cycles / (time.perf_counter() - start)


def _batch_rate(s_count: int, n_slots: int) -> float:
    """Scenario-cycles/second of S serial BatchScheduler runs."""
    arch, streams = _arch_streams(n_slots)
    cycles = _CYCLES[n_slots]
    BatchScheduler(arch, streams).run_periodic(_WARMUP, step=1)
    schedulers = [BatchScheduler(arch, streams) for _ in range(s_count)]
    start = time.perf_counter()
    for scheduler in schedulers:
        scheduler.run_periodic(cycles, step=1)
    return s_count * cycles / (time.perf_counter() - start)


def _tensor_rate(s_count: int, n_slots: int) -> float:
    """Scenario-cycles/second of one CampaignEngine holding S rows."""
    arch, streams = _arch_streams(n_slots)
    cycles = _CYCLES[n_slots]
    lists = [list(streams) for _ in range(s_count)]
    CampaignEngine(arch, [list(streams)]).run_periodic(_WARMUP, step=1)
    engine = CampaignEngine(arch, lists)
    start = time.perf_counter()
    engine.run_periodic(cycles, step=1)
    return s_count * cycles / (time.perf_counter() - start)


def test_campaign_engine_scaling(report):
    reference = {n: _reference_rate(n) for n in SLOT_COUNTS}
    rows = []
    records = []
    speedups = {}
    for n in SLOT_COUNTS:
        records.append(
            bench_record(
                "reference_ops", reference[n], "scenario-cycles/s",
                slots=n, direction="higher",
            )
        )
        for s in SCENARIO_COUNTS:
            bat = _batch_rate(s, n)
            ten = _tensor_rate(s, n)
            speedups[(s, n)] = ten / bat
            point = {"scenarios": s, "slots": n}
            records.extend(
                [
                    bench_record(
                        "batch_ops", bat, "scenario-cycles/s",
                        direction="higher", **point,
                    ),
                    bench_record(
                        "tensor_ops", ten, "scenario-cycles/s",
                        direction="higher", **point,
                    ),
                    bench_record(
                        "tensor_vs_batch", ten / bat, "ratio",
                        direction="higher", **point,
                    ),
                ]
            )
            rows.append(
                f"S={s:>3} N={n:>3}: reference {reference[n]:>10,.0f} | "
                f"batch {bat:>10,.0f} | tensor {ten:>10,.0f} "
                f"scenario-cyc/s | {ten / bat:>6.1f}x"
            )
    records.append(
        bench_record(
            "tensor_vs_batch_at_s64",
            max(speedups[(64, n)] for n in SLOT_COUNTS),
            "ratio",
            direction="higher",
            required=5.0,
        )
    )
    write_bench(
        OUTPUT,
        "campaign",
        records,
        workload="periodic EDF feed, one arrival per stream per "
        "decision cycle",
    )
    report("Campaign throughput: tensorized vs per-scenario", "\n".join(rows))
    # One engine instance amortizes the Python per-cycle loop across
    # all S rows; the batched evaluation must win big at campaign
    # scale (the acceptance bar for the tensor path's existence).
    for n in SLOT_COUNTS:
        assert speedups[(64, n)] >= 5.0, (
            f"tensor engine only {speedups[(64, n)]:.1f}x over "
            f"per-scenario batch at S=64 N={n} (need >= 5x)"
        )
