"""Ablation: Section 6 extensions — compute-ahead and Virtex-II.

The paper's future work lists compute-ahead Register Base blocks
(predicated next-state, hiding the PRIORITY_UPDATE cycle) and moving
the decision products onto Virtex-II hard multipliers.  This bench
prices both against the baseline: throughput at 4..32 slots and the
register-area cost of predication.
"""

from repro.experiments.ablations import extensions_sweep
from repro.metrics.report import render_table


def test_ablation_extensions(benchmark, report):
    rows = benchmark.pedantic(extensions_sweep, rounds=3, iterations=1)
    body = render_table(
        [
            "slots",
            "baseline Mpps (Virtex-I)",
            "+compute-ahead Mpps",
            "+Virtex-II Mpps",
            "area factor",
        ],
        [
            [
                r["n_slots"],
                f"{r['base_pps'] / 1e6:.2f}",
                f"{r['compute_ahead_pps'] / 1e6:.2f}",
                f"{r['virtex2_pps'] / 1e6:.2f}",
                f"{r['area_factor']:.2f}x",
            ]
            for r in rows
        ],
    )
    body += (
        "\ncompute-ahead hides the PRIORITY_UPDATE cycle "
        "(1 of 9-12 cycles); Virtex-II doubles the fabric clock"
    )
    report("Ablation: Section 6 extensions (compute-ahead, Virtex-II)", body)

    first = rows[0]
    assert first["virtex2_pps"] > 2 * first["base_pps"]
