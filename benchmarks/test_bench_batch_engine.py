"""Engine comparison: vectorized batch engine vs the object model.

Runs the identical periodic EDF workload (the Table 3 feed generalized
over slot count) on both engines and reports decision cycles per
second.  The object model pays per-slot, per-pass Python costs — its
cycle time grows like ``N log N`` function calls — while the batch
engine's cycle is a handful of array operations, so the gap widens
with slot count.  The asserts pin the crossover: the batch engine must
win from 32 slots up and by at least 5x at 128 slots (the acceptance
bar for replacing the special-cased fast paths).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import BatchScheduler
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler

SLOT_COUNTS = (8, 32, 128, 512)

#: Timed decision cycles per engine (reference shrinks with N to keep
#: the harness fast; rates are compared, not wall-clock totals).
_REFERENCE_CYCLES = {8: 400, 32: 200, 128: 60, 512: 16}
_BATCH_CYCLES = {8: 2000, 32: 2000, 128: 1000, 512: 400}
_WARMUP = 8


def _arch_streams(n_slots: int) -> tuple[ArchConfig, list[StreamConfig]]:
    extended = n_slots > 32
    arch = ArchConfig(
        n_slots=n_slots, routing=Routing.WR, wrap=False, extended=extended
    )
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF, extended=extended)
        for i in range(n_slots)
    ]
    return arch, streams


def _reference_rate(n_slots: int) -> float:
    """Decision cycles/second of the object model on the periodic feed."""
    scheduler = ShareStreamsScheduler(*_arch_streams(n_slots))
    cycles = _REFERENCE_CYCLES[n_slots]

    def run(t0: int, n: int) -> None:
        for t in range(t0, t0 + n):
            for sid in range(n_slots):
                scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
            scheduler.decision_cycle(t, consume="winner", count_misses=True)

    run(0, _WARMUP)
    start = time.perf_counter()
    run(_WARMUP, cycles)
    return cycles / (time.perf_counter() - start)


def _batch_rate(n_slots: int) -> float:
    """Decision cycles/second of the batch engine on the same feed."""
    offsets = np.arange(1, n_slots + 1, dtype=np.int64)
    cycles = _BATCH_CYCLES[n_slots]
    arch, streams = _arch_streams(n_slots)

    warm = BatchScheduler(arch, streams)
    warm.run_periodic(_WARMUP, offsets=offsets, step=1)

    scheduler = BatchScheduler(arch, streams)
    start = time.perf_counter()
    scheduler.run_periodic(cycles, offsets=offsets, step=1)
    return cycles / (time.perf_counter() - start)


def test_batch_engine_scaling(report):
    rows = []
    speedups = {}
    for n in SLOT_COUNTS:
        ref = _reference_rate(n)
        bat = _batch_rate(n)
        speedups[n] = bat / ref
        rows.append(
            f"{n:>4} slots: reference {ref:>10,.0f} cyc/s | "
            f"batch {bat:>10,.0f} cyc/s | {bat / ref:>6.1f}x"
        )
    report("Engine comparison: periodic EDF feed", "\n".join(rows))
    # The object model may win at tiny N (array-op overhead dominates);
    # from 32 slots up the batch engine must win, and by a wide margin
    # at experiment scale.
    for n in SLOT_COUNTS:
        if n >= 32:
            assert speedups[n] > 1.0, f"batch engine lost at {n} slots"
    assert speedups[128] >= 5.0, (
        f"batch engine only {speedups[128]:.1f}x at 128 slots (need >= 5x)"
    )
