"""Figure 7 benchmark: area-clock characteristics of BA vs WR."""

from repro.experiments.figure7 import degradation_ba_vs_wr, run_figure7
from repro.metrics.report import render_table


def test_figure7_area_clock(benchmark, report):
    points = benchmark(run_figure7)
    rows = []
    for p in points:
        rows.append(
            [
                p.n_slots,
                p.routing.value.upper(),
                round(p.slices),
                round(p.area.total_clbs),
                f"{p.area.utilization:.0%}",
                f"{p.clock_mhz:.1f}",
                p.sort_cycles,
            ]
        )
    body = render_table(
        ["slots", "variant", "slices", "CLBs", "util(XCV1000)", "clock MHz", "sort cycles"],
        rows,
    )
    deg = degradation_ba_vs_wr(points)
    body += "\nBA clock degradation vs WR: " + ", ".join(
        f"{n}: {d:.0%}" for n, d in deg.items()
    )
    body += "\npaper: ~20% at 8/16 slots, ~10% at 32; area BA ~= WR; linear growth"
    report("Figure 7: Area-Clock Rate Characteristics (Virtex-I)", body)

    assert all(p.area.fits for p in points)
    assert abs(deg[32] - 0.10) < 0.02
