"""Million-stream aggregation tier: scale, churn latency, memory.

Drives one :class:`repro.aggregation.AggregationTier` (batch engine,
1024 aggregates, non-strict membership — the production-scale mode) to
``AGG_BENCH_STREAMS`` concurrent streams (default 1,000,000; CI smoke
runs 100,000) and measures the three claims the issue pins:

* **scale** — the configured stream population is actually joined and
  concurrently resident, and a service phase runs on top of it;
* **O(1) join/leave** — per-operation churn latency measured at a
  small population and again at the full population must not grow
  with the stream count (asserted ratio bound);
* **O(aggregates) hot-path memory** — the RSS delta across the whole
  run stays under an absolute bound that a per-stream cost of even a
  hundred bytes would blow past at 1M streams (asserted).

Machine-readable results land in ``BENCH_AGGREGATION.json`` at the
repo root (CI uploads the smoke-scale artifact).
"""

from __future__ import annotations

import os
import resource
import time
from pathlib import Path

from _schema import bench_record, write_bench
from repro.aggregation import AggregationTier

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_AGGREGATION.json"

N_AGGREGATES = 1024

#: Stream population (override for smoke runs: AGG_BENCH_STREAMS=100000).
N_STREAMS = int(os.environ.get("AGG_BENCH_STREAMS", 1_000_000))

#: join+leave pairs per churn-latency measurement.
CHURN_OPS = 20_000

#: Packets pushed through the tier in the service phase.
SERVICE_PACKETS = 20_000

#: Hot-path memory bound: absolute, *independent of the stream count*.
#: 100 bytes/stream of hidden per-stream state would cost ~100 MB at
#: 1M streams, so staying under this bound at full scale is what
#: "memory O(aggregates)" means operationally.
RSS_BOUND_MB = 64.0

#: Churn latency at full population may exceed the small-population
#: baseline by at most this factor (O(1) means no dependence on the
#: total stream count; 4x absorbs allocator/cache noise, not growth).
CHURN_RATIO_BOUND = 4.0


def _rss_bytes() -> int:
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found")


def _churn_latency(tier: AggregationTier, base_sid: int, ops: int) -> float:
    """Mean seconds per join+leave pair at the current population."""
    start = time.perf_counter()
    for sid in range(base_sid, base_sid + ops):
        tier.join(sid)
        tier.leave(sid, weight=1)
    return (time.perf_counter() - start) / ops


def test_million_stream_tier(report):
    rss_start = _rss_bytes()
    tier = AggregationTier(N_AGGREGATES, engine="batch", strict=False)

    # -- population ----------------------------------------------------
    small_population = min(N_STREAMS, max(10_000, N_STREAMS // 10))
    t0 = time.perf_counter()
    for sid in range(small_population):
        tier.join(sid)
    churn_small = _churn_latency(tier, 10 * N_STREAMS, CHURN_OPS)
    for sid in range(small_population, N_STREAMS):
        tier.join(sid)
    join_seconds = time.perf_counter() - t0
    assert tier.active_members == N_STREAMS

    # -- O(1) churn: latency at full population vs small ---------------
    churn_full = _churn_latency(tier, 20 * N_STREAMS, CHURN_OPS)
    churn_ratio = churn_full / churn_small
    assert churn_ratio <= CHURN_RATIO_BOUND, (
        f"join/leave latency grew {churn_ratio:.2f}x from population "
        f"{small_population:,} to {N_STREAMS:,} — churn is not O(1)"
    )

    # -- service phase on top of the full population -------------------
    stride = max(1, N_STREAMS // SERVICE_PACKETS)
    t0 = time.perf_counter()
    for i in range(SERVICE_PACKETS):
        tier.submit((i * stride) % N_STREAMS, deadline=1 << 30)
    submit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cycles = tier.drain()
    service_seconds = time.perf_counter() - t0
    assert tier.core.serviced == SERVICE_PACKETS
    assert cycles == SERVICE_PACKETS  # work-conserving: one per cycle

    # -- O(aggregates) hot-path memory ---------------------------------
    rss_delta = _rss_bytes() - rss_start
    assert rss_delta <= RSS_BOUND_MB * 1e6, (
        f"RSS grew {rss_delta / 1e6:.1f} MB over the run at "
        f"{N_STREAMS:,} streams (bound {RSS_BOUND_MB} MB) — hot-path "
        f"state is not O(aggregates)"
    )

    results = {
        "streams": N_STREAMS,
        "aggregates": N_AGGREGATES,
        "join_per_second": N_STREAMS / join_seconds,
        "churn_latency_small_us": churn_small * 1e6,
        "churn_latency_full_us": churn_full * 1e6,
        "churn_ratio": churn_ratio,
        "submit_per_second": SERVICE_PACKETS / submit_seconds,
        "decisions_per_second": cycles / service_seconds,
        "packets_serviced": SERVICE_PACKETS,
        "rss_delta_mb": rss_delta / 1e6,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e3,
    }
    scale = {"streams": N_STREAMS, "aggregates": N_AGGREGATES}
    write_bench(
        OUTPUT,
        "aggregation",
        [
            bench_record("streams", N_STREAMS),
            bench_record("aggregates", N_AGGREGATES),
            bench_record(
                "join_per_second", results["join_per_second"], "ops/s",
                direction="higher", **scale,
            ),
            bench_record(
                "churn_latency_small_us", churn_small * 1e6, "us",
                direction="lower", **scale,
            ),
            bench_record(
                "churn_latency_full_us", churn_full * 1e6, "us",
                direction="lower", **scale,
            ),
            bench_record(
                "churn_ratio", churn_ratio, "ratio",
                direction="lower", bound=CHURN_RATIO_BOUND, **scale,
            ),
            bench_record(
                "submit_per_second", results["submit_per_second"], "ops/s",
                direction="higher", **scale,
            ),
            bench_record(
                "decisions_per_second", results["decisions_per_second"],
                "ops/s", direction="higher", **scale,
            ),
            bench_record("packets_serviced", SERVICE_PACKETS),
            bench_record(
                "rss_delta_mb", results["rss_delta_mb"], "mb",
                direction="lower", bound=RSS_BOUND_MB, **scale,
            ),
            bench_record("peak_rss_mb", results["peak_rss_mb"], "mb", **scale),
        ],
        workload=f"{N_STREAMS} streams / {N_AGGREGATES} aggregates, "
        f"{CHURN_OPS} churn pairs, {SERVICE_PACKETS} serviced packets",
    )
    report(
        f"Aggregation tier at {N_STREAMS:,} streams / {N_AGGREGATES} aggregates",
        "\n".join(
            [
                f"joins:     {results['join_per_second']:,.0f}/s "
                f"({join_seconds:.2f}s to populate)",
                f"churn:     {results['churn_latency_small_us']:.2f}us @ "
                f"{small_population:,} -> "
                f"{results['churn_latency_full_us']:.2f}us @ {N_STREAMS:,} "
                f"({churn_ratio:.2f}x, bound {CHURN_RATIO_BOUND}x)",
                f"service:   {results['decisions_per_second']:,.0f} "
                f"decisions/s over {cycles:,} cycles",
                f"memory:    +{results['rss_delta_mb']:.1f} MB RSS "
                f"(bound {RSS_BOUND_MB} MB), peak "
                f"{results['peak_rss_mb']:.0f} MB",
                f"artifact:  {OUTPUT.name}",
            ]
        ),
    )
