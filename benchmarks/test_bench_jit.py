"""Compiled-vs-NumPy sweep for the fused decision-cycle kernels.

The ``numba`` backend (:mod:`repro.core.jit`) fuses the tensor
engine's per-cycle phases into one whole-run driver that executes K
decision cycles without returning to Python.  This benchmark times the
*identical* periodic EDF campaign on the NumPy array path and on the
kernel path across the S x N shape grid, records the speedup ratios,
and asserts the crossover claim the JIT work was sized against: at
``S=1, N=8`` — where per-cycle array-dispatch overhead dominates and
the array path degenerates to dozens of tiny NumPy calls per cycle —
the fused driver must win by at least 3x.  First-call compilation
(``cache=True`` warmup) is excluded by running a throwaway campaign
before the timed one.

When numba is not installed the kernels run interpreted
(``NumbaBackend(force_interpreted=True)``, semantically identical to
``NUMBA_DISABLE_JIT=1``).  The small-shape assertion still holds —
one fused Python loop beats per-cycle NumPy dispatch at S=1, N=8 —
while large shapes legitimately favor the array path; each record's
``mode`` metadata says which flavor produced it, so trend comparisons
never silently mix compiled and interpreted rates.

Results land in ``BENCH_JIT.json`` via the shared ``write_bench``
envelope and fold into ``repro bench trend`` like every other bench
artifact.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from _schema import bench_record, write_bench
from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.backend import NumbaBackend
from repro.core.config import ArchConfig, Routing
from repro.core.jit import NUMBA_AVAILABLE
from repro.core.tensor_engine import CampaignEngine

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_JIT.json"

SCENARIO_COUNTS = (1, 8, 64)
SLOT_COUNTS = (8, 32, 128)

#: Timed decision cycles per slot count.  Scaled down as N grows so
#: the interpreted-mode sweep (numba absent) stays bounded — the
#: insertion-sort cascade is O(N^2) per row per cycle in pure Python.
#: The recorded unit is a *rate*, so shorter runs stay comparable.
_CYCLES = {8: 300, 32: 80, 128: 12}
_WARMUP = 8

#: The crossover claim under test: fused driver vs array path at the
#: smallest shape, where per-cycle dispatch overhead dominates.
_ASSERT_SHAPE = (1, 8)
_ASSERT_MIN_SPEEDUP = 3.0

_MODE = "compiled" if NUMBA_AVAILABLE else "interpreted"


def _arch_streams(n_slots: int) -> tuple[ArchConfig, list[StreamConfig]]:
    # Single-chip slot budget is 32; the N=128 column exercises the
    # extended multi-chip composition (Table 3 scaling row).
    arch = ArchConfig(
        n_slots=n_slots,
        routing=Routing.WR,
        wrap=False,
        extended=n_slots > 32,
    )
    streams = [
        StreamConfig(
            sid=i, period=1, mode=SchedulingMode.EDF,
            extended=n_slots > 32,
        )
        for i in range(n_slots)
    ]
    return arch, streams


def _run(backend, s_count: int, n_slots: int, cycles: int):
    """One timed campaign run; returns (rate, per-stream win counts)."""
    arch, streams = _arch_streams(n_slots)
    engine = CampaignEngine(
        arch, [list(streams) for _ in range(s_count)], engine_backend=backend
    )
    engine.run_periodic(_WARMUP, step=1)  # warmup: JIT compile + caches
    engine = CampaignEngine(
        arch, [list(streams) for _ in range(s_count)], engine_backend=backend
    )
    start = time.perf_counter()
    results = engine.run_periodic(cycles, step=1)
    rate = s_count * cycles / (time.perf_counter() - start)
    return rate, np.stack([r.wins for r in results])


def test_jit_speedup_sweep(report):
    jit_backend = (
        NumbaBackend() if NUMBA_AVAILABLE
        else NumbaBackend(force_interpreted=True)
    )

    records = []
    rows = []
    speedups: dict[tuple[int, int], float] = {}
    for n in SLOT_COUNTS:
        for s in SCENARIO_COUNTS:
            cycles = _CYCLES[n]
            numpy_rate, numpy_wins = _run("numpy", s, n, cycles)
            jit_rate, jit_wins = _run(jit_backend, s, n, cycles)
            np.testing.assert_array_equal(
                jit_wins, numpy_wins,
                err_msg=f"jit path diverged at S={s} N={n}",
            )
            speedup = jit_rate / numpy_rate
            speedups[(s, n)] = speedup
            records.append(
                bench_record(
                    f"jit_ops.{_MODE}.s{s}n{n}",
                    jit_rate, "scenario-cycles/s",
                    mode=_MODE, numba=NUMBA_AVAILABLE,
                    scenarios=s, slots=n, direction="higher",
                )
            )
            records.append(
                bench_record(
                    f"jit_vs_numpy.{_MODE}.s{s}n{n}",
                    speedup, "ratio",
                    mode=_MODE, numba=NUMBA_AVAILABLE,
                    scenarios=s, slots=n, direction="higher",
                )
            )
            rows.append(
                f"S={s:>3} N={n:>3}  numpy {numpy_rate:>10,.0f}  "
                f"{_MODE} {jit_rate:>10,.0f}  ({speedup:>5.2f}x)"
            )
    rows.append(
        f"mode: {_MODE} (numba {'installed' if NUMBA_AVAILABLE else 'absent'}"
        "); warmup campaign excluded from every timing"
    )

    write_bench(
        OUTPUT,
        "jit",
        records,
        workload="periodic EDF feed, fused whole-run kernel driver vs "
        "NumPy array path, per (S, N) shape",
    )
    report(
        f"JIT crossover ({_MODE}): scenario-cycles/s by (S, N)",
        "\n".join(rows),
    )

    s, n = _ASSERT_SHAPE
    assert speedups[(s, n)] >= _ASSERT_MIN_SPEEDUP, (
        f"fused driver managed only {speedups[(s, n)]:.2f}x over the "
        f"NumPy path at S={s} N={n} (claim: >= {_ASSERT_MIN_SPEEDUP}x)"
    )
