"""Figure 1 benchmark: framework realizability sweep."""

from repro.experiments.figure1 import run_figure1
from repro.metrics.report import render_table


def test_figure1_framework_sweep(benchmark, report):
    sweep = benchmark(run_figure1)
    rows = []
    for p in sweep.points:
        if p.n_streams != 32:
            continue  # print the headline 32-stream slice
        rows.append(
            [
                p.discipline,
                p.length_bytes,
                f"{p.rate_bps / 1e9:.0f}G",
                p.target,
                f"{p.required_dps:,.0f}",
                f"{p.achievable_dps:,.0f}",
                "yes" if p.realizable else "no",
            ]
        )
    body = render_table(
        ["discipline", "frame B", "link", "target", "required dps", "achievable dps", "realizable"],
        rows,
    )
    body += (
        f"\nrealizable fraction: fpga={sweep.realizable_fraction('fpga'):.2f} "
        f"software={sweep.realizable_fraction('software'):.2f}"
    )
    report("Figure 1: Architectural Solutions Framework (32-stream slice)", body)
    assert sweep.realizable_fraction("fpga") > sweep.realizable_fraction("software")
