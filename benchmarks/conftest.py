"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (bypassing capture so the output
lands in ``pytest benchmarks/ --benchmark-only`` logs, which
EXPERIMENTS.md records).

The harness depends on the ``pytest-benchmark`` plugin for its
``benchmark`` fixture.  Environments without the plugin (minimal CI
installs, a bare ``pip install -e .``) must still be able to collect
and run this directory — the fallback fixture below turns every
benchmark into a clean *skip* instead of a collection/fixture error.
"""

from __future__ import annotations

import importlib.util

import pytest


def pytest_runtest_setup(item) -> None:
    """Skip benchmark items cleanly when pytest-benchmark is absent.

    Runs before fixture resolution, so a missing plugin produces a
    *skip* instead of a "fixture 'benchmark' not found" error — both
    when the package is not installed and when the plugin is disabled
    (``-p no:benchmark``).
    """
    if "benchmark" not in getattr(item, "fixturenames", ()):
        return
    if not item.config.pluginmanager.hasplugin("benchmark"):
        pytest.skip(
            "pytest-benchmark plugin not loaded — install the bench "
            'extra (pip install -e ".[bench]") or drop -p no:benchmark'
        )


if importlib.util.find_spec("pytest_benchmark") is None:

    @pytest.fixture
    def benchmark():
        """Stand-in for pytest-benchmark's fixture when absent.

        Defined only when the plugin is not installed (a conftest
        fixture would otherwise shadow the real one); the setup hook
        above already skips such items, this keeps collection of
        ``--fixtures`` listings and derived fixtures coherent too.
        """
        pytest.skip(
            "pytest-benchmark is not installed — install the bench "
            'extra: pip install -e ".[bench]"'
        )


@pytest.fixture
def report(capsys):
    """Print a reproduction block directly to the terminal."""

    def _report(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)

    return _report
