"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (bypassing capture so the output
lands in ``pytest benchmarks/ --benchmark-only`` logs, which
EXPERIMENTS.md records).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a reproduction block directly to the terminal."""

    def _report(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)

    return _report
