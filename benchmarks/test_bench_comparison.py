"""Section 5.2 benchmark: throughput comparison with contemporary systems."""

from repro.experiments.comparison import run_comparison
from repro.metrics.report import render_table


def test_section52_comparison(benchmark, report):
    rows = benchmark.pedantic(
        run_comparison,
        kwargs={"frames_per_stream": 4000},
        rounds=1,
        iterations=1,
    )
    body = render_table(
        ["system", "packets/second", "source"],
        [[r.system, f"{r.pps:,.0f}", r.source] for r in rows],
    )
    report("Section 5.2: Performance Comparison", body)

    by_name = {r.system: r.pps for r in rows}
    # Simulated anchors land on the published figures.
    assert abs(by_name["ShareStreams linecard (4 slots, Virtex-I)"] - 7.6e6) < 1e4
    assert abs(by_name["ShareStreams endsystem (no PCI transfer)"] - 469_483) < 5_000
    assert abs(by_name["ShareStreams endsystem (PCI PIO included)"] - 299_065) < 3_000
    # Ordering: hardware linecard >> any software router.
    assert by_name["ShareStreams linecard (4 slots, Virtex-I)"] > 10 * by_name[
        "Click modular router (700MHz P-III, plain)"
    ]
