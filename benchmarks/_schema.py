"""Shared writer surface for every ``benchmarks/test_bench_*.py``.

One record format for every ``BENCH_*.json`` artifact (see
:mod:`repro.benchtrend` for the full schema and the trajectory built on
top of it)::

    from _schema import bench_record, write_bench

    write_bench(
        OUTPUT, "campaign",
        [bench_record("tensor_vs_batch", 26.0, "ratio",
                      scenarios=64, slots=8, direction="higher")],
        workload="S-scenario crossover sweep",
    )

Benchmarks run with ``PYTHONPATH=src``, so this is a thin re-export; it
exists (rather than importing ``repro.benchtrend`` everywhere) so the
bench suite has a single documented seam and the normalizer/trajectory
internals stay out of benchmark code.
"""

from repro.benchtrend import (
    BENCH_SCHEMA,
    bench_payload,
    bench_record,
    validate_bench,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "bench_payload",
    "bench_record",
    "validate_bench",
    "write_bench",
]
