"""PIFO rank evaluators vs the handwritten discipline hot paths.

The programmable layer must not cost an order of magnitude over the
disciplines it re-expresses.  Three rates are compared, all in
per-packet terms:

* the handwritten SFQ enqueue/dequeue loop (the hot path the paper's
  software comparison measures),
* the interpreted software PIFO (``pifo:sfq`` through the registry),
* the compiled vectorized ``(N,)`` and tensorized ``(S, N)`` rank
  evaluators (amortized per rank).

The acceptance bar: the vectorized and tensorized evaluators must land
within 2x of the handwritten per-packet tag computation (in practice
they are far faster — one array expression ranks a whole slot vector).
Machine-readable results land in ``BENCH_PIFO.json`` at the repo root
(``benchmarks/_schema.py`` record format).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from _schema import bench_record, write_bench
from repro.disciplines.base import Packet, SwStream
from repro.disciplines.fair_queuing import SFQ
from repro.disciplines.pifo import PifoDiscipline, rank_function

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PIFO.json"

_PACKETS = 4_000
_EVAL_ROUNDS = 2_000
_N = 64
_S = 64
_WARMUP = 200


def _discipline_rate(discipline) -> float:
    """Packets/second through one enqueue+dequeue round trip."""
    for sid in range(8):
        discipline.add_stream(SwStream(stream_id=sid, weight=(sid % 4) + 1))

    def run(n: int, base: int) -> None:
        for i in range(n):
            sid = i % 8
            discipline.enqueue(
                Packet(stream_id=sid, seq=base + i, arrival=base + i)
            )
            discipline.dequeue(base + i)

    run(_WARMUP, 0)
    start = time.perf_counter()
    run(_PACKETS, _WARMUP)
    return _PACKETS / (time.perf_counter() - start)


def _env(shape) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    env = {
        name: rng.integers(1, 1 << 16, size=shape, dtype=np.int64)
        for name in ("deadline", "arrival", "finish", "vtime", "credits")
    }
    env["length"] = np.full(shape, 1500, dtype=np.int64)
    env["weight"] = rng.integers(1, 13, size=shape, dtype=np.int64)
    env["priority"] = rng.integers(0, 4, size=shape, dtype=np.int64)
    env["sid"] = np.broadcast_to(
        np.arange(shape[-1], dtype=np.int64), shape
    ).copy()
    return env


def _evaluator_rate(evaluate, shape) -> float:
    """Ranks/second of one compiled evaluator over fixed-shape inputs."""
    env = _env(shape)
    ranks_per_call = int(np.prod(shape))
    for _ in range(20):
        evaluate(env)
    start = time.perf_counter()
    for _ in range(_EVAL_ROUNDS):
        evaluate(env)
    return _EVAL_ROUNDS * ranks_per_call / (time.perf_counter() - start)


def test_rank_evaluators_within_2x_of_handwritten(report):
    fn = rank_function("sfq")
    handwritten = _discipline_rate(SFQ())
    interpreted = _discipline_rate(PifoDiscipline(fn))
    batch_eval = _evaluator_rate(fn.compile_batch(), (_N,))
    tensor_eval = _evaluator_rate(fn.compile_tensor(), (_S, _N))
    write_bench(
        OUTPUT,
        "pifo",
        [
            bench_record(
                "handwritten_sfq", handwritten, "pkt/s", direction="higher"
            ),
            bench_record(
                "interpreted_pifo", interpreted, "pkt/s", direction="higher"
            ),
            bench_record(
                "vectorized_eval", batch_eval, "rank/s",
                direction="higher", slots=_N,
            ),
            bench_record(
                "tensorized_eval", tensor_eval, "rank/s",
                direction="higher", scenarios=_S, slots=_N,
            ),
            bench_record(
                "vectorized_vs_handwritten", batch_eval / handwritten,
                "ratio", direction="higher", bound=0.5,
            ),
            bench_record(
                "tensorized_vs_handwritten", tensor_eval / handwritten,
                "ratio", direction="higher", bound=0.5,
            ),
        ],
        workload="pifo:sfq rank evaluation, 8-stream round trips, "
        f"{_EVAL_ROUNDS} evaluator rounds",
    )
    report(
        "PIFO rank evaluation vs handwritten SFQ (per packet/rank)",
        "\n".join(
            [
                f"handwritten SFQ     {handwritten:>12,.0f} pkt/s",
                f"interpreted pifo    {interpreted:>12,.0f} pkt/s "
                f"({interpreted / handwritten:.2f}x)",
                f"vectorized (N={_N}) {batch_eval:>12,.0f} rank/s "
                f"({batch_eval / handwritten:.2f}x)",
                f"tensorized ({_S}x{_N}) {tensor_eval:>12,.0f} rank/s "
                f"({tensor_eval / handwritten:.2f}x)",
            ]
        ),
    )
    # Acceptance bar: compiled evaluators within 2x of the handwritten
    # hot path; amortized over a slot vector they should beat it.
    assert batch_eval >= handwritten / 2, (
        f"vectorized evaluator {batch_eval:,.0f} rank/s vs "
        f"handwritten {handwritten:,.0f} pkt/s"
    )
    assert tensor_eval >= handwritten / 2, (
        f"tensorized evaluator {tensor_eval:,.0f} rank/s vs "
        f"handwritten {handwritten:,.0f} pkt/s"
    )
    # The interpreted software PIFO adds one dict + closure chain per
    # packet over the handwritten arithmetic; a generous floor keeps
    # pathological regressions (e.g. per-packet recompilation) visible.
    assert interpreted >= handwritten / 10, (
        f"interpreted PIFO {interpreted:,.0f} pkt/s collapsed vs "
        f"handwritten {handwritten:,.0f} pkt/s"
    )


def test_frontend_throughput_reported(report):
    """End-to-end services/second of the three PIFO frontends."""
    from repro.disciplines.pifo import generate_pifo_scenario, run_pifo

    scenario = generate_pifo_scenario(1, n_cycles=150)
    rows = []
    for engine in ("reference", "batch", "tensor"):
        run_pifo("sfq", scenario, engine=engine)  # warm caches
        start = time.perf_counter()
        summary = run_pifo("sfq", scenario, engine=engine)
        elapsed = time.perf_counter() - start
        rows.append(
            f"{engine:>9}: "
            f"{len(summary['services']) / elapsed:>10,.0f} services/s"
        )
    report("PIFO frontend throughput (pifo:sfq, 8 slots)", "\n".join(rows))
