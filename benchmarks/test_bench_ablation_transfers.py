"""Ablation: PCI transfer policy and SRAM bank-ownership cost.

Section 5.2 blames the Celoxica card's SRAM bank-ownership switching
for the PCI bottleneck and anticipates peer-peer transfers would help.
This ablation sweeps (a) the PIO/DMA batch-size crossover and (b) the
endsystem throughput as a function of the per-frame transfer cost.
"""

from repro.experiments.ablations import pio_dma_crossover, transfer_cost_sweep
from repro.metrics.report import render_table


def test_ablation_pio_dma_crossover(benchmark, report):
    rows = benchmark.pedantic(pio_dma_crossover, rounds=3, iterations=1)
    body = render_table(
        ["words", "PIO us", "DMA us", "best"],
        [[w, f"{p:.2f}", f"{d:.2f}", best] for w, p, d, best in rows],
    )
    body += "\nthe push/pull split of Section 4.2: push small, pull bulk"
    report("Ablation: PIO vs DMA transfer crossover", body)
    assert rows[0][3] == "pio" and rows[-1][3] == "dma"


def test_ablation_transfer_cost_sweep(benchmark, report):
    rows = benchmark.pedantic(transfer_cost_sweep, rounds=1, iterations=1)
    body = render_table(
        ["per-frame PIO cost us", "endsystem pps"],
        [[f"{c:.2f}", f"{pps:,.0f}"] for c, pps in rows],
    )
    body += (
        "\nanchors: 0.00 us -> 469,483 pps (no-PCI figure); 1.21 us -> "
        "299,065 pps (the paper's PIO figure)"
    )
    report("Ablation: endsystem throughput vs PCI per-frame cost", body)
    pps = [pps for _, pps in rows]
    assert pps == sorted(pps, reverse=True)
