"""Table 3 robustness: the headline results are model-choice invariant.

DESIGN.md claims Table 3 is insensitive to the interpretation points
(sorting schedule, compute-ahead) because max-first needs only the
certified max and min-first only the certified min.  These tests prove
it at reduced scale.
"""

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.scheduler import ShareStreamsScheduler

SCALE = 400


def run_block_variant(*, schedule="paper", compute_ahead=False, block_mode=BlockMode.MAX_FIRST):
    arch = ArchConfig(
        n_slots=4,
        routing=Routing.BA,
        block_mode=block_mode,
        schedule=schedule,
        compute_ahead=compute_ahead,
        wrap=False,
    )
    s = ShareStreamsScheduler(
        arch,
        [StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF) for i in range(4)],
    )
    wins = [0] * 4
    serviced_order = []
    for c in range(SCALE):
        for sid in range(4):
            s.enqueue(sid, deadline=(sid + 1) + c, arrival=c)
        out = s.decision_cycle(c, consume="block", count_misses=False)
        wins[out.circulated_sid] += 1
        serviced_order.append(tuple(sid for sid, _ in out.serviced))
    misses = [s.slot(i).counters.missed_deadlines for i in range(4)]
    return wins, misses, serviced_order


class TestScheduleInvariance:
    def test_max_first_wins_identical_across_schedules(self):
        paper = run_block_variant(schedule="paper")
        bitonic = run_block_variant(schedule="bitonic")
        assert paper[0] == bitonic[0]  # circulated-winner counts

    def test_min_first_circulation_identical(self):
        paper = run_block_variant(
            schedule="paper", block_mode=BlockMode.MIN_FIRST
        )
        bitonic = run_block_variant(
            schedule="bitonic", block_mode=BlockMode.MIN_FIRST
        )
        assert paper[0] == bitonic[0]

    def test_bitonic_blocks_fully_sorted(self):
        _, _, orders = run_block_variant(schedule="bitonic")
        # With distinct staggered deadlines, a certified sort emits
        # exactly the per-cycle EDF order.
        for order in orders:
            assert len(order) == 4


class TestComputeAheadInvariance:
    def test_wins_and_misses_identical(self):
        base = run_block_variant(compute_ahead=False)
        ahead = run_block_variant(compute_ahead=True)
        assert base[0] == ahead[0]
        assert base[1] == ahead[1]

    def test_only_timing_differs(self):
        arch_base = ArchConfig(n_slots=4, routing=Routing.BA, wrap=False)
        arch_ahead = ArchConfig(
            n_slots=4, routing=Routing.BA, compute_ahead=True, wrap=False
        )
        assert arch_ahead.sort_passes == arch_base.sort_passes
        assert arch_ahead.update_cycles == arch_base.update_cycles - 1


class TestMaxFindingInvariance:
    def test_wr_results_schedule_independent(self):
        def run(schedule):
            arch = ArchConfig(
                n_slots=4, routing=Routing.WR, schedule=schedule, wrap=False
            )
            s = ShareStreamsScheduler(
                arch,
                [
                    StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
                    for i in range(4)
                ],
            )
            winners = []
            for t in range(SCALE):
                for sid in range(4):
                    s.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
                winners.append(
                    s.decision_cycle(t, consume="winner").circulated_sid
                )
            return winners

        assert run("paper") == run("bitonic")
