"""Engine switch parity: experiment drivers give bit-identical results.

Every experiment driver that accepts ``engine="batch"`` must reproduce
the reference engine's outputs exactly — not approximately — at
reduced scale (the full-scale runs only differ in the workload-size
parameter, which both engines receive identically).
"""

import numpy as np

from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.isolation import run_isolation
from repro.experiments.table3 import run_table3

SCALE = 400  # frames per stream for the paired runs


class TestTable3Parity:
    def test_all_three_configurations_bit_identical(self):
        reference = run_table3(SCALE)
        batch = run_table3(SCALE, engine="batch")
        assert reference == batch


class TestEndsystemParity:
    def test_figure8_bit_identical(self):
        reference = run_figure8(SCALE)
        batch = run_figure8(SCALE, engine="batch")
        assert reference.run.elapsed_us == batch.run.elapsed_us
        assert reference.run.frames_sent == batch.run.frames_sent
        assert reference.run.bytes_sent == batch.run.bytes_sent
        assert reference.steady_mbps == batch.steady_mbps
        for sid in reference.series:
            np.testing.assert_array_equal(
                reference.series[sid].mbps, batch.series[sid].mbps
            )

    def test_figure9_bit_identical(self):
        reference = run_figure9(n_bursts=2, burst_size=300)
        batch = run_figure9(n_bursts=2, burst_size=300, engine="batch")
        assert reference.run.elapsed_us == batch.run.elapsed_us
        assert reference.run.frames_sent == batch.run.frames_sent
        assert reference.mean_delays_us() == batch.mean_delays_us()
        for sid in reference.series:
            np.testing.assert_array_equal(
                reference.series[sid].delays_us, batch.series[sid].delays_us
            )

    def test_figure10_bit_identical(self):
        reference = run_figure10(SCALE, streamlets_per_slot=10)
        batch = run_figure10(SCALE, streamlets_per_slot=10, engine="batch")
        assert reference.run.elapsed_us == batch.run.elapsed_us
        assert reference.run.frames_sent == batch.run.frames_sent
        assert reference.streamlet_mbps() == batch.streamlet_mbps()


class TestIsolationParity:
    def test_sharestreams_row_bit_identical(self):
        reference = run_isolation(horizon=1200)
        batch = run_isolation(horizon=1200, engine="batch")
        assert reference[0] == batch[0]  # the ShareStreams system row
        assert reference[1:] == batch[1:]  # peers untouched by the switch
