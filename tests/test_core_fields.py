"""Unit and property tests for wrap-aware serial arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fields import (
    DEADLINE_BITS,
    DEADLINE_FIELD,
    FieldSpec,
    serial_add,
    serial_cmp,
    serial_distance,
    serial_gt,
    serial_le,
    serial_lt,
    wrap,
)

u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
small_delta = st.integers(min_value=-(1 << 14), max_value=(1 << 14))


class TestFieldSpec:
    def test_modulus_and_mask(self):
        spec = FieldSpec("x", 8)
        assert spec.modulus == 256
        assert spec.mask == 255
        assert spec.half == 128

    def test_check_accepts_in_range(self):
        assert DEADLINE_FIELD.check(0) == 0
        assert DEADLINE_FIELD.check(65535) == 65535

    @pytest.mark.parametrize("value", [-1, 65536, 1 << 20])
    def test_check_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            DEADLINE_FIELD.check(value)


class TestWrap:
    def test_identity_in_range(self):
        assert wrap(1234) == 1234

    def test_wraps_past_modulus(self):
        assert wrap(65536) == 0
        assert wrap(65537) == 1

    def test_custom_width(self):
        assert wrap(256, bits=8) == 0


class TestSerialCmp:
    def test_equal(self):
        assert serial_cmp(5, 5) == 0

    def test_simple_ordering(self):
        assert serial_cmp(3, 7) == -1
        assert serial_cmp(7, 3) == 1

    def test_wraparound_ordering(self):
        # 65530 precedes 2 across the wrap boundary.
        assert serial_cmp(65530, 2) == -1
        assert serial_cmp(2, 65530) == 1

    def test_relational_helpers(self):
        assert serial_lt(1, 2)
        assert serial_le(2, 2)
        assert serial_gt(2, 1)
        assert not serial_lt(2, 2)

    @given(a=u16, delta=st.integers(min_value=1, max_value=(1 << 15) - 1))
    def test_advanced_value_always_follows(self, a, delta):
        b = serial_add(a, delta)
        assert serial_lt(a, b)
        assert serial_gt(b, a)

    @given(a=u16, b=u16)
    def test_antisymmetry(self, a, b):
        assert serial_cmp(a, b) == -serial_cmp(b, a)


class TestSerialAdd:
    def test_plain(self):
        assert serial_add(10, 5) == 15

    def test_wraps(self):
        assert serial_add(65535, 1) == 0

    @given(a=u16, d1=small_delta, d2=small_delta)
    def test_associative_with_distance(self, a, d1, d2):
        b = serial_add(serial_add(a, d1 % (1 << DEADLINE_BITS)), d2 % (1 << 16))
        assert 0 <= b < (1 << 16)


class TestSerialDistance:
    @given(a=u16, b=u16)
    def test_roundtrip(self, a, b):
        d = serial_distance(a, b)
        assert serial_add(b, d % (1 << 16)) == a

    @given(a=u16, b=u16)
    def test_range(self, a, b):
        d = serial_distance(a, b)
        assert -(1 << 15) <= d < (1 << 15)

    @given(a=u16, delta=st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_matches_cmp_sign(self, a, delta):
        b = serial_add(a, delta)
        d = serial_distance(b, a)
        assert d == delta
