"""Property tests on the DWCS window-counter state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disciplines.dwcs import WindowState

# (x, y) constraints with x <= y, plus an event script.
constraints = st.tuples(st.integers(0, 6), st.integers(1, 8)).map(
    lambda xy: (min(xy), max(xy))
)
events = st.lists(st.sampled_from(["win", "miss"]), max_size=300)


def run_script(x: int, y: int, script) -> WindowState:
    w = WindowState(x=x, y=y)
    for event in script:
        if event == "win":
            w.on_time_service()
        else:
            w.missed_deadline()
    return w


class TestCounterInvariants:
    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_numerator_never_exceeds_original(self, c, script):
        x, y = c
        w = run_script(x, y, script)
        assert 0 <= w.x_cur <= x

    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_denominator_bounds(self, c, script):
        x, y = c
        w = run_script(x, y, script)
        # y' never exceeds the 8-bit saturation nor drops below zero.
        assert 0 <= w.y_cur <= 255

    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_numerator_le_denominator_when_denominator_live(self, c, script):
        x, y = c
        w = run_script(x, y, script)
        if w.y_cur > 0:
            assert w.x_cur <= w.y_cur

    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_constraint_in_unit_interval(self, c, script):
        x, y = c
        w = run_script(x, y, script)
        assert 0.0 <= w.constraint <= 1.0

    @given(c=constraints)
    def test_reset_restores_original(self, c):
        x, y = c
        w = WindowState(x=x, y=y)
        w._reset()
        assert (w.x_cur, w.y_cur) == (x, y)

    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_miss_counter_matches_script(self, c, script):
        x, y = c
        w = run_script(x, y, script)
        assert w.misses == script.count("miss")

    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_violations_only_after_tolerance_exhausted(self, c, script):
        x, y = c
        w = run_script(x, y, script)
        if x >= len([e for e in script if e == "miss"]):
            # Never more misses than the original tolerance per window:
            # with resets this cannot be violated in a single window,
            # and with fewer total misses than x violations can't occur.
            assert w.violations == 0

    @given(c=constraints, script=events)
    @settings(max_examples=200)
    def test_winner_priority_monotonicity(self, c, script):
        """An on-time service never *lowers* the current constraint
        (the winner's priority never rises from being served)."""
        x, y = c
        w = run_script(x, y, script)
        before = w.constraint
        zero_before = w.zero
        w.on_time_service()
        if not zero_before:
            assert w.constraint >= min(before, x / y) - 1e-12
