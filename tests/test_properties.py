"""Cross-cutting property and invariant tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.scheduler import ShareStreamsScheduler


def build(n_slots=4, routing=Routing.BA, mode=SchedulingMode.EDF, **kw):
    arch = ArchConfig(n_slots=n_slots, routing=routing, wrap=False, **kw)
    return ShareStreamsScheduler(
        arch,
        [StreamConfig(sid=i, period=1, mode=mode) for i in range(n_slots)],
    )


workload = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 100)),
    min_size=1,
    max_size=60,
)


class TestConservation:
    @given(items=workload, cycles=st.integers(0, 80))
    @settings(max_examples=40, deadline=None)
    def test_packets_conserved_winner_mode(self, items, cycles):
        """enqueued == serviced + latched + pending, always."""
        s = build(routing=Routing.WR)
        cursor = {i: 0 for i in range(4)}
        for sid, inc in items:
            cursor[sid] += inc
            s.enqueue(sid, deadline=cursor[sid], arrival=0)
        enqueued = len(items)
        serviced = 0
        for t in range(cycles):
            out = s.decision_cycle(t, consume="winner", count_misses=False)
            serviced += len(out.serviced)
        remaining = sum(
            slot.backlog + (1 if slot.head is not None else 0)
            for slot in s.active_slots
        )
        assert serviced + remaining == enqueued

    @given(items=workload)
    @settings(max_examples=40, deadline=None)
    def test_block_consume_services_whole_block(self, items):
        s = build(routing=Routing.BA)
        cursor = {i: 0 for i in range(4)}
        for sid, inc in items:
            cursor[sid] += inc
            s.enqueue(sid, deadline=cursor[sid], arrival=0)
        out = s.decision_cycle(0, consume="block", count_misses=False)
        assert sorted(sid for sid, _ in out.serviced) == sorted(out.block)


class TestRoutingInvariance:
    @given(items=workload)
    @settings(max_examples=40, deadline=None)
    def test_wr_and_ba_pick_same_winner(self, items):
        """Winner-only routing changes the interconnect, not the max."""
        winners = {}
        for routing in (Routing.WR, Routing.BA):
            s = build(routing=routing)
            cursor = {i: 0 for i in range(4)}
            for sid, inc in items:
                cursor[sid] += inc
                s.enqueue(sid, deadline=cursor[sid], arrival=0)
            winners[routing] = s.decision_cycle(
                0, consume="none", count_misses=False
            ).winner_sid
        assert winners[Routing.WR] == winners[Routing.BA]

    @given(items=workload)
    @settings(max_examples=40, deadline=None)
    def test_schedule_choice_preserves_winner(self, items):
        """Paper vs bitonic recirculation: identical winner."""
        winners = {}
        for schedule in ("paper", "bitonic"):
            s = build(schedule=schedule)
            cursor = {i: 0 for i in range(4)}
            for sid, inc in items:
                cursor[sid] += inc
                s.enqueue(sid, deadline=cursor[sid], arrival=0)
            winners[schedule] = s.decision_cycle(
                0, consume="none", count_misses=False
            ).winner_sid
        assert winners["paper"] == winners["bitonic"]


class TestFeasibilityInvariant:
    def test_feasible_edf_workload_has_no_misses(self):
        """Total utilization <= 1 with EDF: every deadline met."""
        # Four streams, each one frame per 4 cycles: load exactly 1.
        s = build(routing=Routing.WR)
        for sid in range(4):
            for k in range(100):
                # Stream sid's k-th frame due at (k+1)*4 staggered by sid.
                s.enqueue(sid, deadline=sid + (k + 1) * 4, arrival=4 * k)
        total_misses = 0
        for t in range(400):
            out = s.decision_cycle(t, consume="winner", count_misses=True)
            total_misses += len(out.misses)
        assert total_misses == 0

    def test_overload_always_misses(self):
        """Load 4x capacity: misses are unavoidable and counted."""
        s = build(routing=Routing.WR)
        for t in range(100):
            for sid in range(4):
                s.enqueue(sid, deadline=sid + 1 + t, arrival=t)
        misses = 0
        for t in range(100):
            misses += len(s.decision_cycle(t, consume="winner").misses)
        assert misses > 100


class TestGoldenTrace:
    def test_pinned_winner_sequence(self):
        """Regression pin: a fixed workload's exact decision trace."""
        s = build(routing=Routing.WR)
        deadlines = {0: [5, 9, 12], 1: [3, 4], 2: [7], 3: [1, 2, 20]}
        for sid, ds in deadlines.items():
            for k, d in enumerate(ds):
                s.enqueue(sid, deadline=d, arrival=k)
        trace = []
        for t in range(9):
            out = s.decision_cycle(t, consume="winner", count_misses=False)
            trace.append(out.circulated_sid)
        # Note the EDF winner bias: after stream 3 wins at t=0 its next
        # head (deadline 2) is biased to 3, so stream 1 (deadline 3,
        # earlier arrival) takes t=1.
        assert trace == [3, 1, 3, 0, 1, 2, 0, 0, 3]
