"""Unit coverage for the array-API dispatch layer.

Exercises :mod:`repro.core.backend` directly — registry resolution,
lazy-failure reporting, the generic namespace wrapper's emulation
paths — plus the ``engine_backend=`` guards on the engine factories.
The cross-backend byte-identity contract lives in
``tests/test_backend_equivalence.py``; this file covers the plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend import (
    BACKENDS,
    ArrayApiBackend,
    BackendUnavailable,
    NumpyBackend,
    available_backends,
    resolve_backend,
)
from repro.core.batch_engine import make_scheduler
from repro.core.config import ArchConfig
from repro.core.differential import campaign


class _NoTakeAlongAxis:
    """NumPy proxy hiding ``take_along_axis``: the pre-2024.12 shape."""

    def __getattr__(self, name):
        if name == "take_along_axis":
            raise AttributeError(name)
        return getattr(np, name)


class TestRegistry:
    def test_numpy_resolves_and_caches(self):
        bk = resolve_backend("numpy")
        assert isinstance(bk, NumpyBackend)
        assert bk.name == "numpy"
        assert resolve_backend("numpy") is bk

    def test_default_is_numpy(self):
        assert resolve_backend().name == "numpy"

    def test_instance_passes_through(self):
        bk = ArrayApiBackend(np, name="custom")
        assert resolve_backend(bk) is bk

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_backend("tensorflow")

    def test_availability_report_covers_every_backend(self):
        report = available_backends()
        assert set(report) == set(BACKENDS)
        assert report["numpy"] is None

    @pytest.mark.parametrize("name", ["torch", "cupy", "array_api_strict"])
    def test_optional_backends_resolve_or_name_the_fix(self, name):
        """Each optional backend either works or fails actionably."""
        reason = available_backends()[name]
        if reason is None:
            assert resolve_backend(name).name == name
        else:
            assert "backend" in reason
            with pytest.raises((BackendUnavailable, Exception)):
                resolve_backend(name)

    def test_missing_library_hint_names_install_step(self):
        reason = available_backends()["torch"]
        if reason is None:
            pytest.skip("torch installed on this host")
        assert "pip install" in reason


class TestGenericWrapper:
    """The base-class primitives, wrapped around NumPy's namespace."""

    @pytest.fixture()
    def bk(self):
        return ArrayApiBackend(np, name="generic")

    def test_argsort_stable_preserves_tie_order(self, bk):
        keys = bk.asarray([[1, 0, 1, 0, 1, 0]], dtype=bk.int64)
        order = bk.to_numpy(bk.argsort_stable(keys))
        assert order.tolist() == [[1, 3, 5, 0, 2, 4]]

    def test_take_along_last_matches_numpy(self, bk):
        rng = np.random.default_rng(7)
        arr = rng.integers(0, 100, size=(3, 8))
        idx = rng.integers(0, 8, size=(3, 8))
        got = bk.to_numpy(
            bk.take_along_last(bk.from_numpy(arr), bk.from_numpy(idx))
        )
        np.testing.assert_array_equal(got, np.take_along_axis(arr, idx, -1))

    def test_take_along_last_emulation_path(self):
        """Without ``take_along_axis`` the flat-gather fallback engages."""
        bk = ArrayApiBackend(_NoTakeAlongAxis(), name="no-taa")
        rng = np.random.default_rng(11)
        arr = rng.integers(0, 100, size=(4, 6))
        idx = rng.integers(0, 6, size=(4, 6))
        got = bk.to_numpy(bk.take_along_last(arr, idx))
        np.testing.assert_array_equal(got, np.take_along_axis(arr, idx, -1))

    def test_interleave_pairs_is_perfect_shuffle_writeback(self, bk):
        lo = bk.asarray([[0, 2, 4]], dtype=bk.int64)
        hi = bk.asarray([[1, 3, 5]], dtype=bk.int64)
        assert bk.to_numpy(bk.interleave_pairs(lo, hi)).tolist() == [
            [0, 1, 2, 3, 4, 5]
        ]

    def test_where_and_minimum_tolerate_python_scalars(self, bk):
        arr = bk.asarray([1, 5, 9], dtype=bk.int64)
        cond = bk.asarray([True, False, True], dtype=bk.bool_)
        assert bk.to_numpy(bk.where(cond, 0, arr)).tolist() == [0, 5, 0]
        assert bk.to_numpy(bk.where(cond, arr, 7)).tolist() == [1, 7, 9]
        assert bk.to_numpy(bk.minimum(arr, 5)).tolist() == [1, 5, 5]

    def test_host_reductions(self, bk):
        arr = bk.asarray([[4, 2, 9]], dtype=bk.int64)
        assert bk.min_int(arr) == 2
        assert bk.any(arr > 8) is True
        assert bk.any(arr > 9) is False
        assert bk.to_numpy(bk.argmax_last(arr)).tolist() == [2]
        assert bk.to_numpy(bk.flip_last(arr)).tolist() == [[9, 2, 4]]


class TestEngineGuards:
    """Non-tensor engines reject alternate backends loudly."""

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_make_scheduler_rejects_non_numpy(self, engine):
        with pytest.raises(ValueError, match="NumPy-only"):
            make_scheduler(
                ArchConfig(n_slots=4), engine=engine, engine_backend="torch"
            )

    def test_make_scheduler_tensor_accepts_instance(self):
        sched = make_scheduler(
            ArchConfig(n_slots=4),
            engine="tensor",
            engine_backend=ArrayApiBackend(np, name="generic"),
        )
        assert sched.engine_backend == "generic"

    def test_campaign_rejects_non_tensor_backend(self):
        with pytest.raises(ValueError, match="requires engine='tensor'"):
            campaign(range(2), n_cycles=10, engine="batch",
                     engine_backend="torch")
