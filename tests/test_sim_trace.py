"""Tests for the structured trace log (and its deprecated shim)."""

import importlib
import os
import subprocess
import sys

import pytest

from repro.observability.tracelog import TraceLog


class TestDeprecatedShim:
    """``repro.sim.trace`` is a pure re-export since the observability
    layer absorbed it; importing it must warn, importing ``repro.sim``
    must not (it routes through the canonical home)."""

    def test_import_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.sim.trace is deprecated"):
            import repro.sim.trace as shim

            importlib.reload(shim)

    def test_shim_still_reexports_canonical_classes(self):
        from repro.observability.tracelog import TraceEvent

        import repro.sim.trace as shim

        assert shim.TraceLog is TraceLog
        assert shim.TraceEvent is TraceEvent

    def test_package_import_stays_warning_free(self):
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.sim; repro.sim.TraceLog",
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr


class TestEmit:
    def test_records_events(self):
        log = TraceLog()
        log.emit(1.0, "decide", "winner", sid=3)
        log.emit(2.0, "tx", "frame out")
        assert len(log) == 2
        assert log.events("decide")[0].get("sid") == 3
        assert log.events("decide")[0].message == "winner"

    def test_get_missing_datum(self):
        log = TraceLog()
        log.emit(0.0, "x", "m")
        assert log.events()[0].get("nope", 42) == 42

    def test_category_filtering_at_source(self):
        log = TraceLog(enabled_categories={"decide"})
        log.emit(0.0, "decide", "kept")
        log.emit(0.0, "tx", "filtered")
        assert len(log) == 1
        assert log.recorded == 1

    def test_bounded_eviction(self):
        log = TraceLog(capacity=4)
        for k in range(10):
            log.emit(float(k), "c", f"e{k}")
        assert len(log) == 4
        assert log.dropped == 6
        assert log.events()[0].time == 6.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)


class TestQueries:
    def _log(self):
        log = TraceLog()
        for k in range(10):
            log.emit(float(k), "a" if k % 2 else "b", f"e{k}")
        return log

    def test_categories(self):
        assert self._log().categories() == {"a": 5, "b": 5}

    def test_between(self):
        events = self._log().between(3.0, 6.0)
        assert [e.time for e in events] == [3.0, 4.0, 5.0]

    def test_render_contains_events(self):
        out = self._log().render(limit=3)
        assert "e9" in out and "e7" in out and "e0" not in out

    def test_render_notes_eviction(self):
        log = TraceLog(capacity=2)
        for k in range(5):
            log.emit(float(k), "c", "m")
        assert "evicted" in log.render()

    def test_clear(self):
        log = self._log()
        log.clear()
        assert len(log) == 0
        assert log.recorded == 0


class TestClearResetsRetainedCounters:
    """``clear()`` must reset *every* retained counter in one swap —
    a partially-cleared log double-counts when reused across runs."""

    def test_clear_resets_category_counts(self):
        log = TraceLog()
        log.emit(0.0, "decide", "m")
        log.emit(1.0, "miss", "m")
        log.clear()
        assert log.categories() == {}
        log.emit(2.0, "decide", "m")
        assert log.categories() == {"decide": 1}

    def test_clear_resets_eviction_count(self):
        log = TraceLog(capacity=2)
        for k in range(5):
            log.emit(float(k), "c", "m")
        assert log.dropped == 3
        log.clear()
        assert log.dropped == 0
        assert "evicted" not in log.render()

    def test_category_counts_track_eviction(self):
        log = TraceLog(capacity=2)
        log.emit(0.0, "a", "m")
        log.emit(1.0, "b", "m")
        log.emit(2.0, "b", "m")  # evicts the only "a" event
        assert log.categories() == {"b": 2}

    def test_no_leakage_across_simulator_reuse(self):
        """One TraceLog reused across two Simulator-driven runs must
        count only the second run after ``clear()`` (the regression:
        retained counters surviving the reset and double-counting)."""
        from repro.sim.engine import Simulator

        log = TraceLog()

        def run_once() -> None:
            sim = Simulator()
            for k in range(5):
                sim.schedule(
                    float(k),
                    lambda: log.emit(sim.now, "tick", "event", run=id(sim)),
                )
            sim.run()

        run_once()
        assert log.recorded == 5
        log.clear()
        run_once()
        assert log.recorded == 5
        assert log.categories() == {"tick": 5}
        assert len(log) == 5


class TestSchedulerIntegration:
    def test_decision_events_recorded(self):
        from repro.core.attributes import SchedulingMode, StreamConfig
        from repro.core.config import ArchConfig, Routing
        from repro.core.scheduler import ShareStreamsScheduler

        log = TraceLog()
        arch = ArchConfig(n_slots=2, routing=Routing.WR, wrap=False)
        s = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
                for i in range(2)
            ],
            trace=log,
        )
        s.enqueue(0, deadline=5, arrival=0)
        s.enqueue(1, deadline=1, arrival=0)
        s.decision_cycle(0)
        s.enqueue(1, deadline=2, arrival=1)
        # Late heads at t=7: miss events (no drops yet).
        s.decision_cycle(7)
        # Then shed them at t=10: drop events.
        s.enqueue(0, deadline=8, arrival=8)
        s.decision_cycle(10, drop_late=True)

        decides = log.events("decide")
        assert len(decides) == 3
        assert decides[0].get("winner") == 1
        assert len(log.events("miss")) >= 1
        assert len(log.events("drop")) >= 1
        assert "decide" in log.render()
