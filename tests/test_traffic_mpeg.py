"""Tests for the MPEG-like workload generator."""

import numpy as np
import pytest

from repro.traffic.mpeg import GoPPattern, mpeg_frame_sizes, mpeg_stream


class TestGoPPattern:
    def test_defaults(self):
        p = GoPPattern()
        assert p.structure.startswith("I")
        assert p.nominal("I") > p.nominal("P") > p.nominal("B")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"structure": ""},
            {"structure": "IXP"},
            {"i_bytes": 0},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GoPPattern(**kwargs)


class TestFrameSizes:
    def test_deterministic_with_seed(self):
        a = mpeg_frame_sizes(100, rng=1)
        b = mpeg_frame_sizes(100, rng=1)
        assert np.array_equal(a, b)

    def test_gop_structure_visible(self):
        p = GoPPattern(jitter=0.0)
        sizes = mpeg_frame_sizes(24, p)
        assert sizes[0] == p.i_bytes
        assert sizes[12] == p.i_bytes  # next GoP
        assert sizes[1] == p.b_bytes
        assert sizes[3] == p.p_bytes

    def test_jitter_bounded(self):
        p = GoPPattern(jitter=0.15)
        sizes = mpeg_frame_sizes(1200, p, rng=3)
        i_frames = sizes[::12]
        assert np.all(i_frames >= p.i_bytes * 0.85 - 1)
        assert np.all(i_frames <= p.i_bytes * 1.15 + 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            mpeg_frame_sizes(-1)


class TestStream:
    def test_cadence(self):
        arrivals, sizes = mpeg_stream(30, fps=30.0, rng=0)
        assert len(arrivals) == len(sizes) == 30
        assert np.allclose(np.diff(arrivals), 1e6 / 30.0)

    def test_bitrate_plausible(self):
        # Default GoP at 30fps lands in the single-digit Mbit/s range
        # of standard-definition MPEG-2.
        arrivals, sizes = mpeg_stream(300, fps=30.0, rng=0)
        seconds = (arrivals[-1] - arrivals[0]) / 1e6
        mbps = sizes[:-1].sum() * 8 / seconds / 1e6
        assert 2.0 < mbps < 20.0

    def test_fps_validation(self):
        with pytest.raises(ValueError):
            mpeg_stream(10, fps=0.0)

    def test_scheduling_rate_framework_point(self):
        # Figure 1's point: media frames need a tiny scheduling rate.
        from repro.framework import required_rate_dps

        # ~20 KB mean frame at 30 fps on a 100 Mb/s link.
        rate = required_rate_dps(8, 20_000, 1e8)
        assert rate < 1_000  # hundreds of decisions/s, not millions
