"""Tests for the violation flight recorder (ring, dumps, byte-identity)."""

import json

import pytest

from repro.observability import (
    ConformanceMonitor,
    FlightRecorder,
    StreamSlo,
    deserialize_events,
)
from tests.test_observability_rollup import FakeOutcome


class FakeViolation:
    def __init__(self, window_index=0, sid=0):
        self.window_index = window_index
        self.sid = sid
        self.objective = "test"

    def to_dict(self):
        return {"window_index": self.window_index, "sid": self.sid}


class TestRing:
    def test_keeps_last_k_cycles(self):
        fr = FlightRecorder(capacity=4)
        for t in range(10):
            fr.on_decision(FakeOutcome(t, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation())
        fr.finalize()
        [dump] = fr.dumps
        assert dump.cycles == 4
        assert [e.now for e in dump.events] == [6, 7, 8, 9]

    def test_seq_is_globally_monotone(self):
        fr = FlightRecorder(capacity=2)
        for t in range(5):
            fr.on_decision(FakeOutcome(t, winner=0, serviced=(0,), misses=(1,)))
        fr.on_violation(FakeViolation())
        fr.finalize()
        [dump] = fr.dumps
        # 2 events per cycle (decide + miss); ring holds cycles 3 and 4.
        assert [e.seq for e in dump.events] == [6, 7, 8, 9]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDebounce:
    def test_same_window_violations_share_one_dump(self):
        fr = FlightRecorder(capacity=8)
        fr.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation(window_index=0, sid=0))
        fr.on_violation(FakeViolation(window_index=0, sid=1))
        fr.finalize()
        assert fr.dumps_written == 1
        assert len(fr.dumps[0].violations) == 2

    def test_new_window_violation_freezes_previous(self):
        fr = FlightRecorder(capacity=8)
        fr.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation(window_index=0))
        fr.on_decision(FakeOutcome(1, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation(window_index=1))
        fr.finalize()
        assert fr.dumps_written == 2
        assert fr.dumps[0].trigger_window == 0
        assert fr.dumps[1].trigger_window == 1

    def test_post_breach_cycles_excluded(self):
        """The cycle after a violation flushes the dump first, so the
        frozen ring never contains post-breach cycles."""
        fr = FlightRecorder(capacity=8)
        fr.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation(window_index=0))
        fr.on_decision(FakeOutcome(1, winner=0, serviced=(0,)))
        assert fr.dumps_written == 1
        assert [e.now for e in fr.dumps[0].events] == [0]

    def test_finalize_without_pending_is_noop(self):
        fr = FlightRecorder(capacity=4)
        fr.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        fr.finalize()
        assert fr.dumps_written == 0


class TestDiskDumps:
    def test_writes_jsonl_and_sidecar(self, tmp_path):
        fr = FlightRecorder(capacity=4, dump_dir=tmp_path / "dumps")
        for t in range(3):
            fr.on_decision(FakeOutcome(t, winner=1, serviced=(1,)))
        fr.on_violation(FakeViolation(window_index=0, sid=1))
        fr.finalize()
        jsonl = tmp_path / "dumps" / "flight-0.jsonl"
        meta = tmp_path / "dumps" / "flight-0.meta.json"
        assert jsonl.exists() and meta.exists()
        events = deserialize_events(jsonl.read_bytes())
        assert len(events) == 3
        assert jsonl.read_bytes() == fr.dumps[0].serialize()
        payload = json.loads(meta.read_text())
        assert payload["trigger_window"] == 0
        assert payload["violations"] == [{"window_index": 0, "sid": 1}]

    def test_describe_mentions_span(self):
        fr = FlightRecorder(capacity=4)
        fr.on_decision(FakeOutcome(5, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation())
        fr.finalize()
        assert "t=[5..5]" in fr.dumps[0].describe()

    def test_clear(self):
        fr = FlightRecorder(capacity=4)
        fr.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation())
        fr.clear()
        assert fr.dumps_written == 0 and fr.cycles_recorded == 0
        fr.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        fr.on_violation(FakeViolation())
        fr.finalize()
        assert fr.dumps[0].events[0].seq == 0  # seq restarted


class TestByteIdentityAcrossEngines:
    """Acceptance criteria: flight-recorder dumps replay byte-identically
    through both engines — identical outcomes + global monotone seq
    numbering make the canonical JSONL equal byte for byte."""

    def _run(self, scenario, engine):
        from repro.core.differential import run_engine

        monitor = ConformanceMonitor(
            # max_share below any realizable share on every scenario
            # stream: every busy window violates, so dumps are produced
            # throughout the run.
            [
                StreamSlo(sid=s.sid, min_share=0.0, max_share=0.001)
                for s in scenario.streams
            ],
            window_cycles=32,
            flight_capacity=16,
        )
        run_engine(scenario, engine, observer=monitor)
        monitor.finalize()
        return monitor

    @pytest.mark.parametrize("seed", [1, 13, 29])
    def test_dumps_byte_identical(self, seed):
        from repro.core.differential import generate_scenario

        scenario = generate_scenario(seed)
        ref = self._run(scenario, "reference")
        bat = self._run(scenario, "batch")
        assert ref.dumps, f"seed {seed}: scenario produced no dumps"
        assert len(ref.dumps) == len(bat.dumps)
        for a, b in zip(ref.dumps, bat.dumps):
            assert a.serialize() == b.serialize()
            assert a.trigger_window == b.trigger_window

    def test_dump_round_trips_through_serialization(self):
        from repro.core.differential import generate_scenario

        scenario = generate_scenario(5)
        monitor = self._run(scenario, "reference")
        dump = monitor.dumps[0]
        events = deserialize_events(dump.serialize())
        assert tuple(events) == dump.events


class TestMonitorComposition:
    def test_violating_cycle_is_inside_the_dump(self):
        """ConformanceMonitor records the cycle before the rollup closes
        the window, so the decision that trips the SLO is in the dump."""
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0)],
            window_cycles=4,
            flight_capacity=4,
        )
        for t in range(4):
            monitor.on_decision(
                FakeOutcome(t, winner=0, serviced=(0,), misses=(0,) if t == 3 else ())
            )
        monitor.finalize()
        [dump] = monitor.dumps
        assert any(e.kind == "miss" and e.now == 3 for e in dump.events)

    def test_disabled_flight_recorder(self):
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0)],
            window_cycles=2,
            flight_recorder=False,
        )
        for t in range(2):
            monitor.on_decision(FakeOutcome(t, winner=0, serviced=(0,), misses=(0,)))
        assert monitor.violations and monitor.dumps == []
