"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "figure8" in out and "comparison" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Window-constrained" in out
        assert "witnesses" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "all substantive rules fired: True" in capsys.readouterr().out

    def test_table3_reduced(self, capsys):
        assert main(["table3", "--frames", "200"]) == 0
        out = capsys.readouterr().out
        assert "Max-finding missed" in out
        assert "Total" in out

    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        assert "PRIORITY_UPDATE" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "clock MHz" in out
        assert "32:10%" in out

    def test_figure8_reduced(self, capsys):
        assert main(["figure8", "--frames", "1000"]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_figure10_reduced(self, capsys):
        assert main(["figure10", "--frames", "1000"]) == 0
        assert "slot4/set2" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "realizable" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_verilog(self, capsys):
        assert main(["verilog", "--slots", "8"]) == 0
        out = capsys.readouterr().out
        assert "module sharestreams_scheduler" in out
        assert "8 stream-slots" in out

    def test_isolation_reduced(self, capsys):
        assert main(["isolation", "--frames", "1200"]) == 0
        out = capsys.readouterr().out
        assert "ShareStreams" in out and "Teracross" in out

    def test_ablation_extensions(self, capsys):
        assert main(["ablation-extensions"]) == 0
        assert "compute-ahead" in capsys.readouterr().out

    def test_ablation_sort_reduced(self, capsys):
        assert main(["ablation-sort", "--frames", "20"]) == 0
        assert "bitonic" in capsys.readouterr().out


class TestCLITelemetry:
    def test_metrics_out_writes_valid_prometheus(self, capsys, tmp_path):
        from repro.observability import parse_prometheus_text

        out_path = tmp_path / "m.prom"
        assert main(
            ["figure8", "--frames", "400", "--metrics-out", str(out_path)]
        ) == 0
        assert f"metrics written to {out_path}" in capsys.readouterr().out
        snapshot = parse_prometheus_text(out_path.read_text())
        assert "sharestreams_decisions_total" in snapshot
        assert "endsystem_tx_frames_total" in snapshot

    def test_metrics_out_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "m.json"
        assert main(
            ["table3", "--frames", "50", "--metrics-out", str(out_path)]
        ) == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["sharestreams_decisions_total"]["type"] == "counter"

    def test_trace_prints_tail_and_profile(self, capsys):
        assert main(["isolation", "--frames", "400", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "decide" in out
        assert "sharestreams_decisions_total" in out

    def test_trace_on_batch_engine(self, capsys):
        assert main(
            ["figure8", "--frames", "400", "--engine", "batch", "--trace"]
        ) == 0
        assert "endsystem.decide" in capsys.readouterr().out

    def test_telemetry_rejected_for_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["table1", "--trace"])


class TestCLIMonitoring:
    def test_monitor_subcommand_draws_dashboard_and_report(self, capsys):
        assert main(["monitor", "--frames", "300", "--slo-window", "64"]) == 0
        out = capsys.readouterr().out
        assert "conformance monitor" in out
        assert "windows evaluated:" in out

    def test_slo_flag_prints_conformance_report(self, capsys):
        assert main(
            ["figure8", "--frames", "400", "--slo", "--slo-window", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows evaluated:" in out
        assert "objectives on 4 streams" in out
        # the figure table still renders alongside the report
        assert "ratio" in out

    def test_flight_recorder_writes_canonical_dumps(self, capsys, tmp_path):
        from repro.observability import deserialize_events

        dump_dir = tmp_path / "dumps"
        # table3 max-finding is the paper's own overload case: zero miss
        # budgets guarantee violations, hence flight dumps on disk.
        assert main(
            [
                "table3",
                "--frames",
                "200",
                "--flight-recorder",
                str(dump_dir),
                "--slo-window",
                "64",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "flight dumps:" in out
        jsonl = sorted(dump_dir.glob("flight-*.jsonl"))
        assert jsonl, "no flight dumps written"
        assert deserialize_events(jsonl[0].read_bytes())

    def test_serve_metrics_announces_endpoint(self, capsys):
        assert main(
            ["figure8", "--frames", "400", "--serve-metrics", "0"]
        ) == 0
        assert "serving telemetry at http://" in capsys.readouterr().out

    def test_slo_rejected_for_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["table2", "--slo"])

    def test_flight_recorder_rejected_for_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["figure7", "--flight-recorder", "/tmp/nope"])
