"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "figure8" in out and "comparison" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Window-constrained" in out
        assert "witnesses" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "all substantive rules fired: True" in capsys.readouterr().out

    def test_table3_reduced(self, capsys):
        assert main(["table3", "--frames", "200"]) == 0
        out = capsys.readouterr().out
        assert "Max-finding missed" in out
        assert "Total" in out

    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        assert "PRIORITY_UPDATE" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "clock MHz" in out
        assert "32:10%" in out

    def test_figure8_reduced(self, capsys):
        assert main(["figure8", "--frames", "1000"]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_figure10_reduced(self, capsys):
        assert main(["figure10", "--frames", "1000"]) == 0
        assert "slot4/set2" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "realizable" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_verilog(self, capsys):
        assert main(["verilog", "--slots", "8"]) == 0
        out = capsys.readouterr().out
        assert "module sharestreams_scheduler" in out
        assert "8 stream-slots" in out

    def test_isolation_reduced(self, capsys):
        assert main(["isolation", "--frames", "1200"]) == 0
        out = capsys.readouterr().out
        assert "ShareStreams" in out and "Teracross" in out

    def test_ablation_extensions(self, capsys):
        assert main(["ablation-extensions"]) == 0
        assert "compute-ahead" in capsys.readouterr().out

    def test_ablation_sort_reduced(self, capsys):
        assert main(["ablation-sort", "--frames", "20"]) == 0
        assert "bitonic" in capsys.readouterr().out


class TestCLITelemetry:
    def test_metrics_out_writes_valid_prometheus(self, capsys, tmp_path):
        from repro.observability import parse_prometheus_text

        out_path = tmp_path / "m.prom"
        assert main(
            ["figure8", "--frames", "400", "--metrics-out", str(out_path)]
        ) == 0
        assert f"metrics written to {out_path}" in capsys.readouterr().out
        snapshot = parse_prometheus_text(out_path.read_text())
        assert "sharestreams_decisions_total" in snapshot
        assert "endsystem_tx_frames_total" in snapshot

    def test_metrics_out_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "m.json"
        assert main(
            ["table3", "--frames", "50", "--metrics-out", str(out_path)]
        ) == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["sharestreams_decisions_total"]["type"] == "counter"

    def test_trace_prints_tail_and_profile(self, capsys):
        assert main(["isolation", "--frames", "400", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "decide" in out
        assert "sharestreams_decisions_total" in out

    def test_trace_on_batch_engine(self, capsys):
        assert main(
            ["figure8", "--frames", "400", "--engine", "batch", "--trace"]
        ) == 0
        assert "endsystem.decide" in capsys.readouterr().out

    def test_telemetry_rejected_for_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["table1", "--trace"])


class TestCLIMonitoring:
    def test_monitor_subcommand_draws_dashboard_and_report(self, capsys):
        assert main(["monitor", "--frames", "300", "--slo-window", "64"]) == 0
        out = capsys.readouterr().out
        assert "conformance monitor" in out
        assert "windows evaluated:" in out

    def test_slo_flag_prints_conformance_report(self, capsys):
        assert main(
            ["figure8", "--frames", "400", "--slo", "--slo-window", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows evaluated:" in out
        assert "objectives on 4 streams" in out
        # the figure table still renders alongside the report
        assert "ratio" in out

    def test_flight_recorder_writes_canonical_dumps(self, capsys, tmp_path):
        from repro.observability import deserialize_events

        dump_dir = tmp_path / "dumps"
        # table3 max-finding is the paper's own overload case: zero miss
        # budgets guarantee violations, hence flight dumps on disk.
        assert main(
            [
                "table3",
                "--frames",
                "200",
                "--flight-recorder",
                str(dump_dir),
                "--slo-window",
                "64",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "flight dumps:" in out
        jsonl = sorted(dump_dir.glob("flight-*.jsonl"))
        assert jsonl, "no flight dumps written"
        assert deserialize_events(jsonl[0].read_bytes())

    def test_serve_metrics_announces_endpoint(self, capsys):
        assert main(
            ["figure8", "--frames", "400", "--serve-metrics", "0"]
        ) == 0
        assert "serving telemetry at http://" in capsys.readouterr().out

    def test_slo_rejected_for_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["table2", "--slo"])

    def test_flight_recorder_rejected_for_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["figure7", "--flight-recorder", "/tmp/nope"])


class TestCLITrace:
    def test_trace_runs_campaign_and_prints_rollup(self, capsys):
        assert main(["trace", "--count", "4", "--cycles", "60"]) == 0
        out = capsys.readouterr().out
        assert "span rollup" in out
        assert "campaign" in out and "engine_run" in out
        assert "passed=True" in out

    def test_trace_exports_and_critical_path(self, capsys, tmp_path):
        spans = tmp_path / "spans.jsonl"
        canonical = tmp_path / "canonical.jsonl"
        chrome = tmp_path / "trace.json"
        assert main(
            [
                "trace", "--count", "3", "--cycles", "60",
                "--critical-path",
                "--spans", str(spans),
                "--canonical", str(canonical),
                "--export-chrome", str(chrome),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert spans.exists() and canonical.exists()
        import json as _json

        trace = _json.loads(chrome.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_reports_on_exported_file(self, capsys, tmp_path):
        spans = tmp_path / "spans.jsonl"
        assert main(
            ["trace", "--count", "3", "--cycles", "60", "--spans", str(spans)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "--input", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out and "span rollup" in out

    def test_trace_listed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "bench trend" in out


class TestCLIBenchTrend:
    def _seed_bench(self, root, value=100.0):
        from repro.benchtrend import bench_record, write_bench

        write_bench(
            root / "BENCH_DEMO.json",
            "demo",
            [bench_record("ops", value, "ops/s", direction="higher")],
        )

    def test_trend_appends_and_coalesces(self, capsys, tmp_path):
        self._seed_bench(tmp_path)
        argv = ["bench", "trend", "--root", str(tmp_path)]
        assert main(argv) == 0
        assert "appended snapshot" in capsys.readouterr().out
        assert main(argv) == 0
        assert "coalesced" in capsys.readouterr().out
        assert (tmp_path / "BENCH_TRAJECTORY.json").exists()

    def test_trend_check_fails_on_regression(self, capsys, tmp_path):
        self._seed_bench(tmp_path, 100.0)
        assert main(["bench", "trend", "--root", str(tmp_path)]) == 0
        self._seed_bench(tmp_path, 10.0)
        assert main(
            ["bench", "trend", "--root", str(tmp_path), "--check"]
        ) == 1
        assert "regression: demo:ops" in capsys.readouterr().out

    def test_trend_validate_only(self, capsys, tmp_path):
        self._seed_bench(tmp_path)
        assert main(["bench", "trend", "--root", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(
            ["bench", "trend", "--root", str(tmp_path), "--validate"]
        ) == 0
        assert "trajectory ok" in capsys.readouterr().out

    def test_trend_validate_missing_trajectory(self, capsys, tmp_path):
        assert main(
            ["bench", "trend", "--root", str(tmp_path), "--validate"]
        ) == 1
        assert "no trajectory" in capsys.readouterr().out

    def test_trend_no_bench_files(self, capsys, tmp_path):
        assert main(["bench", "trend", "--root", str(tmp_path)]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().out
