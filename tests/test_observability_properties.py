"""Property-based invariants of the observability layer.

Hypothesis drives seeds through :func:`generate_scenario`, so every
property is checked across both routings, both block modes, wrapped
and ideal arithmetic, and all four update disciplines.  The invariants
under test are the accounting identities that make the telemetry
trustworthy:

* a serviced slot appears at most once per decision cycle (the
  hardware consumes one head per slot per cycle);
* per-stream serviced counters sum to the total serviced count, and
  the decision counter equals the number of cycles;
* every histogram's observation count equals the matching counter
  (slack samples are per serviced packet);
* attaching telemetry never changes scheduling decisions — outcomes
  are identical with and without an observer;
* a disabled (``observer=None``) run records nothing anywhere.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.differential import generate_scenario, run_engine
from repro.observability import Observability

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _scenario(seed: int):
    return generate_scenario(seed, n_cycles=60, max_slots=16)


def _label_total(registry, name: str) -> float:
    counter = registry.counter(name, "")
    return sum(counter.value(**dict(labels)) for labels in counter.label_sets())


class TestAccountingIdentities:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, engine=st.sampled_from(["reference", "batch"]))
    def test_serviced_slot_at_most_once_per_cycle(self, seed, engine):
        trace = run_engine(_scenario(seed), engine)
        for record in trace.records:
            sids = [sid for sid, *_ in record.serviced]
            assert len(sids) == len(set(sids)), (
                f"slot serviced twice in cycle {record.now}: {sids}"
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, engine=st.sampled_from(["reference", "batch"]))
    def test_counters_sum_to_totals(self, seed, engine):
        obs = Observability(profile=False)
        trace = run_engine(_scenario(seed), engine, observer=obs)
        m = obs.metrics
        n_cycles = len(trace.records)
        total_serviced = sum(len(r.serviced) for r in trace.records)
        total_misses = sum(len(r.misses) for r in trace.records)
        total_drops = sum(len(r.dropped) for r in trace.records)
        decisions = m.counter("sharestreams_decisions_total", "").value()
        idle = m.counter("sharestreams_idle_cycles_total", "").value()
        assert decisions == n_cycles
        assert idle == sum(1 for r in trace.records if r.circulated is None)
        assert _label_total(m, "sharestreams_serviced_total") == total_serviced
        assert _label_total(m, "sharestreams_misses_total") == total_misses
        assert _label_total(m, "sharestreams_drops_total") == total_drops
        # Per-stream serviced counters agree with the engine's own.
        serviced_counter = m.counter("sharestreams_serviced_total", "")
        for sid, counters in trace.counters.items():
            assert serviced_counter.value(stream=sid) == counters[1]

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, engine=st.sampled_from(["reference", "batch"]))
    def test_histogram_counts_match_counters(self, seed, engine):
        obs = Observability(profile=False)
        run_engine(_scenario(seed), engine, observer=obs)
        m = obs.metrics
        slack = m.histogram("sharestreams_deadline_slack", "")
        assert slack.total_count() == _label_total(
            m, "sharestreams_serviced_total"
        )
        serviced_counter = m.counter("sharestreams_serviced_total", "")
        for labels in slack.label_sets():
            kwargs = dict(labels)
            assert slack.count(**kwargs) == serviced_counter.value(**kwargs)

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, engine=st.sampled_from(["reference", "batch"]))
    def test_trace_events_match_outcome_stream(self, seed, engine):
        obs = Observability(profile=False)
        trace = run_engine(_scenario(seed), engine, observer=obs)
        events = list(obs.recorder.events())
        assert len(events) == sum(
            1 + len(r.misses) + len(r.dropped) for r in trace.records
        )
        assert [e.seq for e in events] == list(range(len(events)))


class TestTelemetryIsPassive:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, engine=st.sampled_from(["reference", "batch"]))
    def test_observer_never_changes_outcomes(self, seed, engine):
        scenario = _scenario(seed)
        plain = run_engine(scenario, engine)
        observed = run_engine(scenario, engine, observer=Observability())
        assert plain.records == observed.records
        assert plain.counters == observed.counters

    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS, engine=st.sampled_from(["reference", "batch"]))
    def test_disabled_run_records_nothing(self, seed, engine):
        # The engine saw observer=None; a bystander Observability must
        # stay empty (telemetry state is per-instance, never global).
        # Metric *families* are declared eagerly; no *samples* may
        # exist.
        bystander = Observability()
        run_engine(_scenario(seed), engine)
        assert bystander.recorder.recorded == 0
        snapshot = bystander.metrics.snapshot()
        assert all(not family["samples"] for family in snapshot.values())
        assert not bystander.profiler.report()
