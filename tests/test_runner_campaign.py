"""Integration tests: parallel campaigns equal sequential ones.

The acceptance bar for the sharded runner is that ``--workers N`` is
purely an execution detail: the differential campaign summary, the
sweep summaries and the Table 3 counters must come out identical for
any worker count, warm cache runs must execute nothing, and a crashing
shard must name exactly the seeds it lost.
"""

import os

import pytest

from repro.core.differential import (
    CampaignResult,
    SeedOutcome,
    campaign,
    validate_seed,
)
from repro.experiments.sweeps import sweep_figures, sweep_isolation
from repro.experiments.table3 import run_table3
from repro.runner import start_method

CYCLES = 80
SEEDS = range(12)


def crash_on_seed_5(seed, n_cycles, mode):
    """Drop-in for ``validate_seed`` that hard-kills seed 5's shard."""
    if seed == 5:
        os._exit(9)
    return validate_seed(seed, n_cycles, mode)


class TestCampaignParallelEquality:
    @pytest.mark.parametrize("mode", ["outcome", "trace"])
    def test_summary_is_byte_identical_across_worker_counts(self, mode):
        sequential = campaign(SEEDS, n_cycles=CYCLES, mode=mode, workers=1)
        sharded = campaign(SEEDS, n_cycles=CYCLES, mode=mode, workers=4)
        assert sequential.passed and sharded.passed
        assert sharded.summary_json() == sequential.summary_json()
        assert sharded.scenarios == len(list(SEEDS))
        assert sharded.routings == sequential.routings
        assert sharded.block_modes == sequential.block_modes
        assert sharded.modes == sequential.modes

    def test_validate_seed_matches_inline_fold(self):
        outcome = validate_seed(3, CYCLES, "outcome")
        assert isinstance(outcome, SeedOutcome)
        assert outcome.seed == 3
        assert outcome.divergence is None
        result = campaign([3], n_cycles=CYCLES)
        assert {outcome.routing} == {r.value for r in result.routings}

    def test_stop_on_divergence_still_sequential(self):
        result = campaign(
            SEEDS, n_cycles=CYCLES, stop_on_divergence=True, workers=4
        )
        assert result.passed
        assert result.workers == 1  # forced sequential path

    def test_summary_excludes_execution_details(self):
        summary = campaign(SEEDS, n_cycles=CYCLES, workers=2).summary()
        assert "workers" not in summary
        assert "cached" not in summary


class TestCampaignCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        cold = campaign(
            SEEDS, n_cycles=CYCLES, workers=2, cache_dir=tmp_path
        )
        assert cold.executed == cold.scenarios and cold.cached == 0
        warm = campaign(
            SEEDS, n_cycles=CYCLES, workers=2, cache_dir=tmp_path
        )
        assert warm.cached == warm.scenarios and warm.executed == 0
        assert warm.summary_json() == cold.summary_json()

    def test_no_cache_leaves_directory_untouched(self, tmp_path):
        campaign(
            SEEDS, n_cycles=CYCLES, cache_dir=tmp_path, use_cache=False
        )
        assert list(tmp_path.iterdir()) == []

    def test_cache_keys_separate_modes_and_cycles(self, tmp_path):
        campaign(SEEDS, n_cycles=CYCLES, cache_dir=tmp_path)
        relitigated = campaign(
            SEEDS, n_cycles=CYCLES + 1, cache_dir=tmp_path
        )
        assert relitigated.cached == 0  # different resolved scenarios
        other_mode = campaign(
            SEEDS, n_cycles=CYCLES, mode="trace", cache_dir=tmp_path
        )
        assert other_mode.cached == 0  # different namespace


@pytest.mark.skipif(
    start_method() is None, reason="no multiprocessing start method"
)
class TestCampaignFailureIsolation:
    def test_crashing_shard_surfaces_its_seeds(self):
        result = campaign(
            SEEDS, n_cycles=CYCLES, workers=4, _task=crash_on_seed_5
        )
        assert not result.passed
        (failure,) = result.failures
        assert 5 in failure.items
        assert failure.exitcode == 9
        # Round-robin over 12 items / 4 shards: seed 5 rode shard 1
        # with seeds 1 and 9; everything else still validated.
        assert set(failure.items) == {1, 5, 9}
        assert result.scenarios == len(list(SEEDS)) - len(failure.items)
        summary = result.summary()
        assert summary["passed"] is False
        assert summary["failures"][0]["seeds"] == sorted(failure.items)

    def test_crash_report_is_deterministic(self):
        first = campaign(
            SEEDS, n_cycles=CYCLES, workers=4, _task=crash_on_seed_5
        )
        second = campaign(
            SEEDS, n_cycles=CYCLES, workers=4, _task=crash_on_seed_5
        )
        assert first.summary_json() == second.summary_json()


class TestTable3Parallel:
    def test_workers_do_not_change_the_table(self):
        frames = 200
        sequential = run_table3(frames, workers=1)
        sharded = run_table3(frames, workers=3)
        assert sharded == sequential

    def test_batch_engine_parallel(self):
        frames = 200
        assert run_table3(frames, engine="batch", workers=3) == run_table3(
            frames, engine="batch", workers=1
        )

    def test_parallel_telemetry_is_merged(self):
        from repro.observability import (
            ConformanceMonitor,
            Observability,
            StreamSlo,
        )

        def observed(workers):
            obs = Observability(trace=False, profile=False)
            obs.monitor = ConformanceMonitor(
                [StreamSlo(sid=i, miss_budget=0) for i in range(4)],
                window_cycles=64,
                registry=obs.metrics,
                flight_recorder=False,
            )
            run_table3(100, observer=obs, workers=workers)
            return obs

        merged = observed(workers=3)
        # All three configurations' windows arrived, in config order.
        assert merged.monitor.rollup.windows_closed > 0
        indices = [w.index for w in merged.monitor.rollup.history]
        assert indices == sorted(set(indices))
        # The overloaded max-finding configuration violates the zero
        # miss budget; the violations survived the merge.
        assert merged.monitor.slo.violations
        assert merged.metrics.names()


class TestSweepParallelEquality:
    def test_figure8_sweep_matches_sequential(self):
        sizes = [400, 800]
        sequential = sweep_figures("figure8", sizes, workers=1)
        sharded = sweep_figures("figure8", sizes, workers=2)
        assert sharded.summary_json() == sequential.summary_json()
        assert [p.param for p in sharded.points] == sizes

    def test_isolation_sweep_cache(self, tmp_path):
        seeds = [3, 5]
        cold = sweep_isolation(
            seeds, horizon=600, workers=2, cache_dir=tmp_path
        )
        warm = sweep_isolation(
            seeds, horizon=600, workers=1, cache_dir=tmp_path
        )
        assert cold.executed == 2 and cold.cached == 0
        assert warm.cached == 2 and warm.executed == 0
        assert warm.summary_json() == cold.summary_json()
        # A different horizon is a different workload, not a cache hit.
        other = sweep_isolation(
            seeds, horizon=601, workers=1, cache_dir=tmp_path
        )
        assert other.cached == 0

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            sweep_figures("table3", [1])

    def test_campaign_mode_validation(self):
        with pytest.raises(ValueError):
            campaign([1], mode="nonsense")

    def test_campaign_result_defaults(self):
        result = CampaignResult()
        assert result.passed and result.summary()["scenarios"] == 0
