"""Golden conformance-vector generator.

Regenerates the JSON vectors in this directory from the *reference*
engine (the cycle-level object model) and the pairwise Table 2 rule
evaluator::

    PYTHONPATH=src python tests/golden/regen.py

``tests/test_golden_vectors.py`` replays the vectors against **both**
engines, so the committed JSON pins the scheduler's observable
behaviour: a change that shifts any winner sequence, miss counter or
pairwise rule outcome fails the suite until the vectors are explicitly
regenerated and the diff reviewed.

Vector files
------------
``table2_rules.json``
    Pairwise attribute bundles with the expected decision and fired
    Table 2 rule (handcrafted cases for every rule + seeded random
    sweep, both serial and ideal arithmetic).
``table3_vectors.json``
    The three Table 3 configurations at reduced scale: per-cycle
    circulated-winner sequence plus final per-slot counters.
``dwcs_trace.json``
    A DWCS (window-constrained) 4-slot trace with staggered arrivals:
    per-cycle emitted block, circulated winner, serviced slots and
    misses, plus final counters — exercises the window-constraint rules
    inside a full SCHEDULE/PRIORITY_UPDATE sequence.
``decision_trace.json``
    The structured observability decision trace (``TraceRecorder``
    events) of a shortened DWCS run with drop-late enabled, plus its
    canonical JSONL serialization — pins the telemetry event schema,
    flattening order and byte-level encoding.
``pifo_vectors.json``
    Canonical run summaries of every registered programmable PIFO rank
    function (``repro.disciplines.pifo``) on seeded workloads — the
    replay test reruns them on all three engines, so rank compilation
    is pinned exactly like the handwritten disciplines.
``aggregation_vectors.json``
    The hierarchical aggregation tier (``repro.aggregation``) on a
    fixed 10k-stream / 16-aggregate scenario with scripted churn
    (seeded joins/leaves interleaved with arrivals): the canonical run
    summary, including the sha256 digest of the full service stream —
    replayed on all three engines, so a refactor of the hash-bucketing
    or the fair-tag arithmetic cannot silently shift emissions.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.core.attributes import HardwareAttributes, SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.rules import compare_with_rule
from repro.core.scheduler import ShareStreamsScheduler

GOLDEN_DIR = Path(__file__).resolve().parent

#: Bump when the vector *format* changes (forces regen awareness).
FORMAT_VERSION = 1

_SEED = 2003_04_22  # IPPS 2003 — fixed so regeneration is reproducible

# ---------------------------------------------------------------------------
# Table 2 pairwise rule vectors
# ---------------------------------------------------------------------------

_ATTR_FIELDS = ("sid", "deadline", "loss_numerator", "loss_denominator", "arrival", "valid")


def _attrs_to_dict(a: HardwareAttributes) -> dict:
    return {f: getattr(a, f) for f in _ATTR_FIELDS}


def _attrs_from_dict(d: dict) -> HardwareAttributes:
    return HardwareAttributes(**d)


def _handcrafted_pairs() -> list[tuple[HardwareAttributes, HardwareAttributes, bool, bool]]:
    """One canonical pair per Table 2 rule (and the serial-wrap case)."""
    A = HardwareAttributes
    return [
        # VALIDITY: only b holds an eligible packet.
        (A(sid=0, deadline=5, valid=False), A(sid=1, deadline=9), True, False),
        # EARLIEST_DEADLINE, plain.
        (A(sid=0, deadline=10, arrival=3), A(sid=1, deadline=11, arrival=2), True, False),
        # EARLIEST_DEADLINE across the 16-bit wrap: 65530 precedes 2 serially.
        (A(sid=0, deadline=65530), A(sid=1, deadline=2), True, False),
        # ... but follows it in ideal arithmetic.
        (A(sid=0, deadline=65530), A(sid=1, deadline=2), False, False),
        # LOWEST_WINDOW_CONSTRAINT: 1/4 < 1/2.
        (
            A(sid=0, deadline=7, loss_numerator=1, loss_denominator=4),
            A(sid=1, deadline=7, loss_numerator=1, loss_denominator=2),
            True,
            False,
        ),
        # LOWEST_WINDOW_CONSTRAINT: one zero constraint orders first.
        (
            A(sid=0, deadline=7, loss_numerator=0, loss_denominator=3),
            A(sid=1, deadline=7, loss_numerator=1, loss_denominator=2),
            True,
            False,
        ),
        # HIGHEST_DENOMINATOR_ZERO_WC: both zero, larger y' first.
        (
            A(sid=0, deadline=7, loss_numerator=0, loss_denominator=3),
            A(sid=1, deadline=7, loss_numerator=0, loss_denominator=9),
            True,
            False,
        ),
        # LOWEST_NUMERATOR_EQUAL_WC: 2/4 == 3/6, lower x' first.
        (
            A(sid=0, deadline=7, loss_numerator=3, loss_denominator=6),
            A(sid=1, deadline=7, loss_numerator=2, loss_denominator=4),
            True,
            False,
        ),
        # FCFS: total attribute tie except arrival.
        (
            A(sid=0, deadline=7, arrival=5),
            A(sid=1, deadline=7, arrival=4),
            True,
            False,
        ),
        # STREAM_ID: total tie, wired index decides.
        (A(sid=1, deadline=7, arrival=4), A(sid=0, deadline=7, arrival=4), True, False),
        # deadline_only: window fields ignored, FCFS resolves.
        (
            A(sid=0, deadline=7, loss_numerator=1, loss_denominator=2, arrival=9),
            A(sid=1, deadline=7, loss_numerator=0, loss_denominator=5, arrival=1),
            True,
            True,
        ),
    ]


def build_table2_cases(n_random: int = 200) -> dict:
    """Handcrafted + seeded-random pairwise cases with expected outcomes."""
    rng = random.Random(_SEED)
    pairs = list(_handcrafted_pairs())
    for _ in range(n_random):
        # Cluster deadlines/arrivals so the deeper rules actually fire.
        def bundle(sid: int) -> HardwareAttributes:
            return HardwareAttributes(
                sid=sid,
                deadline=rng.choice([rng.randrange(65536), rng.randrange(4)]),
                loss_numerator=rng.choice([0, 0, rng.randrange(256)]),
                loss_denominator=rng.choice([0, rng.randrange(256)]),
                arrival=rng.choice([rng.randrange(65536), rng.randrange(4)]),
                valid=rng.random() > 0.1,
            )

        pairs.append(
            (bundle(0), bundle(1), rng.random() > 0.25, rng.random() > 0.8)
        )
    cases = []
    for a, b, wrap, deadline_only in pairs:
        result, rule = compare_with_rule(a, b, wrap=wrap, deadline_only=deadline_only)
        cases.append(
            {
                "a": _attrs_to_dict(a),
                "b": _attrs_to_dict(b),
                "wrap": wrap,
                "deadline_only": deadline_only,
                "result": result,
                "rule": rule.value,
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "seed": _SEED,
        "description": "Table 2 pairwise decision-rule conformance vectors",
        "cases": cases,
    }


# ---------------------------------------------------------------------------
# Table 3 configuration traces
# ---------------------------------------------------------------------------

TABLE3_FRAMES = 300  # frames per stream at golden scale
_TABLE3_CONFIGS = {
    "max_finding": {
        "routing": "wr",
        "block_mode": "max_first",
        "consume": "winner",
        "count_misses": True,
        "cycles_factor": 4,  # 4 requests/cycle, one serviced
    },
    "block_max_first": {
        "routing": "ba",
        "block_mode": "max_first",
        "consume": "block",
        "count_misses": False,
        "cycles_factor": 1,
    },
    "block_min_first": {
        "routing": "ba",
        "block_mode": "min_first",
        "consume": "block",
        "count_misses": False,
        "cycles_factor": 1,
    },
}


def table3_arch_streams(spec: dict) -> tuple[ArchConfig, list[StreamConfig]]:
    arch = ArchConfig(
        n_slots=4,
        routing=Routing(spec["routing"]),
        block_mode=BlockMode(spec["block_mode"]),
        wrap=False,
    )
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF) for i in range(4)
    ]
    return arch, streams


def _table3_scheduler(spec: dict) -> ShareStreamsScheduler:
    return ShareStreamsScheduler(*table3_arch_streams(spec))


def build_table3_vectors(frames_per_stream: int = TABLE3_FRAMES) -> dict:
    """Reference-engine winner sequences + counters for all three configs."""
    configs = {}
    for name, spec in _TABLE3_CONFIGS.items():
        scheduler = _table3_scheduler(spec)
        n_cycles = spec["cycles_factor"] * frames_per_stream
        winners: list[int] = []
        for t in range(n_cycles):
            for sid in range(4):
                scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
            outcome = scheduler.decision_cycle(
                t, consume=spec["consume"], count_misses=spec["count_misses"]
            )
            winners.append(
                -1 if outcome.circulated_sid is None else outcome.circulated_sid
            )
        counters = scheduler.counters()
        configs[name] = {
            **spec,
            "n_cycles": n_cycles,
            "winners": winners,
            "wins": [counters[s].wins for s in range(4)],
            "missed": [counters[s].missed_deadlines for s in range(4)],
            "serviced": [counters[s].serviced for s in range(4)],
        }
    return {
        "format_version": FORMAT_VERSION,
        "description": "Table 3 configuration traces (reference engine)",
        "frames_per_stream": frames_per_stream,
        "configs": configs,
    }


# ---------------------------------------------------------------------------
# DWCS window-constrained sequence trace
# ---------------------------------------------------------------------------

DWCS_CYCLES = 96
#: (loss_numerator, loss_denominator) per slot — mixed zero/non-zero so
#: every window rule (and window resets/violations) participates.
DWCS_WINDOWS = ((1, 2), (1, 4), (3, 4), (0, 3))


def dwcs_arch_streams() -> tuple[ArchConfig, list[StreamConfig]]:
    arch = ArchConfig(
        n_slots=4,
        routing=Routing("ba"),
        block_mode=BlockMode("max_first"),
        wrap=False,
    )
    streams = [
        StreamConfig(
            sid=i,
            period=1,
            loss_numerator=x,
            loss_denominator=y,
            mode=SchedulingMode.DWCS,
        )
        for i, (x, y) in enumerate(DWCS_WINDOWS)
    ]
    return arch, streams


def _dwcs_scheduler() -> ShareStreamsScheduler:
    return ShareStreamsScheduler(*dwcs_arch_streams())


def dwcs_arrivals(t: int) -> list[tuple[int, int, int]]:
    """Deterministic staggered arrivals: ``(sid, deadline, arrival)``.

    Slot ``s`` requests every ``s + 1`` cycles with a jittered deadline
    a few cycles out — enough contention that deadlines tie (firing the
    window rules) and some heads go late (firing loss updates).
    """
    out = []
    for sid in range(4):
        if t % (sid + 1) == 0:
            deadline = t + 2 + (t * 7 + sid * 3) % 9
            out.append((sid, deadline, t))
    return out


def build_dwcs_trace(n_cycles: int = DWCS_CYCLES) -> dict:
    """Reference-engine DWCS trace: per-cycle block/winner/misses."""
    scheduler = _dwcs_scheduler()
    cycles = []
    for t in range(n_cycles):
        for sid, deadline, arrival in dwcs_arrivals(t):
            scheduler.enqueue(sid, deadline=deadline, arrival=arrival)
        outcome = scheduler.decision_cycle(t, consume="winner", count_misses=True)
        cycles.append(
            {
                "now": t,
                "block": list(outcome.block),
                "circulated": (
                    -1 if outcome.circulated_sid is None else outcome.circulated_sid
                ),
                "serviced": [sid for sid, _pkt in outcome.serviced],
                "misses": list(outcome.misses),
            }
        )
    counters = scheduler.counters()
    return {
        "format_version": FORMAT_VERSION,
        "description": "DWCS window-constrained conformance trace",
        "windows": [list(w) for w in DWCS_WINDOWS],
        "n_cycles": n_cycles,
        "cycles": cycles,
        "wins": [counters[s].wins for s in range(4)],
        "missed": [counters[s].missed_deadlines for s in range(4)],
        "violations": [counters[s].violations for s in range(4)],
        "window_resets": [counters[s].window_resets for s in range(4)],
    }


# ---------------------------------------------------------------------------
# observability decision trace
# ---------------------------------------------------------------------------

DECISION_TRACE_CYCLES = 48


def build_decision_trace(n_cycles: int = DECISION_TRACE_CYCLES) -> dict:
    """Reference-engine telemetry trace of the DWCS workload.

    Alternates the drop-late policy (on every third cycle) so all
    three event kinds (decide / miss / drop) appear — drop-late sheds
    late heads *before* miss registration, so a pure drop-late run
    would never record a miss.  Stores both the event dicts and the
    canonical JSONL serialization; the replay test asserts byte
    identity against both engines.
    """
    from repro.observability import TraceRecorder

    recorder = TraceRecorder()
    scheduler = ShareStreamsScheduler(*dwcs_arch_streams(), observer=recorder)
    for t in range(n_cycles):
        for sid, deadline, arrival in dwcs_arrivals(t):
            scheduler.enqueue(sid, deadline=deadline, arrival=arrival)
        scheduler.decision_cycle(
            t, consume="winner", count_misses=True, drop_late=(t % 3 == 0)
        )
    return {
        "format_version": FORMAT_VERSION,
        "description": "structured observability decision-trace vector",
        "n_cycles": n_cycles,
        "events": recorder.to_dicts(),
        "jsonl": recorder.serialize().decode("utf-8"),
    }


# ---------------------------------------------------------------------------
# programmable PIFO rank-function traces
# ---------------------------------------------------------------------------

PIFO_CYCLES = 64
PIFO_SEEDS = (3, 11)


def build_pifo_vectors(
    n_cycles: int = PIFO_CYCLES, seeds: tuple[int, ...] = PIFO_SEEDS
) -> dict:
    """Reference-frontend run summaries for every registered rank function.

    Pins each rank-expressed discipline's full service order exactly
    like the handwritten disciplines' traces above; the replay test
    reruns the batch and tensor frontends against the committed
    summaries, so PIFO compilation cannot drift on any engine.
    """
    from repro.disciplines.pifo import (
        PIFO_RANK_FUNCTIONS,
        generate_pifo_scenario,
        run_pifo,
    )

    disciplines = {}
    for name, fn in sorted(PIFO_RANK_FUNCTIONS.items()):
        runs = []
        for seed in seeds:
            scenario = generate_pifo_scenario(seed, n_cycles=n_cycles)
            runs.append(run_pifo(fn, scenario, engine="reference"))
        disciplines[name] = {
            "rank": fn.rank.describe(),
            "vclock": fn.vclock,
            "equivalent_to": fn.equivalent_to,
            "runs": runs,
        }
    return {
        "format_version": FORMAT_VERSION,
        "description": "programmable PIFO rank-function conformance vectors",
        "n_cycles": n_cycles,
        "seeds": list(seeds),
        "disciplines": disciplines,
    }


# ---------------------------------------------------------------------------
# hierarchical aggregation-tier trace
# ---------------------------------------------------------------------------

AGGREGATION_SEED = 17
AGGREGATION_STREAMS = 10_000
AGGREGATION_AGGREGATES = 16
AGGREGATION_CYCLES = 240
#: Scripted-churn shape: high join/leave rates so the fixed scenario
#: exercises leaves of backlogged streams and weight rebalancing.
AGGREGATION_CHURN = {"max_arrivals": 6, "join_rate": 0.4, "leave_rate": 0.35}


def aggregation_scenario():
    """The fixed 10k-stream / 16-aggregate scripted-churn workload."""
    from repro.aggregation import generate_aggregation_scenario

    return generate_aggregation_scenario(
        AGGREGATION_SEED,
        n_streams=AGGREGATION_STREAMS,
        n_aggregates=AGGREGATION_AGGREGATES,
        n_cycles=AGGREGATION_CYCLES,
        **AGGREGATION_CHURN,
    )


def build_aggregation_vectors() -> dict:
    """Reference-engine canonical summary of the churn workload.

    The summary's ``service_digest`` covers every service event, so
    the committed vector pins the full emission order at 10k-stream
    scale without storing it; the replay test reruns the scenario on
    all three engines against the same digest.
    """
    from repro.aggregation import run_aggregation

    return {
        "format_version": FORMAT_VERSION,
        "description": "hierarchical aggregation-tier conformance vector",
        "seed": AGGREGATION_SEED,
        "n_streams": AGGREGATION_STREAMS,
        "n_aggregates": AGGREGATION_AGGREGATES,
        "n_cycles": AGGREGATION_CYCLES,
        "churn": dict(AGGREGATION_CHURN),
        "summary": run_aggregation(aggregation_scenario(), engine="reference"),
    }


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

VECTORS = {
    "table2_rules.json": build_table2_cases,
    "table3_vectors.json": build_table3_vectors,
    "dwcs_trace.json": build_dwcs_trace,
    "decision_trace.json": build_decision_trace,
    "pifo_vectors.json": build_pifo_vectors,
    "aggregation_vectors.json": build_aggregation_vectors,
}


def main() -> None:
    for filename, builder in VECTORS.items():
        path = GOLDEN_DIR / filename
        payload = builder()
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path} ({path.stat().st_size:,} bytes)")


if __name__ == "__main__":
    main()
