"""Bit-true datapath vs golden object model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import HardwareAttributes, pack_attributes
from repro.core.bitlevel import (
    compare_packed,
    decide_packed,
    extract_fields,
    serial_less_16,
)
from repro.core.fields import serial_lt
from repro.core.rules import compare

attr_strategy = st.builds(
    lambda sid, deadline, x, y, arrival, valid: HardwareAttributes(
        sid=sid,
        deadline=deadline,
        loss_numerator=x,
        loss_denominator=y,
        arrival=arrival,
        valid=valid,
    ),
    sid=st.integers(0, 31),
    deadline=st.integers(0, (1 << 16) - 1),
    x=st.integers(0, 255),
    y=st.integers(0, 255),
    arrival=st.integers(0, (1 << 16) - 1),
    valid=st.booleans(),
)


class TestFieldExtraction:
    @given(attrs=attr_strategy)
    def test_roundtrip_matches_object(self, attrs):
        word = pack_attributes(attrs)
        deadline, x, y, arrival, sid, valid = extract_fields(word)
        assert deadline == attrs.deadline
        assert x == attrs.loss_numerator
        assert y == attrs.loss_denominator
        assert arrival == attrs.arrival
        assert sid == attrs.sid
        assert valid == int(attrs.valid)

    def test_rejects_wide_word(self):
        with pytest.raises(ValueError):
            extract_fields(1 << 54)


class TestSerialLess16:
    @given(a=st.integers(0, 65535), b=st.integers(0, 65535))
    def test_matches_reference_serial(self, a, b):
        assert serial_less_16(a, b) == serial_lt(a, b, 16)


class TestPackedDecision:
    @given(a=attr_strategy, b=attr_strategy)
    def test_bit_identical_to_golden_model(self, a, b):
        """RTL-vs-golden: every random pair decides identically."""
        wa, wb = pack_attributes(a), pack_attributes(b)
        for deadline_only in (False, True):
            golden = compare(a, b, wrap=True, deadline_only=deadline_only)
            packed = compare_packed(wa, wb, deadline_only=deadline_only)
            assert golden == packed, (a, b, deadline_only)

    @given(a=attr_strategy, b=attr_strategy)
    def test_decide_ports(self, a, b):
        wa, wb = pack_attributes(a), pack_attributes(b)
        winner, loser = decide_packed(wa, wb)
        assert {winner, loser} == {wa, wb}
        if compare(a, b, wrap=True) < 0:
            assert winner == wa
        else:
            assert winner == wb

    def test_example_deadline_rule(self):
        a = pack_attributes(HardwareAttributes(sid=0, deadline=10))
        b = pack_attributes(HardwareAttributes(sid=1, deadline=20))
        assert compare_packed(a, b) == -1

    def test_example_wrapped_deadline(self):
        a = pack_attributes(HardwareAttributes(sid=0, deadline=65530))
        b = pack_attributes(HardwareAttributes(sid=1, deadline=2))
        assert compare_packed(a, b) == -1
