"""Cross-validation: vectorized fast simulator vs the object model."""

import numpy as np
import pytest

from repro.core.fast_sim import simulate_block_max_first, simulate_max_finding
from repro.experiments.table3 import run_block, run_max_finding
from repro.core.config import BlockMode

SCALE = 500  # frames per stream for the reference runs


class TestMaxFindingEquivalence:
    def test_matches_object_model_counters(self):
        reference = run_max_finding(SCALE)
        fast = simulate_max_finding(4, 4 * SCALE)
        assert fast.frames_scheduled == reference.frames_scheduled
        for i, row in enumerate(reference.rows):
            assert fast.wins[i] == row.winner_cycles
            assert fast.misses[i] == row.missed_deadlines

    def test_full_paper_scale_shape(self):
        fast = simulate_max_finding(4, 64_000)
        assert fast.frames_scheduled == 64_000
        assert all(63_980 <= m <= 64_000 for m in fast.misses)
        assert all(15_990 <= w <= 16_010 for w in fast.wins)

    def test_offsets_validation(self):
        with pytest.raises(ValueError):
            simulate_max_finding(4, 10, initial_offsets=np.array([1, 2]))


class TestBlockMaxFirstEquivalence:
    def test_matches_object_model_counters(self):
        reference = run_block(BlockMode.MAX_FIRST, SCALE)
        fast = simulate_block_max_first(4, SCALE)
        assert fast.frames_scheduled == reference.frames_scheduled
        for i, row in enumerate(reference.rows):
            assert fast.wins[i] == row.winner_cycles
            assert fast.misses[i] == row.missed_deadlines == 0

    def test_full_paper_scale(self):
        fast = simulate_block_max_first(4, 16_000)
        assert int(fast.misses.sum()) == 0
        assert all(3_990 <= w <= 4_010 for w in fast.wins)
        assert fast.frames_scheduled == 64_000


class TestSpeedup:
    def test_fast_path_is_meaningfully_faster(self):
        import time

        t0 = time.perf_counter()
        run_max_finding(SCALE)
        reference_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        simulate_max_finding(4, 4 * SCALE)
        fast_s = time.perf_counter() - t0
        assert fast_s < reference_s


class TestOffsetRobustness:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        offsets=st.lists(
            st.integers(0, 40), min_size=4, max_size=4, unique=True
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_max_finding_balance_any_offsets(self, offsets):
        """Table 3's even win split is not an artifact of the 1,2,3,4
        initial deadlines: any distinct offsets rotate fairly."""
        fast = simulate_max_finding(
            4, 2000, initial_offsets=np.array(offsets)
        )
        assert fast.frames_scheduled == 2000
        assert all(abs(w - 500) <= max(offsets) + 4 for w in fast.wins)

    @given(
        offsets=st.lists(
            st.integers(1, 40), min_size=4, max_size=4, unique=True
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_block_zero_misses_any_offsets(self, offsets):
        """Block max-first meets every deadline for any positive
        initial offsets (deadline >= cycle index by construction)."""
        fast = simulate_block_max_first(
            4, 2000, initial_offsets=np.array(offsets)
        )
        assert int(fast.misses.sum()) == 0
