"""Tests for the Figure 1 framework: packet times and complexity."""

import pytest

from repro.core.config import Routing
from repro.framework import (
    PROFILES,
    achievable_rate_dps,
    evaluate_point,
    feasibility,
    packet_time_us,
    required_rate_dps,
)


class TestPacketTime:
    def test_paper_quoted_values(self):
        assert packet_time_us(1500, 1e10) == pytest.approx(1.2)
        assert packet_time_us(64, 1e10) == pytest.approx(0.0512)
        assert packet_time_us(1500, 1e9) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            packet_time_us(0, 1e9)
        with pytest.raises(ValueError):
            packet_time_us(64, 0)


class TestFeasibility:
    def test_paper_wire_speed_claims(self):
        # "Our Virtex I implementation can easily meet the packet-time
        # requirements of all frame sizes (64-byte and 1500-byte) on
        # gigabit links, and 1500-byte frames on 10Gbps links."
        for size in (64, 1500):
            assert feasibility(32, size, 1e9).feasible
        assert feasibility(32, 1500, 1e10).feasible

    def test_64b_at_10g_infeasible_per_decision(self):
        assert not feasibility(32, 64, 1e10).feasible

    def test_block_amortization_helps(self):
        point = feasibility(32, 64, 1e10, routing=Routing.BA, block=True)
        # A 32-wide block amortizes the decision across 32 packets.
        assert point.effective_decision_us < point.decision_us
        assert point.feasible

    def test_margin_definition(self):
        p = feasibility(4, 1500, 1e9)
        assert p.margin == pytest.approx(p.packet_us / p.decision_us)
        assert p.feasible == (p.margin >= 1)


class TestComplexity:
    def test_dwcs_most_complex(self):
        scores = {name: p.complexity_score for name, p in PROFILES.items()}
        assert scores["dwcs"] == max(scores.values())
        assert scores["fcfs"] == min(scores.values())

    def test_required_rate(self):
        # One decision per packet-time.
        assert required_rate_dps(8, 1500, 1e9) == pytest.approx(1e6 / 12.0)
        with pytest.raises(ValueError):
            required_rate_dps(0, 1500, 1e9)

    def test_fpga_rate_discipline_independent(self):
        a = achievable_rate_dps("dwcs", 8, target="fpga")
        b = achievable_rate_dps("edf", 8, target="fpga")
        assert a == b  # the canonical architecture's whole point

    def test_software_rate_uses_latency(self):
        rate = achievable_rate_dps(
            "dwcs", 8, target="software", software_latency_us=50.0
        )
        assert rate == pytest.approx(20_000)

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            achievable_rate_dps("edf", 8, target="abacus")

    def test_evaluate_point_software_dwcs_fails_gigabit(self):
        # Section 4.1: ~50us software DWCS cannot meet even 1Gbps/1500B.
        p = evaluate_point(
            "dwcs", 8, 1500, 1e9, target="software", software_latency_us=50.0
        )
        assert not p.realizable
        assert p.headroom < 1

    def test_evaluate_point_fpga_holds_10g(self):
        p = evaluate_point("dwcs", 32, 1500, 1e10, target="fpga")
        assert p.realizable

    def test_unknown_discipline(self):
        with pytest.raises(KeyError):
            evaluate_point("lottery", 4, 64, 1e9)
