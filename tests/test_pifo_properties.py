"""Property tests locking down the programmable PIFO layer.

Three properties from the issue's acceptance criteria:

* **Work conservation** — whenever any packet is backlogged, exactly
  one is serviced that cycle; the set of service cycles is exactly the
  predicted busy-cycle set.
* **Tie-break stability under stream-id permutation** — for rank
  functions that do not read ``sid``, relabeling the streams permutes
  the service sequence exactly (arrival sequence numbers are globally
  unique, so the lexsort never reaches its final sid tie-break).
* **Three-way byte identity** — the interpreted reference evaluator,
  the vectorized batch evaluator and the tensorized campaign evaluator
  produce byte-identical canonical summaries on 200+ randomized
  scenarios (the ``validate_rank_function`` contract).

Plus the boundary validations the PIFO layer's tie-break rules must
reproduce: the RED min==max threshold and HFSC zero-curve leaves both
reject construction, exactly like non-positive/fractional PIFO
weights.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.differential import validate_rank_function
from repro.disciplines import create
from repro.disciplines.base import Packet, SwStream
from repro.disciplines.hfsc import ClassNode, HierarchicalFairShare
from repro.disciplines.pifo import (
    PIFO_RANK_FUNCTIONS,
    PifoDiscipline,
    PifoStream,
    RankFunction,
    attr,
    generate_pifo_scenario,
    rank_function,
    run_pifo,
    run_pifo_bucket,
)
from repro.disciplines.red import REDQueue
from tests.strategies import pifo_scenarios

#: Rank functions whose expression never reads ``sid`` — the ones for
#: which stream relabeling must be a pure permutation of the output.
_SID_FREE = tuple(
    name
    for name, fn in sorted(PIFO_RANK_FUNCTIONS.items())
    if "sid" not in fn.rank.attributes()
)


def _canonical(summary: dict) -> str:
    return json.dumps(summary, sort_keys=True, indent=1) + "\n"


class TestWorkConservation:
    @pytest.mark.parametrize("name", sorted(PIFO_RANK_FUNCTIONS))
    @pytest.mark.parametrize("engine", ["reference", "batch", "tensor"])
    def test_busy_cycles_exactly_serviced(self, name, engine):
        scenario = generate_pifo_scenario(5, n_cycles=80)
        summary = run_pifo(name, scenario, engine=engine)
        assert summary["enqueued"] == scenario.total_arrivals
        assert len(summary["services"]) == summary["enqueued"]
        # Predict the busy cycles from the arrival pattern alone.
        busy = []
        pending = 0
        t = 0
        while pending or t < scenario.n_cycles:
            if t < scenario.n_cycles:
                pending += len(scenario.arrivals[t])
            if pending:
                busy.append(t)
                pending -= 1
            t += 1
        assert [evt[0] for evt in summary["services"]] == busy

    @given(scenario=pifo_scenarios(n_cycles=60))
    @settings(max_examples=10, deadline=None, print_blob=True)
    def test_every_packet_serviced_once(self, scenario):
        summary = run_pifo("prio_edf", scenario, engine="batch")
        seqs = sorted(evt[2] for evt in summary["services"])
        assert seqs == list(range(1, scenario.total_arrivals + 1))


def _permute(scenario, perm):
    """Relabel stream ids with ``perm`` (packets keep their seq)."""
    streams = tuple(
        sorted(
            (dataclasses.replace(s, sid=perm[s.sid]) for s in scenario.streams),
            key=lambda s: s.sid,
        )
    )
    arrivals = tuple(
        tuple(
            sorted(
                ((perm[sid], seq, dl, ln) for sid, seq, dl, ln in cycle),
            )
        )
        for cycle in scenario.arrivals
    )
    return dataclasses.replace(scenario, streams=streams, arrivals=arrivals)


class TestSidPermutationStability:
    @pytest.mark.parametrize("name", _SID_FREE)
    def test_relabeling_streams_permutes_services(self, name):
        """Globally-unique arrival sequence numbers resolve every rank
        tie before the sid comparator fires, so stream relabeling is
        invisible to the service order."""
        scenario = generate_pifo_scenario(17, n_cycles=80)
        n = scenario.n_slots
        perm = {sid: (sid * 3 + 1) % n for sid in range(n)}
        assert sorted(perm.values()) == list(range(n))
        base = run_pifo(name, scenario, engine="batch")
        permuted = run_pifo(name, _permute(scenario, perm), engine="batch")
        expected = [
            [t, perm[sid], seq, rank]
            for t, sid, seq, rank in base["services"]
        ]
        assert permuted["services"] == expected

    @given(
        scenario=pifo_scenarios(n_cycles=50),
        rot=st.integers(min_value=1, max_value=7),
        name=st.sampled_from(_SID_FREE),
    )
    @settings(max_examples=10, deadline=None, print_blob=True)
    def test_rotation_equivariance(self, scenario, rot, name):
        n = scenario.n_slots
        perm = {sid: (sid + rot) % n for sid in range(n)}
        base = run_pifo(name, scenario, engine="reference")
        permuted = run_pifo(
            name, _permute(scenario, perm), engine="reference"
        )
        assert permuted["services"] == [
            [t, perm[sid], seq, rank]
            for t, sid, seq, rank in base["services"]
        ]


class TestThreeWayByteIdentity:
    def test_two_hundred_scenarios_all_evaluators(self):
        """The acceptance campaign: >= 200 randomized scenarios, every
        registered rank function, reference == batch == tensor
        byte-for-byte (the tensor leg runs whole same-shape buckets)."""
        names = sorted(PIFO_RANK_FUNCTIONS)
        seeds_per_fn = 42
        checked = 0
        for name in names:
            scenarios = [
                generate_pifo_scenario(seed, n_cycles=60)
                for seed in range(seeds_per_fn)
            ]
            tensor_summaries = run_pifo_bucket(name, scenarios)
            for scenario, tensor in zip(scenarios, tensor_summaries):
                reference = run_pifo(name, scenario, engine="reference")
                batch = run_pifo(name, scenario, engine="batch")
                context = f"pifo:{name} seed={scenario.seed}"
                assert _canonical(reference) == _canonical(batch), context
                assert _canonical(reference) == _canonical(tensor), context
                checked += 1
        assert checked == len(names) * seeds_per_fn >= 200

    @pytest.mark.parametrize("name", sorted(PIFO_RANK_FUNCTIONS))
    def test_validate_rank_function_passes(self, name):
        result = validate_rank_function(name, seeds=range(8), n_cycles=100)
        assert result.passed, "\n".join(result.divergences)
        assert result.scenarios == 8
        assert result.services > 0
        assert result.equivalent_to == PIFO_RANK_FUNCTIONS[name].equivalent_to

    def test_validation_summary_is_canonical(self):
        result = validate_rank_function("edf", seeds=range(3), n_cycles=60)
        blob = result.summary_json()
        assert blob == json.dumps(
            result.summary(), sort_keys=True, indent=1
        ) + "\n"
        assert json.loads(blob)["passed"] is True


class TestUserDefinedRankFunction:
    def test_new_discipline_in_pifo_api_only(self):
        """The issue's headline claim: a brand-new discipline built
        from nothing but the PIFO expression API passes the three-way
        differential campaign.  Credit-based fair sharing: streams
        that have consumed more weighted service rank later."""
        credit_fair = RankFunction(
            name="credit_fair",
            rank=attr("credits") * 1500 // attr("weight"),
            description="least weighted service first",
        )
        result = validate_rank_function(
            credit_fair, seeds=range(6), n_cycles=80
        )
        assert result.passed, "\n".join(result.divergences)

    def test_registered_hybrid_is_thirty_lines_of_api(self):
        fn = rank_function("prio_edf")
        assert fn.equivalent_to is None
        result = validate_rank_function(fn, seeds=range(6), n_cycles=80)
        assert result.passed, "\n".join(result.divergences)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError, match="unknown rank attributes"):
            RankFunction(name="bad", rank=attr("jitter"))

    def test_unknown_vclock_rejected(self):
        with pytest.raises(ValueError, match="vclock"):
            RankFunction(name="bad", rank=attr("arrival"), vclock="wall")

    def test_non_integer_operand_rejected(self):
        with pytest.raises(TypeError, match="integer-only"):
            attr("deadline") * 0.5


class TestRegistryIntegration:
    def test_create_pifo_prefixed(self):
        discipline = create("pifo:sfq")
        assert isinstance(discipline, PifoDiscipline)
        assert discipline.name == "pifo:sfq"

    def test_unknown_rank_function(self):
        with pytest.raises(KeyError, match="unknown rank function"):
            create("pifo:nope")

    def test_software_pifo_orders_by_rank(self):
        discipline = create("pifo:edf")
        discipline.add_stream(SwStream(stream_id=0))
        discipline.add_stream(SwStream(stream_id=1))
        discipline.enqueue(
            Packet(stream_id=0, seq=1, arrival=1, deadline=9)
        )
        discipline.enqueue(
            Packet(stream_id=1, seq=2, arrival=2, deadline=4)
        )
        first = discipline.dequeue(0)
        second = discipline.dequeue(0)
        assert (first.stream_id, second.stream_id) == (1, 0)
        assert discipline.dequeue(0) is None


class TestBoundaryValidation:
    """Constructor-time rejections the PIFO tie-break rules mirror."""

    def test_red_min_equals_max_threshold_rejected(self):
        with pytest.raises(ValueError, match="min_th < max_th"):
            REDQueue(min_th=15, max_th=15)

    def test_red_zero_min_threshold_rejected(self):
        with pytest.raises(ValueError, match="0 < min_th"):
            REDQueue(min_th=0, max_th=15)

    def test_hfsc_zero_curve_leaf_rejected(self):
        with pytest.raises(ValueError, match="weight must be positive"):
            ClassNode(name="leaf", weight=0.0)

    def test_hfsc_zero_curve_class_rejected_through_tree(self):
        tree = HierarchicalFairShare()
        with pytest.raises(ValueError, match="weight must be positive"):
            tree.add_class("video", weight=0.0)

    def test_pifo_workload_zero_weight_rejected(self):
        scenario = generate_pifo_scenario(0, n_cycles=10)
        broken = dataclasses.replace(
            scenario,
            streams=(PifoStream(sid=0, weight=0),) + scenario.streams[1:],
        )
        with pytest.raises(ValueError, match="positive integer"):
            run_pifo("sfq", broken, engine="batch")

    def test_pifo_discipline_fractional_weight_rejected(self):
        discipline = create("pifo:sfq")
        with pytest.raises(ValueError, match="integer weights"):
            discipline.add_stream(SwStream(stream_id=0, weight=0.5))
