"""Integration tests for the composed endsystem router."""

import numpy as np
import pytest

from repro.endsystem import EndsystemConfig, EndsystemRouter
from repro.sim.nic import TEN_GIGABIT
from repro.traffic.generators import cbr_arrivals
from repro.traffic.specs import EndsystemStreamSpec, ratio_workload


class TestBandwidthSharing:
    def test_ratio_1124_steady_state(self):
        specs = ratio_workload((1, 1, 2, 4), frames_per_stream=2000)
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        # During the saturated first quarter, shares are 1:1:2:4.
        bw = result.te.bandwidth
        horizon = result.elapsed_us / 4
        means = {}
        for sid in bw.stream_ids:
            s = bw.series(sid, horizon, t_end=horizon)
            means[sid] = float(s.mbps[0])
        base = means[0]
        assert means[1] / base == pytest.approx(1.0, rel=0.05)
        assert means[2] / base == pytest.approx(2.0, rel=0.05)
        assert means[3] / base == pytest.approx(4.0, rel=0.05)

    def test_all_frames_delivered(self):
        specs = ratio_workload((1, 2), frames_per_stream=500)
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        assert result.frames_sent == 1000
        assert result.bytes_sent == 1000 * 1500

    def test_work_conserving_after_drain(self):
        # Once the high-share stream drains, capacity redistributes.
        specs = ratio_workload((1, 4), frames_per_stream=800)
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        bw = result.te.bandwidth
        full = bw.series(0, result.elapsed_us / 8, t_end=result.elapsed_us)
        # Stream 0's bandwidth in the last eighth exceeds its share in
        # the first eighth (stream 1 finished long before).
        assert full.mbps[-2] > full.mbps[0] * 1.5


class TestThroughputAnchors:
    def test_no_pci_anchor(self):
        specs = ratio_workload((1, 1, 2, 4), frames_per_stream=1000)
        router = EndsystemRouter(
            specs, EndsystemConfig(link=TEN_GIGABIT, include_pci=False)
        )
        result = router.run(preload=True)
        assert result.throughput_pps == pytest.approx(469_483, rel=0.01)

    def test_pio_anchor(self):
        specs = ratio_workload((1, 1, 2, 4), frames_per_stream=1000)
        router = EndsystemRouter(
            specs, EndsystemConfig(link=TEN_GIGABIT, include_pci=True)
        )
        result = router.run(preload=True)
        assert result.throughput_pps == pytest.approx(299_065, rel=0.01)

    def test_pci_accounting_populated(self):
        specs = ratio_workload((1, 1), frames_per_stream=200)
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        assert result.pci.total_words > 0
        assert len(result.pci.transfers) > 0


class TestTimedArrivals:
    def test_paced_arrivals_flow_through(self):
        specs = [
            EndsystemStreamSpec(
                sid=i,
                share=1.0,
                arrivals_us=cbr_arrivals(300, rate_pps=2000.0),
            )
            for i in range(2)
        ]
        router = EndsystemRouter(specs)
        result = router.run(preload=False)
        assert result.frames_sent == 600
        # Paced below capacity: delays stay bounded by a few frames.
        delays = result.te.delay.series(0)
        assert delays.mean_us < 5000

    def test_delay_reflects_queueing(self):
        # One overloaded stream: delay grows with position in queue.
        specs = [
            EndsystemStreamSpec(
                sid=0,
                share=1.0,
                arrivals_us=np.zeros(300),
            )
        ]
        router = EndsystemRouter(specs)
        result = router.run(preload=False)
        delays = result.te.delay.series(0).delays_us
        assert delays[-1] > delays[0]

    def test_validation_too_many_streams(self):
        specs = ratio_workload((1, 1, 2, 4, 8), frames_per_stream=10)
        with pytest.raises(ValueError):
            EndsystemRouter(specs, EndsystemConfig(n_slots=4))


class TestUndersubscribedPacing:
    def test_paced_streams_get_offered_rate(self):
        """When every stream offers less than its share, output tracks
        the offered rates, not the QoS weights (work conservation)."""
        from repro.traffic.generators import cbr_arrivals

        # Aggregate 4000 pps << 10667 pps capacity; equal offered rates
        # despite 1:4 shares.
        specs = [
            EndsystemStreamSpec(
                sid=0, share=1.0, arrivals_us=cbr_arrivals(800, 2000.0)
            ),
            EndsystemStreamSpec(
                sid=1, share=4.0, arrivals_us=cbr_arrivals(800, 2000.0)
            ),
        ]
        router = EndsystemRouter(specs)
        result = router.run(preload=False)
        bw = result.te.bandwidth
        b0 = bw.total_bytes(0)
        b1 = bw.total_bytes(1)
        assert b0 == b1  # both fully served
        # Delays stay small for both (no queueing at undersubscription).
        for sid in (0, 1):
            assert result.te.delay.series(sid).mean_us < 2000

    def test_weighted_jain_index_on_figure8(self):
        """The 1:1:2:4 run is perfectly weighted-fair by Jain's index."""
        specs = ratio_workload((1, 1, 2, 4), frames_per_stream=1200)
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        bw = result.te.bandwidth
        horizon = result.elapsed_us / 4
        meter = bw  # bandwidth within the saturated phase:
        weighted = {0: 1.0, 1: 1.0, 2: 2.0, 3: 4.0}
        # Build a phase-limited index from single-window series.
        import numpy as np

        values = []
        for sid in bw.stream_ids:
            series = bw.series(sid, horizon, t_end=horizon)
            values.append(float(series.mbps[0]) / weighted[sid])
        arr = np.asarray(values)
        jain = arr.sum() ** 2 / (len(arr) * (arr**2).sum())
        assert jain > 0.999
