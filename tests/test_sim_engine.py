"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(9.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_fifo_among_simultaneous(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(1.0, log.append, 2)
        sim.schedule(1.0, log.append, 3)
        sim.run()
        assert log == [1, 2, 3]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: None)
        assert sim.peek_time() == 3.0

    def test_rejects_past(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, log.append, "x")
        event.cancel()
        sim.run()
        assert log == []

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["early", "late"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert not sim.step()

    def test_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.events_run == 2
        assert sim.pending == 0

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek_time() == 2.0
