"""Tests for CSV export of experiment series."""

import csv

import pytest

from repro.metrics import (
    BandwidthMeter,
    DelayTracker,
    write_bandwidth_csv,
    write_delay_csv,
    write_rows_csv,
)


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestRowsCsv:
    def test_roundtrip(self, tmp_path):
        path = write_rows_csv(
            tmp_path / "t.csv", ["a", "b"], [[1, 2], [3, 4]]
        )
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_rows_csv(tmp_path / "x" / "y" / "t.csv", ["a"], [[1]])
        assert path.exists()

    def test_rejects_ragged(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows_csv(tmp_path / "t.csv", ["a"], [[1, 2]])


class TestBandwidthCsv:
    def _series(self):
        m = BandwidthMeter()
        for k in range(20):
            m.record(0, k * 10.0, 100)
            m.record(1, k * 10.0, 400)
        return {
            sid: m.series(sid, window_us=50.0, t_end=200.0) for sid in (0, 1)
        }

    def test_columns_and_rows(self, tmp_path):
        path = write_bandwidth_csv(tmp_path / "bw.csv", self._series())
        rows = read_csv(path)
        assert rows[0] == ["t_end_us", "stream0_mbps", "stream1_mbps"]
        assert len(rows) == 1 + 4  # 4 windows of 50us over 200us

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_bandwidth_csv(tmp_path / "bw.csv", {})

    def test_mismatched_grids_rejected(self, tmp_path):
        m = BandwidthMeter()
        m.record(0, 10.0, 100)
        m.record(1, 10.0, 100)
        series = {
            0: m.series(0, window_us=50.0, t_end=200.0),
            1: m.series(1, window_us=50.0, t_end=400.0),
        }
        with pytest.raises(ValueError):
            write_bandwidth_csv(tmp_path / "bw.csv", series)


class TestDelayCsv:
    def test_one_row_per_frame(self, tmp_path):
        t = DelayTracker()
        for k in range(5):
            t.record(0, float(k), float(k) + 2.0)
            t.record(1, float(k), float(k) + 4.0)
        series = {sid: t.series(sid) for sid in (0, 1)}
        path = write_delay_csv(tmp_path / "delay.csv", series)
        rows = read_csv(path)
        assert rows[0] == ["stream", "departure_us", "delay_us"]
        assert len(rows) == 1 + 10
        assert rows[1][2] == "2.0"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_delay_csv(tmp_path / "d.csv", {})


class TestEndToEndExport:
    def test_figure8_data_exports(self, tmp_path):
        from repro.experiments.figure8 import run_figure8

        result = run_figure8(frames_per_stream=800)
        path = write_bandwidth_csv(tmp_path / "figure8.csv", result.series)
        rows = read_csv(path)
        assert len(rows) > 2
        assert len(rows[0]) == 5  # time + four streams
