"""Tests for CSV and telemetry export of experiment series."""

import csv
import json

import pytest

from repro.metrics import (
    BandwidthMeter,
    DelayTracker,
    write_bandwidth_csv,
    write_delay_csv,
    write_metrics,
    write_metrics_json,
    write_metrics_prometheus,
    write_rows_csv,
)
from repro.observability import MetricsRegistry, parse_prometheus_text


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestRowsCsv:
    def test_roundtrip(self, tmp_path):
        path = write_rows_csv(
            tmp_path / "t.csv", ["a", "b"], [[1, 2], [3, 4]]
        )
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_rows_csv(tmp_path / "x" / "y" / "t.csv", ["a"], [[1]])
        assert path.exists()

    def test_rejects_ragged(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows_csv(tmp_path / "t.csv", ["a"], [[1, 2]])


class TestBandwidthCsv:
    def _series(self):
        m = BandwidthMeter()
        for k in range(20):
            m.record(0, k * 10.0, 100)
            m.record(1, k * 10.0, 400)
        return {
            sid: m.series(sid, window_us=50.0, t_end=200.0) for sid in (0, 1)
        }

    def test_columns_and_rows(self, tmp_path):
        path = write_bandwidth_csv(tmp_path / "bw.csv", self._series())
        rows = read_csv(path)
        assert rows[0] == ["t_end_us", "stream0_mbps", "stream1_mbps"]
        assert len(rows) == 1 + 4  # 4 windows of 50us over 200us

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_bandwidth_csv(tmp_path / "bw.csv", {})

    def test_mismatched_grids_rejected(self, tmp_path):
        m = BandwidthMeter()
        m.record(0, 10.0, 100)
        m.record(1, 10.0, 100)
        series = {
            0: m.series(0, window_us=50.0, t_end=200.0),
            1: m.series(1, window_us=50.0, t_end=400.0),
        }
        with pytest.raises(ValueError):
            write_bandwidth_csv(tmp_path / "bw.csv", series)


class TestDelayCsv:
    def test_one_row_per_frame(self, tmp_path):
        t = DelayTracker()
        for k in range(5):
            t.record(0, float(k), float(k) + 2.0)
            t.record(1, float(k), float(k) + 4.0)
        series = {sid: t.series(sid) for sid in (0, 1)}
        path = write_delay_csv(tmp_path / "delay.csv", series)
        rows = read_csv(path)
        assert rows[0] == ["stream", "departure_us", "delay_us"]
        assert len(rows) == 1 + 10
        assert rows[1][2] == "2.0"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_delay_csv(tmp_path / "d.csv", {})


class TestMetricsExport:
    def _registry(self) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("tx_total", "frames").inc(7, stream=0)
        r.counter("tx_total").inc(3, stream=1)
        r.gauge("depth", "queue depth").set(4.5, stream=0)
        r.histogram("slack", "deadline slack", buckets=(1, 8)).observe(
            3, stream=0
        )
        return r

    def test_prometheus_round_trip(self, tmp_path):
        r = self._registry()
        path = write_metrics_prometheus(tmp_path / "m.prom", r)
        assert parse_prometheus_text(path.read_text()) == r.snapshot()

    def test_json_round_trip(self, tmp_path):
        r = self._registry()
        path = write_metrics_json(tmp_path / "m.json", r)
        assert json.loads(path.read_text()) == r.snapshot()

    def test_suffix_dispatch(self, tmp_path):
        r = self._registry()
        prom = write_metrics(tmp_path / "a.prom", r)
        txt = write_metrics(tmp_path / "b.txt", r)
        js = write_metrics(tmp_path / "c.json", r)
        assert prom.read_text().startswith("# HELP")
        assert txt.read_text() == prom.read_text()
        assert json.loads(js.read_text()) == r.snapshot()

    def test_known_suffixes_stay_silent(self, tmp_path, recwarn):
        r = self._registry()
        write_metrics(tmp_path / "a.prom", r)
        write_metrics(tmp_path / "b.txt", r)
        write_metrics(tmp_path / "c.json", r)
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_bogus_suffix_warns_but_writes_prometheus(self, tmp_path):
        r = self._registry()
        with pytest.warns(UserWarning, match="unrecognized metrics suffix"):
            path = write_metrics(tmp_path / "m.jsno", r)
        # The typo'd path still gets valid Prometheus text, not JSON.
        assert parse_prometheus_text(path.read_text()) == r.snapshot()

    def test_suffixless_path_warns(self, tmp_path):
        with pytest.warns(UserWarning, match="unrecognized metrics suffix"):
            write_metrics(tmp_path / "metrics", self._registry())

    def test_creates_parent_dirs(self, tmp_path):
        path = write_metrics(tmp_path / "x" / "y" / "m.prom", self._registry())
        assert path.exists()

    def test_experiment_metrics_round_trip(self, tmp_path):
        """End to end: a real experiment's registry survives export,
        re-parse and comparison against the live snapshot."""
        from repro.experiments.figure8 import run_figure8
        from repro.observability import Observability

        obs = Observability(trace=False, profile=False)
        run_figure8(frames_per_stream=400, observer=obs)
        path = write_metrics(tmp_path / "fig8.prom", obs.metrics)
        parsed = parse_prometheus_text(path.read_text())
        assert parsed == obs.metrics.snapshot()
        frames = parsed["endsystem_tx_frames_total"]["samples"]
        assert sum(frames.values()) == 1600


class TestEndToEndExport:
    def test_figure8_data_exports(self, tmp_path):
        from repro.experiments.figure8 import run_figure8

        result = run_figure8(frames_per_stream=800)
        path = write_bandwidth_csv(tmp_path / "figure8.csv", result.series)
        rows = read_csv(path)
        assert len(rows) > 2
        assert len(rows[0]) == 5  # time + four streams
