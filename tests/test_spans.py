"""Unit tests for the hierarchical span tracer (repro.observability.spans)."""

import json

import pytest

from repro.aggregation import AggregationTier
from repro.observability.spans import (
    SpanRecord,
    SpanTracer,
    activate_tracer,
    canonical_span_bytes,
    chrome_trace,
    critical_path,
    current_tracer,
    deterministic_span_id,
    load_spans_jsonl,
    spans_jsonl_bytes,
    summarize_spans,
)


class FakeClock:
    """Deterministic perf_counter/time stand-in."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_tracer(trace_id="t"):
    return SpanTracer(trace_id, clock=FakeClock(), wall=FakeClock(1.0))


class TestIdentity:
    def test_span_id_is_content_addressed(self):
        a = deterministic_span_id("t", "campaign[0]/seed[3]")
        assert a == deterministic_span_id("t", "campaign[0]/seed[3]")
        assert len(a) == 16
        assert a != deterministic_span_id("t", "campaign[0]/seed[4]")
        assert a != deterministic_span_id("u", "campaign[0]/seed[3]")

    def test_paths_nest_and_ordinals_count_per_parent_per_name(self):
        tracer = make_tracer()
        with tracer.span("campaign", kind="campaign"):
            with tracer.span("seed"):
                pass
            with tracer.span("seed"):
                pass
            with tracer.span("prepass"):
                pass
        paths = [r.path for r in tracer.records()]
        assert paths == [
            "campaign[0]",
            "campaign[0]/seed[0]",
            "campaign[0]/seed[1]",
            "campaign[0]/prepass[0]",
        ]

    def test_explicit_ordinal_pins_the_path(self):
        tracer = make_tracer()
        with tracer.span("campaign"):
            with tracer.span("seed", ordinal=7) as sp:
                pass
        assert sp.path == "campaign[0]/seed[7]"
        assert sp.span_id == deterministic_span_id("t", "campaign[0]/seed[7]")

    def test_parent_ids_link_the_tree(self):
        tracer = make_tracer()
        with tracer.span("campaign") as root:
            with tracer.span("seed") as child:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id


class TestPropagation:
    def test_worker_tracer_reproduces_parent_side_ids(self):
        """from_context + absorb == recording directly under the parent."""
        direct = make_tracer()
        with direct.span("campaign"):
            with direct.span("item", ordinal=5, cache="miss"):
                pass

        parent = make_tracer()
        with parent.span("campaign"):
            ctx = parent.context()
        worker = SpanTracer.from_context(ctx)
        with worker.span("item", ordinal=5, cache="miss"):
            pass
        parent.absorb(worker.export_records())

        assert parent.canonical_bytes() == direct.canonical_bytes()

    def test_context_names_the_trace_root_outside_any_span(self):
        tracer = make_tracer()
        ctx = tracer.context()
        assert ctx == {"trace_id": "t", "path": "", "span_id": None}

    def test_contextvar_activation(self):
        assert current_tracer() is None
        tracer = make_tracer()
        with activate_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestCanonicalBytes:
    def test_excludes_timing_and_non_canonical_spans(self):
        tracer = make_tracer()
        with tracer.span("campaign"):
            with tracer.span("item", ordinal=0) as item:
                item.measure(lane=3)
            tracer.record_span(
                "shard", kind="shard", canonical=False,
                measures={"lane": 1},
            )
        lines = tracer.canonical_bytes().decode().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [r["path"] for r in rows] == ["campaign[0]", "campaign[0]/item[0]"]
        for row in rows:
            assert set(row) == {
                "kind", "name", "parent_id", "path", "span_id", "tags",
            }

    def test_path_sorted_regardless_of_record_order(self):
        tracer = make_tracer()
        with tracer.span("campaign"):
            with tracer.span("item", ordinal=11):
                pass
            with tracer.span("item", ordinal=2):
                pass
        rows = [
            json.loads(line)
            for line in tracer.canonical_bytes().decode().splitlines()
        ]
        assert [r["path"] for r in rows] == [
            "campaign[0]",
            "campaign[0]/item[2]",
            "campaign[0]/item[11]",
        ]

    def test_tags_are_deterministic_scalars(self):
        tracer = make_tracer()
        with tracer.span("campaign", seeds=8, mode="outcome", obj=object()):
            pass
        (row,) = [
            json.loads(line)
            for line in tracer.canonical_bytes().decode().splitlines()
        ]
        assert row["tags"]["seeds"] == 8
        assert row["tags"]["mode"] == "outcome"
        assert isinstance(row["tags"]["obj"], str)

    def test_jsonl_round_trips_through_loader(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("campaign", seeds=2) as sp:
            sp.measure(workers=4)
        out = tmp_path / "spans.jsonl"
        out.write_bytes(spans_jsonl_bytes(tracer.records()))
        loaded = load_spans_jsonl(out)
        assert [r.to_dict() for r in loaded] == [
            r.to_dict() for r in tracer.records()
        ]
        assert canonical_span_bytes(loaded) == tracer.canonical_bytes()


class TestAggregatedSpans:
    def test_record_span_appends_completed_span(self):
        tracer = make_tracer()
        with tracer.span("engine_run"):
            tracer.record_span(
                "schedule", kind="phase", tags={"calls": 10},
                measures={"wall_us": 1234}, dur_us=0,
            )
        phase = tracer.records()[-1]
        assert phase.path == "engine_run[0]/schedule[0]"
        assert phase.tags == {"calls": 10}
        assert phase.measures == {"wall_us": 1234}


class TestExportsAndReports:
    def _tree(self):
        tracer = make_tracer()
        with tracer.span("campaign", seeds=2):
            with tracer.span("item", ordinal=0, cache="hit") as sp:
                sp.measure(lane=1)
            with tracer.span("item", ordinal=1, cache="miss"):
                pass
        return tracer

    def test_chrome_trace_layout(self):
        trace = self._tree().chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["args"]["name"] for e in meta}
        assert {"coordinator", "shard-1"} <= names
        assert len(spans) == 3
        lanes = {e["name"]: e["tid"] for e in spans}
        assert lanes["campaign"] == 0 and lanes["item"] in (0, 1)
        for e in spans:
            assert e["dur"] >= 1 and "path" in e["args"]

    def test_summarize_groups_by_kind_and_name(self):
        (campaign, items) = summarize_spans(self._tree().records())[:2]
        groups = {g["name"]: g for g in (campaign, items)}
        assert groups["item"]["count"] == 2
        assert groups["item"]["tag_counts"] == {"cache=hit": 1, "cache=miss": 1}
        assert groups["campaign"]["tag_totals"] == {"seeds": 2}

    def test_critical_path_descends_longest_child(self):
        tracer = SpanTracer("t", clock=FakeClock(), wall=FakeClock(1.0))
        with tracer.span("campaign"):
            with tracer.span("fast"):
                pass
            with tracer.span("slow"):
                with tracer.span("inner"):
                    pass
        chain = critical_path(tracer.records())
        assert [e["name"] for e in chain] == ["campaign", "slow", "inner"]
        assert chain[0]["fraction"] == 1.0
        assert all(e["self_us"] >= 0 for e in chain)

    def test_empty_records(self):
        assert summarize_spans([]) == []
        assert critical_path([]) == []
        assert canonical_span_bytes([]) == b""


class TestAggregationTierSpans:
    def test_flush_spans_rolls_up_churn_ops(self):
        tracer = make_tracer()
        tier = AggregationTier(4, engine="batch", strict=False, tracer=tracer)
        for sid in range(6):
            tier.join(sid)
        tier.leave(5, weight=1)
        for i in range(3):
            tier.submit(i, deadline=1 << 20)
        tier.drain()
        tier.flush_spans()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["churn.join"].tags["ops"] == 6
        assert by_name["churn.leave"].tags["ops"] == 1
        assert by_name["submit"].tags["ops"] == 3
        assert by_name["dispatch"].tags["ops"] >= 3
        assert by_name["dispatch"].kind == "dispatch"
        assert by_name["churn.join"].measures["wall_us"] >= 0

    def test_flush_resets_accumulators(self):
        tracer = make_tracer()
        tier = AggregationTier(4, engine="batch", strict=False, tracer=tracer)
        tier.join(0)
        tier.flush_spans()
        n = len(tracer.records())
        tier.flush_spans()
        assert len(tracer.records()) == n  # nothing new accumulated

    def test_untraced_tier_keeps_fast_path(self):
        tier = AggregationTier(4, engine="batch", strict=False)
        assert tier.tracer is None
        tier.join(0)
        tier.flush_spans()  # no-op, must not raise

    def test_flush_requires_no_pending_ops(self):
        tracer = make_tracer()
        tier = AggregationTier(4, engine="batch", strict=False, tracer=tracer)
        tier.flush_spans()
        assert tracer.records() == []


class TestEnginePhaseSpans:
    def test_run_bucket_emits_phase_spans_only_when_traced(self):
        from repro.core.differential import generate_scenario, run_bucket

        scenarios = [generate_scenario(3, n_cycles=60)]
        tracer = make_tracer()
        run_bucket(scenarios, tracer=tracer)
        phases = {r.name for r in tracer.records() if r.kind == "phase"}
        assert {"schedule", "priority_update"} <= phases
        sched = next(r for r in tracer.records() if r.name == "schedule")
        assert sched.tags["calls"] > 0
        assert "wall_us" in sched.measures

    def test_phase_report_disabled_by_default(self):
        from repro.core.attributes import SchedulingMode, StreamConfig
        from repro.core.config import ArchConfig, Routing
        from repro.core.tensor_engine import CampaignEngine

        arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
        streams = [
            StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
            for i in range(4)
        ]
        engine = CampaignEngine(arch, [streams])
        engine.run_periodic(5, step=1)
        assert engine.phase_report() == {}


@pytest.mark.parametrize("bad", ["seed[x]", ""])
def test_path_key_requires_bracketed_segments(bad):
    from repro.observability.spans import _path_key

    with pytest.raises(ValueError):
        _path_key(bad)
