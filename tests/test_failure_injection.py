"""Failure-injection and stress tests across the system layers."""

import numpy as np
import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.endsystem import EndsystemConfig, EndsystemRouter
from repro.traffic.specs import EndsystemStreamSpec, ratio_workload


class TestTinyCardQueues:
    def test_depth_one_still_conserves_and_shares(self):
        """Card queues of depth 1 throttle but never lose frames."""
        specs = ratio_workload((1, 2), frames_per_stream=300)
        config = EndsystemConfig(batch_size=1, card_queue_depth=1)
        router = EndsystemRouter(specs, config)
        result = router.run(preload=True)
        assert result.frames_sent == 600

    def test_small_batches_match_large(self):
        """Transfer batch size is a performance knob, not a semantic one."""
        def run(batch):
            specs = ratio_workload((1, 2), frames_per_stream=200)
            router = EndsystemRouter(
                specs, EndsystemConfig(batch_size=batch)
            )
            result = router.run(preload=True)
            bw = result.te.bandwidth
            return [bw.total_bytes(sid) for sid in bw.stream_ids]

        assert run(1) == run(64)


class TestStarvationAndGaps:
    def test_idle_gap_then_resume(self):
        """Workload with a long silent gap: the service chain restarts."""
        arrivals = np.concatenate(
            [np.arange(50) * 100.0, 1e6 + np.arange(50) * 100.0]
        )
        specs = [
            EndsystemStreamSpec(sid=0, share=1.0, arrivals_us=arrivals)
        ]
        router = EndsystemRouter(specs)
        result = router.run(preload=False)
        assert result.frames_sent == 100
        assert result.elapsed_us >= 1e6

    def test_one_empty_stream_never_blocks_others(self):
        specs = [
            EndsystemStreamSpec(
                sid=0, share=1.0, arrivals_us=np.zeros(100)
            ),
            EndsystemStreamSpec(
                sid=1, share=1.0, arrivals_us=np.zeros(0)
            ),
        ]
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        assert result.frames_sent == 100


class TestSchedulerEdgeCases:
    def test_all_slots_drain_mid_run(self):
        arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
        s = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
                for i in range(4)
            ],
        )
        s.enqueue(0, deadline=1, arrival=0)
        out1 = s.decision_cycle(0)
        out2 = s.decision_cycle(1)
        assert out1.circulated_sid == 0
        assert out2.circulated_sid is None
        # Re-arming after a dry spell works.
        s.enqueue(2, deadline=5, arrival=2)
        assert s.decision_cycle(2).circulated_sid == 2

    def test_single_populated_slot_of_32(self):
        arch = ArchConfig(n_slots=32, routing=Routing.WR, wrap=False)
        s = ShareStreamsScheduler(
            arch, [StreamConfig(sid=17, period=1, mode=SchedulingMode.EDF)]
        )
        for k in range(10):
            s.enqueue(17, deadline=k + 1, arrival=k)
        for t in range(10):
            assert s.decision_cycle(t).circulated_sid == 17

    def test_deadline_wrap_horizon_behavior(self):
        """Wrapped mode inverts ordering past the 32768 horizon —
        a documented hardware artifact the ideal mode avoids."""
        arch = ArchConfig(n_slots=2, routing=Routing.WR, wrap=True)
        s = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
                for i in range(2)
            ],
        )
        s.enqueue(0, deadline=0, arrival=0)
        s.enqueue(1, deadline=40_000, arrival=0)
        # 0 vs 40000: serial distance > 2**15, so 40000 "precedes" 0.
        assert s.decision_cycle(0, count_misses=False).circulated_sid == 1


class TestDropPolicyUnderOverload:
    def test_dwcs_drop_late_sheds_backlog(self):
        from repro.disciplines import DWCS, Packet, SwStream

        dwcs = DWCS(drop_late=True)
        for sid in range(2):
            dwcs.add_stream(
                SwStream(
                    stream_id=sid,
                    period=1,
                    loss_numerator=1,
                    loss_denominator=2,
                )
            )
        # 2x overload: one service per tick, two arrivals per tick.
        for k in range(200):
            for sid in range(2):
                dwcs.enqueue(
                    Packet(
                        stream_id=sid,
                        seq=k,
                        arrival=float(k),
                        deadline=float(k + 1),
                    )
                )
        served = 0
        for t in range(200):
            if dwcs.dequeue(float(t)) is not None:
                served += 1
        # Dropping keeps the backlog bounded near the lateness horizon.
        assert len(dwcs.dropped) > 0
        assert dwcs.backlog < 100
        assert served == 200

    def test_register_block_drop_late_chain(self):
        from repro.core.register_block import RegisterBaseBlock

        slot = RegisterBaseBlock(
            StreamConfig(sid=0, period=1, mode=SchedulingMode.DWCS), wrap=False
        )
        for k in range(5):
            slot.enqueue_request(deadline=k + 1, arrival=k)
        # At t=10 everything is late; drop until the queue empties.
        dropped = 0
        while slot.drop_late_head(10) is not None:
            dropped += 1
        assert dropped == 5
        assert slot.head is None


class TestRingOverflowPaths:
    def test_qm_overflow_counted_not_lost_silently(self):
        from repro.endsystem.queue_manager import QueueManager

        specs = [
            EndsystemStreamSpec(sid=0, share=1.0, arrivals_us=np.zeros(10))
        ]
        qm = QueueManager(specs, queue_capacity=4)
        queued = qm.preload(0)
        assert queued == 4
        assert qm.descriptors[0].dropped_full == 1  # stops at first drop

    def test_fabric_overflow_counted(self):
        from repro.linecard import DualPortedSRAM, SwitchFabric

        sram = DualPortedSRAM(1, queue_depth=4)
        fabric = SwitchFabric(sram)
        fabric.offer(0, range(100))
        assert sram.stats.packets_deposited == 4
        assert sram.stats.packets_dropped_full == 1
