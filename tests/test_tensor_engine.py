"""Tensor engine differential tests: campaign batching + fast-forward.

Three properties are pinned here:

* **Three-way agreement** — reference (object model), batch
  (single-scenario vectorized) and tensor (scenario-batched campaign
  engine) produce identical cycle records and final counters on >= 100
  randomized scenarios grouped into same-shape buckets (the bucketing
  contract in ``docs/ENGINES.md``).
* **Idle-cycle fast-forward is invisible** — skipping globally-idle
  decision cycles in bulk never changes any observable: periodic runs
  with ``fast_forward`` on and off match array-for-array (including
  the traced hardware timeline), and bucketed runs over sparse
  workloads still match the per-cycle oracle record-for-record.
  (The golden decision trace in ``tests/test_trace_replay.py`` is
  replayed through the tensor adapter there, byte-for-byte.)
* **Campaign plumbing** — ``campaign(engine="tensor")`` serializes
  byte-identically to the sequential path, under any worker count,
  with its own result-cache namespace and merged telemetry.
"""

import dataclasses
import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_engine import BatchScheduler, build_bitonic_passes
from repro.core.config import BlockMode, Routing
from repro.core.differential import (
    campaign,
    cross_validate,
    cross_validate_bucket,
    generate_scenario,
    run_bucket,
    run_engine,
)
from repro.core.tensor_engine import CampaignEngine, TensorScheduler
from tests.strategies import (
    bucketed as _bucketed,
    periodic_observables as _periodic_observables,
    random_arch_streams as _random_arch_streams,
)

# ----------------------------------------------------------------------


class TestThreeWayDifferential:
    def test_hundred_randomized_bucketed_scenarios(self):
        """The tensor acceptance campaign: >= 100 seeded scenarios,
        bucketed by shape, each compared cycle-for-cycle and
        counter-for-counter against BOTH the object model and the
        batch engine."""
        scenarios = [
            generate_scenario(seed, n_cycles=150) for seed in range(110)
        ]
        buckets = _bucketed(scenarios)
        assert len(scenarios) >= 100
        # The bucketing must actually batch: some bucket holds S > 1.
        assert max(len(m) for m in buckets.values()) > 1
        assert {s.routing for s in scenarios} == {Routing.BA, Routing.WR}
        assert {s.block_mode for s in scenarios} == {
            BlockMode.MAX_FIRST, BlockMode.MIN_FIRST,
        }
        for members in buckets.values():
            tensor_traces = run_bucket(members)
            for scenario, tensor in zip(members, tensor_traces):
                ref = run_engine(scenario, "reference")
                bat = run_engine(scenario, "batch")
                context = f"\nreproduce with seed {scenario.seed}"
                assert bat.records == ref.records, context
                assert tensor.records == ref.records, context
                assert bat.counters == ref.counters, context
                assert tensor.counters == ref.counters, context

    def test_trace_mode_buckets_byte_identical_telemetry(self):
        """Structured telemetry event streams from bucketed runs match
        the oracle's, for buckets that genuinely batch (S > 1)."""
        scenarios = [
            generate_scenario(seed, n_cycles=120, max_slots=16)
            for seed in range(60)
        ]
        checked = 0
        for members in _bucketed(scenarios).values():
            if len(members) < 2:
                continue
            divergences = cross_validate_bucket(members, mode="trace")
            assert divergences == [None] * len(members)
            checked += 1
            if checked == 3:
                break
        assert checked == 3

    def test_mixed_shape_bucket_rejected(self):
        a = generate_scenario(0, n_cycles=100)
        b = dataclasses.replace(a, n_cycles=101)
        try:
            run_bucket([a, b])
        except ValueError as exc:
            assert "shape" in str(exc)
        else:  # pragma: no cover - failure path
            raise AssertionError("mixed-shape bucket was accepted")


class TestIdleFastForward:
    @given(
        seed=st.integers(0, 10_000),
        stride=st.integers(2, 9),
        n_slots=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_periodic_fast_forward_is_invisible(self, seed, stride, n_slots):
        """``run_periodic`` with idle-cycle fast-forward produces the
        identical observables — winner sequence, counters, hardware
        cycle count AND the traced FSM timeline — as stepping every
        idle cycle individually."""
        arch, streams = _random_arch_streams(seed, n_slots)
        observed = {}
        for fast_forward in (True, False):
            scheduler = BatchScheduler(arch, streams, trace_timeline=True)
            result = scheduler.run_periodic(
                60,
                stride=stride,
                consume="winner",
                collect_winners=True,
                fast_forward=fast_forward,
            )
            observed[fast_forward] = _periodic_observables(scheduler, result)
            if fast_forward:
                fast_forwarded = scheduler.fast_forwarded
        assert observed[True] == observed[False]
        if stride > n_slots:
            # Winner-only service: at most n_slots consumptions become
            # available per stride window, so idle gaps are guaranteed.
            assert fast_forwarded > 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_sparse_bucket_matches_oracle_per_cycle(self, seed):
        """Bucketed runs over sparse workloads (arrivals in ~5% of
        cycles, so campaign-wide idle gaps dominate) still produce the
        oracle's decision trace record-for-record."""
        scenario = dataclasses.replace(
            generate_scenario(seed, n_cycles=120, max_slots=16),
            arrival_prob=0.05,
        )
        stats: dict = {}
        (divergence,) = cross_validate_bucket([scenario], stats=stats)
        assert divergence is None, f"\n{divergence}"
        assert stats["cycles"] == 120

    def test_sparse_bucket_actually_fast_forwards(self):
        """Same-shape sparse siblings ride one engine and the idle gaps
        are provably skipped (the telemetry counter is non-zero)."""
        base = generate_scenario(7, n_cycles=200, max_slots=16)
        members = [
            dataclasses.replace(base, seed=seed, arrival_prob=0.03)
            for seed in (7, 1007, 2007)
        ]
        stats: dict = {}
        divergences = cross_validate_bucket(members, stats=stats)
        assert divergences == [None, None, None]
        assert stats["fast_forwarded"] > 0
        assert stats["cycles"] == 3 * 200

    def test_tensor_run_periodic_matches_batch_per_scenario(self):
        """The tensorized periodic path (with fast-forward) equals S
        independent batch-engine runs, winners array included."""
        for case in range(10):
            rng = random.Random(9000 + case)
            n_slots = rng.choice((2, 4, 8))
            arch, _ = _random_arch_streams(9000 + case, n_slots)
            s_count = rng.randint(2, 5)
            stream_lists = [
                _random_arch_streams(13 * case + s, n_slots)[1]
                for s in range(s_count)
            ]
            stride = np.array(
                [[rng.randint(1, 6) for _ in range(n_slots)]
                 for _ in range(s_count)],
                dtype=np.int64,
            )
            consume = rng.choice(
                ("winner",) if arch.routing is Routing.WR
                else ("winner", "block")
            )
            engine = CampaignEngine(arch, stream_lists)
            tensor_results = engine.run_periodic(
                80, stride=stride, consume=consume, collect_winners=True
            )
            for s in range(s_count):
                scheduler = BatchScheduler(arch, stream_lists[s])
                expected = scheduler.run_periodic(
                    80,
                    stride=stride[s],
                    consume=consume,
                    collect_winners=True,
                )
                got = tensor_results[s]
                context = f"case {case} scenario {s}"
                assert got.wins.tolist() == expected.wins.tolist(), context
                assert got.misses.tolist() == expected.misses.tolist(), context
                assert (
                    got.serviced.tolist() == expected.serviced.tolist()
                ), context
                assert (
                    got.winners.tolist() == expected.winners.tolist()
                ), context
                assert got.frames_scheduled == expected.frames_scheduled


class TestCampaignTensorPath:
    def test_summary_byte_identical_to_sequential(self):
        sequential = campaign(range(40), n_cycles=120)
        tensor = campaign(range(40), n_cycles=120, engine="tensor")
        assert tensor.passed
        assert tensor.summary_json() == sequential.summary_json()

    def test_worker_count_invisible(self):
        solo = campaign(range(30), n_cycles=100, engine="tensor")
        pooled = campaign(range(30), n_cycles=100, engine="tensor", workers=3)
        assert pooled.summary_json() == solo.summary_json()

    def test_cache_namespace_disjoint_from_batch(self, tmp_path):
        """Tensor-path results never collide with cached batch-path
        entries: a warm batch cache yields zero tensor hits, and a
        second tensor run is served entirely from cache."""
        seeds = range(20)
        campaign(seeds, n_cycles=100, cache_dir=tmp_path)
        cold = campaign(
            seeds, n_cycles=100, engine="tensor", cache_dir=tmp_path
        )
        assert cold.cached == 0 and cold.executed == 20
        warm = campaign(
            seeds, n_cycles=100, engine="tensor", cache_dir=tmp_path
        )
        assert warm.cached == 20 and warm.executed == 0
        assert warm.summary_json() == cold.summary_json()

    def test_telemetry_merged_across_buckets(self):
        result = campaign(range(25), n_cycles=100, engine="tensor")
        assert result.engine == "tensor"
        assert result.telemetry is not None
        samples = result.telemetry["differential_bucket_scenarios_total"][
            "samples"
        ]
        assert sum(samples.values()) == 25
        assert "differential_fast_forwarded_cycles_total" in result.telemetry
        # Telemetry is an execution fact: it must stay out of the
        # canonical summary so engines serialize identically.
        assert "telemetry" not in result.summary()

    def test_single_seed_validator_tensor_engine(self):
        for seed in range(12):
            scenario = generate_scenario(seed, n_cycles=150)
            divergence = cross_validate(scenario, engine="tensor")
            assert divergence is None, f"\n{divergence}"


class TestTensorAdapterSurface:
    def test_single_scenario_adapter_matches_batch(self):
        """TensorScheduler (S=1 slice) walks the same interactive
        surface as BatchScheduler with identical outcomes."""
        arch, streams = _random_arch_streams(42, 4)
        tensor = TensorScheduler(arch, streams)
        batch = BatchScheduler(arch, streams)
        for t in range(50):
            for sid in range(4):
                if (t + sid) % 3 == 0:
                    tensor.enqueue(sid, deadline=t + sid + 1, arrival=t)
                    batch.enqueue(sid, deadline=t + sid + 1, arrival=t)
            a = tensor.decision_cycle(t, consume="winner", count_misses=True)
            b = batch.decision_cycle(t, consume="winner", count_misses=True)
            assert a.circulated_sid == b.circulated_sid
            assert a.block == b.block
            assert a.misses == b.misses
            assert a.hw_cycles == b.hw_cycles
        for sid in range(4):
            ts, bs = tensor.slot(sid), batch.slot(sid)
            assert ts.backlog == bs.backlog
            assert (ts.head is None) == (bs.head is None)
        assert {
            sid: (c.wins, c.serviced, c.missed_deadlines)
            for sid, c in tensor.counters().items()
        } == {
            sid: (c.wins, c.serviced, c.missed_deadlines)
            for sid, c in batch.counters().items()
        }
        assert tensor.cycles_per_decision == batch.cycles_per_decision

    def test_bitonic_pass_schedules_shared_across_engines(self):
        """Pass schedules are memoized per slot count: every engine
        instance of the same width shares one tuple object."""
        passes = build_bitonic_passes(8)
        assert build_bitonic_passes(8) is passes
        arch, streams = _random_arch_streams(
            1, 8
        )
        arch = dataclasses.replace(arch, schedule="bitonic")
        a = BatchScheduler(arch, streams)
        b = CampaignEngine(arch, [streams, streams])
        assert a._bitonic_passes is passes
        assert b._bitonic_passes is passes
