"""Tests for the Table 2 pairwise ordering rules."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import HardwareAttributes
from repro.core.rules import (
    Rule,
    compare,
    compare_with_rule,
    evaluate,
    ordering_key,
)


def attrs(
    sid=0, deadline=0, x=0, y=0, arrival=0, valid=True
) -> HardwareAttributes:
    return HardwareAttributes(
        sid=sid,
        deadline=deadline,
        loss_numerator=x,
        loss_denominator=y,
        arrival=arrival,
        valid=valid,
    )


attr_strategy = st.builds(
    attrs,
    sid=st.integers(0, 31),
    deadline=st.integers(0, 200),
    x=st.integers(0, 8),
    y=st.integers(0, 8),
    arrival=st.integers(0, 50),
    valid=st.booleans(),
)


class TestRule1EarliestDeadline:
    def test_earlier_deadline_wins(self):
        r = evaluate(attrs(deadline=5), attrs(deadline=9))
        assert r.result == -1
        assert r.rule is Rule.EARLIEST_DEADLINE

    def test_wrapped_deadline(self):
        # 65530 is "earlier" than 2 across the 16-bit boundary.
        r = evaluate(attrs(deadline=65530), attrs(deadline=2))
        assert r.result == -1

    def test_ideal_mode_disables_wrap(self):
        r = evaluate(attrs(deadline=65530), attrs(deadline=2), wrap=False)
        assert r.result == 1


class TestRule2LowestWindowConstraint:
    def test_lower_constraint_wins(self):
        # 1/4 < 1/2 with equal deadlines.
        r = evaluate(attrs(deadline=5, x=1, y=4), attrs(deadline=5, x=1, y=2))
        assert r.result == -1
        assert r.rule is Rule.LOWEST_WINDOW_CONSTRAINT

    def test_zero_beats_nonzero(self):
        r = evaluate(attrs(deadline=5, x=0, y=4), attrs(deadline=5, x=1, y=2))
        assert r.result == -1
        assert r.rule is Rule.LOWEST_WINDOW_CONSTRAINT

    def test_cross_multiplication_equivalence(self):
        # 2/4 == 1/2 -> rule 2 does not fire; falls through to rule 4.
        r = evaluate(attrs(deadline=5, x=2, y=4), attrs(deadline=5, x=1, y=2))
        assert r.rule is Rule.LOWEST_NUMERATOR_EQUAL_WC


class TestRule3HighestDenominatorZeroWC:
    def test_higher_denominator_wins(self):
        r = evaluate(attrs(deadline=5, x=0, y=9), attrs(deadline=5, x=0, y=3))
        assert r.result == -1
        assert r.rule is Rule.HIGHEST_DENOMINATOR_ZERO_WC

    def test_requires_both_zero(self):
        r = evaluate(attrs(deadline=5, x=0, y=9), attrs(deadline=5, x=1, y=3))
        assert r.rule is Rule.LOWEST_WINDOW_CONSTRAINT


class TestRule4LowestNumeratorEqualWC:
    def test_lower_numerator_wins(self):
        # 1/2 vs 2/4: equal ratios, numerator 1 first.
        r = evaluate(attrs(deadline=5, x=1, y=2), attrs(deadline=5, x=2, y=4))
        assert r.result == -1
        assert r.rule is Rule.LOWEST_NUMERATOR_EQUAL_WC


class TestRule5FCFS:
    def test_earlier_arrival_wins(self):
        r = evaluate(
            attrs(deadline=5, x=1, y=2, arrival=3),
            attrs(deadline=5, x=1, y=2, arrival=7),
        )
        assert r.result == -1
        assert r.rule is Rule.FCFS


class TestValidityAndTieBreak:
    def test_invalid_always_loses(self):
        r = evaluate(attrs(deadline=1, valid=False), attrs(deadline=99))
        assert r.result == 1
        assert r.rule is Rule.VALIDITY

    def test_total_tie_breaks_on_sid(self):
        r = evaluate(attrs(sid=2, deadline=5), attrs(sid=7, deadline=5))
        assert r.result == -1
        assert r.rule is Rule.STREAM_ID

    def test_never_returns_zero(self):
        r = evaluate(attrs(sid=1), attrs(sid=1))
        assert r.result in (-1, 1)


class TestDeadlineOnlyMode:
    def test_ignores_window_fields(self):
        # Equal deadlines, different windows: falls to FCFS.
        r = evaluate(
            attrs(deadline=5, x=0, y=9, arrival=7),
            attrs(deadline=5, x=1, y=2, arrival=3),
            deadline_only=True,
        )
        assert r.rule is Rule.FCFS
        assert r.result == 1


class TestConsistency:
    @given(a=attr_strategy, b=attr_strategy)
    def test_fast_path_matches_evaluate(self, a, b):
        for wrap in (True, False):
            for deadline_only in (True, False):
                full = evaluate(a, b, wrap=wrap, deadline_only=deadline_only)
                fast = compare_with_rule(
                    a, b, wrap=wrap, deadline_only=deadline_only
                )
                assert (full.result, full.rule) == fast

    @given(a=attr_strategy, b=attr_strategy)
    def test_antisymmetry(self, a, b):
        ab = compare(a, b, wrap=False)
        ba = compare(b, a, wrap=False)
        if a == b:
            # sid tie-break favors the first operand on exact ties.
            assert ab == -1 and ba == -1
        else:
            assert ab == -ba or (a.sid == b.sid)

    @given(a=attr_strategy, b=attr_strategy)
    def test_matches_ordering_key(self, a, b):
        result = compare(a, b, wrap=False)
        ka, kb = ordering_key(a), ordering_key(b)
        if ka < kb:
            assert result == -1
        elif kb < ka:
            assert result == 1

    @given(a=attr_strategy, b=attr_strategy, c=attr_strategy)
    def test_transitivity_ideal(self, a, b, c):
        # The ordering-key formulation is a total order, hence the
        # pairwise rules are transitive in ideal-arithmetic mode.
        if compare(a, b, wrap=False) < 0 and compare(b, c, wrap=False) < 0:
            assert compare(a, c, wrap=False) < 0

    def test_predicate_vector_exposed(self):
        r = evaluate(attrs(deadline=1), attrs(deadline=2))
        assert r.predicates["deadline_lt"] is True
        assert r.predicates["deadline_eq"] is False
        assert "both_zero_wc" in r.predicates
