"""Tests for the synchronization-free circular queues."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.ring import ArrivalRing, CircularQueue


class TestCircularQueue:
    def test_capacity_rounds_to_pow2(self):
        assert CircularQueue(5).capacity == 8
        assert CircularQueue(8).capacity == 8

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CircularQueue(0)

    def test_fifo_order(self):
        q = CircularQueue(4)
        for x in "abcd":
            assert q.push(x)
        assert [q.pop() for _ in range(4)] == list("abcd")

    def test_push_full_fails(self):
        q = CircularQueue(2)
        assert q.push(1) and q.push(2)
        assert q.full
        assert not q.push(3)

    def test_pop_empty_returns_none(self):
        assert CircularQueue(2).pop() is None

    def test_peek(self):
        q = CircularQueue(2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_wraparound_reuse(self):
        q = CircularQueue(2)
        for k in range(100):
            assert q.push(k)
            assert q.pop() == k

    def test_extend_partial(self):
        q = CircularQueue(4)
        assert q.extend(range(10)) == 4

    def test_free_accounting(self):
        q = CircularQueue(4)
        q.push(1)
        assert q.free == 3

    @given(ops=st.lists(st.one_of(st.none(), st.integers()), max_size=200))
    def test_fifo_property(self, ops):
        """Any push/pop interleaving behaves like collections.deque."""
        from collections import deque

        q = CircularQueue(16)
        model: deque = deque()
        for op in ops:
            if op is None:
                assert q.pop() == (model.popleft() if model else None)
            else:
                pushed = q.push(op)
                assert pushed == (len(model) < q.capacity)
                if pushed:
                    model.append(op)
            assert len(q) == len(model)


class TestArrivalRing:
    def test_batch_roundtrip(self):
        ring = ArrivalRing(8)
        data = np.arange(6, dtype=np.uint16)
        assert ring.push_batch(data) == 6
        out = ring.pop_batch(6)
        assert np.array_equal(out, data)

    def test_batch_wraps_boundary(self):
        ring = ArrivalRing(8)
        ring.push_batch(np.arange(6, dtype=np.uint16))
        ring.pop_batch(6)
        # Now read/write indices sit near the boundary.
        data = np.arange(100, 108, dtype=np.uint16)
        assert ring.push_batch(data) == 8
        assert np.array_equal(ring.pop_batch(8), data)

    def test_push_batch_respects_capacity(self):
        ring = ArrivalRing(4)
        taken = ring.push_batch(np.arange(10, dtype=np.uint16))
        assert taken == 4
        assert ring.free == 0

    def test_pop_batch_caps_at_fill(self):
        ring = ArrivalRing(4)
        ring.push_batch(np.array([1, 2], dtype=np.uint16))
        out = ring.pop_batch(10)
        assert len(out) == 2

    def test_single_ops(self):
        ring = ArrivalRing(2)
        assert ring.push(7)
        assert ring.push(8)
        assert not ring.push(9)
        assert ring.pop() == 7
        assert ring.pop() == 8
        assert ring.pop() is None

    @given(
        chunks=st.lists(
            st.lists(st.integers(0, 65535), min_size=1, max_size=20),
            max_size=20,
        )
    )
    def test_batch_fifo_property(self, chunks):
        ring = ArrivalRing(64)
        expected: list[int] = []
        for chunk in chunks:
            arr = np.asarray(chunk, dtype=np.uint16)
            taken = ring.push_batch(arr)
            expected.extend(chunk[:taken])
            got = ring.pop_batch(len(expected))
            assert list(got) == expected[: len(got)]
            expected = expected[len(got) :]
