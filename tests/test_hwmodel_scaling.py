"""Tests for the multi-chip scaling/provisioning model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Routing
from repro.hwmodel import VIRTEX_II_6000, provision


class TestProvisioning:
    def test_small_population_single_chip(self):
        plan = provision(100, per_stream_qos_fraction=0.1, aggregation_degree=100)
        # 10 QoS slots + 1 aggregated slot = 11 slots -> one 32-slot chip.
        assert plan.qos_streams == 10
        assert plan.slots_needed == 11
        assert plan.chips == 1
        assert plan.slots_per_chip == 32

    def test_backbone_thousands_of_streams(self):
        # Section 4.2's backbone: thousands of streams, mostly aggregated.
        plan = provision(
            10_000, per_stream_qos_fraction=0.01, aggregation_degree=100
        )
        assert plan.qos_streams == 100
        assert plan.slots_needed == 100 + 99
        assert plan.chips == pytest.approx(7, abs=1)
        assert plan.streams_per_chip > 1000

    def test_all_per_stream_qos_needs_many_chips(self):
        plan = provision(10_000, per_stream_qos_fraction=1.0)
        assert plan.slots_needed == 10_000
        assert plan.chips == 313  # ceil(10000/32)

    def test_aggregation_slashes_chip_count(self):
        dedicated = provision(10_000, per_stream_qos_fraction=1.0)
        aggregated = provision(
            10_000, per_stream_qos_fraction=0.0, aggregation_degree=100
        )
        assert aggregated.chips < dedicated.chips / 50

    def test_larger_device_same_slot_cap(self):
        # The 5-bit stream ID caps slots at 32 even on a bigger part.
        plan = provision(1000, device=VIRTEX_II_6000)
        assert plan.slots_per_chip == 32

    def test_decision_rate_positive(self):
        plan = provision(64, routing=Routing.WR)
        assert plan.decisions_per_second_per_chip > 1e6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_streams": 0},
            {"total_streams": 10, "per_stream_qos_fraction": -0.1},
            {"total_streams": 10, "per_stream_qos_fraction": 1.5},
            {"total_streams": 10, "aggregation_degree": 0},
        ],
    )
    def test_validation(self, kwargs):
        total = kwargs.pop("total_streams")
        with pytest.raises(ValueError):
            provision(total, **kwargs)

    @given(
        total=st.integers(1, 100_000),
        fraction=st.floats(0.0, 1.0),
        degree=st.integers(1, 500),
    )
    @settings(max_examples=100)
    def test_every_stream_is_carried(self, total, fraction, degree):
        plan = provision(
            total, per_stream_qos_fraction=fraction, aggregation_degree=degree
        )
        assert plan.qos_streams + plan.aggregated_streams == total
        capacity = plan.chips * plan.slots_per_chip
        # Slot capacity covers the need.
        assert capacity >= plan.slots_needed
        # And the slots can actually carry the population.
        carriable = (
            plan.qos_streams
            + (plan.slots_needed - plan.qos_streams) * degree
        )
        assert carriable >= total
