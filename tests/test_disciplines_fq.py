"""Tests for WFQ, SFQ and DRR fair-queuing baselines."""

import pytest

from repro.disciplines import DRR, SFQ, WFQ, Packet, SwStream


def backlog(discipline, weights, packets_per_stream=100, length=1500):
    for sid, w in enumerate(weights):
        discipline.add_stream(SwStream(stream_id=sid, weight=w))
    for sid in range(len(weights)):
        for k in range(packets_per_stream):
            discipline.enqueue(
                Packet(stream_id=sid, seq=k, arrival=0.0, length=length)
            )
    return discipline


def serve(discipline, n):
    counts: dict[int, int] = {}
    for _ in range(n):
        p = discipline.dequeue(0.0)
        counts[p.stream_id] = counts.get(p.stream_id, 0) + 1
    return counts


class TestWFQ:
    def test_proportional_shares(self):
        wfq = backlog(WFQ(), [1, 1, 2, 4], packets_per_stream=300)
        counts = serve(wfq, 400)
        assert counts[0] == pytest.approx(50, abs=2)
        assert counts[1] == pytest.approx(50, abs=2)
        assert counts[2] == pytest.approx(100, abs=3)
        assert counts[3] == pytest.approx(200, abs=4)

    def test_tags_fixed_at_enqueue(self):
        wfq = WFQ()
        wfq.add_stream(SwStream(stream_id=0, weight=1.0))
        p = Packet(stream_id=0, seq=0, arrival=0.0)
        wfq.enqueue(p)
        tag = p.tag
        wfq.enqueue(Packet(stream_id=0, seq=1, arrival=1.0))
        assert p.tag == tag

    def test_finish_tags_increase_per_stream(self):
        wfq = WFQ()
        wfq.add_stream(SwStream(stream_id=0, weight=2.0))
        tags = []
        for k in range(4):
            p = Packet(stream_id=0, seq=k, arrival=0.0, length=1000)
            wfq.enqueue(p)
            tags.append(p.tag)
        assert tags == sorted(tags)
        assert tags[1] - tags[0] == pytest.approx(500.0)

    def test_empty_dequeue(self):
        wfq = WFQ()
        wfq.add_stream(SwStream(stream_id=0))
        assert wfq.dequeue(0.0) is None

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            WFQ().enqueue(Packet(stream_id=0, seq=0, arrival=0.0))


class TestSFQ:
    def test_proportional_shares(self):
        sfq = backlog(SFQ(), [1, 3], packets_per_stream=300)
        counts = serve(sfq, 200)
        assert counts[0] == pytest.approx(50, abs=3)
        assert counts[1] == pytest.approx(150, abs=3)

    def test_virtual_time_tracks_start_tags(self):
        sfq = SFQ()
        sfq.add_stream(SwStream(stream_id=0, weight=1.0))
        for k in range(3):
            sfq.enqueue(Packet(stream_id=0, seq=k, arrival=0.0, length=1000))
        assert sfq.virtual_time == 0.0
        sfq.dequeue(0.0)
        sfq.dequeue(0.0)
        assert sfq.virtual_time == pytest.approx(1000.0)

    def test_newly_active_stream_not_starved(self):
        # A stream joining late starts at current virtual time, not 0.
        sfq = SFQ()
        sfq.add_stream(SwStream(stream_id=0, weight=1.0))
        sfq.add_stream(SwStream(stream_id=1, weight=1.0))
        for k in range(50):
            sfq.enqueue(Packet(stream_id=0, seq=k, arrival=0.0))
        for _ in range(40):
            sfq.dequeue(0.0)
        sfq.enqueue(Packet(stream_id=1, seq=0, arrival=40.0))
        # Stream 1 must be served within a couple of slots.
        served = [sfq.dequeue(41.0).stream_id for _ in range(3)]
        assert 1 in served


class TestDRR:
    def test_equal_weights_round_robin(self):
        drr = backlog(DRR(), [1, 1], packets_per_stream=10)
        counts = serve(drr, 10)
        assert counts[0] == 5 and counts[1] == 5

    def test_weighted_shares(self):
        drr = backlog(DRR(), [1, 1, 2, 4], packets_per_stream=300)
        counts = serve(drr, 400)
        assert counts[0] == pytest.approx(50, abs=2)
        assert counts[3] == pytest.approx(200, abs=4)

    def test_byte_fairness_with_mixed_lengths(self):
        # Equal weights, different packet sizes: bytes served stay fair.
        drr = DRR(base_quantum=1500)
        drr.add_stream(SwStream(stream_id=0, weight=1.0))
        drr.add_stream(SwStream(stream_id=1, weight=1.0))
        for k in range(300):
            drr.enqueue(Packet(stream_id=0, seq=k, arrival=0.0, length=1500))
            drr.enqueue(Packet(stream_id=1, seq=k, arrival=0.0, length=500))
        bytes_served = {0: 0, 1: 0}
        for _ in range(200):
            p = drr.dequeue(0.0)
            bytes_served[p.stream_id] += p.length
        ratio = bytes_served[0] / bytes_served[1]
        assert 0.8 <= ratio <= 1.25

    def test_deficit_carries_over(self):
        drr = DRR(base_quantum=1000)
        drr.add_stream(SwStream(stream_id=0, weight=1.0))
        drr.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, length=1500))
        # Needs two quantum grants (1000 + 1000 >= 1500).
        assert drr.dequeue(0.0) is not None

    def test_small_weights_still_serve(self):
        drr = DRR(base_quantum=1500)
        drr.add_stream(SwStream(stream_id=0, weight=0.05))
        drr.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, length=1500))
        assert drr.dequeue(0.0) is not None

    def test_empty_queue_resets_deficit(self):
        drr = DRR()
        drr.add_stream(SwStream(stream_id=0))
        drr.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, length=100))
        drr.dequeue(0.0)
        assert drr.dequeue(0.0) is None
        # Re-arrival gets a fresh deficit, not stale credit.
        drr.enqueue(Packet(stream_id=0, seq=1, arrival=1.0, length=100))
        assert drr.dequeue(1.0) is not None

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            DRR(base_quantum=0)
