"""Tests for the pipeline-stage analyzer."""

import pytest

from repro.endsystem import EndsystemConfig, EndsystemRouter, analyze_pipeline
from repro.sim.nic import TEN_GIGABIT
from repro.traffic.specs import ratio_workload


def run(include_pci: bool, link=TEN_GIGABIT, frames=600):
    specs = ratio_workload((1, 1, 2, 4), frames_per_stream=frames)
    router = EndsystemRouter(
        specs, EndsystemConfig(link=link, include_pci=include_pci)
    )
    return router.run(preload=True)


class TestBottleneckDiagnosis:
    def test_host_bound_without_pci(self):
        report = analyze_pipeline(run(include_pci=False))
        assert report.bottleneck.name == "host"
        assert report.bottleneck.utilization == pytest.approx(1.0, abs=0.02)

    def test_pio_path_loads_transfer_stage(self):
        report = analyze_pipeline(run(include_pci=True))
        # Host + PIO together saturate; the PIO stage carries its share.
        pio = report.stage("pci-pio (critical path)")
        host = report.stage("host")
        assert pio.per_frame_us > 0
        assert host.utilization + pio.utilization == pytest.approx(1.0, abs=0.02)

    def test_wire_bound_on_slow_link(self):
        from repro.endsystem.host import PLAYOUT_LINK_128M

        report = analyze_pipeline(run(include_pci=True, link=PLAYOUT_LINK_128M))
        assert report.bottleneck.name == "wire"

    def test_fpga_never_the_bottleneck(self):
        # The whole point of the architecture: decisions are fast.
        for include_pci in (False, True):
            report = analyze_pipeline(run(include_pci=include_pci))
            assert report.stage("fpga decision").utilization < 0.1


class TestReportShape:
    def test_stage_lookup_and_errors(self):
        report = analyze_pipeline(run(include_pci=False))
        assert report.stage("wire").per_frame_us > 0
        with pytest.raises(KeyError):
            report.stage("quantum tunnel")

    def test_empty_run(self):
        specs = ratio_workload((1,), frames_per_stream=0)
        router = EndsystemRouter(specs)
        result = router.run(preload=True)
        report = analyze_pipeline(result)
        assert report.frames == 0
        assert report.stages == ()

    def test_overlapped_stages_reported(self):
        report = analyze_pipeline(run(include_pci=True))
        assert report.stage("pci bus (overlapped)").busy_us > 0
        assert report.stage("sram arbitration (overlapped)").busy_us > 0
