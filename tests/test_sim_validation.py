"""Queueing-theory validation of the DES substrate.

Drives the simulator + TxPort with textbook arrival processes and
checks the measured delays against closed-form results — the kind of
substrate validation that gives the endsystem numbers credibility.
"""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.nic import Link, TxPort
from repro.traffic.generators import cbr_arrivals, poisson_arrivals


def _run_queue(arrivals_us, service_us):
    """Single-server FIFO queue on the TxPort; returns waits (us)."""
    sim = Simulator()
    # Link rate chosen so service_us == packet_time(1000 bytes).
    link = Link("svc", 1000 * 8 / service_us * 1e6)
    port = TxPort(sim, link)
    waits = []

    def arrive(t):
        start = max(sim.now, port.busy_until)
        waits.append(start - t)
        port.transmit("pkt", 1000)

    for t in arrivals_us:
        sim.schedule_at(float(t), arrive, float(t))
    sim.run()
    return np.asarray(waits)


class TestMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_md1_mean_wait(self, rho):
        """Poisson arrivals, deterministic service: W = rho*s/(2(1-rho))."""
        service = 10.0  # us
        rate_pps = rho / service * 1e6
        arrivals = poisson_arrivals(60_000, rate_pps, rng=42)
        waits = _run_queue(arrivals, service)
        analytic = rho * service / (2 * (1 - rho))
        measured = waits.mean()
        assert measured == pytest.approx(analytic, rel=0.08)


class TestDD1:
    def test_dd1_no_queueing_below_capacity(self):
        """Deterministic arrivals slower than service never wait."""
        arrivals = cbr_arrivals(5000, rate_pps=50_000.0)  # every 20us
        waits = _run_queue(arrivals, 10.0)
        assert waits.max() == pytest.approx(0.0)

    def test_dd1_overload_grows_linearly(self):
        """Deterministic overload: wait of packet n ~= n * (s - gap)."""
        arrivals = cbr_arrivals(2000, rate_pps=200_000.0)  # every 5us
        waits = _run_queue(arrivals, 10.0)
        n = np.arange(len(waits))
        expected = n * 5.0
        assert np.allclose(waits, expected, atol=1e-6)


class TestLittlesLaw:
    def test_l_equals_lambda_w(self):
        """L = lambda * W on the measured sample path (rho = 0.5)."""
        service = 10.0
        rate_pps = 0.5 / service * 1e6
        arrivals = poisson_arrivals(40_000, rate_pps, rng=7)
        waits = _run_queue(arrivals, service)
        horizon = arrivals[-1]
        lam = len(arrivals) / horizon  # per us
        w = waits.mean() + service  # sojourn
        # Time-average number in system via event integration.
        departures = arrivals + waits + service
        times = np.sort(np.concatenate([arrivals, departures]))
        in_system = np.zeros(len(times))
        events = np.concatenate(
            [np.ones(len(arrivals)), -np.ones(len(departures))]
        )
        order = np.argsort(np.concatenate([arrivals, departures]), kind="stable")
        counts = np.cumsum(events[order])
        dt = np.diff(times)
        l_measured = float((counts[:-1] * dt).sum() / (times[-1] - times[0]))
        assert l_measured == pytest.approx(lam * w, rel=0.05)
