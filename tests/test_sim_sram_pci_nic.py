"""Tests for SRAM arbitration, the PCI model and the link model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.nic import GIGABIT, TEN_GIGABIT, Link, TxPort
from repro.sim.pci import PCIBus, PCIConfig
from repro.sim.sram import BankedSRAM, Owner, SRAMBank


class TestSRAMBank:
    def test_write_then_read_roundtrip(self):
        bank = SRAMBank(64, owner=Owner.HOST)
        bank.write(Owner.HOST, 0, [1, 2, 3])
        values, _ = bank.read(Owner.HOST, 0, 3)
        assert values == [1, 2, 3]

    def test_same_owner_access_is_free(self):
        bank = SRAMBank(64, owner=Owner.HOST, switch_cost_us=2.0)
        cost = bank.write(Owner.HOST, 0, [1])
        assert cost == 0.0
        assert bank.stats.ownership_switches == 0

    def test_ownership_switch_costs(self):
        bank = SRAMBank(64, owner=Owner.HOST, switch_cost_us=2.0)
        _, cost = bank.read(Owner.FPGA, 0, 1)
        assert cost == 2.0
        assert bank.owner is Owner.FPGA
        assert bank.stats.ownership_switches == 1

    def test_ping_pong_accumulates_switch_time(self):
        bank = SRAMBank(64, switch_cost_us=1.5)
        for _ in range(4):
            bank.write(Owner.HOST, 0, [1])
            bank.read(Owner.FPGA, 0, 1)
        # HOST starts as owner: 7 switches (first write free).
        assert bank.stats.ownership_switches == 7
        assert bank.stats.switch_time_us == pytest.approx(10.5)

    def test_range_checks(self):
        bank = SRAMBank(4)
        with pytest.raises(IndexError):
            bank.write(Owner.HOST, 3, [1, 2])
        with pytest.raises(IndexError):
            bank.read(Owner.HOST, -1)

    def test_word_masking(self):
        bank = SRAMBank(4)
        bank.write(Owner.HOST, 0, [1 << 33])
        values, _ = bank.read(Owner.HOST, 0)
        assert values == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMBank(0)
        with pytest.raises(ValueError):
            SRAMBank(4, switch_cost_us=-1)


class TestBankedSRAM:
    def test_default_two_banks(self):
        sram = BankedSRAM()
        assert len(sram.banks) == 2

    def test_totals_aggregate(self):
        sram = BankedSRAM(n_banks=2, switch_cost_us=1.0)
        sram.bank(0).read(Owner.FPGA, 0, 1)
        sram.bank(1).read(Owner.FPGA, 0, 1)
        assert sram.total_switches == 2
        assert sram.total_switch_time_us == 2.0

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            BankedSRAM(n_banks=0)


class TestPCIBus:
    def test_pio_cost_linear(self):
        bus = PCIBus(PCIConfig(pio_word_cost_us=0.5))
        assert bus.pio_time_us(10) == pytest.approx(5.0)

    def test_dma_setup_plus_stream(self):
        bus = PCIBus(
            PCIConfig(dma_setup_cost_us=2.0, burst_bandwidth_mbps=100.0)
        )
        # 250 words = 1000 bytes -> 10 us streaming + 2 us setup.
        assert bus.dma_time_us(250) == pytest.approx(12.0)

    def test_dma_zero_words_free(self):
        assert PCIBus().dma_time_us(0) == 0.0

    def test_best_mode_crossover(self):
        bus = PCIBus()
        assert bus.best_mode(1) == "pio"
        assert bus.best_mode(10_000) == "dma"

    def test_transfer_accounting(self):
        bus = PCIBus()
        bus.transfer(4, "pio")
        bus.transfer(1000, "dma")
        assert bus.total_words == 1004
        assert len(bus.transfers) == 2
        assert bus.transfers[0].mode == "pio"
        assert bus.total_time_us == pytest.approx(
            bus.pio_time_us(4) + bus.dma_time_us(1000)
        )

    def test_arrival_time_packing(self):
        bus = PCIBus()
        t = bus.push_arrival_times(7, "pio")  # 7 offsets -> 4 words
        assert t == pytest.approx(bus.pio_time_us(4))

    def test_stream_id_packing(self):
        bus = PCIBus()
        t = bus.read_stream_ids(5, "pio")  # 5 ids -> 2 words
        assert t == pytest.approx(bus.pio_time_us(2))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PCIBus().transfer(1, "carrier-pigeon")

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            PCIBus().pio_time_us(-1)


class TestLink:
    def test_packet_times_match_paper(self):
        # "the Ethernet frame time on a 10 Gigabit link ranges from
        # approximately 0.05 us (64 byte) to 1.2 us (1500 byte)"
        assert TEN_GIGABIT.packet_time_us(64) == pytest.approx(0.0512)
        assert TEN_GIGABIT.packet_time_us(1500) == pytest.approx(1.2)
        # "1 Gbps link for 1500-byte frames (12 us) ... 64-byte (500ns)"
        assert GIGABIT.packet_time_us(1500) == pytest.approx(12.0)
        assert GIGABIT.packet_time_us(64) == pytest.approx(0.512)

    def test_pps(self):
        assert GIGABIT.packets_per_second(1500) == pytest.approx(83_333.3, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("bad", 0)
        with pytest.raises(ValueError):
            GIGABIT.packet_time_us(0)


class TestTxPort:
    def test_serializes_frames(self):
        sim = Simulator()
        port = TxPort(sim, Link("test", 8e6))  # 1 byte/us
        t1 = port.transmit("a", 100)
        t2 = port.transmit("b", 50)
        assert t1 == pytest.approx(100.0)
        assert t2 == pytest.approx(150.0)

    def test_completion_callbacks(self):
        sim = Simulator()
        port = TxPort(sim, Link("test", 8e6))
        done = []
        port.transmit("a", 10, on_done=lambda f, t: done.append((f, t)))
        sim.run()
        assert done == [("a", 10.0)]

    def test_idle_gap_restarts_clock(self):
        sim = Simulator()
        port = TxPort(sim, Link("test", 8e6))
        port.transmit("a", 10)
        sim.schedule(90.0, lambda: None)
        sim.run()
        # The wire went idle at t=10; a frame at t=90 starts immediately.
        t = port.transmit("b", 10)
        assert t == pytest.approx(100.0)

    def test_counters_and_utilization(self):
        sim = Simulator()
        port = TxPort(sim, Link("test", 8e6))
        port.transmit("a", 100, on_done=lambda f, t: None)
        sim.run()  # advances the clock to the frame's finish time
        assert port.frames_sent == 1
        assert port.bytes_sent == 100
        assert port.utilization_until_now == pytest.approx(1.0)
