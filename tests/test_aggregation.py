"""Unit tests for the hierarchical million-stream aggregation tier.

Covers the tier mechanics (bucketing, O(1) churn, refill/service flow,
hot-path memory eviction), the three-engine byte-identity contract,
per-aggregate SLO rollups through the ``observer=`` hook, the
aggregation-aware differential path with its topology-keyed result
cache, the ``CACHE_SCHEMA`` bump regression, and the CLI subcommand.
"""

import json

import pytest

from repro.aggregation import (
    AggregationCampaign,
    AggregationTier,
    aggregate_share_slos,
    generate_aggregation_scenario,
    hash_bucket,
    run_aggregation,
    run_aggregation_bucket,
)
from repro.core.differential import validate_aggregation
from repro.runner import ResultCache


def _blob(summary: dict) -> str:
    return json.dumps(summary, sort_keys=True, indent=1) + "\n"


class TestHashBucket:
    def test_deterministic_and_in_range(self):
        for sid in range(5000):
            a = hash_bucket(sid, 16)
            assert 0 <= a < 16
            assert hash_bucket(sid, 16) == a

    def test_salt_changes_mapping(self):
        base = [hash_bucket(sid, 16) for sid in range(1000)]
        salted = [hash_bucket(sid, 16, salt=1) for sid in range(1000)]
        assert base != salted

    def test_roughly_uniform(self):
        counts = [0] * 16
        for sid in range(16_000):
            counts[hash_bucket(sid, 16)] += 1
        assert min(counts) > 700 and max(counts) < 1300


class TestMembership:
    def test_join_assigns_hash_bucket(self):
        tier = AggregationTier(8, engine="reference")
        for sid in (0, 7, 123, 99_999):
            assert tier.join(sid) == hash_bucket(sid, 8)

    def test_duplicate_join_rejected_strict(self):
        tier = AggregationTier(4, engine="reference")
        tier.join(1)
        with pytest.raises(ValueError, match="already joined"):
            tier.join(1)

    def test_leave_unknown_rejected_strict(self):
        tier = AggregationTier(4, engine="reference")
        with pytest.raises(KeyError, match="not a member"):
            tier.leave(5)

    def test_submit_requires_membership_strict(self):
        tier = AggregationTier(4, engine="reference")
        with pytest.raises(KeyError, match="not a member"):
            tier.submit(3, deadline=10)

    def test_weight_tracking_across_churn(self):
        tier = AggregationTier(4, engine="reference")
        tier.join(0, weight=3)
        tier.join(1, weight=5)
        total = sum(s.weight for s in tier.stats())
        assert total == 8
        tier.leave(0)
        assert sum(s.weight for s in tier.stats()) == 5
        assert tier.active_members == 1

    def test_non_strict_needs_no_per_stream_state(self):
        tier = AggregationTier(4, engine="reference", strict=False)
        tier.join(7, weight=2)
        tier.leave(7, weight=2)
        assert tier.active_members == 0
        assert tier.core._stream_info == {}

    def test_churn_never_touches_engine_state(self):
        """join/leave are pure bucket arithmetic — zero engine calls."""
        tier = AggregationTier(8, engine="batch")
        calls = []
        tier.scheduler.enqueue = lambda *a, **k: calls.append(a)
        for sid in range(500):
            tier.join(sid)
        for sid in range(0, 500, 2):
            tier.leave(sid)
        assert calls == []

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            AggregationTier(3, engine="reference")
        with pytest.raises(ValueError, match="power of two"):
            AggregationTier(1, engine="reference")

    def test_invalid_weight_rejected(self):
        tier = AggregationTier(4, engine="reference")
        with pytest.raises(ValueError, match="positive"):
            tier.join(0, weight=0)


class TestServiceFlow:
    def test_work_conserving_drain(self):
        tier = AggregationTier(4, engine="reference")
        for sid in range(12):
            tier.join(sid)
        for sid in range(12):
            for _ in range(3):
                tier.submit(sid, deadline=100)
        assert tier.outstanding == 36
        cycles = tier.drain()
        assert tier.outstanding == 0
        assert cycles == 36  # one service per cycle while backlogged

    def test_leave_with_queued_packets_still_drains(self):
        tier = AggregationTier(4, engine="reference")
        tier.join(0, weight=2)
        tier.submit(0, deadline=10)
        tier.submit(0, deadline=11)
        tier.leave(0)
        tier.drain()
        assert tier.core.serviced == 2

    def test_per_stream_state_evicted_on_drain(self):
        """Hot-path memory is O(aggregates + backlog), not O(streams)."""
        tier = AggregationTier(8, engine="batch")
        for sid in range(200):
            tier.join(sid)
            tier.submit(sid, deadline=50)
        tier.drain()
        assert tier.core._pending == {}
        assert tier.core._finish == {}
        assert tier.core._credits == {}
        assert all(not h for h in tier.core._heaps)

    def test_weighted_shares_follow_aggregate_weights(self):
        """Backlogged aggregates share service ∝ member-weight sums."""
        tier = AggregationTier(2, engine="batch", salt=3)
        heavy = [sid for sid in range(40) if hash_bucket(sid, 2, salt=3) == 0]
        light = [sid for sid in range(40) if hash_bucket(sid, 2, salt=3) == 1]
        for sid in heavy[:4]:
            tier.join(sid, weight=3)
        for sid in light[:4]:
            tier.join(sid, weight=1)
        n_cycles = 400
        for _ in range(n_cycles // 4):
            for sid in heavy[:4] + light[:4]:
                tier.submit(sid, deadline=10_000)
        for _ in range(n_cycles):
            tier.decision_cycle()
        stats = tier.stats()
        share = stats[0].serviced / (stats[0].serviced + stats[1].serviced)
        assert share == pytest.approx(0.75, abs=0.08)

    def test_intra_aggregate_priority_ordering(self):
        """pifo:prio inside one aggregate: high class first, FIFO within."""
        tier = AggregationTier(2, engine="reference", discipline="pifo:prio")
        sids = [sid for sid in range(20) if hash_bucket(sid, 2) == 0][:3]
        tier.join(sids[0], priority=0)
        tier.join(sids[1], priority=9)
        tier.join(sids[2], priority=0)
        tier.submit(sids[0], deadline=10)
        tier.submit(sids[1], deadline=10)
        tier.submit(sids[2], deadline=10)
        tier.drain()
        order = [sid for _t, sid, _a, _r in tier.services]
        # sids[0] refilled first (head-of-line); the remaining class-0
        # packet then beats the class-9 one (lower class serves first).
        assert order.index(sids[1]) == 2


class TestThreeWayIdentity:
    def test_reference_batch_tensor_byte_identical(self):
        scenarios = [
            generate_aggregation_scenario(
                seed, n_streams=30, n_aggregates=8, n_cycles=90
            )
            for seed in range(4)
        ]
        tensor = run_aggregation_bucket(scenarios)
        for scenario, tsum in zip(scenarios, tensor):
            ref = run_aggregation(scenario, engine="reference")
            bat = run_aggregation(scenario, engine="batch")
            assert _blob(ref) == _blob(bat) == _blob(tsum)

    def test_campaign_rows_match_standalone(self):
        scenarios = [
            generate_aggregation_scenario(
                7 + i, n_streams=12 + i * 5, n_aggregates=4, n_cycles=60
            )
            for i in range(3)
        ]
        # Unequal populations: short rows idle in lockstep while the
        # longest drains — summaries must be unaffected.
        bucket = run_aggregation_bucket(scenarios)
        for scenario, summary in zip(scenarios, bucket):
            assert _blob(summary) == _blob(
                run_aggregation(scenario, engine="reference")
            )

    def test_bucket_rejects_mixed_topologies(self):
        a = generate_aggregation_scenario(0, n_aggregates=4, n_cycles=10)
        b = generate_aggregation_scenario(1, n_aggregates=8, n_cycles=10)
        with pytest.raises(ValueError, match="share"):
            run_aggregation_bucket([a, b])

    def test_campaign_engine_is_shared(self):
        campaign = AggregationCampaign(4, 3)
        assert campaign.engine is campaign.engine  # one engine object
        assert len(campaign.cores) == 3


class TestSloRollups:
    def test_per_aggregate_rollups_via_observer(self):
        from repro.observability import ConformanceMonitor

        probe = AggregationTier(4, engine="batch")
        for sid in range(16):
            probe.join(sid, weight=1 + sid % 2)
        slos = aggregate_share_slos(probe, tolerance=0.9)
        assert {slo.sid for slo in slos} <= set(range(4))
        monitor = ConformanceMonitor(slos, window_cycles=64)
        tier = AggregationTier(4, engine="batch", observer=monitor)
        for sid in range(16):
            tier.join(sid, weight=1 + sid % 2)
        for _ in range(20):
            for sid in range(16):
                tier.submit(sid, deadline=5_000)
        for _ in range(256):
            tier.decision_cycle()
        monitor.finalize()
        assert monitor.slo.windows_evaluated >= 4
        # Generous band + fully backlogged aggregates: conformant.
        assert monitor.violations == []
        rolled = {sid for w in monitor.rollup.history for sid in w.streams}
        assert rolled <= set(range(4))

    def test_share_slos_skip_empty_aggregates(self):
        tier = AggregationTier(8, engine="reference")
        tier.join(0, weight=4)
        slos = aggregate_share_slos(tier)
        assert [slo.sid for slo in slos] == [hash_bucket(0, 8)]

    def test_share_slos_empty_tier(self):
        assert aggregate_share_slos(AggregationTier(4, engine="reference")) == []


class TestDifferentialPath:
    def test_validate_aggregation_passes(self):
        result = validate_aggregation(
            seeds=range(3), n_streams=20, n_aggregates=4, n_cycles=60
        )
        assert result.passed, "\n".join(result.divergences)
        assert result.scenarios == 3
        assert result.services > 0
        summary = result.summary()
        assert summary["kind"] == "aggregation-validation"
        assert result.summary_json().endswith("\n")

    def test_validate_aggregation_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="aggregation")
        first = validate_aggregation(
            seeds=range(2), n_streams=16, n_aggregates=4, n_cycles=40,
            cache=cache,
        )
        assert first.passed
        assert cache.stats.writes == 2
        again = validate_aggregation(
            seeds=range(2), n_streams=16, n_aggregates=4, n_cycles=40,
            cache=cache,
        )
        assert again.passed
        assert cache.stats.hits == 2
        assert _blob(first.summary()) == _blob(again.summary())


class TestCacheSchema:
    def test_schema_is_3(self):
        from repro.runner.cache import CACHE_SCHEMA

        assert CACHE_SCHEMA == 3

    def test_schema_bump_evicts_cleanly(self, tmp_path):
        """Entries keyed under an older schema can never satisfy
        lookups under the current one — a bump is a clean, total
        eviction, not a partial one."""
        from repro import __version__

        stale = ResultCache(
            tmp_path, namespace="aggregation", version=f"{__version__}/2"
        )
        payload = {"seed": 1, "n_aggregates": 8}
        stale.put(stale.key(payload), {"stale": True})
        fresh = ResultCache(tmp_path, namespace="aggregation")
        hit, _ = fresh.get(fresh.key(payload))
        assert not hit
        assert fresh.stats.misses == 1

    def test_topology_in_cache_key(self):
        """Two runs differing only in aggregate topology never collide."""
        base = generate_aggregation_scenario(5, n_aggregates=4, n_cycles=10)
        other = generate_aggregation_scenario(5, n_aggregates=8, n_cycles=10)
        salted = generate_aggregation_scenario(
            5, n_aggregates=4, n_cycles=10, salt=9
        )
        cache = ResultCache("unused", namespace="aggregation")
        keys = {
            cache.key(sc.cache_payload()) for sc in (base, other, salted)
        }
        assert len(keys) == 3


class TestCli:
    def test_demo_run(self, capsys):
        from repro.cli import main

        assert main(
            [
                "aggregation", "--streams", "300", "--aggregate", "8",
                "--cycles", "60",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Aggregation tier" in out
        assert "service digest" in out

    def test_validate_mode_with_summary(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "agg.json"
        assert main(
            [
                "aggregation", "--validate", "--frames", "2",
                "--cycles", "40", "--summary-json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "aggregation-validation"
        assert payload["passed"] is True
        assert "pass" in capsys.readouterr().out

    def test_rejects_bad_aggregate_count(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["aggregation", "--aggregate", "5"])
