"""Tests for the experiment drivers (reduced-scale paper checks)."""

import pytest

from repro.core.config import BlockMode, Routing
from repro.core.control import ControlState
from repro.core.rules import Rule
from repro.experiments.comparison import (
    measure_software_discipline,
    run_endsystem_throughput,
    run_linecard_throughput,
)
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure6 import render_timeline, run_figure6
from repro.experiments.figure7 import degradation_ba_vs_wr, run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.table1 import (
    build_table1,
    witness_dwcs_dynamics,
    witness_tag_stability,
)
from repro.experiments.table2 import run_rule_coverage
from repro.experiments.table3 import run_block, run_max_finding


class TestTable1:
    def test_five_rows(self):
        rows = build_table1()
        assert len(rows) == 5
        assert rows[0].characteristic == "Priority"
        assert "circular" in rows[2].window_constrained.lower()

    def test_witnesses(self):
        assert witness_tag_stability()
        assert witness_dwcs_dynamics()


class TestTable2:
    def test_all_rules_reachable(self):
        cov = run_rule_coverage()
        assert cov.all_rules_fired
        assert cov.total == sum(cov.counts.values())
        assert cov.counts[Rule.EARLIEST_DEADLINE] > 0


class TestTable3:
    """Reduced-scale shape checks of the headline experiment."""

    SCALE = 500  # frames per stream (paper: 16000)

    def test_max_finding_misses_nearly_every_cycle(self):
        r = run_max_finding(self.SCALE)
        cycles = 4 * self.SCALE
        assert r.decision_cycles == cycles
        assert r.frames_scheduled == cycles
        for row in r.rows:
            # Paper: 63,986-63,989 misses over 64,000 cycles.
            assert cycles - 20 <= row.missed_deadlines <= cycles
        # Wins split evenly: paper's 16,000 decision cycles per stream.
        for row in r.rows:
            assert row.winner_cycles == pytest.approx(cycles / 4, abs=2)

    def test_block_max_first_meets_all_deadlines(self):
        r = run_block(BlockMode.MAX_FIRST, self.SCALE)
        assert r.total_missed == 0
        assert r.decision_cycles == self.SCALE  # 4x fewer than max-finding
        assert r.frames_scheduled == 4 * self.SCALE
        for row in r.rows:
            # Paper: 4000 winner cycles per stream out of 16000.
            assert row.winner_cycles == pytest.approx(self.SCALE / 4, abs=5)

    def test_block_min_first_forfeits_deadlines(self):
        r = run_block(BlockMode.MIN_FIRST, self.SCALE)
        # Massive, roughly even misses (paper: 22,621-29,311 per stream).
        assert r.total_missed > self.SCALE
        per_stream = [row.missed_deadlines for row in r.rows]
        assert max(per_stream) < 2 * min(per_stream)
        assert r.decision_cycles == self.SCALE

    def test_throughput_ordering(self):
        mf = run_max_finding(self.SCALE)
        ba = run_block(BlockMode.MAX_FIRST, self.SCALE)
        # Same frames, 4x fewer decision cycles: the block-size factor.
        assert mf.frames_scheduled == ba.frames_scheduled
        assert mf.decision_cycles == 4 * ba.decision_cycles


class TestFigure1:
    def test_fpga_dominates_software(self):
        sweep = run_figure1()
        assert sweep.realizable_fraction("fpga") > sweep.realizable_fraction(
            "software"
        )

    def test_rejects_unknown_discipline(self):
        with pytest.raises(KeyError):
            run_figure1(disciplines=("priority_inversion",))


class TestFigure6:
    def test_timeline_alternates(self):
        timeline = run_figure6(3)
        states = [e.state for e in timeline]
        assert states[0] is ControlState.LOAD
        assert states[1:] == [
            ControlState.SCHEDULE,
            ControlState.PRIORITY_UPDATE,
        ] * 3

    def test_schedule_spans_log2n_cycles(self):
        timeline = run_figure6(1)
        schedule = [e for e in timeline if e.state is ControlState.SCHEDULE]
        assert schedule[0].cycles == 2  # log2(4)

    def test_render(self):
        out = render_timeline(run_figure6(2))
        assert "SCHEDULE" in out and "PRIORITY_UPDATE" in out
        assert "#" in out


class TestFigure7:
    def test_eight_points(self):
        points = run_figure7()
        assert len(points) == 8
        assert {p.n_slots for p in points} == {4, 8, 16, 32}

    def test_degradation_matches_paper(self):
        deg = degradation_ba_vs_wr(run_figure7())
        assert deg[8] == pytest.approx(0.20, abs=0.02)
        assert deg[16] == pytest.approx(0.20, abs=0.02)
        assert deg[32] == pytest.approx(0.10, abs=0.02)

    def test_all_points_fit_device(self):
        assert all(p.area.fits for p in run_figure7())


class TestFigure8:
    def test_steady_state_ratios(self):
        result = run_figure8(frames_per_stream=2000)
        ratios = result.ratios
        assert ratios[0] == pytest.approx(1.0, rel=0.05)
        assert ratios[1] == pytest.approx(1.0, rel=0.05)
        assert ratios[2] == pytest.approx(2.0, rel=0.05)
        assert ratios[3] == pytest.approx(4.0, rel=0.05)

    def test_absolute_scale_2248(self):
        # Paper's Figure 8/10 scale: 2.0/2.0/4.0/8.0 MBps.
        result = run_figure8(frames_per_stream=2000)
        assert result.steady_mbps[0] == pytest.approx(2.0, rel=0.1)
        assert result.steady_mbps[3] == pytest.approx(8.0, rel=0.1)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9(n_bursts=2, burst_size=800)

    def test_stream4_has_lowest_delay(self, result):
        delays = result.mean_delays_us()
        assert delays[3] < delays[0]
        assert delays[3] < delays[1]
        assert delays[3] < delays[2]

    def test_overloaded_streams_zigzag(self, result):
        assert result.zigzag_score(0, 800) > 2.0
        assert result.zigzag_score(1, 800) > 2.0


class TestFigure10:
    def test_streamlet_scale_and_set_ratio(self):
        result = run_figure10(frames_per_stream=2000, streamlets_per_slot=100)
        rep = result.representative_mbps()
        # Slots 1-3: slot MBps / 100 streamlets.
        assert rep["slot1/set1"] == pytest.approx(0.02, rel=0.15)
        assert rep["slot2/set1"] == pytest.approx(0.02, rel=0.15)
        assert rep["slot3/set1"] == pytest.approx(0.04, rel=0.15)
        # Slot 4: set 1 at double the bandwidth of set 2.
        assert rep["slot4/set1"] / rep["slot4/set2"] == pytest.approx(
            2.0, rel=0.1
        )


class TestComparison:
    def test_linecard_anchor(self):
        row = run_linecard_throughput(n_decisions=400)
        assert row.pps == pytest.approx(7_600_000)

    def test_endsystem_anchors(self):
        no_pci = run_endsystem_throughput(include_pci=False, frames_per_stream=800)
        pio = run_endsystem_throughput(include_pci=True, frames_per_stream=800)
        assert no_pci.pps == pytest.approx(469_483, rel=0.01)
        assert pio.pps == pytest.approx(299_065, rel=0.01)
        assert no_pci.pps > pio.pps

    def test_software_measurement_runs(self):
        row = measure_software_discipline("edf", n_packets=2000)
        assert row.pps > 0
        assert row.source == "measured-here"
