"""Tests for the recirculating shuffle-exchange network."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import HardwareAttributes
from repro.core.rules import ordering_key
from repro.core.shuffle import (
    ShuffleExchangeNetwork,
    is_pow2,
    perfect_shuffle,
)


def bundles_for(deadlines, valid=None):
    out = []
    for sid, d in enumerate(deadlines):
        b = HardwareAttributes(sid=sid, deadline=d)
        if valid is not None:
            b.valid = valid[sid]
        out.append(b)
    return out


class TestHelpers:
    def test_is_pow2(self):
        assert is_pow2(1) and is_pow2(2) and is_pow2(32)
        assert not is_pow2(0) and not is_pow2(3) and not is_pow2(-4)

    def test_perfect_shuffle_interleaves(self):
        assert perfect_shuffle(["a", "b", "c", "d"]) == ["a", "c", "b", "d"]
        assert perfect_shuffle([0, 1, 2, 3, 4, 5, 6, 7]) == [
            0, 4, 1, 5, 2, 6, 3, 7,
        ]

    def test_perfect_shuffle_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            perfect_shuffle([1, 2, 3])

    @given(st.integers(1, 5))
    def test_perfect_shuffle_is_permutation(self, k):
        n = 1 << k
        items = list(range(n))
        assert sorted(perfect_shuffle(items)) == items


class TestConstruction:
    def test_block_count_is_half(self):
        net = ShuffleExchangeNetwork(8)
        assert len(net.blocks) == 4

    @pytest.mark.parametrize("n", [0, 1, 3, 6])
    def test_rejects_bad_widths(self, n):
        with pytest.raises(ValueError):
            ShuffleExchangeNetwork(n)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            ShuffleExchangeNetwork(4, schedule="quicksort")

    @pytest.mark.parametrize(
        "n,expected", [(4, 2), (8, 3), (16, 4), (32, 5)]
    )
    def test_paper_pass_counts(self, n, expected):
        # "2, 3, 4, 5 cycles required to sort 4, 8, 16 and 32 stream-slots"
        assert ShuffleExchangeNetwork(n).passes_per_decision == expected

    @pytest.mark.parametrize("n,expected", [(4, 3), (8, 6), (16, 10), (32, 15)])
    def test_bitonic_pass_counts(self, n, expected):
        net = ShuffleExchangeNetwork(n, schedule="bitonic")
        assert net.passes_per_decision == expected


class TestMaxFinding:
    def test_winner_at_position_zero(self):
        net = ShuffleExchangeNetwork(4)
        result = net.run(bundles_for([9, 2, 7, 5]))
        assert result.winner.sid == 1

    def test_winner_only_routing(self):
        net = ShuffleExchangeNetwork(4)
        result = net.run(bundles_for([9, 2, 7, 5]), winner_only=True)
        assert len(result.order) == 1
        assert result.winner.sid == 1

    def test_pass_count_consumed(self):
        net = ShuffleExchangeNetwork(8)
        result = net.run(bundles_for(range(8)))
        assert result.passes == 3
        assert result.comparisons == 3 * 4

    @given(
        deadlines=st.lists(
            st.integers(0, 1000), min_size=8, max_size=8
        )
    )
    def test_max_certified_any_input(self, deadlines):
        net = ShuffleExchangeNetwork(8, wrap=False)
        result = net.run(bundles_for(deadlines))
        assert result.winner.deadline == min(deadlines)

    @given(
        deadlines=st.lists(st.integers(0, 1000), min_size=16, max_size=16)
    )
    def test_max_certified_width_16(self, deadlines):
        net = ShuffleExchangeNetwork(16, wrap=False)
        result = net.run(bundles_for(deadlines))
        assert result.winner.deadline == min(deadlines)

    def test_invalid_slots_never_win(self):
        net = ShuffleExchangeNetwork(4)
        valid = [False, True, False, True]
        result = net.run(bundles_for([1, 5, 2, 9], valid=valid))
        assert result.winner.sid == 1


class TestBitonicSort:
    @given(
        deadlines=st.lists(st.integers(0, 1000), min_size=8, max_size=8)
    )
    def test_full_sort_matches_key_order(self, deadlines):
        net = ShuffleExchangeNetwork(8, wrap=False, schedule="bitonic")
        result = net.run(bundles_for(deadlines))
        keys = [ordering_key(b) for b in result.order]
        assert keys == sorted(keys)

    def test_emits_whole_block(self):
        net = ShuffleExchangeNetwork(4, wrap=False, schedule="bitonic")
        result = net.run(bundles_for([9, 2, 7, 5]))
        assert [b.sid for b in result.order] == [1, 3, 2, 0]

    def test_winner_only_uses_tournament(self):
        # WR routing never needs the full sort even on bitonic configs.
        net = ShuffleExchangeNetwork(8, wrap=False, schedule="bitonic")
        result = net.run(bundles_for(range(8)), winner_only=True)
        assert result.passes == 3


class TestReferenceOrder:
    def test_matches_bitonic_on_distinct_keys(self):
        net = ShuffleExchangeNetwork(8, wrap=False, schedule="bitonic")
        bundles = bundles_for([5, 3, 8, 1, 9, 0, 7, 4])
        by_net = [b.sid for b in net.run(bundles).order]
        by_ref = [b.sid for b in net.reference_order(bundles)]
        assert by_net == by_ref

    def test_input_width_validation(self):
        net = ShuffleExchangeNetwork(4)
        with pytest.raises(ValueError):
            net.run(bundles_for([1, 2]))

    def test_reset_counters(self):
        net = ShuffleExchangeNetwork(4)
        net.run(bundles_for([1, 2, 3, 4]))
        net.reset_counters()
        assert all(b.decisions == 0 for b in net.blocks)
