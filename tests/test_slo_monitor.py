"""Tests for declarative SLOs, burn rates and conformance monitoring."""

import json
import math

import pytest

from repro.observability import (
    ConformanceMonitor,
    MetricsRegistry,
    SloMonitor,
    StreamSlo,
    slos_from_shares,
    slos_from_streams,
)
from repro.observability.rollup import RollupObserver, StreamWindowStats, WindowRollup


def make_window(index=0, streams=None, total_serviced=None, cycles=10):
    streams = streams or {}
    if total_serviced is None:
        total_serviced = sum(s.serviced for s in streams.values())
    return WindowRollup(
        index=index,
        start_cycle=index * cycles,
        end_cycle=index * cycles + cycles - 1,
        cycles=cycles,
        idle_cycles=0,
        total_serviced=total_serviced,
        total_misses=sum(s.misses for s in streams.values()),
        total_drops=sum(s.drops for s in streams.values()),
        streams=streams,
    )


def stats(sid, *, serviced=0, misses=0, drops=0, share=0.0, gap_max=0.0):
    return StreamWindowStats(
        sid=sid,
        serviced=serviced,
        wins=serviced,
        misses=misses,
        drops=drops,
        service_share=share,
        service_rate=serviced / 10,
        miss_rate=misses / 10,
        drop_rate=drops / 10,
        gap_p50=0.0,
        gap_p90=0.0,
        gap_max=gap_max,
    )


class TestStreamSlo:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSlo(sid=0, miss_budget=-1)
        with pytest.raises(ValueError):
            StreamSlo(sid=0, min_share=1.5)
        with pytest.raises(ValueError):
            StreamSlo(sid=0, min_share=0.8, max_share=0.2)
        with pytest.raises(ValueError):
            StreamSlo(sid=0, max_gap=0)

    def test_objectives_listing(self):
        slo = StreamSlo(sid=0, miss_budget=2, min_share=0.1, max_gap=8)
        assert slo.objectives == ("miss_budget", "share_band", "max_gap")
        assert StreamSlo(sid=1).objectives == ()


class TestSloMonitorEvaluation:
    def test_miss_budget_violated_only_when_exceeded(self):
        m = SloMonitor([StreamSlo(sid=0, miss_budget=3)])
        m.on_rollup(make_window(streams={0: stats(0, misses=3)}))
        assert m.violations == []
        m.on_rollup(make_window(index=1, streams={0: stats(0, misses=4)}))
        [v] = m.violations
        assert v.objective == "miss_budget"
        assert v.observed == 4.0 and v.threshold == 3.0
        assert v.burn_rate == pytest.approx(4 / 3)

    def test_zero_budget_burn_is_inf(self):
        m = SloMonitor([StreamSlo(sid=0, miss_budget=0)])
        m.on_rollup(make_window(streams={0: stats(0, misses=1)}))
        [v] = m.violations
        assert math.isinf(v.burn_rate)

    def test_share_band_both_sides(self):
        m = SloMonitor([StreamSlo(sid=0, min_share=0.2, max_share=0.6)])
        m.on_rollup(
            make_window(streams={0: stats(0, serviced=1, share=0.1)})
        )
        m.on_rollup(
            make_window(index=1, streams={0: stats(0, serviced=7, share=0.7)})
        )
        low, high = m.violations
        assert low.threshold == 0.2 and low.observed == pytest.approx(0.1)
        assert high.threshold == 0.6 and high.observed == pytest.approx(0.7)
        # Both burns are normalized > 1.
        assert low.burn_rate == pytest.approx(2.0)
        assert high.burn_rate == pytest.approx(0.7 / 0.6)

    def test_share_band_skipped_on_all_idle_window(self):
        m = SloMonitor([StreamSlo(sid=0, min_share=0.5)])
        m.on_rollup(make_window(streams={}, total_serviced=0))
        assert m.violations == []

    def test_monitored_stream_absent_from_window(self):
        """A stream with a min-share SLO that got zero service in a
        busy window is a (starvation) violation; its miss budget is
        trivially met."""
        m = SloMonitor([StreamSlo(sid=7, miss_budget=5, min_share=0.25)])
        m.on_rollup(
            make_window(streams={0: stats(0, serviced=10, share=1.0)})
        )
        [v] = m.violations
        assert v.sid == 7 and v.objective == "share_band" and v.observed == 0.0

    def test_max_gap(self):
        m = SloMonitor([StreamSlo(sid=0, max_gap=8)])
        m.on_rollup(
            make_window(streams={0: stats(0, serviced=2, share=1.0, gap_max=8.0)})
        )
        assert m.violations == []
        m.on_rollup(
            make_window(
                index=1,
                streams={0: stats(0, serviced=2, share=1.0, gap_max=9.0)},
            )
        )
        [v] = m.violations
        assert v.objective == "max_gap" and v.observed == 9.0

    def test_max_gap_skipped_without_service_history(self):
        m = SloMonitor([StreamSlo(sid=0, max_gap=1)])
        m.on_rollup(make_window(streams={0: stats(0, gap_max=0.0)}))
        assert m.violations == []

    def test_duplicate_slo_rejected(self):
        with pytest.raises(ValueError):
            SloMonitor([StreamSlo(sid=0), StreamSlo(sid=0)])

    def test_subscribers_and_active(self):
        m = SloMonitor([StreamSlo(sid=0, miss_budget=0)])
        seen = []
        m.subscribe(seen.append)
        m.on_rollup(make_window(streams={0: stats(0, misses=1)}))
        m.on_rollup(make_window(index=1, streams={0: stats(0, misses=1)}))
        assert len(seen) == 2
        assert [v.window_index for v in m.active()] == [1]
        assert [v.window_index for v in m.active(0)] == [0]

    def test_violation_serialization(self):
        m = SloMonitor([StreamSlo(sid=2, miss_budget=1)])
        m.on_rollup(make_window(streams={2: stats(2, misses=5)}))
        [v] = m.violations
        line = json.loads(v.canonical_line())
        assert line == v.to_dict()
        assert "stream 2" in v.describe() and "miss_budget" in v.describe()

    def test_registry_counters_and_burn_gauges(self):
        registry = MetricsRegistry()
        m = SloMonitor(
            [StreamSlo(sid=0, miss_budget=2)], registry=registry, prefix="t"
        )
        m.on_rollup(make_window(streams={0: stats(0, misses=6)}))
        counter = registry.get("t_slo_violations_total")
        assert counter.value(stream=0, objective="miss_budget") == 1.0
        gauge = registry.get("t_slo_burn_rate")
        assert gauge.value(stream=0, objective="miss_budget") == pytest.approx(3.0)


class TestRunSummaryEvaluation:
    """The batch engine's vectorized run_periodic path reports no
    per-cycle events; conformance is evaluated on the final counters
    with budgets rescaled to the run length."""

    def test_budget_scaling(self):
        import numpy as np

        class Result:
            decision_cycles = 1000
            serviced = np.array([600, 400])
            misses = np.array([15, 0])

        m = SloMonitor([StreamSlo(sid=0, miss_budget=1), StreamSlo(sid=1, miss_budget=1)])
        found = m.evaluate_run_summary(Result(), window_cycles=100)
        # Budget 1/window * 10 windows = 10 < 15 observed.
        [v] = found
        assert v.sid == 0 and v.threshold == 10.0 and v.observed == 15.0
        assert v.window_index == -1  # whole-run marker

    def test_whole_run_share_band(self):
        import numpy as np

        class Result:
            decision_cycles = 100
            serviced = np.array([90, 10])
            misses = np.array([0, 0])

        m = SloMonitor([StreamSlo(sid=1, min_share=0.25)])
        [v] = m.evaluate_run_summary(Result())
        assert v.objective == "share_band" and v.observed == pytest.approx(0.1)

    def test_batch_table3_overload_is_flagged(self):
        """End to end: the paper's own overload case (Table 3
        max-finding) on the batch engine's summary path."""
        from repro.experiments.table3 import run_max_finding
        from repro.observability import Observability

        monitor = ConformanceMonitor(
            [StreamSlo(sid=i, miss_budget=0) for i in range(4)],
            window_cycles=256,
            flight_recorder=False,
        )
        obs = Observability(trace=False, profile=False, monitor=monitor)
        run_max_finding(400, engine="batch", observer=obs)
        assert len(monitor.violations) == 4  # every stream overloads
        assert all(v.objective == "miss_budget" for v in monitor.violations)


class TestSeededViolations:
    """Acceptance criteria: seeded violation scenarios are flagged
    within one rollup window."""

    def _scheduler(self, n, observer, mode=None):
        from repro.core.attributes import SchedulingMode, StreamConfig
        from repro.core.config import ArchConfig, Routing
        from repro.core.scheduler import ShareStreamsScheduler

        arch = ArchConfig(n_slots=n, routing=Routing.WR, wrap=False)
        streams = [
            StreamConfig(sid=i, period=1, mode=mode or SchedulingMode.EDF)
            for i in range(n)
        ]
        return ShareStreamsScheduler(arch, streams, observer=observer)

    def test_overloaded_dwcs_stream_flagged_within_one_window(self):
        """Two streams, tight deadlines every cycle, one service slot:
        2x overload -> misses pile up and bust a small budget inside
        the very first rollup window."""
        from repro.core.attributes import SchedulingMode

        window = 64
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=4), StreamSlo(sid=1, miss_budget=4)],
            window_cycles=window,
            flight_recorder=False,
        )
        s = self._scheduler(2, monitor, mode=SchedulingMode.DWCS)
        for t in range(window):
            for sid in range(2):
                s.enqueue(sid, deadline=t + 1, arrival=t)
            s.decision_cycle(t, consume="winner", count_misses=True)
        assert monitor.rollup.windows_closed == 1
        assert monitor.violations, "overload not flagged in window 0"
        assert all(v.window_index == 0 for v in monitor.violations)
        assert {v.objective for v in monitor.violations} == {"miss_budget"}

    def test_starved_stream_flagged_within_one_window(self):
        """Four streams where one has far-future deadlines: EDF starves
        it completely; its min-share SLO fires in window 0."""
        window = 64
        monitor = ConformanceMonitor(
            slos_from_shares({0: 1, 1: 1, 2: 1, 3: 1}, tolerance=0.5),
            window_cycles=window,
            flight_recorder=False,
        )
        s = self._scheduler(4, monitor)
        for t in range(window):
            for sid in range(3):
                s.enqueue(sid, deadline=t + 2, arrival=t)
            s.enqueue(3, deadline=t + 100_000, arrival=t)
            s.decision_cycle(t, consume="winner", count_misses=False)
        starved = [v for v in monitor.violations if v.sid == 3]
        assert starved and starved[0].window_index == 0
        assert starved[0].objective == "share_band"
        assert starved[0].observed == 0.0

    def test_max_gap_violation_from_staleness(self):
        """A stream serviced once then starved trips its max-gap SLO
        via end-of-window staleness, not just measured gaps."""
        window = 32
        monitor = ConformanceMonitor(
            [StreamSlo(sid=1, max_gap=8)],
            window_cycles=window,
            flight_recorder=False,
        )
        s = self._scheduler(2, monitor)
        s.enqueue(1, deadline=1, arrival=0)
        for t in range(window):
            s.enqueue(0, deadline=t + 2, arrival=t)
            s.decision_cycle(t, consume="winner", count_misses=False)
        [v] = monitor.violations
        assert v.objective == "max_gap" and v.observed >= window - 8


class TestZeroFalsePositives:
    """Acceptance criteria: zero false positives across the existing
    50-scenario differential campaign with monitoring enabled.

    Thresholds are derived per scenario from a probe run at the
    observed per-window extremes (violations fire only on *strict*
    excess), then the scenario is re-run with monitoring on the other
    engine — proving both that nothing in-band is flagged and that the
    rollup streams agree across engines.
    """

    WINDOW = 64

    def _probe_thresholds(self, scenario):
        probe = RollupObserver(window_cycles=self.WINDOW)
        from repro.core.differential import run_engine

        run_engine(scenario, "batch", observer=probe)
        probe.finalize()
        sids = sorted({sid for w in probe.history for sid in w.streams})
        slos = []
        for sid in sids:
            max_misses, min_share, max_share, max_gap = 0, 1.0, 0.0, 0.0
            for w in probe.history:
                s = w.streams.get(sid)
                share = s.service_share if s is not None else 0.0
                if w.total_serviced > 0:
                    min_share = min(min_share, share)
                    max_share = max(max_share, share)
                if s is not None:
                    max_misses = max(max_misses, s.misses)
                    max_gap = max(max_gap, s.gap_max)
            slos.append(
                StreamSlo(
                    sid=sid,
                    miss_budget=max_misses,
                    min_share=min_share if min_share <= max_share else None,
                    max_share=max_share if max_share > 0 else None,
                    max_gap=int(math.ceil(max_gap)) if max_gap > 0 else None,
                )
            )
        return slos, [w.to_dict() for w in probe.history]

    def test_campaign_with_monitoring_has_no_false_positives(self):
        from repro.core.differential import generate_scenario, run_engine

        checked = 0
        for seed in range(50):
            scenario = generate_scenario(seed)
            slos, probe_windows = self._probe_thresholds(scenario)
            monitor = ConformanceMonitor(
                slos, window_cycles=self.WINDOW, flight_recorder=False
            )
            run_engine(scenario, "reference", observer=monitor)
            monitor.finalize()
            assert monitor.violations == [], (
                f"seed {seed}: false positives {monitor.violations}"
            )
            # Cross-engine agreement of the rollup stream itself.
            assert [w.to_dict() for w in monitor.rollup.history] == probe_windows
            checked += 1
        assert checked == 50


class TestConstructors:
    def test_slos_from_shares(self):
        slos = slos_from_shares({0: 1, 1: 1, 2: 2, 3: 4}, tolerance=0.25)
        by_sid = {s.sid: s for s in slos}
        assert by_sid[3].min_share == pytest.approx(0.5 * 0.75)
        assert by_sid[3].max_share == pytest.approx(0.5 * 1.25)
        assert by_sid[0].min_share == pytest.approx(0.125 * 0.75)

    def test_slos_from_shares_validation(self):
        with pytest.raises(ValueError):
            slos_from_shares({})
        with pytest.raises(ValueError):
            slos_from_shares({0: 1}, tolerance=1.5)
        with pytest.raises(ValueError):
            slos_from_shares({0: 0.0})

    def test_slos_from_streams(self):
        from repro.core.attributes import SchedulingMode, StreamConfig

        streams = [
            StreamConfig(
                sid=0, period=2, loss_numerator=1, loss_denominator=4,
                mode=SchedulingMode.DWCS,
            ),
            StreamConfig(
                sid=1, period=1, loss_numerator=0, loss_denominator=0,
                mode=SchedulingMode.EDF,
            ),
        ]
        slos = slos_from_streams(streams, window_cycles=64)
        # x=1 per y=4 requests at period 2: 32 requests/window -> 8.
        assert len(slos) == 1
        assert slos[0].sid == 0 and slos[0].miss_budget == 8

    def test_slos_from_streams_validation(self):
        with pytest.raises(ValueError):
            slos_from_streams([], window_cycles=0)


class TestConformanceMonitorFacade:
    def test_report_and_clear(self):
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0)], window_cycles=4
        )
        from tests.test_observability_rollup import FakeOutcome

        for t in range(4):
            monitor.on_decision(FakeOutcome(t, winner=0, serviced=(0,), misses=(0,)))
        assert len(monitor.violations) == 1
        report = monitor.report()
        assert "violations: 1" in report and "miss_budget" in report
        monitor.clear()
        assert monitor.violations == [] and monitor.rollup.windows_closed == 0

    def test_observability_facade_integration(self):
        """Observability(monitor=...) feeds, finalizes and renders."""
        from repro.observability import Observability
        from tests.test_observability_rollup import FakeOutcome

        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0)], window_cycles=100
        )
        obs = Observability(trace=False, profile=False, monitor=monitor)
        monitor.slo._violation_counter = obs.metrics.counter(
            "sharestreams_slo_violations_total", "breaches"
        )
        for t in range(5):
            obs.on_decision(FakeOutcome(t, winner=0, serviced=(0,), misses=(0,)))
        obs.finalize()  # flushes the partial window -> evaluation runs
        assert len(monitor.violations) == 1
        assert "== conformance ==" in obs.render()
