"""Tests for traffic generators and workload specs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import SchedulingMode
from repro.traffic import (
    EndsystemStreamSpec,
    backlogged_arrivals,
    burst_arrivals,
    cbr_arrivals,
    periods_for_shares,
    poisson_arrivals,
    ratio_workload,
)


class TestCBR:
    def test_uniform_spacing(self):
        a = cbr_arrivals(5, rate_pps=1e6)  # 1 us apart
        assert np.allclose(np.diff(a), 1.0)

    def test_start_offset(self):
        a = cbr_arrivals(3, rate_pps=1e6, start_us=100.0)
        assert a[0] == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cbr_arrivals(-1, 1.0)
        with pytest.raises(ValueError):
            cbr_arrivals(5, 0.0)


class TestBurst:
    def test_gap_after_each_burst(self):
        a = burst_arrivals(
            8, burst_size=4, intra_rate_pps=1e6, inter_burst_gap_us=100.0
        )
        gaps = np.diff(a)
        assert np.allclose(gaps[:3], 1.0)
        assert gaps[3] == pytest.approx(101.0)
        assert np.allclose(gaps[4:], 1.0)

    def test_monotone_nondecreasing(self):
        a = burst_arrivals(
            100, burst_size=7, intra_rate_pps=5e5, inter_burst_gap_us=999.0
        )
        assert np.all(np.diff(a) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_arrivals(4, burst_size=0, intra_rate_pps=1.0, inter_burst_gap_us=1.0)
        with pytest.raises(ValueError):
            burst_arrivals(4, burst_size=2, intra_rate_pps=1.0, inter_burst_gap_us=-1.0)


class TestPoisson:
    def test_deterministic_with_seed(self):
        a = poisson_arrivals(100, 1000.0, rng=42)
        b = poisson_arrivals(100, 1000.0, rng=42)
        assert np.array_equal(a, b)

    def test_mean_rate_roughly_matches(self):
        a = poisson_arrivals(20_000, 1000.0, rng=7)
        measured = len(a) / (a[-1] - a[0]) * 1e6
        assert measured == pytest.approx(1000.0, rel=0.05)

    def test_strictly_increasing(self):
        a = poisson_arrivals(1000, 50.0, rng=3)
        assert np.all(np.diff(a) > 0)


class TestBacklogged:
    def test_all_at_start(self):
        a = backlogged_arrivals(10, start_us=5.0)
        assert np.all(a == 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            backlogged_arrivals(-1)


class TestSpecs:
    def test_ratio_workload_shapes(self):
        specs = ratio_workload((1, 1, 2, 4), frames_per_stream=100)
        assert [s.sid for s in specs] == [0, 1, 2, 3]
        assert [s.share for s in specs] == [1.0, 1.0, 2.0, 4.0]
        assert all(s.n_frames == 100 for s in specs)
        assert all(s.mode is SchedulingMode.FAIR_SHARE for s in specs)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            EndsystemStreamSpec(sid=0, share=0.0)
        with pytest.raises(ValueError):
            EndsystemStreamSpec(sid=0, frame_bytes=0)

    def test_periods_for_shares_paper_ratio(self):
        assert periods_for_shares([1, 1, 2, 4]) == [4, 4, 2, 1]

    def test_periods_inverse_proportionality(self):
        periods = periods_for_shares([1, 2, 3])
        products = [p * s for p, s in zip(periods, [1, 2, 3])]
        assert len(set(products)) == 1

    def test_periods_validation(self):
        with pytest.raises(ValueError):
            periods_for_shares([0.0, 1.0])

    @given(
        shares=st.lists(
            st.sampled_from([1, 2, 3, 4, 5, 8]), min_size=1, max_size=6
        )
    )
    def test_periods_property(self, shares):
        periods = periods_for_shares([float(s) for s in shares])
        assert all(isinstance(p, int) and p >= 1 for p in periods)
        products = {p * s for p, s in zip(periods, shares)}
        assert len(products) == 1
