"""Tests for the peer-to-peer PCI transfer configuration."""

import pytest

from repro.endsystem import EndsystemConfig, EndsystemRouter
from repro.endsystem.host import PEER_TRANSFER_COST_US
from repro.sim.nic import TEN_GIGABIT
from repro.traffic.specs import ratio_workload


def run(cfg):
    specs = ratio_workload((1, 1, 2, 4), frames_per_stream=600)
    return EndsystemRouter(specs, cfg).run(preload=True)


class TestTransferCostProperty:
    def test_no_pci(self):
        cfg = EndsystemConfig(include_pci=False)
        assert cfg.transfer_cost_us == 0.0

    def test_pio_default(self):
        cfg = EndsystemConfig(include_pci=True)
        assert cfg.transfer_cost_us == pytest.approx(cfg.host.pio_cost_us)

    def test_peer(self):
        cfg = EndsystemConfig(include_pci=True, peer_to_peer=True)
        assert cfg.transfer_cost_us == PEER_TRANSFER_COST_US


class TestPeerThroughput:
    def test_peer_between_pio_and_ideal(self):
        """Section 5.2's expectation: peer transfers close most of the
        PIO gap."""
        pio = run(EndsystemConfig(link=TEN_GIGABIT, include_pci=True))
        peer = run(
            EndsystemConfig(
                link=TEN_GIGABIT, include_pci=True, peer_to_peer=True
            )
        )
        ideal = run(EndsystemConfig(link=TEN_GIGABIT, include_pci=False))
        assert pio.throughput_pps < peer.throughput_pps < ideal.throughput_pps
        # Peer recovers most of the gap.
        recovered = (peer.throughput_pps - pio.throughput_pps) / (
            ideal.throughput_pps - pio.throughput_pps
        )
        assert recovered > 0.7

    def test_shares_unaffected_by_transfer_policy(self):
        peer = run(EndsystemConfig(include_pci=True, peer_to_peer=True))
        bw = peer.te.bandwidth
        horizon = peer.elapsed_us / 4
        means = {
            sid: float(bw.series(sid, horizon, t_end=horizon).mbps[0])
            for sid in bw.stream_ids
        }
        assert means[3] / means[0] == pytest.approx(4.0, rel=0.05)
