"""Tests for the discipline interface and simple disciplines."""

import pytest

from repro.disciplines import (
    DISCIPLINES,
    EDF,
    FCFS,
    Packet,
    StaticPriority,
    SwStream,
    create,
    info_for,
)


class TestSwStream:
    def test_defaults(self):
        s = SwStream(stream_id=1)
        assert s.weight == 1.0
        assert s.period == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"weight": -1.0},
            {"period": 0.0},
            {"loss_numerator": -1},
            {"loss_numerator": 3, "loss_denominator": 2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SwStream(stream_id=0, **kwargs)


class TestRegistry:
    def test_all_names_present(self):
        assert set(DISCIPLINES) == {
            "fcfs",
            "static_priority",
            "edf",
            "dwcs",
            "wfq",
            "sfq",
            "drr",
            "hfs",
        }

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError):
            create("round_robin_2000")

    def test_info_families(self):
        assert info_for("fcfs").family == "priority-class"
        assert info_for("wfq").family == "fair-queuing"
        assert info_for("dwcs").family == "window-constrained"


class TestFCFS:
    def test_fifo_order_across_streams(self):
        d = FCFS()
        for sid in range(2):
            d.add_stream(SwStream(stream_id=sid))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=0.0))
        d.enqueue(Packet(stream_id=0, seq=0, arrival=1.0))
        assert d.dequeue(2.0).stream_id == 1
        assert d.dequeue(2.0).stream_id == 0
        assert d.dequeue(2.0) is None

    def test_unknown_stream_rejected(self):
        d = FCFS()
        with pytest.raises(KeyError):
            d.enqueue(Packet(stream_id=9, seq=0, arrival=0.0))

    def test_backlog_accounting(self):
        d = FCFS()
        d.add_stream(SwStream(stream_id=0))
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0))
        assert d.backlog == 1
        d.dequeue(0.0)
        assert d.backlog == 0

    def test_duplicate_stream_rejected(self):
        d = FCFS()
        d.add_stream(SwStream(stream_id=0))
        with pytest.raises(ValueError):
            d.add_stream(SwStream(stream_id=0))


class TestStaticPriority:
    def test_strict_priority(self):
        d = StaticPriority()
        d.add_stream(SwStream(stream_id=0, priority=5))
        d.add_stream(SwStream(stream_id=1, priority=1))
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=1.0))
        assert d.dequeue(2.0).stream_id == 1

    def test_fifo_within_class(self):
        d = StaticPriority()
        d.add_stream(SwStream(stream_id=0, priority=1))
        first = Packet(stream_id=0, seq=0, arrival=0.0)
        second = Packet(stream_id=0, seq=1, arrival=1.0)
        d.enqueue(first)
        d.enqueue(second)
        assert d.dequeue(2.0) is first

    def test_starvation_under_load(self):
        # The paper's motivation: high-priority hogs starve the rest.
        d = StaticPriority()
        d.add_stream(SwStream(stream_id=0, priority=0))
        d.add_stream(SwStream(stream_id=1, priority=1))
        for k in range(10):
            d.enqueue(Packet(stream_id=0, seq=k, arrival=float(k)))
            d.enqueue(Packet(stream_id=1, seq=k, arrival=float(k)))
        served = [d.dequeue(float(t)).stream_id for t in range(10)]
        assert served == [0] * 10


class TestEDF:
    def test_earliest_deadline_first(self):
        d = EDF()
        for sid in range(3):
            d.add_stream(SwStream(stream_id=sid))
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=9.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=0.0, deadline=2.0))
        d.enqueue(Packet(stream_id=2, seq=0, arrival=0.0, deadline=5.0))
        assert [d.dequeue(0.0).stream_id for _ in range(3)] == [1, 2, 0]

    def test_requires_deadline(self):
        d = EDF()
        d.add_stream(SwStream(stream_id=0))
        with pytest.raises(ValueError):
            d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0))

    def test_fcfs_among_equal_deadlines(self):
        d = EDF()
        d.add_stream(SwStream(stream_id=0))
        d.add_stream(SwStream(stream_id=1))
        d.enqueue(Packet(stream_id=0, seq=0, arrival=5.0, deadline=9.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=1.0, deadline=9.0))
        assert d.dequeue(6.0).stream_id == 1

    def test_peek_deadline(self):
        d = EDF()
        d.add_stream(SwStream(stream_id=0))
        assert d.peek_deadline() is None
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=4.0))
        assert d.peek_deadline() == 4.0
