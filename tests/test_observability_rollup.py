"""Tests for streaming windowed rollups (GapSketch, RollupObserver)."""

import pytest

from repro.observability.rollup import (
    DEFAULT_GAP_BUCKETS,
    GapSketch,
    RollupObserver,
)


class FakePacket:
    def __init__(self, deadline=0, arrival=0):
        self.deadline = deadline
        self.arrival = arrival


class FakeOutcome:
    """Minimal DecisionOutcome stand-in for hook unit tests."""

    def __init__(
        self, now, winner=None, serviced=(), misses=(), dropped=(), hw_cycles=1
    ):
        self.now = now
        self.circulated_sid = winner
        self.block = () if winner is None else (winner,)
        self.serviced = [(sid, FakePacket()) for sid in serviced]
        self.misses = list(misses)
        self.dropped = [(sid, FakePacket(deadline=now - 1)) for sid in dropped]
        self.hw_cycles = hw_cycles


class TestGapSketch:
    def test_quantile_on_grid_is_exact(self):
        s = GapSketch()
        for v in (1, 2, 2, 4, 4, 4, 8, 8):
            s.observe(v)
        assert s.quantile(0.0) == 1.0
        assert s.quantile(0.5) == 4.0
        assert s.quantile(1.0) == 8.0

    def test_quantile_is_conservative(self):
        s = GapSketch(bounds=(10.0, 100.0))
        s.observe(3)
        # True value 3, covering bucket upper bound 10 — never under.
        assert s.quantile(0.5) == 10.0

    def test_overflow_reports_exact_max(self):
        s = GapSketch(bounds=(2.0,))
        s.observe(1)
        s.observe(999)
        assert s.overflow == 1
        assert s.quantile(1.0) == 999.0
        assert s.max == 999.0

    def test_empty_sketch(self):
        s = GapSketch()
        assert s.quantile(0.5) == 0.0
        assert s.mean == 0.0

    def test_mean(self):
        s = GapSketch()
        s.observe(2)
        s.observe(4)
        assert s.mean == 3.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            GapSketch().quantile(1.5)

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            GapSketch(bounds=())

    def test_clear(self):
        s = GapSketch()
        s.observe(7)
        s.clear()
        assert s.total == 0 and s.max == 0.0 and s.quantile(0.9) == 0.0

    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_GAP_BUCKETS == tuple(
            2.0**k for k in range(len(DEFAULT_GAP_BUCKETS))
        )


class TestRollupObserver:
    def test_window_closes_at_size(self):
        r = RollupObserver(window_cycles=4)
        for t in range(7):
            r.on_decision(FakeOutcome(t, winner=0, serviced=(0,)))
        assert r.windows_closed == 1
        assert r.latest.cycles == 4
        assert r.latest.start_cycle == 0 and r.latest.end_cycle == 3

    def test_finalize_flushes_partial_window(self):
        r = RollupObserver(window_cycles=100)
        for t in range(5):
            r.on_decision(FakeOutcome(t, winner=1, serviced=(1,)))
        flushed = r.finalize()
        assert flushed is not None and flushed.cycles == 5
        assert r.windows_closed == 1
        assert r.finalize() is None  # idempotent on an empty window

    def test_per_stream_counts_and_shares(self):
        r = RollupObserver(window_cycles=4)
        r.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        r.on_decision(FakeOutcome(1, winner=0, serviced=(0,), misses=(1,)))
        r.on_decision(FakeOutcome(2, winner=1, serviced=(1,), dropped=(1,)))
        r.on_decision(FakeOutcome(3, winner=0, serviced=(0,)))
        w = r.latest
        assert w.total_serviced == 4 and w.total_misses == 1 and w.total_drops == 1
        s0, s1 = w.streams[0], w.streams[1]
        assert s0.serviced == 3 and s0.service_share == 0.75
        assert s0.wins == 3 and s1.wins == 1
        assert s1.misses == 1 and s1.drops == 1
        assert s1.miss_rate == 0.25 and s1.drop_rate == 0.25

    def test_idle_cycles_counted(self):
        r = RollupObserver(window_cycles=2)
        r.on_decision(FakeOutcome(0))
        r.on_decision(FakeOutcome(1, winner=0, serviced=(0,)))
        assert r.latest.idle_cycles == 1

    def test_gap_quantiles_for_alternating_service(self):
        r = RollupObserver(window_cycles=8)
        for t in range(8):
            sid = t % 2
            r.on_decision(FakeOutcome(t, winner=sid, serviced=(sid,)))
        w = r.latest
        # Each stream is serviced every 2 cycles: all gaps are exactly 2.
        assert w.streams[0].gap_p50 == 2.0
        assert w.streams[0].gap_p90 == 2.0

    def test_starved_stream_reports_staleness_gap(self):
        r = RollupObserver(window_cycles=8)
        r.on_decision(FakeOutcome(0, winner=3, serviced=(3,)))
        for t in range(1, 8):
            r.on_decision(FakeOutcome(t, winner=0, serviced=(0,)))
        w = r.latest
        # Stream 3 was serviced once at t=0 then starved: gap_max must
        # reflect end-of-window staleness (7 cycles), not silence.
        assert w.streams[3].gap_max == 7.0

    def test_gap_accounting_continues_across_windows(self):
        r = RollupObserver(window_cycles=2)
        r.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        r.on_decision(FakeOutcome(1, winner=1, serviced=(1,)))
        r.on_decision(FakeOutcome(2, winner=0, serviced=(0,)))
        r.on_decision(FakeOutcome(3, winner=1, serviced=(1,)))
        # Window 2's gap for stream 0 spans the boundary (t=0 -> t=2).
        assert r.history[1].streams[0].gap_p50 == 2.0

    def test_subscribers_called_after_state_reset(self):
        r = RollupObserver(window_cycles=2)
        seen = []
        r.subscribe(lambda w: seen.append((w.index, r.finalize())))
        r.on_decision(FakeOutcome(0, winner=0, serviced=(0,)))
        r.on_decision(FakeOutcome(1, winner=0, serviced=(0,)))
        # finalize() inside the callback sees an already-reset window.
        assert seen == [(0, None)]

    def test_history_is_bounded(self):
        r = RollupObserver(window_cycles=1, keep=3)
        for t in range(10):
            r.on_decision(FakeOutcome(t, winner=0, serviced=(0,)))
        assert r.windows_closed == 10
        assert [w.index for w in r.history] == [7, 8, 9]

    def test_clear_resets_everything(self):
        r = RollupObserver(window_cycles=2)
        for t in range(5):
            r.on_decision(FakeOutcome(t, winner=0, serviced=(0,)))
        r.clear()
        assert r.windows_closed == 0 and r.latest is None
        assert r.finalize() is None

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RollupObserver(window_cycles=0)

    def test_to_dict_round_trip_shapes(self):
        r = RollupObserver(window_cycles=2)
        r.on_decision(FakeOutcome(0, winner=0, serviced=(0,), misses=(1,)))
        r.on_decision(FakeOutcome(1, winner=1, serviced=(1,)))
        d = r.latest.to_dict()
        assert d["cycles"] == 2 and set(d["streams"]) == {"0", "1"}
        assert d["streams"]["0"]["service_share"] == 0.5


class TestEngineIntegration:
    def test_rollups_identical_across_engines(self):
        """Windows are measured in decision cycles, so both engines
        produce identical rollups on identical workloads."""
        from repro.core.differential import generate_scenario, run_engine

        for seed in (3, 11):
            scenario = generate_scenario(seed)
            rollups = {}
            for engine in ("reference", "batch"):
                obs = RollupObserver(window_cycles=64)
                run_engine(scenario, engine, observer=obs)
                obs.finalize()
                rollups[engine] = [w.to_dict() for w in obs.history]
            assert rollups["reference"] == rollups["batch"]
            assert rollups["reference"]  # non-degenerate

    def test_memory_is_o_streams(self):
        """No retained event log: internal state size tracks streams,
        not decisions observed."""
        r = RollupObserver(window_cycles=10**9, keep=1)
        for t in range(5000):
            r.on_decision(FakeOutcome(t, winner=t % 3, serviced=(t % 3,)))
        assert len(r._serviced) == 3
        assert len(r._sketches) <= 3
        assert all(len(s.counts) == len(s.bounds) for s in r._sketches.values())
