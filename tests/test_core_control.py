"""Tests for the Control & Steering FSM."""

import pytest

from repro.core.control import ControlState, ControlUnit


class TestFSM:
    def test_starts_in_load(self):
        unit = ControlUnit()
        assert unit.state is ControlState.LOAD
        assert unit.hw_cycle == 0

    def test_state_transitions_accumulate_cycles(self):
        unit = ControlUnit()
        unit.load(1)
        unit.schedule(2)
        unit.priority_update(1)
        assert unit.state is ControlState.PRIORITY_UPDATE
        assert unit.hw_cycle == 4
        assert unit.decision_cycles == 1

    def test_alternating_schedule_update(self):
        unit = ControlUnit()
        unit.load(1)
        for _ in range(5):
            unit.schedule(2)
            unit.priority_update(1)
        assert unit.decision_cycles == 5
        assert unit.hw_cycle == 1 + 5 * 3

    def test_negative_cycles_rejected(self):
        unit = ControlUnit()
        with pytest.raises(ValueError):
            unit.schedule(-1)

    def test_elapsed_seconds(self):
        unit = ControlUnit()
        unit.schedule(100)
        assert unit.elapsed_seconds(100.0) == pytest.approx(1e-6)

    def test_elapsed_rejects_bad_clock(self):
        unit = ControlUnit()
        with pytest.raises(ValueError):
            unit.elapsed_seconds(0)

    def test_reset(self):
        unit = ControlUnit(trace=True)
        unit.load(1)
        unit.schedule(2)
        unit.reset()
        assert unit.hw_cycle == 0
        assert unit.state is ControlState.LOAD
        assert unit.timeline == []


class TestTimeline:
    def test_trace_records_entries(self):
        unit = ControlUnit(trace=True)
        unit.load(1, detail="boot")
        unit.schedule(2, detail="t=0")
        unit.priority_update(1)
        assert len(unit.timeline) == 3
        first = unit.timeline[0]
        assert first.state is ControlState.LOAD
        assert first.start_cycle == 0
        assert first.end_cycle == 1
        assert unit.timeline[1].start_cycle == 1
        assert unit.timeline[2].start_cycle == 3

    def test_trace_off_by_default(self):
        unit = ControlUnit()
        unit.load(1)
        assert unit.timeline == []

    def test_entries_are_contiguous(self):
        unit = ControlUnit(trace=True)
        unit.load(1)
        for _ in range(4):
            unit.schedule(3)
            unit.priority_update(1)
        for prev, cur in zip(unit.timeline, unit.timeline[1:]):
            assert cur.start_cycle == prev.end_cycle
