"""Tests for the dual-ported SRAM fabric path and FabricLinecard."""

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.linecard import DualPortedSRAM, FabricLinecard, SwitchFabric


class TestDualPortedSRAM:
    def test_deposit_and_consume(self):
        sram = DualPortedSRAM(2)
        assert sram.deposit(0, 100)
        assert sram.deposit(0, 101)
        assert sram.backlog(0) == 2
        assert sram.consume(0) == 100
        assert sram.head_arrival(0) == 101
        assert sram.backlog(0) == 1  # peek is non-destructive

    def test_partition_full_drops(self):
        sram = DualPortedSRAM(1, queue_depth=2)
        assert sram.deposit(0, 1) and sram.deposit(0, 2)
        assert not sram.deposit(0, 3)
        assert sram.stats.packets_dropped_full == 1

    def test_arrival_times_are_16bit(self):
        sram = DualPortedSRAM(1)
        sram.deposit(0, 70000)
        assert sram.consume(0) == 70000 & 0xFFFF

    def test_id_partition(self):
        sram = DualPortedSRAM(4)
        for sid in (3, 1, 2):
            assert sram.emit_winner(sid)
        assert list(sram.drain_ids(3)) == [3, 1, 2]
        assert sram.stats.ids_emitted == 3

    def test_empty_partition(self):
        sram = DualPortedSRAM(1)
        assert sram.consume(0) is None
        assert sram.head_arrival(0) is None

    def test_rejects_zero_streams(self):
        with pytest.raises(ValueError):
            DualPortedSRAM(0)


class TestSwitchFabric:
    def test_offer_batch(self):
        sram = DualPortedSRAM(2, queue_depth=8)
        fabric = SwitchFabric(sram)
        accepted = fabric.offer(1, range(5))
        assert accepted == 5
        assert sram.backlog(1) == 5

    def test_offer_stops_at_capacity(self):
        sram = DualPortedSRAM(1, queue_depth=4)
        fabric = SwitchFabric(sram)
        assert fabric.offer(0, range(10)) == 4


class TestFabricLinecard:
    def _make(self, n_slots=4):
        arch = ArchConfig(n_slots=n_slots, routing=Routing.WR, wrap=True)
        streams = [
            StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
            for i in range(n_slots)
        ]
        return FabricLinecard(arch, streams)

    def test_full_path_schedules_and_emits_ids(self):
        lc = self._make()
        fabric = SwitchFabric(lc.sram)
        for sid in range(4):
            fabric.offer(sid, range(sid, 100 + sid))
        result = lc.pump(80)
        assert result.packets_scheduled == 80
        ids = list(lc.sram.drain_ids(80))
        assert len(ids) == 80
        assert set(ids) <= {0, 1, 2, 3}

    def test_edf_ordering_via_fabric(self):
        lc = self._make()
        # Stream 2 has the earliest arrival -> earliest deadline.
        lc.sram.deposit(0, 50)
        lc.sram.deposit(1, 30)
        lc.sram.deposit(2, 10)
        lc.sram.deposit(3, 40)
        result = lc.pump(4)
        assert result.winner_sequence[0] == 2

    def test_idle_when_fabric_empty(self):
        lc = self._make()
        result = lc.pump(5)
        assert result.packets_scheduled == 0

    def test_wire_speed_utilization(self):
        lc = self._make()
        # 1500B at 10G: packet-time 1.2us >> decision time -> full rate.
        assert lc.wire_speed_utilization(1e10, 1500) == 1.0
        # 64B at 10G: winner-per-decision cannot keep up...
        assert lc.wire_speed_utilization(1e10, 64) < 1.0
        # ...but block emission can (the paper's tradeoff).
        arch = ArchConfig(n_slots=4, routing=Routing.BA)
        streams = [
            StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
            for i in range(4)
        ]
        from repro.linecard import Linecard

        ba = Linecard(arch, streams)
        assert ba.wire_speed_utilization(1e10, 64, block=True) == 1.0
