"""Tests for the calibrated Virtex area/clock/throughput models."""

import pytest

from repro.core.config import Routing
from repro.hwmodel import (
    CONTROL_SLICES,
    DECISION_SLICES,
    PIII_550_LINUX24,
    PUBLISHED_COMPARATORS,
    REGISTER_SLICES,
    VIRTEX_1000,
    VIRTEX_II_6000,
    area_model,
    clock_rate_mhz,
    decision_cycles,
    decision_time_us,
    scheduler_throughput_pps,
)


class TestDeviceCatalog:
    def test_virtex_1000_geometry(self):
        # "64 x 96 Virtex I CLBs (2 Virtex I slices = 1 Virtex I CLB)"
        assert VIRTEX_1000.clbs == 64 * 96
        assert VIRTEX_1000.slices == 12_288
        assert VIRTEX_1000.system_gates == 1_000_000

    def test_virtex_ii_is_larger_and_faster(self):
        assert VIRTEX_II_6000.slices > VIRTEX_1000.slices
        assert VIRTEX_II_6000.max_clock_mhz > VIRTEX_1000.max_clock_mhz

    def test_fit_check(self):
        assert VIRTEX_1000.fits(10_000)
        assert not VIRTEX_1000.fits(12_000)
        with pytest.raises(ValueError):
            VIRTEX_1000.utilization(-1)


class TestAreaModel:
    def test_paper_block_costs(self):
        # Section 5.1's measured slice counts.
        assert CONTROL_SLICES == 22
        assert DECISION_SLICES == 190
        assert REGISTER_SLICES == 150

    def test_component_counts(self):
        a = area_model(8, Routing.BA)
        assert a.decision_slices == 4 * 190
        assert a.register_slices == 8 * 150
        assert a.control_slices == 22

    def test_linear_growth(self):
        # Doubling slots roughly doubles area (fixed control offset).
        areas = {n: area_model(n, Routing.BA).total_slices for n in (4, 8, 16, 32)}
        for n in (4, 8, 16):
            ratio = (areas[2 * n] - 22) / (areas[n] - 22)
            assert ratio == pytest.approx(2.0, rel=1e-6)

    def test_ba_wr_nearly_equal_area(self):
        # "The BA architecture maintains almost the same area with its
        # WR counterpart for all stream-slot sizes."
        for n in (4, 8, 16, 32):
            ba = area_model(n, Routing.BA).total_slices
            wr = area_model(n, Routing.WR).total_slices
            assert abs(ba - wr) / wr < 0.05

    def test_32_slots_fit_single_chip(self):
        # "easily scales from 4 to 32 stream-slots on a single chip"
        assert area_model(32, Routing.BA).fits
        assert area_model(32, Routing.WR).fits

    def test_rejects_odd_counts(self):
        with pytest.raises(ValueError):
            area_model(5)
        with pytest.raises(ValueError):
            area_model(0)

    def test_clb_conversion(self):
        a = area_model(4, Routing.BA)
        assert a.total_clbs == pytest.approx(a.total_slices / 2)


class TestClockModel:
    def test_wr_flatter_than_ba(self):
        # "The WR architecture shows lesser clock-rate variation from 4
        # to 32 stream-slots, than the BA architecture."
        wr_span = clock_rate_mhz(4, Routing.WR) - clock_rate_mhz(32, Routing.WR)
        ba_span = clock_rate_mhz(4, Routing.BA) - clock_rate_mhz(32, Routing.BA)
        wr_rel = wr_span / clock_rate_mhz(4, Routing.WR)
        ba_rel = ba_span / clock_rate_mhz(4, Routing.BA)
        assert wr_rel < ba_rel

    def test_degradation_anchors(self):
        # ~20% at 8/16 slots, ~10% at 32 (Section 5.1).
        for n, expected in ((8, 0.20), (16, 0.20), (32, 0.10)):
            deg = 1 - clock_rate_mhz(n, Routing.BA) / clock_rate_mhz(n, Routing.WR)
            assert deg == pytest.approx(expected, abs=0.02)

    def test_below_card_ceiling(self):
        for n in (4, 8, 16, 32):
            for r in Routing:
                assert clock_rate_mhz(n, r) <= VIRTEX_1000.max_clock_mhz

    def test_interpolation_between_anchors(self):
        mid = clock_rate_mhz(12, Routing.WR)
        assert clock_rate_mhz(16, Routing.WR) < mid < clock_rate_mhz(8, Routing.WR)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            clock_rate_mhz(1)


class TestTiming:
    @pytest.mark.parametrize("n,sort", [(4, 2), (8, 3), (16, 4), (32, 5)])
    def test_decision_cycles_log_growth(self, n, sort):
        # sort passes + 1 update + fixed overhead.
        assert decision_cycles(n) == sort + 1 + 6

    def test_bitonic_costs_more(self):
        assert decision_cycles(8, schedule="bitonic") > decision_cycles(8)

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            decision_cycles(8, schedule="bogo")

    def test_decision_time_positive_and_increasing(self):
        times = [decision_time_us(n, Routing.BA) for n in (4, 8, 16, 32)]
        assert all(t > 0 for t in times)
        assert times == sorted(times)


class TestThroughput:
    def test_linecard_anchor(self):
        # The paper's 7.6 Mpps at 4 slots.
        tp = scheduler_throughput_pps(4, Routing.WR)
        assert tp.packets_per_second == pytest.approx(7_600_000)

    def test_block_gains_factor_n(self):
        wr = scheduler_throughput_pps(4, Routing.WR)
        ba = scheduler_throughput_pps(4, Routing.BA, block=True)
        gain = ba.packets_per_second / wr.packets_per_second
        # Factor of the block size, discounted only by the BA clock.
        assert gain == pytest.approx(4 * (62.9 / 68.4) / 1.0, rel=0.02)

    def test_block_requires_ba(self):
        with pytest.raises(ValueError):
            scheduler_throughput_pps(4, Routing.WR, block=True)


class TestHostModel:
    def test_calibrated_anchors(self):
        assert PIII_550_LINUX24.throughput_pps(include_pio=False) == pytest.approx(469_483)
        assert PIII_550_LINUX24.throughput_pps(include_pio=True) == pytest.approx(299_065)

    def test_cost_ordering(self):
        assert PIII_550_LINUX24.packet_cost_us > 0
        assert PIII_550_LINUX24.pio_cost_us > 0

    def test_published_table_contains_key_rows(self):
        assert "Click modular router (SFQ module)" in PUBLISHED_COMPARATORS
        assert PUBLISHED_COMPARATORS[
            "Router plug-ins (Pentium Pro, DRR, NetBSD)"
        ] == 28_279
