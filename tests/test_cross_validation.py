"""Cross-validation: the cycle-level hardware model vs software oracles.

The hardware scheduler (Decision blocks + shuffle network) and the
pure-software disciplines are independent implementations of the same
rules; these tests drive both with identical workloads and require the
same decisions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.disciplines import DWCS, EDF, Packet, SwStream


def hw_edf_like(n_slots, mode=SchedulingMode.DWCS, windows=None):
    """Hardware scheduler whose slots carry DWCS-encoded streams.

    With (0, 0) windows the ordering degenerates to EDF + FCFS.  For
    the *pure* EDF comparison use ``mode=SERVICE_TAG`` (attribute
    updates fully bypassed — no winner bias, no violation boosts); DWCS
    mode keeps the update path live for the DWCS agreement tests.
    """
    arch = ArchConfig(n_slots=n_slots, routing=Routing.WR, wrap=False)
    streams = []
    for i in range(n_slots):
        x, y = (windows or {}).get(i, (0, 0))
        streams.append(
            StreamConfig(
                sid=i,
                period=1,
                loss_numerator=x,
                loss_denominator=y,
                mode=mode,
            )
        )
    return ShareStreamsScheduler(arch, streams)


class TestEdfAgreement:
    @given(
        increments=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 20)),
            min_size=4,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_winner_sequences_match(self, increments):
        # Deadlines are per-stream monotone (successive packets of a
        # stream have non-decreasing deadlines), matching the per-slot
        # FIFO the hardware's register queues impose.
        hw = hw_edf_like(4, mode=SchedulingMode.SERVICE_TAG)
        sw = EDF()
        for sid in range(4):
            sw.add_stream(SwStream(stream_id=sid))
        cursor = {sid: 0 for sid in range(4)}
        deadlines = []
        for sid, inc in increments:
            cursor[sid] += inc
            deadlines.append((sid, cursor[sid]))
        for k, (sid, d) in enumerate(deadlines):
            hw.enqueue(sid, deadline=d, arrival=k)
            sw.enqueue(
                Packet(stream_id=sid, seq=k, arrival=float(k), deadline=float(d))
            )
        hw_seq, sw_seq = [], []
        for t in range(len(deadlines)):
            outcome = hw.decision_cycle(t, consume="winner", count_misses=False)
            if outcome.circulated_sid is None:
                break
            hw_seq.append(outcome.circulated_sid)
            sw_seq.append(sw.dequeue(float(t)).stream_id)
        assert hw_seq == sw_seq


class TestDwcsAgreement:
    def _mirrored(self, windows):
        hw = hw_edf_like(4, windows=windows)
        sw = DWCS()
        for sid in range(4):
            x, y = windows.get(sid, (0, 0))
            sw.add_stream(
                SwStream(
                    stream_id=sid,
                    period=1,
                    loss_numerator=x,
                    loss_denominator=y,
                )
            )
        return hw, sw

    def test_window_ordering_matches_on_deadline_ties(self):
        windows = {0: (1, 2), 1: (1, 4), 2: (0, 3), 3: (0, 9)}
        hw, sw = self._mirrored(windows)
        for sid in range(4):
            hw.enqueue(sid, deadline=10, arrival=0)
            sw.enqueue(
                Packet(stream_id=sid, seq=0, arrival=0.0, deadline=10.0)
            )
        outcome = hw.decision_cycle(0, consume="none", count_misses=False)
        assert outcome.winner_sid == sw.select(0.0)

    @given(
        windows=st.fixed_dictionaries(
            {
                i: st.tuples(st.integers(0, 3), st.integers(0, 6)).filter(
                    lambda xy: xy[0] <= xy[1]
                )
                for i in range(4)
            }
        ),
        rounds=st.integers(1, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_backlogged_service_order_matches(self, windows, rounds):
        hw, sw = self._mirrored(windows)
        for sid in range(4):
            for k in range(rounds + 2):
                hw.enqueue(sid, deadline=(k + 1), arrival=k)
                sw.enqueue(
                    Packet(
                        stream_id=sid,
                        seq=k,
                        arrival=float(k),
                        deadline=float(k + 1),
                    )
                )
        hw_seq, sw_seq = [], []
        for t in range(rounds):
            outcome = hw.decision_cycle(t, consume="winner", count_misses=True)
            hw_seq.append(outcome.circulated_sid)
            sw_seq.append(sw.dequeue(float(t)).stream_id)
        assert hw_seq == sw_seq


class TestFairShareAgreement:
    def test_period_shares_match_software(self):
        periods = {0: 4, 1: 4, 2: 2, 3: 1}
        arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
        hw = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(
                    sid=i,
                    period=periods[i],
                    loss_numerator=1,
                    loss_denominator=2,
                    mode=SchedulingMode.FAIR_SHARE,
                )
                for i in range(4)
            ],
        )
        sw = DWCS()
        for i in range(4):
            sw.add_stream(
                SwStream(
                    stream_id=i,
                    period=periods[i],
                    loss_numerator=1,
                    loss_denominator=2,
                )
            )
        n = 400
        for sid, T in periods.items():
            for k in range(n):
                hw.enqueue(sid, deadline=(k + 1) * T, arrival=0)
                sw.enqueue(
                    Packet(
                        stream_id=sid,
                        seq=k,
                        arrival=0.0,
                        deadline=float((k + 1) * T),
                    )
                )
        hw_counts = {i: 0 for i in range(4)}
        sw_counts = {i: 0 for i in range(4)}
        for t in range(n):
            hw_counts[
                hw.decision_cycle(t, consume="winner", count_misses=False).circulated_sid
            ] += 1
            sw_counts[sw.dequeue(0.0).stream_id] += 1
        for i in range(4):
            assert hw_counts[i] == pytest.approx(sw_counts[i], abs=4)
