"""Tests for the Register Base block (stream-slot) and DWCS updates."""

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.register_block import PendingPacket, RegisterBaseBlock


def make_slot(
    mode=SchedulingMode.DWCS, x=1, y=3, period=2, wrap=True
) -> RegisterBaseBlock:
    return RegisterBaseBlock(
        StreamConfig(
            sid=0,
            period=period,
            loss_numerator=x,
            loss_denominator=y,
            mode=mode,
        ),
        wrap=wrap,
    )


class TestQueueing:
    def test_empty_slot_is_invalid(self):
        slot = make_slot()
        assert not slot.attributes.valid
        assert slot.head is None
        assert slot.backlog == 0

    def test_enqueue_latches_head(self):
        slot = make_slot()
        slot.enqueue_request(deadline=10, arrival=1)
        assert slot.attributes.valid
        assert slot.attributes.deadline == 10
        assert slot.attributes.arrival == 1
        assert slot.backlog == 0

    def test_backlog_counts_waiting(self):
        slot = make_slot()
        for k in range(4):
            slot.enqueue_request(deadline=10 + k, arrival=k)
        assert slot.backlog == 3

    def test_service_advances_to_next(self):
        slot = make_slot(mode=SchedulingMode.STATIC_PRIORITY)
        slot.enqueue_request(deadline=10, arrival=0)
        slot.enqueue_request(deadline=20, arrival=1)
        packet = slot.service(now=5)
        assert packet.deadline == 10
        assert slot.attributes.deadline == 20

    def test_service_empty_returns_none(self):
        slot = make_slot()
        assert slot.service(now=0) is None

    def test_wrap_masks_registers(self):
        slot = make_slot(wrap=True)
        slot.enqueue(PendingPacket(deadline=70000, arrival=65536))
        assert slot.attributes.deadline == 70000 & 0xFFFF
        assert slot.attributes.arrival == 0

    def test_ideal_mode_keeps_wide_values(self):
        slot = make_slot(wrap=False)
        slot.enqueue(PendingPacket(deadline=70000, arrival=65536))
        assert slot.attributes.deadline == 70000


class TestMissDetection:
    def test_head_is_late(self):
        slot = make_slot(wrap=False)
        slot.enqueue_request(deadline=5, arrival=0)
        assert not slot.head_is_late(now=5)
        assert slot.head_is_late(now=6)

    def test_record_miss_counts(self):
        slot = make_slot(mode=SchedulingMode.EDF, wrap=False)
        slot.enqueue_request(deadline=5, arrival=0)
        assert slot.record_miss(now=10)
        assert slot.record_miss(now=11)
        assert slot.counters.missed_deadlines == 2

    def test_record_miss_on_time_is_noop(self):
        slot = make_slot(wrap=False)
        slot.enqueue_request(deadline=5, arrival=0)
        assert not slot.record_miss(now=3)
        assert slot.counters.missed_deadlines == 0

    def test_drop_late_head(self):
        slot = make_slot(wrap=False)
        slot.enqueue_request(deadline=5, arrival=0)
        slot.enqueue_request(deadline=9, arrival=1)
        dropped = slot.drop_late_head(now=7)
        assert dropped.deadline == 5
        assert slot.attributes.deadline == 9

    def test_drop_on_time_head_is_noop(self):
        slot = make_slot(wrap=False)
        slot.enqueue_request(deadline=5, arrival=0)
        assert slot.drop_late_head(now=3) is None


class TestDwcsWinUpdate:
    def test_on_time_service_decrements_denominator(self):
        slot = make_slot(x=1, y=4, wrap=False)
        slot.enqueue_request(deadline=10, arrival=0)
        slot.service(now=0)
        assert slot.attributes.loss_denominator == 3
        assert slot.attributes.loss_numerator == 1

    def test_window_reset_on_completion(self):
        slot = make_slot(x=1, y=3, wrap=False)
        # Two on-time services: y' 3 -> 2 -> (2<=... reset at y'<=x').
        for k in range(2):
            slot.enqueue_request(deadline=100 + k, arrival=k)
        slot.service(now=0)
        assert slot.attributes.loss_denominator == 2
        slot.service(now=0)
        # y' would hit 1 == x' -> reset to (1, 3).
        assert (slot.attributes.loss_numerator, slot.attributes.loss_denominator) == (1, 3)
        assert slot.counters.window_resets >= 1

    def test_late_service_counts_as_loss(self):
        slot = make_slot(x=2, y=4, wrap=False)
        slot.enqueue_request(deadline=5, arrival=0)
        slot.service(now=10)  # serviced past its deadline
        assert slot.attributes.loss_numerator == 1
        assert slot.attributes.loss_denominator == 3


class TestDwcsLossUpdate:
    def test_miss_consumes_tolerance(self):
        slot = make_slot(x=2, y=5, wrap=False)
        slot.enqueue_request(deadline=1, arrival=0)
        slot.record_miss(now=10)
        assert slot.attributes.loss_numerator == 1
        assert slot.attributes.loss_denominator == 4

    def test_violation_raises_denominator(self):
        slot = make_slot(x=0, y=3, wrap=False)
        slot.enqueue_request(deadline=1, arrival=0)
        slot.record_miss(now=10)
        assert slot.counters.violations == 1
        assert slot.attributes.loss_denominator == 4  # priority boost

    def test_violation_saturates_at_field_max(self):
        slot = make_slot(x=0, y=3, wrap=False)
        slot.attributes.loss_denominator = 255
        slot.enqueue_request(deadline=1, arrival=0)
        slot.record_miss(now=10)
        assert slot.attributes.loss_denominator == 255

    def test_miss_reset_when_counters_meet(self):
        slot = make_slot(x=1, y=2, wrap=False)
        slot.enqueue_request(deadline=1, arrival=0)
        # x' 1 -> 0, y' 2 -> 1; x' != y', no reset.
        slot.record_miss(now=10)
        assert (slot.attributes.loss_numerator, slot.attributes.loss_denominator) == (0, 1)

    def test_edf_mode_counts_without_window_update(self):
        slot = make_slot(mode=SchedulingMode.EDF, x=1, y=3, wrap=False)
        slot.enqueue_request(deadline=1, arrival=0)
        slot.record_miss(now=10)
        assert slot.counters.missed_deadlines == 1
        assert slot.attributes.loss_numerator == 1
        assert slot.attributes.loss_denominator == 3


class TestEdfWinnerBias:
    def test_winner_bias_pushes_deadline(self):
        slot = make_slot(mode=SchedulingMode.EDF, period=3, wrap=False)
        slot.enqueue_request(deadline=10, arrival=0)
        slot.enqueue_request(deadline=11, arrival=1)
        slot.service(now=0, as_winner=True)
        # Next head carries the +period winner bias.
        assert slot.attributes.deadline == 11 + 3

    def test_non_winner_block_member_has_no_bias(self):
        slot = make_slot(mode=SchedulingMode.EDF, period=3, wrap=False)
        slot.enqueue_request(deadline=10, arrival=0)
        slot.enqueue_request(deadline=11, arrival=1)
        slot.service(now=0, as_winner=False)
        assert slot.attributes.deadline == 11

    def test_bias_accumulates(self):
        slot = make_slot(mode=SchedulingMode.EDF, period=2, wrap=False)
        for k in range(3):
            slot.enqueue_request(deadline=10 + k, arrival=k)
        slot.service(now=0, as_winner=True)
        slot.service(now=1, as_winner=True)
        assert slot.attributes.deadline == 12 + 4


class TestBlockWinnerFlag:
    def test_as_winner_true_applies_win_update(self):
        slot = make_slot(x=1, y=4, wrap=False)
        slot.enqueue_request(deadline=1, arrival=0)
        slot.service(now=10, as_winner=True)  # late, but forced winner
        assert slot.attributes.loss_denominator == 3

    def test_as_winner_false_skips_updates(self):
        slot = make_slot(x=1, y=4, wrap=False)
        slot.enqueue_request(deadline=1, arrival=0)
        slot.service(now=10, as_winner=False)
        assert slot.attributes.loss_denominator == 4


class TestCounters:
    def test_serviced_and_wins(self):
        slot = make_slot(mode=SchedulingMode.STATIC_PRIORITY)
        slot.enqueue_request(deadline=10, arrival=0)
        slot.service(now=0)
        slot.record_win()
        assert slot.counters.serviced == 1
        assert slot.counters.wins == 1
        assert slot.counters.loads == 1
