"""Tests for the single-cycle Decision block."""

from repro.core.attributes import HardwareAttributes
from repro.core.decision_block import DecisionBlock
from repro.core.rules import Rule


def attrs(sid=0, deadline=0, x=0, y=0, arrival=0, valid=True):
    return HardwareAttributes(
        sid=sid,
        deadline=deadline,
        loss_numerator=x,
        loss_denominator=y,
        arrival=arrival,
        valid=valid,
    )


class TestDecide:
    def test_winner_loser_ports(self):
        block = DecisionBlock()
        a, b = attrs(sid=0, deadline=9), attrs(sid=1, deadline=3)
        result = block.decide(a, b)
        assert result.winner is b
        assert result.loser is a
        assert result.rule is Rule.EARLIEST_DEADLINE

    def test_decision_counter(self):
        block = DecisionBlock()
        for k in range(5):
            block.decide(attrs(sid=0, deadline=k), attrs(sid=1, deadline=k + 1))
        assert block.decisions == 5

    def test_rule_counters(self):
        block = DecisionBlock()
        block.decide(attrs(sid=0, deadline=1), attrs(sid=1, deadline=2))
        block.decide(attrs(sid=0, deadline=5, arrival=1), attrs(sid=1, deadline=5, arrival=2))
        assert block.rule_counts[Rule.EARLIEST_DEADLINE] == 1
        assert block.rule_counts[Rule.FCFS] == 1

    def test_reset_counters(self):
        block = DecisionBlock()
        block.decide(attrs(sid=0), attrs(sid=1))
        block.reset_counters()
        assert block.decisions == 0
        assert block.rule_counts == {}

    def test_deadline_only_configuration(self):
        block = DecisionBlock(deadline_only=True)
        result = block.decide(
            attrs(sid=0, deadline=5, x=0, y=9, arrival=9),
            attrs(sid=1, deadline=5, x=1, y=2, arrival=1),
        )
        # Window fields ignored; FCFS resolves on arrival.
        assert result.winner.sid == 1

    def test_wrap_configuration(self):
        wrapped = DecisionBlock(wrap=True)
        ideal = DecisionBlock(wrap=False)
        a, b = attrs(sid=0, deadline=65530), attrs(sid=1, deadline=2)
        assert wrapped.decide(a, b).winner is a
        assert ideal.decide(a, b).winner is b

    def test_invalid_bundle_loses(self):
        block = DecisionBlock()
        result = block.decide(
            attrs(sid=0, deadline=1, valid=False), attrs(sid=1, deadline=999)
        )
        assert result.winner.sid == 1
        assert result.rule is Rule.VALIDITY
