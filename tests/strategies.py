"""Shared Hypothesis strategies and scenario helpers for engine tests.

One place for the generators that the differential, tensor-engine and
PIFO property suites previously duplicated ad hoc:

* seed-indexed :func:`repro.core.differential.generate_scenario`
  workloads (and same-shape buckets of them),
* randomized ideal-arithmetic ``(ArchConfig, [StreamConfig])`` pairs
  for periodic runs,
* PIFO rank-function workloads
  (:func:`repro.disciplines.pifo.generate_pifo_scenario`),
* the observable-extraction helpers the suites compare with.

Everything is deterministic in the drawn integers, so a failing
example is reproducible from the values Hypothesis prints.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.differential import bucket_key, generate_scenario
from repro.disciplines.pifo import generate_pifo_scenario

#: Scheduling modes the randomized configurations draw from.
MODES = (
    SchedulingMode.EDF,
    SchedulingMode.DWCS,
    SchedulingMode.FAIR_SHARE,
    SchedulingMode.STATIC_PRIORITY,
)

#: The full 32-bit scenario seed space.
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def bucketed(scenarios):
    """Group scenarios by their same-shape bucket key, first-seen order."""
    buckets: dict[tuple, list] = {}
    for scenario in scenarios:
        buckets.setdefault(bucket_key(scenario), []).append(scenario)
    return buckets


def random_arch_streams(seed: int, n_slots: int):
    """A randomized ideal-arithmetic configuration for periodic runs."""
    rng = random.Random(seed)
    arch = ArchConfig(
        n_slots=n_slots,
        routing=rng.choice((Routing.WR, Routing.BA)),
        block_mode=rng.choice((BlockMode.MAX_FIRST, BlockMode.MIN_FIRST)),
        schedule=rng.choice(("bitonic", "paper")),
        wrap=False,
    )
    streams = []
    for sid in range(n_slots):
        mode = rng.choice(MODES)
        if mode in (SchedulingMode.DWCS, SchedulingMode.FAIR_SHARE):
            y = rng.randint(1, 4)
            x = rng.randint(0, y)
        else:
            x = y = 0
        streams.append(
            StreamConfig(
                sid=sid,
                period=rng.randint(1, 5),
                loss_numerator=x,
                loss_denominator=y,
                initial_deadline=rng.randint(0, 6),
                mode=mode,
            )
        )
    return arch, streams


def periodic_observables(scheduler, result):
    """Everything a periodic run exposes, as comparable plain data."""
    counters = scheduler.counters()
    return {
        "wins": result.wins.tolist(),
        "misses": result.misses.tolist(),
        "serviced": result.serviced.tolist(),
        "frames": result.frames_scheduled,
        "winners": None if result.winners is None else result.winners.tolist(),
        "counters": {
            sid: (c.wins, c.serviced, c.missed_deadlines, c.violations,
                  c.window_resets, c.loads)
            for sid, c in counters.items()
        },
        "hw_cycle": scheduler.control.hw_cycle,
        "decision_cycles": scheduler.control.decision_cycles,
        # Residency intervals only — the free-form ``detail`` strings
        # legitimately differ ("idle fast-forward" vs per-cycle text).
        "timeline": [
            (e.state, e.start_cycle, e.cycles)
            for e in scheduler.control.timeline
        ],
    }


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


def stream_configs(n_slots: int = 8):
    """Strategy: one randomized :class:`StreamConfig` list of ``n_slots``."""
    return st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda seed: random_arch_streams(seed, n_slots)[1]
    )


def arch_streams(n_slots=st.sampled_from([2, 4, 8])):
    """Strategy: a randomized ``(ArchConfig, [StreamConfig])`` pair."""
    return st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1), n_slots
    ).map(lambda t: random_arch_streams(*t))


def differential_scenarios(n_cycles: int = 1000, max_slots: int = 16):
    """Strategy: one seeded differential scenario."""
    return seeds.map(
        lambda seed: generate_scenario(
            seed, n_cycles=n_cycles, max_slots=max_slots
        )
    )


def scenario_buckets(
    n_cycles: int = 120,
    max_slots: int = 16,
    min_size: int = 2,
    max_size: int = 6,
):
    """Strategy: one *same-shape* scenario bucket (>= ``min_size``).

    Draws sibling seeds until enough scenarios share the first one's
    bucket key — the contract under which the tensor engine batches.
    """

    def build(args):
        base_seed, extra = args
        base = generate_scenario(base_seed, n_cycles=n_cycles,
                                 max_slots=max_slots)
        key = bucket_key(base)
        members = [base]
        seed = base_seed
        while len(members) < min_size + extra:
            seed += 1
            candidate = generate_scenario(seed, n_cycles=n_cycles,
                                          max_slots=max_slots)
            if bucket_key(candidate) == key:
                members.append(candidate)
        return members

    return st.tuples(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=max_size - min_size),
    ).map(build)


def arrival_patterns(n_cycles: int = 120, n_slots: int = 8):
    """Strategy: a PIFO arrival pattern (the scenario's arrival table)."""
    return pifo_scenarios(n_cycles=n_cycles, n_slots=n_slots).map(
        lambda s: s.arrivals
    )


def pifo_scenarios(n_cycles: int = 120, n_slots: int = 8):
    """Strategy: one seeded PIFO rank-function workload."""
    return seeds.map(
        lambda seed: generate_pifo_scenario(
            seed, n_slots=n_slots, n_cycles=n_cycles
        )
    )


def aggregation_scenarios(
    n_cycles: int = 100,
    n_streams=st.integers(min_value=4, max_value=64),
    n_aggregates=st.sampled_from([2, 4, 8, 16]),
    discipline=st.sampled_from(["pifo:sfq", "pifo:fcfs", "pifo:edf", "pifo:prio"]),
    join_rate: float = 0.3,
    leave_rate: float = 0.25,
):
    """Strategy: one seeded aggregation-tier churn workload.

    Varies the stream population, aggregate count and intra-aggregate
    discipline alongside the seed, with churn rates high enough that
    join/leave interleavings (including leaves of streams with queued
    packets) appear in nearly every drawn example.
    """
    from repro.aggregation import generate_aggregation_scenario

    return st.tuples(seeds, n_streams, n_aggregates, discipline).map(
        lambda t: generate_aggregation_scenario(
            t[0],
            n_streams=t[1],
            n_aggregates=t[2],
            n_cycles=n_cycles,
            discipline=t[3],
            join_rate=join_rate,
            leave_rate=leave_rate,
        )
    )


def aggregation_buckets(
    n_cycles: int = 80,
    min_size: int = 2,
    max_size: int = 5,
):
    """Strategy: a same-shape bucket of aggregation churn scenarios.

    All members share ``(n_aggregates, discipline, salt)`` — the
    contract under which :func:`repro.aggregation.run_aggregation_bucket`
    batches rows onto one tensorized campaign — while seeds (and hence
    populations, churn interleavings and arrivals) differ.
    """
    from repro.aggregation import generate_aggregation_scenario

    def build(args):
        base_seed, size, n_aggregates, discipline = args
        return [
            generate_aggregation_scenario(
                base_seed + i,
                n_streams=8 + ((base_seed + i) % 24),
                n_aggregates=n_aggregates,
                n_cycles=n_cycles,
                discipline=discipline,
                join_rate=0.3,
                leave_rate=0.25,
            )
            for i in range(size)
        ]

    return st.tuples(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=min_size, max_value=max_size),
        st.sampled_from([2, 4, 8]),
        st.sampled_from(["pifo:sfq", "pifo:edf"]),
    ).map(build)


def membership_interleavings(
    n_streams: int = 24,
    n_ops: int = 60,
):
    """Strategy: a raw join/leave interleaving over a small sid space.

    Emits an operation list ``[("join", sid, weight) | ("leave", sid)]``
    that is always *legal* (never joins a member twice, never removes a
    non-member) but otherwise arbitrary — the direct input for churn
    invariant tests that drive :class:`repro.aggregation.AggregationTier`
    membership without a full scenario around it.
    """

    def build(args):
        seed, n = args
        rng = random.Random(seed)
        ops = []
        members: list[int] = []
        next_sid = 0
        for _ in range(n):
            # Joins mint fresh sids (a departed stream never rejoins
            # under the same id — strict-membership semantics), capped
            # at n_streams concurrent members.
            do_join = not members or (
                len(members) < n_streams and rng.random() < 0.55
            )
            if do_join:
                ops.append(
                    ("join", next_sid, rng.choice((1, 2, 3, 4, 5, 6)))
                )
                members.append(next_sid)
                next_sid += 1
            else:
                idx = rng.randrange(len(members))
                members[idx], members[-1] = members[-1], members[idx]
                ops.append(("leave", members.pop()))
        return ops

    return st.tuples(
        seeds, st.integers(min_value=1, max_value=n_ops)
    ).map(build)
