"""The backend byte-identity contract, enforced by property testing.

Two layers of proof that the array-API refactor changed nothing:

* :func:`repro.core.tensor_engine.table2_rank_order` — the packed-key
  stable-sort cascade that replaced ``np.lexsort`` — must produce the
  *permutation-identical* order to the original lexsort over the full
  Table 2 key cascade, including deadline/arrival ties, loss-constraint
  ratio ties (``1/2`` vs ``2/4``), zero-wildcard streams and
  invalid-slot masking.  The lexsort reference is reconstructed here
  verbatim from the pre-refactor ``_rank`` so the property pins the
  historical behavior, not the new implementation.

* Whole-engine runs — bucketed differential scenarios and periodic
  feeds — must yield byte-identical observables on every available
  backend.  The generic :class:`~repro.core.backend.ArrayApiBackend`
  wrapped around NumPy's namespace always runs (it exercises the
  standard-only code path the optional libraries use); torch/CuPy legs
  run when installed, otherwise skip with the availability reason.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backend import (
    ArrayApiBackend,
    available_backends,
    resolve_backend,
)
from repro.core.differential import generate_scenario, run_bucket
from repro.core.tensor_engine import CampaignEngine, table2_rank_order
from tests.strategies import bucketed, random_arch_streams

_AVAILABLE = available_backends()


def _backend_params():
    """One param per non-default backend: generic always, libs gated."""
    params = [pytest.param("generic", id="generic-array-api")]
    for name in ("torch", "cupy", "array_api_strict"):
        reason = _AVAILABLE[name]
        marks = (
            [pytest.mark.skip(reason=reason)] if reason is not None else []
        )
        params.append(pytest.param(name, id=name, marks=marks))
    return params


def _resolve(name: str) -> ArrayApiBackend:
    if name == "generic":
        return ArrayApiBackend(np, name="generic")
    return resolve_backend(name)


def _lexsort_reference(invalid, dl, arr, x, y, *, deadline_only):
    """The pre-refactor ``_rank`` key cascade, verbatim."""
    n = dl.shape[-1]
    sid = np.broadcast_to(np.arange(n, dtype=np.int64), dl.shape)
    if deadline_only:
        return np.lexsort((sid, arr, dl, invalid), axis=-1)
    zero_wc = (x == 0) | (y == 0)
    wc = np.where(zero_wc, 0.0, x / np.where(y == 0, 1, y))
    den_key = np.where(zero_wc, -y, 0)
    num_key = np.where(zero_wc, 0, x)
    return np.lexsort(
        (sid, arr, num_key, den_key, wc, dl, invalid), axis=-1
    )


# Tight value ranges force heavy tie pressure: with 8 slots drawing
# deadlines from 9 values and ratios from {0..3}/{0..3}, most examples
# contain multi-way ties on every key level.
_key_arrays = st.integers(min_value=1, max_value=6).flatmap(
    lambda s: st.integers(min_value=1, max_value=12).flatmap(
        lambda n: st.fixed_dictionaries(
            {
                "dl": st.lists(
                    st.lists(
                        st.integers(min_value=-4, max_value=4),
                        min_size=n, max_size=n,
                    ),
                    min_size=s, max_size=s,
                ),
                "arr": st.lists(
                    st.lists(
                        st.integers(min_value=-4, max_value=4),
                        min_size=n, max_size=n,
                    ),
                    min_size=s, max_size=s,
                ),
                "x": st.lists(
                    st.lists(
                        st.integers(min_value=0, max_value=3),
                        min_size=n, max_size=n,
                    ),
                    min_size=s, max_size=s,
                ),
                "y": st.lists(
                    st.lists(
                        st.integers(min_value=0, max_value=3),
                        min_size=n, max_size=n,
                    ),
                    min_size=s, max_size=s,
                ),
                "invalid": st.lists(
                    st.lists(st.booleans(), min_size=n, max_size=n),
                    min_size=s, max_size=s,
                ),
            }
        )
    )
)


class TestPackedKeyCascade:
    """``table2_rank_order`` is permutation-identical to ``np.lexsort``."""

    @settings(max_examples=200, deadline=None)
    @given(_key_arrays)
    def test_full_cascade_matches_lexsort(self, keys):
        dl = np.asarray(keys["dl"], dtype=np.int64)
        arr = np.asarray(keys["arr"], dtype=np.int64)
        x = np.asarray(keys["x"], dtype=np.int64)
        y = np.asarray(keys["y"], dtype=np.int64)
        invalid = np.asarray(keys["invalid"], dtype=bool)
        bk = resolve_backend("numpy")
        got = table2_rank_order(bk, invalid=invalid, dl=dl, arr=arr, x=x, y=y)
        expected = _lexsort_reference(
            invalid, dl, arr, x, y, deadline_only=False
        )
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=100, deadline=None)
    @given(_key_arrays)
    def test_deadline_only_cascade_matches_lexsort(self, keys):
        dl = np.asarray(keys["dl"], dtype=np.int64)
        arr = np.asarray(keys["arr"], dtype=np.int64)
        invalid = np.asarray(keys["invalid"], dtype=bool)
        bk = resolve_backend("numpy")
        got = table2_rank_order(
            bk, invalid=invalid, dl=dl, arr=arr, deadline_only=True
        )
        expected = _lexsort_reference(
            invalid, dl, arr, None, None, deadline_only=True
        )
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=100, deadline=None)
    @given(_key_arrays)
    def test_generic_namespace_agrees_with_numpy(self, keys):
        """The standard-only code path ranks identically to NumPy's."""
        dl = np.asarray(keys["dl"], dtype=np.int64)
        arr = np.asarray(keys["arr"], dtype=np.int64)
        x = np.asarray(keys["x"], dtype=np.int64)
        y = np.asarray(keys["y"], dtype=np.int64)
        invalid = np.asarray(keys["invalid"], dtype=bool)
        generic = ArrayApiBackend(np, name="generic")
        got = generic.to_numpy(
            table2_rank_order(
                generic, invalid=invalid, dl=dl, arr=arr, x=x, y=y
            )
        )
        expected = _lexsort_reference(
            invalid, dl, arr, x, y, deadline_only=False
        )
        np.testing.assert_array_equal(got, expected)

    def test_ratio_ties_break_on_numerator(self):
        """1/2 vs 2/4: equal loss-constraint, ordered by raw numerator."""
        bk = resolve_backend("numpy")
        shape = (1, 4)
        dl = np.zeros(shape, dtype=np.int64)
        arr = np.zeros(shape, dtype=np.int64)
        invalid = np.zeros(shape, dtype=bool)
        x = np.asarray([[2, 1, 2, 1]], dtype=np.int64)
        y = np.asarray([[4, 2, 4, 2]], dtype=np.int64)
        got = table2_rank_order(bk, invalid=invalid, dl=dl, arr=arr, x=x, y=y)
        expected = _lexsort_reference(
            invalid, dl, arr, x, y, deadline_only=False
        )
        np.testing.assert_array_equal(got, expected)
        assert got.tolist() == [[1, 3, 0, 2]]


class TestCrossBackendByteIdentity:
    """Whole-engine observables agree across every available backend."""

    @pytest.mark.parametrize("backend", _backend_params())
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    def test_bucketed_campaign_traces_identical(self, backend, seed):
        scenarios = [
            generate_scenario(seed * 8 + i, n_cycles=60) for i in range(4)
        ]
        for bucket in bucketed(scenarios).values():
            baseline = run_bucket(bucket)
            alternate = run_bucket(bucket, engine_backend=_resolve(backend))
            assert baseline == alternate

    @pytest.mark.parametrize("backend", _backend_params())
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    def test_periodic_run_identical(self, backend, seed):
        arch, streams = random_arch_streams(seed, 8)

        def run(engine_backend):
            engine = CampaignEngine(
                arch, [streams], engine_backend=engine_backend
            )
            return engine.run_periodic(
                120, step=2, collect_winners=True
            )[0]

        baseline = run("numpy")
        alternate = run(_resolve(backend))
        np.testing.assert_array_equal(baseline.wins, alternate.wins)
        np.testing.assert_array_equal(baseline.misses, alternate.misses)
        np.testing.assert_array_equal(baseline.serviced, alternate.serviced)
        np.testing.assert_array_equal(baseline.winners, alternate.winners)
