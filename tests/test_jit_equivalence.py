"""Byte-identity of the fused compiled decision-cycle kernels.

The ``numba`` backend routes the tensor engine's per-cycle phases —
packed-key rank cascade, sorting-network replay, DWCS miss/window
scatter — plus the whole-run :func:`repro.core.jit.run_cycles` driver
through nopython-style kernels.  The kernels are written so they run
unchanged *interpreted* (numba absent, or ``NUMBA_DISABLE_JIT=1``),
which is exactly what ``NumbaBackend(force_interpreted=True)`` gives
us here: the same code paths the JIT compiles, byte-compared against
the NumPy array path on every workload family the engine serves —
bucketed differential campaigns, periodic feeds over the full flag
matrix, PIFO rank functions, and aggregation-tier churn.

A second group pins the degrade contract: resolving ``"numba"`` on a
host without numba warns exactly once, returns the NumPy backend, and
produces identical observables.
"""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.backend as backend_mod
from repro.aggregation import (
    generate_aggregation_scenario,
    run_aggregation_bucket,
)
from repro.core import jit
from repro.core.backend import (
    BackendUnavailable,
    NumbaBackend,
    resolve_backend,
)
from repro.core.differential import generate_scenario, run_bucket
from repro.core.tensor_engine import CampaignEngine
from repro.disciplines.pifo import (
    PIFO_RANK_FUNCTIONS,
    generate_pifo_scenario,
    run_pifo_bucket,
)
from tests.strategies import bucketed, random_arch_streams


def _jit_backend() -> NumbaBackend:
    """The kernel path, runnable whether or not numba is installed."""
    return NumbaBackend(force_interpreted=True)


class TestKernelByteIdentity:
    """Fused kernels == NumPy array path on every workload family."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    def test_bucketed_campaigns_identical(self, seed):
        scenarios = [
            generate_scenario(seed * 8 + i, n_cycles=60) for i in range(4)
        ]
        for bucket in bucketed(scenarios).values():
            baseline = run_bucket(bucket)
            compiled = run_bucket(bucket, engine_backend=_jit_backend())
            assert baseline == compiled

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    def test_periodic_runs_identical(self, seed):
        """The whole-run driver over the full run_periodic flag matrix."""
        rng = random.Random(seed)
        n = rng.choice([4, 8])
        arch, streams_a = random_arch_streams(seed, n)
        streams_b = random_arch_streams(seed + 1, n)[1]
        offsets = np.asarray(
            [rng.randint(0, 4) for _ in range(n)], dtype=np.int64
        )
        kwargs = dict(
            offsets=offsets if rng.random() < 0.5 else None,
            step=rng.choice([None, 1, 2, 3]),
            stride=rng.choice([None, 1, 2]),
            # Block consumption requires BA routing (WR emits only the
            # winner); the drawn arch decides which policies are legal.
            consume=rng.choice(
                ["winner", "block"]
                if not arch.winner_only
                else ["winner"]
            ),
            count_misses=rng.choice([True, False]),
            fast_forward=rng.choice([True, False]),
            collect_winners=True,
        )

        def run(engine_backend):
            engine = CampaignEngine(
                arch, [streams_a, streams_b], engine_backend=engine_backend
            )
            results = engine.run_periodic(120, **kwargs)
            return engine, results

        ref_engine, ref = run("numpy")
        jit_engine, got = run(_jit_backend())
        assert len(ref) == len(got)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.wins, g.wins)
            np.testing.assert_array_equal(r.misses, g.misses)
            np.testing.assert_array_equal(r.serviced, g.serviced)
            np.testing.assert_array_equal(r.winners, g.winners)
            assert r.frames_scheduled == g.frames_scheduled
        assert ref_engine.control.hw_cycle == jit_engine.control.hw_cycle
        assert (
            ref_engine.control.decision_cycles
            == jit_engine.control.decision_cycles
        )
        assert ref_engine.fast_forwarded == jit_engine.fast_forwarded

    @pytest.mark.parametrize("name", sorted(PIFO_RANK_FUNCTIONS))
    def test_pifo_rank_functions_identical(self, name):
        scenarios = [
            generate_pifo_scenario(seed, n_cycles=60) for seed in range(6)
        ]
        baseline = run_pifo_bucket(name, scenarios)
        compiled = run_pifo_bucket(
            name, scenarios, engine_backend=_jit_backend()
        )
        assert baseline == compiled

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16 - 1),
        discipline=st.sampled_from(
            ["pifo:sfq", "pifo:fcfs", "pifo:edf", "pifo:prio"]
        ),
    )
    def test_aggregation_churn_identical(self, seed, discipline):
        scenarios = [
            generate_aggregation_scenario(
                seed * 4 + i,
                n_streams=24,
                n_aggregates=4,
                n_cycles=80,
                discipline=discipline,
                join_rate=0.3,
                leave_rate=0.25,
            )
            for i in range(3)
        ]
        baseline = run_aggregation_bucket(scenarios)
        compiled = run_aggregation_bucket(
            scenarios, engine_backend=_jit_backend()
        )
        assert baseline == compiled


class TestBackendSurface:
    """Constructor gating and interpreted-mode bookkeeping."""

    def test_interpreted_backend_flags(self):
        bk = _jit_backend()
        assert bk.name == "numba"
        assert bk.jit_kernels is jit
        assert bk.jit_compiled == jit.NUMBA_AVAILABLE

    @pytest.mark.skipif(
        jit.NUMBA_AVAILABLE, reason="numba installed on this host"
    )
    def test_direct_construction_requires_numba(self):
        with pytest.raises(BackendUnavailable):
            NumbaBackend()


class TestNoNumbaFallback:
    """``"numba"`` degrades to NumPy with a single warning."""

    @pytest.fixture()
    def fresh_fallback(self, monkeypatch):
        """Un-cache the numba resolution and re-arm the warn-once flag."""
        monkeypatch.setattr(jit, "NUMBA_AVAILABLE", False)
        monkeypatch.setattr(backend_mod, "_numba_fallback_warned", False)
        saved = backend_mod._CACHE.pop("numba", None)
        yield
        backend_mod._CACHE.pop("numba", None)
        if saved is not None:
            backend_mod._CACHE["numba"] = saved

    def test_resolve_warns_once_and_degrades(self, fresh_fallback):
        with pytest.warns(RuntimeWarning, match="numba"):
            bk = resolve_backend("numba")
        assert bk.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = resolve_backend("numba")
        assert again is bk

    def test_fallback_results_identical(self, fresh_fallback):
        scenarios = [generate_scenario(7 * 8 + i, n_cycles=60)
                     for i in range(4)]
        for bucket in bucketed(scenarios).values():
            baseline = run_bucket(bucket)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                degraded = run_bucket(bucket, engine_backend="numba")
            assert baseline == degraded
