"""Golden conformance vectors: both engines vs the committed JSON.

The vectors under ``tests/golden/`` were generated from the reference
engine by ``tests/golden/regen.py`` and are committed; these tests
replay them against the reference engine (regression pin: behaviour
cannot drift silently) *and* the vectorized batch engine (conformance:
the fast path reproduces the pinned traces exactly).  After an
intentional behaviour change, regenerate with::

    PYTHONPATH=src python tests/golden/regen.py
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch_engine import BatchScheduler
from repro.core.rules import Rule, compare_with_rule
from tests.golden import regen

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load(name: str) -> dict:
    path = GOLDEN_DIR / name
    assert path.exists(), (
        f"missing golden vector {name}; run PYTHONPATH=src python tests/golden/regen.py"
    )
    return json.loads(path.read_text())


class TestGeneratorSync:
    """The committed JSON matches what the generator produces today.

    Fails when reference-engine behaviour (or the generator) changes
    without regenerating — the signal to rerun regen.py and review the
    vector diff.
    """

    @pytest.mark.parametrize("name", sorted(regen.VECTORS))
    def test_vector_file_is_current(self, name):
        assert regen.VECTORS[name]() == _load(name)


class TestTable2Rules:
    def test_every_case_matches(self):
        data = _load("table2_rules.json")
        for i, case in enumerate(data["cases"]):
            a = regen._attrs_from_dict(case["a"])
            b = regen._attrs_from_dict(case["b"])
            result, rule = compare_with_rule(
                a, b, wrap=case["wrap"], deadline_only=case["deadline_only"]
            )
            assert (result, rule.value) == (case["result"], case["rule"]), (
                f"case {i}: {case}"
            )

    def test_all_rules_covered(self):
        data = _load("table2_rules.json")
        fired = {case["rule"] for case in data["cases"]}
        assert fired == {rule.value for rule in Rule}


class TestTable3Traces:
    @pytest.mark.parametrize(
        "config", sorted(regen._TABLE3_CONFIGS)
    )
    def test_reference_engine_matches(self, config):
        data = _load("table3_vectors.json")
        rebuilt = regen.build_table3_vectors(data["frames_per_stream"])
        assert rebuilt["configs"][config] == data["configs"][config]

    @pytest.mark.parametrize(
        "config", sorted(regen._TABLE3_CONFIGS)
    )
    def test_batch_engine_matches(self, config):
        data = _load("table3_vectors.json")
        vec = data["configs"][config]
        engine = BatchScheduler(*regen.table3_arch_streams(vec))
        res = engine.run_periodic(
            vec["n_cycles"],
            offsets=np.arange(1, 5, dtype=np.int64),
            step=1,
            consume=vec["consume"],
            count_misses=vec["count_misses"],
            collect_winners=True,
        )
        assert res.winners is not None
        assert res.winners.tolist() == vec["winners"]
        assert res.wins.tolist() == vec["wins"]
        assert res.misses.tolist() == vec["missed"]
        assert res.serviced.tolist() == vec["serviced"]


class TestTable3TensorBackends:
    """The pinned traces replay on every installable array backend.

    ``REPRO_GOLDEN_BACKEND`` selects the leg (default ``numpy``, which
    always runs and pins the tensor engine to the committed vectors);
    the CI backend matrix exports it per job so each installable
    backend replays the same pinned traces.  A selected backend whose
    library is missing skips with the availability reason.
    """

    @pytest.mark.parametrize("config", sorted(regen._TABLE3_CONFIGS))
    def test_tensor_engine_matches_on_selected_backend(self, config):
        import os

        from repro.core.backend import BACKENDS, available_backends
        from repro.core.tensor_engine import TensorScheduler

        backend = os.environ.get("REPRO_GOLDEN_BACKEND", "numpy")
        assert backend in BACKENDS
        reason = available_backends()[backend]
        if reason is not None:
            pytest.skip(reason)
        data = _load("table3_vectors.json")
        vec = data["configs"][config]
        engine = TensorScheduler(
            *regen.table3_arch_streams(vec), engine_backend=backend
        )
        res = engine.run_periodic(
            vec["n_cycles"],
            offsets=np.arange(1, 5, dtype=np.int64),
            step=1,
            consume=vec["consume"],
            count_misses=vec["count_misses"],
            collect_winners=True,
        )
        assert res.winners is not None
        assert res.winners.tolist() == vec["winners"]
        assert res.wins.tolist() == vec["wins"]
        assert res.misses.tolist() == vec["missed"]
        assert res.serviced.tolist() == vec["serviced"]


class TestPifoVectors:
    """Committed PIFO rank-function summaries replay on every engine."""

    @pytest.mark.parametrize(
        "engine", ["reference", "batch", "tensor"]
    )
    def test_all_rank_functions_match(self, engine):
        from repro.disciplines.pifo import generate_pifo_scenario, run_pifo

        data = _load("pifo_vectors.json")
        for name, vec in data["disciplines"].items():
            for seed, expected in zip(data["seeds"], vec["runs"]):
                scenario = generate_pifo_scenario(
                    seed, n_cycles=data["n_cycles"]
                )
                got = run_pifo(name, scenario, engine=engine)
                assert got == expected, f"pifo:{name} seed={seed} ({engine})"

    def test_metadata_matches_registry(self):
        from repro.disciplines.pifo import PIFO_RANK_FUNCTIONS

        data = _load("pifo_vectors.json")
        assert sorted(data["disciplines"]) == sorted(PIFO_RANK_FUNCTIONS)
        for name, vec in data["disciplines"].items():
            fn = PIFO_RANK_FUNCTIONS[name]
            assert vec["rank"] == fn.rank.describe()
            assert vec["vclock"] == fn.vclock
            assert vec["equivalent_to"] == fn.equivalent_to


class TestAggregationVectors:
    """The committed 10k-stream churn summary replays on every engine."""

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_standalone_engines_match(self, engine):
        from repro.aggregation import run_aggregation

        data = _load("aggregation_vectors.json")
        got = run_aggregation(regen.aggregation_scenario(), engine=engine)
        assert got == data["summary"], f"aggregation vector diverged ({engine})"

    def test_tensor_campaign_matches(self):
        from repro.aggregation import run_aggregation_bucket

        data = _load("aggregation_vectors.json")
        [got] = run_aggregation_bucket([regen.aggregation_scenario()])
        assert got == data["summary"], "aggregation vector diverged (tensor)"

    def test_scenario_shape_is_pinned(self):
        data = _load("aggregation_vectors.json")
        scenario = regen.aggregation_scenario()
        assert data["n_streams"] == regen.AGGREGATION_STREAMS == 10_000
        assert data["n_aggregates"] == regen.AGGREGATION_AGGREGATES == 16
        assert scenario.total_streams >= 10_000
        # Scripted churn actually happened in the committed workload.
        assert data["summary"]["streams_left"] > 0
        assert data["summary"]["enqueued"] == data["summary"]["serviced"]


class TestDWCSTrace:
    def _replay(self, scheduler, data):
        for expected in data["cycles"]:
            t = expected["now"]
            for sid, deadline, arrival in regen.dwcs_arrivals(t):
                scheduler.enqueue(sid, deadline=deadline, arrival=arrival)
            outcome = scheduler.decision_cycle(
                t, consume="winner", count_misses=True
            )
            got = {
                "now": t,
                "block": list(outcome.block),
                "circulated": (
                    -1 if outcome.circulated_sid is None else outcome.circulated_sid
                ),
                "serviced": [sid for sid, _pkt in outcome.serviced],
                "misses": list(outcome.misses),
            }
            assert got == expected, f"cycle {t} diverged"
        counters = scheduler.counters()
        assert [counters[s].wins for s in range(4)] == data["wins"]
        assert [counters[s].missed_deadlines for s in range(4)] == data["missed"]
        assert [counters[s].violations for s in range(4)] == data["violations"]
        assert [counters[s].window_resets for s in range(4)] == data["window_resets"]

    def test_reference_engine_matches(self):
        data = _load("dwcs_trace.json")
        self._replay(regen._dwcs_scheduler(), data)

    def test_batch_engine_matches(self):
        data = _load("dwcs_trace.json")
        self._replay(BatchScheduler(*regen.dwcs_arch_streams()), data)
