"""Tests for the window-constraint checker."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disciplines.analysis import (
    DROPPED,
    LATE,
    ON_TIME,
    ConstraintChecker,
    PacketOutcome,
)


class TestValidation:
    def test_rejects_negative_terms(self):
        with pytest.raises(ValueError):
            ConstraintChecker({0: (-1, 2)})

    def test_rejects_x_above_y(self):
        with pytest.raises(ValueError):
            ConstraintChecker({0: (3, 2)})

    def test_unknown_stream(self):
        checker = ConstraintChecker({0: (1, 2)})
        with pytest.raises(KeyError):
            checker.record(9, ON_TIME)

    def test_unknown_outcome_code(self):
        checker = ConstraintChecker({0: (1, 2)})
        with pytest.raises(ValueError):
            checker.record(0, 7)
        with pytest.raises(ValueError):
            PacketOutcome(stream_id=0, seq=0, outcome=9)


class TestAudit:
    def test_clean_trace_satisfied(self):
        checker = ConstraintChecker({0: (1, 3)})
        checker.extend(0, [ON_TIME] * 30)
        audit = checker.audit_stream(0)
        assert audit.satisfied
        assert audit.losses == 0
        assert audit.worst_window_losses == 0

    def test_tolerated_losses_within_window(self):
        # 1 loss per 3: pattern L O O L O O ... never violates.
        checker = ConstraintChecker({0: (1, 3)})
        checker.extend(0, [LATE, ON_TIME, ON_TIME] * 10)
        audit = checker.audit_stream(0)
        assert audit.satisfied
        assert audit.losses == 10
        assert audit.worst_window_losses == 1

    def test_violation_detected(self):
        # Two consecutive losses violate a 1-per-3 constraint.
        checker = ConstraintChecker({0: (1, 3)})
        checker.extend(0, [ON_TIME, LATE, DROPPED, ON_TIME, ON_TIME])
        audit = checker.audit_stream(0)
        assert not audit.satisfied
        assert audit.violating_windows >= 1
        assert audit.worst_window_losses == 2

    def test_sliding_not_tumbling(self):
        # Losses at positions 2 and 3 sit in one *sliding* window of 3
        # even though they fall in different tumbling windows.
        checker = ConstraintChecker({0: (1, 3)})
        checker.extend(0, [ON_TIME, ON_TIME, LATE, LATE, ON_TIME, ON_TIME])
        assert not checker.audit_stream(0).satisfied

    def test_unconstrained_stream(self):
        checker = ConstraintChecker({0: (0, 0)})
        checker.extend(0, [LATE] * 5)
        audit = checker.audit_stream(0)
        assert audit.satisfied
        assert audit.loss_rate == 1.0

    def test_short_trace_no_full_window(self):
        checker = ConstraintChecker({0: (1, 10)})
        checker.extend(0, [LATE, LATE])
        assert checker.audit_stream(0).satisfied

    def test_all_satisfied_aggregate(self):
        checker = ConstraintChecker({0: (1, 3), 1: (0, 2)})
        checker.extend(0, [LATE, ON_TIME, ON_TIME] * 4)
        checker.extend(1, [ON_TIME] * 8)
        assert checker.all_satisfied
        checker.record(1, LATE)
        checker.record(1, ON_TIME)
        assert not checker.all_satisfied

    def test_record_outcome_object(self):
        checker = ConstraintChecker({0: (1, 2)})
        checker.record_outcome(PacketOutcome(stream_id=0, seq=0, outcome=LATE))
        assert checker.audit_stream(0).losses == 1

    @given(
        trace=st.lists(st.sampled_from([ON_TIME, LATE, DROPPED]), max_size=200),
        x=st.integers(0, 3),
        window=st.integers(1, 8),
    )
    def test_matches_naive_checker(self, trace, x, window):
        """Vectorized audit equals a direct per-window scan."""
        y = max(window, x)
        checker = ConstraintChecker({0: (x, y)})
        checker.extend(0, trace)
        audit = checker.audit_stream(0)
        lost = [t != ON_TIME for t in trace]
        naive_violations = 0
        worst = 0
        for i in range(len(trace) - y + 1):
            losses = sum(lost[i : i + y])
            worst = max(worst, losses)
            if losses > x:
                naive_violations += 1
        if len(trace) >= y:
            assert audit.violating_windows == naive_violations
            assert audit.worst_window_losses == worst
        else:
            assert audit.satisfied


class TestEndToEndWithDWCS:
    def test_dwcs_respects_feasible_constraints(self):
        """A feasible DWCS workload's trace passes the checker."""
        from repro.disciplines import DWCS, Packet, SwStream

        dwcs = DWCS()
        for sid in range(2):
            dwcs.add_stream(
                SwStream(
                    stream_id=sid, period=2, loss_numerator=1, loss_denominator=2
                )
            )
        # Two streams each needing 1 slot per 2 ticks: exactly feasible.
        for sid in range(2):
            for k in range(100):
                dwcs.enqueue(
                    Packet(
                        stream_id=sid,
                        seq=k,
                        arrival=float(2 * k),
                        deadline=float(2 * (k + 1)),
                    )
                )
        checker = ConstraintChecker({0: (1, 2), 1: (1, 2)})
        for t in range(200):
            packet = dwcs.dequeue(float(t))
            if packet is None:
                break
            late = packet.deadline is not None and packet.deadline < t
            checker.record(packet.stream_id, LATE if late else ON_TIME)
        assert checker.all_satisfied
