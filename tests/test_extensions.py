"""Tests for the Section 6 extensions: compute-ahead, Virtex-II scaling."""

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.hwmodel import (
    VIRTEX_1000,
    VIRTEX_II_6000,
    area_model,
    clock_rate_mhz,
    decision_cycles,
    scheduler_throughput_pps,
)


class TestComputeAhead:
    def test_update_cycle_hidden(self):
        base = ArchConfig(n_slots=4)
        ahead = ArchConfig(n_slots=4, compute_ahead=True)
        assert base.update_cycles == 1
        assert ahead.update_cycles == 0

    def test_scheduler_cycle_count(self):
        arch = ArchConfig(n_slots=4, compute_ahead=True, wrap=False)
        s = ShareStreamsScheduler(
            arch, [StreamConfig(sid=0, mode=SchedulingMode.EDF)]
        )
        s.enqueue(0, deadline=1, arrival=0)
        outcome = s.decision_cycle(0)
        assert outcome.hw_cycles == 2  # log2(4) passes only
        assert s.cycles_per_decision == 2

    def test_same_decisions_as_base(self):
        # Compute-ahead is a timing optimization; behavior is identical.
        def run(compute_ahead):
            arch = ArchConfig(
                n_slots=4, routing=Routing.WR, compute_ahead=compute_ahead, wrap=False
            )
            s = ShareStreamsScheduler(
                arch,
                [
                    StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
                    for i in range(4)
                ],
            )
            winners = []
            for t in range(50):
                for sid in range(4):
                    s.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
                winners.append(s.decision_cycle(t).circulated_sid)
            return winners

        assert run(False) == run(True)

    def test_model_cycles(self):
        assert decision_cycles(4) - decision_cycles(4, compute_ahead=True) == 1

    def test_throughput_gain(self):
        base = scheduler_throughput_pps(4, Routing.WR)
        ahead = scheduler_throughput_pps(4, Routing.WR, compute_ahead=True)
        gain = ahead.packets_per_second / base.packets_per_second
        assert gain == pytest.approx(9 / 8)

    def test_area_cost(self):
        base = area_model(8, Routing.WR)
        ahead = area_model(8, Routing.WR, compute_ahead=True)
        assert ahead.register_slices > base.register_slices
        assert ahead.decision_slices == base.decision_slices
        # Still fits the device at 32 slots.
        assert area_model(32, Routing.WR, compute_ahead=True).fits


class TestVirtexIIScaling:
    def test_clock_scales_with_device(self):
        v1 = clock_rate_mhz(4, Routing.WR, VIRTEX_1000)
        v2 = clock_rate_mhz(4, Routing.WR, VIRTEX_II_6000)
        assert v2 == pytest.approx(v1 * 2.0)

    def test_throughput_point_carries_device_clock(self):
        tp = scheduler_throughput_pps(4, Routing.WR, device=VIRTEX_II_6000)
        assert tp.packets_per_second == pytest.approx(2 * 7_600_000)

    def test_default_is_virtex_1(self):
        assert clock_rate_mhz(4, Routing.WR) == clock_rate_mhz(
            4, Routing.WR, VIRTEX_1000
        )
