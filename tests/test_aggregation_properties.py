"""Property tests locking down the aggregation tier under churn.

The issue's acceptance properties, each over randomized join/leave
interleavings:

* **Work conservation** — every accepted packet is eventually
  serviced, exactly one per cycle while any backlog exists, and the
  tier's per-stream hot-path state is empty once drained.
* **Weight-share band** — with every aggregate continuously
  backlogged, per-aggregate service shares track member-weight shares
  within the Figure-8 tolerance band (the
  ``slos_from_shares(tolerance=0.25)`` contract), even after leaves
  rebalance the weights.
* **Three-way byte identity** — reference, batch and tensorized
  campaign replays of the same churn scenario produce byte-identical
  canonical summaries (the ``validate_aggregation`` contract).
* **Membership isolation** — join/leave interleavings touch only O(1)
  per-aggregate counters: the engine receives no calls and per-stream
  rank state stays empty.
"""

import json

from hypothesis import given, settings

from repro.aggregation import (
    AggregationTier,
    hash_bucket,
    run_aggregation,
    run_aggregation_bucket,
)
from tests.strategies import (
    aggregation_buckets,
    aggregation_scenarios,
    membership_interleavings,
)


def _blob(summary: dict) -> str:
    return json.dumps(summary, sort_keys=True, indent=1) + "\n"


class TestWorkConservation:
    @given(scenario=aggregation_scenarios())
    @settings(max_examples=12, deadline=None, print_blob=True)
    def test_every_packet_serviced_one_per_busy_cycle(self, scenario):
        tier = AggregationTier(scenario.n_aggregates, engine="batch",
                               discipline=scenario.discipline,
                               salt=scenario.salt)
        for sid, weight in scenario.initial:
            tier.join(sid, weight=weight)
        busy_cycles = 0
        for joins, leaves, arrivals in scenario.events:
            for sid, weight in joins:
                tier.join(sid, weight=weight)
            for sid in leaves:
                tier.leave(sid)
            for sid, deadline, length in arrivals:
                tier.submit(sid, deadline, length)
            backlogged = tier.outstanding > 0
            serviced = tier.decision_cycle() is not None
            assert serviced == backlogged  # exactly one iff backlog
            busy_cycles += serviced
        drained = tier.drain()
        assert busy_cycles + drained == scenario.total_arrivals
        assert tier.core.serviced == tier.core.enqueued
        assert tier.core._pending == {}
        assert tier.core._finish == {}
        assert all(not h for h in tier.core._heaps)

    @given(scenario=aggregation_scenarios())
    @settings(max_examples=8, deadline=None, print_blob=True)
    def test_per_aggregate_counts_balance(self, scenario):
        summary = run_aggregation(scenario, engine="batch")
        per = summary["per_aggregate"]
        assert sum(per["enqueued"]) == summary["enqueued"]
        assert sum(per["serviced"]) == summary["serviced"]
        assert summary["enqueued"] == summary["serviced"]
        assert sum(per["members"]) == (
            summary["streams_joined"] - summary["streams_left"]
        )


class TestWeightShareBand:
    @given(ops=membership_interleavings())
    @settings(max_examples=10, deadline=None, print_blob=True)
    def test_backlogged_shares_within_figure8_band(self, ops):
        """After an arbitrary legal churn prefix, saturate every member
        and check service shares against the Figure-8 band around the
        aggregate weight shares (tolerance 0.25 + quantization slack)."""
        tier = AggregationTier(4, engine="batch")
        members: dict[int, int] = {}
        for op in ops:
            if op[0] == "join":
                _, sid, weight = op
                tier.join(sid, weight=weight)
                members[sid] = weight
            else:
                tier.leave(op[1])
                del members[op[1]]
        if not members:
            return
        n_cycles = 600
        for sid in members:
            for _ in range(n_cycles):
                tier.submit(sid, deadline=1_000_000)
        for _ in range(n_cycles):
            tier.decision_cycle()
        weights = [0] * 4
        for sid, weight in members.items():
            weights[hash_bucket(sid, 4)] += weight
        total_weight = sum(weights)
        stats = tier.stats()
        total_serviced = sum(s.serviced for s in stats)
        for a in range(4):
            if weights[a] == 0:
                assert stats[a].serviced == 0
                continue
            expected = weights[a] / total_weight
            observed = stats[a].serviced / total_serviced
            slack = 0.25 * expected + 2 / n_cycles
            assert abs(observed - expected) <= slack, (
                f"aggregate {a}: observed {observed:.3f} vs "
                f"expected {expected:.3f} ± {slack:.3f}"
            )


class TestThreeWayByteIdentity:
    @given(bucket=aggregation_buckets())
    @settings(max_examples=8, deadline=None, print_blob=True)
    def test_reference_batch_tensor_identical(self, bucket):
        tensor = run_aggregation_bucket(bucket)
        for scenario, tsum in zip(bucket, tensor):
            ref = run_aggregation(scenario, engine="reference")
            bat = run_aggregation(scenario, engine="batch")
            assert _blob(ref) == _blob(bat), f"seed {scenario.seed}"
            assert _blob(ref) == _blob(tsum), f"seed {scenario.seed}"


class TestMembershipIsolation:
    @given(ops=membership_interleavings())
    @settings(max_examples=15, deadline=None, print_blob=True)
    def test_churn_is_pure_counter_arithmetic(self, ops):
        tier = AggregationTier(8, engine="batch")
        engine_calls = []
        tier.scheduler.enqueue = lambda *a, **k: engine_calls.append(a)
        expected: dict[int, int] = {}
        for op in ops:
            if op[0] == "join":
                tier.join(op[1], weight=op[2])
                expected[op[1]] = op[2]
            else:
                tier.leave(op[1])
                del expected[op[1]]
        assert engine_calls == []  # the (S, N) state was never touched
        assert tier.active_members == len(expected)
        weights = [0] * 8
        members = [0] * 8
        for sid, weight in expected.items():
            weights[hash_bucket(sid, 8)] += weight
            members[hash_bucket(sid, 8)] += 1
        stats = tier.stats()
        assert [s.weight for s in stats] == weights
        assert [s.members for s in stats] == members
        assert tier.core._pending == {}
        assert tier.core._finish == {}
