"""Tests for the RED queue and the flow-isolation comparison."""

import pytest

from repro.disciplines.base import Packet
from repro.disciplines.red import REDQueue
from repro.experiments.isolation import run_isolation


def pkt(seq, t=0.0):
    return Packet(stream_id=0, seq=seq, arrival=t, length=1)


class TestREDQueue:
    def test_below_min_threshold_never_drops(self):
        q = REDQueue(min_th=5, max_th=15, rng=0)
        for k in range(4):
            assert q.enqueue(pkt(k))
        assert q.stats.drop_rate == 0.0

    def test_forced_drop_above_max_threshold(self):
        q = REDQueue(min_th=2, max_th=4, wq=1.0, capacity=64, rng=0)
        # wq=1: avg tracks instantaneous depth exactly.
        for k in range(4):
            q.enqueue(pkt(k))
        assert not q.enqueue(pkt(99))
        assert q.stats.dropped_forced >= 1

    def test_early_drops_ramp_between_thresholds(self):
        q = REDQueue(min_th=5, max_th=50, wq=1.0, max_p=0.5, capacity=128, rng=1)
        offered = 0
        for k in range(100):
            q.enqueue(pkt(k))
            offered += 1
            if k % 3 == 0:
                q.dequeue()
        assert q.stats.dropped_early > 0
        assert 0 < q.stats.drop_rate < 1

    def test_deterministic_given_seed(self):
        def run(seed):
            q = REDQueue(min_th=3, max_th=10, wq=0.5, capacity=32, rng=seed)
            outcomes = []
            for k in range(60):
                outcomes.append(q.enqueue(pkt(k)))
                if k % 2:
                    q.dequeue()
            return outcomes

        assert run(5) == run(5)

    def test_hard_capacity(self):
        q = REDQueue(min_th=5, max_th=15, capacity=16, rng=0)
        for k in range(30):
            q.enqueue(pkt(k))
        assert len(q) <= 16
        assert q.stats.dropped_full > 0 or q.stats.dropped_forced > 0

    def test_fifo_order(self):
        q = REDQueue(rng=0)
        a, b = pkt(0), pkt(1)
        q.enqueue(a)
        q.enqueue(b)
        assert q.peek() is a
        assert q.dequeue() is a
        assert q.dequeue() is b
        assert q.dequeue() is None

    def test_idle_decay_reduces_average(self):
        q = REDQueue(min_th=2, max_th=6, wq=0.5, rng=0)
        for k in range(6):
            q.enqueue(pkt(k), now=0.0)
        avg_busy = q.avg
        while q.dequeue(now=1.0) is not None:
            pass
        q.enqueue(pkt(99), now=500.0)
        assert q.avg < avg_busy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_th": 0, "max_th": 5},
            {"min_th": 5, "max_th": 5},
            {"min_th": 2, "max_th": 5, "max_p": 0.0},
            {"min_th": 2, "max_th": 5, "wq": 0.0},
            {"min_th": 2, "max_th": 5, "capacity": 3},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            REDQueue(**kwargs)


class TestIsolation:
    @pytest.fixture(scope="class")
    def results(self):
        return {r.system: r for r in run_isolation(horizon=2500)}

    def _get(self, results, prefix):
        for name, r in results.items():
            if name.startswith(prefix):
                return r
        raise KeyError(prefix)

    def test_sharestreams_meets_every_deadline(self, results):
        ss = self._get(results, "ShareStreams")
        assert ss.rt_miss_rate == 0.0
        assert ss.queues == 32

    def test_gsr_hashed_queues_miss(self, results):
        gsr = self._get(results, "GSR-style")
        assert gsr.rt_miss_rate > 0.05

    def test_teracross_delay_granularity_loss(self, results):
        ss = self._get(results, "ShareStreams")
        tera = self._get(results, "Teracross")
        # Class-only queuing inflates the urgent flows' delay even when
        # deadlines are met.
        assert tera.tight_flow_p99_delay > 3 * ss.tight_flow_p99_delay

    def test_delay_ordering_across_systems(self, results):
        ss = self._get(results, "ShareStreams")
        gsr = self._get(results, "GSR-style")
        tera = self._get(results, "Teracross")
        assert (
            ss.tight_flow_p99_delay
            < tera.tight_flow_p99_delay
            < gsr.tight_flow_p99_delay
        )

    def test_same_offered_workload(self, results):
        counts = {r.rt_packets for r in results.values()}
        assert len(counts) == 1
