"""Unit tests for the sharded runner: pool, cache and telemetry merge.

The load-bearing property throughout is *worker-count independence*:
``run_sharded`` must merge per-item results (and telemetry shards)
into output identical to a sequential run, for any worker count, with
failures isolated to exactly the items they took down.
"""

import json
import os

import pytest

from repro.observability import (
    ConformanceMonitor,
    MetricsRegistry,
    Observability,
    StreamSlo,
    merge_snapshots,
)
from repro.runner import (
    CacheStats,
    PoolResult,
    ResultCache,
    ShardFailure,
    absorb_telemetry,
    available_parallelism,
    build_worker_observability,
    monitor_spec,
    resolve_workers,
    run_sharded,
    start_method,
    telemetry_shard,
)


# ---------------------------------------------------------------------------
# Module-level tasks (the pool contract: picklable callables).


def square(x):
    return x * x


def square_scaled(x, factor):
    return x * x * factor


def raise_on_odd(x):
    if x % 2:
        raise ValueError(f"odd item {x}")
    return x * x


def die_on(x, victim):
    if x == victim:
        os._exit(3)
    return x * x


class TestWorkerResolution:
    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1

    def test_resolve_workers(self):
        assert resolve_workers(5) == 5
        assert resolve_workers(1) == 1
        assert resolve_workers(0) == available_parallelism()
        assert resolve_workers(None) == available_parallelism()

    def test_start_method_known(self):
        assert start_method() in ("fork", "spawn", "forkserver", None)


class TestRunSharded:
    ITEMS = [7, 3, 11, 0, 5, 2, 9, 4]

    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_results_in_input_order_for_any_worker_count(self, workers):
        pool = run_sharded(square, self.ITEMS, workers=workers)
        assert pool.ok
        assert pool.results == [x * x for x in self.ITEMS]
        assert pool.executed == len(self.ITEMS)
        assert pool.cached == 0

    def test_task_args_forwarded(self):
        pool = run_sharded(
            square_scaled, [1, 2, 3], workers=2, task_args=(10,)
        )
        assert pool.results == [10, 40, 90]

    def test_workers_capped_at_item_count(self):
        pool = run_sharded(square, [1, 2], workers=16)
        assert pool.workers <= 2
        assert pool.results == [1, 4]

    def test_empty_items(self):
        pool = run_sharded(square, [], workers=4)
        assert pool.results == [] and pool.ok

    @pytest.mark.parametrize("workers", [1, 3])
    def test_raising_item_is_isolated(self, workers):
        pool = run_sharded(raise_on_odd, [2, 3, 4, 5, 6], workers=workers)
        assert not pool.ok
        assert pool.results == [4, None, 16, None, 36]
        assert sorted(pool.failed_items()) == [3, 5]
        for failure in pool.failures:
            assert "ValueError" in failure.error
            assert failure.describe()

    @pytest.mark.skipif(
        start_method() is None, reason="no multiprocessing start method"
    )
    def test_dead_shard_reports_its_items_and_spares_the_rest(self):
        items = [0, 1, 2, 3, 4, 5]
        pool = run_sharded(die_on, items, workers=2, task_args=(2,))
        assert not pool.ok
        # Round-robin sharding: shard 0 held the even items, shard 1 the
        # odd ones; only the dying shard's items are lost.
        lost = pool.failed_items()
        assert 2 in lost
        assert set(lost) == {0, 2, 4}
        assert pool.results[1::2] == [1, 9, 25]
        assert all(r is None for r in pool.results[0::2])
        (failure,) = pool.failures
        assert failure.exitcode == 3
        assert "exitcode 3" in failure.describe()

    def test_pool_result_helpers(self):
        pool = PoolResult(results=[1], failures=[], workers=1)
        assert pool.ok and pool.failed_items() == []
        failure = ShardFailure(shard=0, items=(4, 6), error="boom")
        pool = PoolResult(results=[None], failures=[failure], workers=1)
        assert not pool.ok and pool.failed_items() == [4, 6]


class TestResultCache:
    def test_key_is_canonical(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="t", version="v")
        a = cache.key({"x": 1, "y": 2})
        b = cache.key({"y": 2, "x": 1})
        assert a == b and len(a) == 64

    def test_key_varies_with_inputs(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="t", version="v")
        base = cache.key({"x": 1})
        assert cache.key({"x": 2}) != base
        assert ResultCache(tmp_path, namespace="u", version="v").key(
            {"x": 1}
        ) != base
        assert ResultCache(tmp_path, namespace="t", version="w").key(
            {"x": 1}
        ) != base

    def test_default_version_tracks_package(self, tmp_path):
        import repro

        cache = ResultCache(tmp_path)
        assert repro.__version__ in cache.version

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="t")
        key = cache.key({"seed": 1})
        assert cache.get(key) == (False, None)
        cache.put(key, {"passed": True})
        assert cache.get(key) == (True, {"passed": True})
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "writes": 1, "errors": 0,
        }

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="t")
        key = cache.key({"seed": 1})
        cache.put(key, 42)
        path = cache._path(key)
        path.write_text("{ not json")
        assert cache.get(key) == (False, None)
        assert not path.exists()
        assert cache.stats.errors == 1

    def test_entry_layout_is_sharded_json(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="ns")
        key = cache.key({"seed": 9})
        cache.put(key, [1, 2])
        path = tmp_path / "ns" / key[:2] / f"{key}.json"
        assert path.exists()
        assert json.loads(path.read_text())["value"] == [1, 2]

    def test_stats_dataclass(self):
        stats = CacheStats(hits=1, misses=2, writes=3, errors=4)
        assert stats.as_dict() == {
            "hits": 1, "misses": 2, "writes": 3, "errors": 4,
        }


class TestShardedCaching:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_warm_rerun_executes_nothing(self, tmp_path, workers):
        items = [3, 1, 4, 1, 5]
        cache = ResultCache(tmp_path, namespace="sq", version="v")
        kwargs = dict(
            workers=workers, cache=cache, cache_key=lambda x: {"x": x}
        )
        cold = run_sharded(square, items, **kwargs)
        assert cold.cached == 0 and cold.executed == len(items)
        warm = run_sharded(square, items, **kwargs)
        assert warm.cached == len(items) and warm.executed == 0
        assert warm.results == cold.results == [x * x for x in items]

    def test_cache_if_gates_writes(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="sq", version="v")
        kwargs = dict(
            cache=cache,
            cache_key=lambda x: {"x": x},
            cache_if=lambda item, result: item % 2 == 0,
        )
        run_sharded(square, [1, 2, 3, 4], **kwargs)
        again = run_sharded(square, [1, 2, 3, 4], **kwargs)
        assert again.cached == 2  # only the even items were stored
        assert again.results == [1, 4, 9, 16]

    def test_failed_items_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="odd", version="v")
        kwargs = dict(cache=cache, cache_key=lambda x: {"x": x})
        first = run_sharded(raise_on_odd, [2, 3], **kwargs)
        assert not first.ok
        second = run_sharded(raise_on_odd, [2, 3], **kwargs)
        assert second.cached == 1  # the passing item only
        assert second.executed == 1  # the failing item revalidates

    def test_encode_decode_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="enc", version="v")
        kwargs = dict(
            cache=cache,
            cache_key=lambda x: {"x": x},
            cache_encode=lambda result: {"v": result},
            cache_decode=lambda value: value["v"],
        )
        cold = run_sharded(square, [2, 3], **kwargs)
        warm = run_sharded(square, [2, 3], **kwargs)
        assert warm.results == cold.results == [4, 9]

    def test_cache_requires_key_fn(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="cache_key"):
            run_sharded(square, [1], cache=cache)


def _fill(registry, *, runs):
    """Deterministic metric traffic: ``runs`` repetitions of one shape."""
    counter = registry.counter("t_decisions_total", "decisions")
    gauge = registry.gauge("t_backlog", "backlog")
    hist = registry.histogram("t_gap", "gaps", buckets=(1.0, 5.0))
    for _ in range(runs):
        counter.inc(3, stream=0)
        counter.inc(1, stream=1)
        # Gauges merge last-write-wins, so the fill must leave the same
        # final level whether it ran as one whole or as absorbed halves.
        gauge.set(42, stream=0)
        hist.observe(0.5)
        hist.observe(2.0)
        hist.observe(7.0)


class TestMetricsMerge:
    def test_absorbed_halves_equal_the_whole(self):
        whole = MetricsRegistry()
        _fill(whole, runs=4)
        merged = MetricsRegistry()
        for _ in range(2):
            half = MetricsRegistry()
            _fill(half, runs=2)
            merged.absorb(half.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_absorb_into_live_registry(self):
        target = MetricsRegistry()
        _fill(target, runs=1)
        shard = MetricsRegistry()
        _fill(shard, runs=3)
        target.absorb(shard.snapshot())
        whole = MetricsRegistry()
        _fill(whole, runs=4)
        assert target.snapshot() == whole.snapshot()

    def test_merge_snapshots_matches_absorb(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        _fill(a, runs=1)
        _fill(b, runs=2)
        via_absorb = MetricsRegistry()
        via_absorb.absorb(a.snapshot())
        via_absorb.absorb(b.snapshot())
        assert merge_snapshots([a.snapshot(), b.snapshot()]) == (
            via_absorb.snapshot()
        )

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("t_g").set(1.0)
        b.gauge("t_g").set(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["t_g"]["samples"]["t_g"] == 2.0

    def test_type_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("t_x").inc()
        b.gauge("t_x").set(1.0)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])


def _drive_monitor(monitor, *, cycles):
    """Feed ``cycles`` synthetic decision outcomes through a monitor."""
    from repro.experiments.table3 import run_max_finding

    # A real (reduced) Table 3 run: every stream requests each cycle,
    # one winner serviced, misses accumulate — guaranteed window
    # traffic and (with a zero miss budget) guaranteed violations.
    obs = Observability(trace=False, profile=False, metrics=False)
    obs.monitor = monitor
    run_max_finding(cycles, observer=obs)


class TestMonitorMerge:
    def _monitor(self):
        return ConformanceMonitor(
            [StreamSlo(sid=i, miss_budget=0) for i in range(4)],
            window_cycles=16,
            flight_recorder=False,
        )

    def test_absorb_rebases_window_indices(self):
        first, second = self._monitor(), self._monitor()
        _drive_monitor(first, cycles=16)
        _drive_monitor(second, cycles=16)
        closed_first = first.rollup.windows_closed
        closed_second = second.rollup.windows_closed
        assert closed_first > 0
        first.absorb_state(second.state_dict())
        assert first.rollup.windows_closed == closed_first + closed_second
        indices = [w.index for w in first.rollup.history]
        assert indices == sorted(set(indices))  # monotonic, no collisions

    def test_absorb_rebases_violation_linkage(self):
        first, second = self._monitor(), self._monitor()
        _drive_monitor(first, cycles=16)
        _drive_monitor(second, cycles=16)
        offset = first.rollup.windows_closed
        shard_violations = [
            v for v in second.slo.violations if v.window_index >= 0
        ]
        assert shard_violations  # zero miss budget under overload
        before = len(first.slo.violations)
        first.absorb_state(second.state_dict())
        absorbed = first.slo.violations[before:]
        windowed = [v for v in absorbed if v.window_index >= 0]
        assert [v.window_index for v in windowed] == [
            v.window_index + offset for v in shard_violations
        ]

    def test_whole_run_violations_keep_sentinel_index(self):
        first, second = self._monitor(), self._monitor()
        _drive_monitor(first, cycles=16)
        _drive_monitor(second, cycles=16)
        second.finalize()
        state = second.state_dict()
        first.absorb_state(state)
        finals = [v for v in first.slo.violations if v.window_index == -1]
        for violation in finals:
            assert violation.window_index == -1

    def test_state_dict_is_json_safe(self):
        monitor = self._monitor()
        _drive_monitor(monitor, cycles=16)
        state = monitor.state_dict()
        assert json.loads(json.dumps(state)) == state


class TestTelemetryShards:
    def test_round_trip_through_spec_and_shard(self):
        parent = Observability(trace=False, profile=False)
        parent.monitor = ConformanceMonitor(
            [StreamSlo(sid=i, miss_budget=0) for i in range(4)],
            window_cycles=16,
            registry=parent.metrics,
        )
        spec = {"monitor": monitor_spec(parent)}
        worker = build_worker_observability(spec)
        assert worker.recorder is None and worker.profiler is None
        assert worker.monitor.rollup.window_cycles == 16
        assert sorted(worker.monitor.slo.slos) == [0, 1, 2, 3]
        _drive_monitor(worker.monitor, cycles=16)
        shard = telemetry_shard(worker)
        assert set(shard) == {"metrics", "monitor"}
        absorb_telemetry(parent, [shard])
        assert parent.monitor.rollup.windows_closed == (
            worker.monitor.rollup.windows_closed
        )

    def test_none_observability_round_trip(self):
        assert telemetry_shard(None) is None
        assert build_worker_observability(None) is None
        absorb_telemetry(None, [None])  # no-op
        absorb_telemetry(Observability(trace=False, profile=False), [None])

    def test_monitor_spec_without_monitor(self):
        assert monitor_spec(Observability(trace=False, profile=False)) is None
