"""Smoke tests: every example script runs end-to-end.

Examples are user-facing documentation; these tests keep them green.
Each runs with a reduced workload where the script takes an argument.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str]):
    """Execute one example as __main__ with patched argv."""
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        return runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", [])
        out = capsys.readouterr().out
        assert "winner" in out
        assert "per-slot counters" in out

    def test_mixed_traffic(self, capsys):
        run_example("mixed_traffic.py", [])
        out = capsys.readouterr().out
        assert "fair-share service ratio" in out
        assert "EDF stream missed deadlines" in out

    def test_host_router(self, capsys):
        run_example("host_router.py", ["1000"])
        out = capsys.readouterr().out
        assert "per-stream QoS" in out
        assert "PCI:" in out

    def test_aggregation_scale(self, capsys):
        run_example("aggregation_scale.py", ["20"])
        out = capsys.readouterr().out
        assert "streamlets per slot" in out
        assert "slot 4 weighted sets" in out

    def test_wirespeed_explorer(self, capsys):
        run_example("wirespeed_explorer.py", ["32", "64", "10"])
        out = capsys.readouterr().out
        assert "meets wire-speed" in out
        assert "packet-time" in out

    def test_media_streaming(self, capsys):
        run_example("media_streaming.py", [])
        out = capsys.readouterr().out
        assert "window-constraint audit" in out
        assert "OK" in out

    @pytest.mark.slow
    def test_hundreds_of_streams(self, capsys):
        run_example("hundreds_of_streams.py", [])
        out = capsys.readouterr().out
        assert "1024 streams" in out
        assert "FPGA budget" in out

    def test_linecard_wirespeed(self, capsys):
        run_example("linecard_wirespeed.py", [])
        out = capsys.readouterr().out
        assert "7.60 Mpps" in out
        assert "wire-speed feasibility" in out
