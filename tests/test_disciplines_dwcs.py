"""Tests for the reference software DWCS discipline."""

import pytest

from repro.disciplines import DWCS, Packet, SwStream
from repro.disciplines.dwcs import WindowState


def dwcs_with(streams, **kwargs) -> DWCS:
    d = DWCS(**kwargs)
    for s in streams:
        d.add_stream(s)
    return d


class TestWindowState:
    def test_initial_counters_copy_originals(self):
        w = WindowState(x=2, y=5)
        assert (w.x_cur, w.y_cur) == (2, 5)

    def test_on_time_service(self):
        w = WindowState(x=1, y=4)
        w.on_time_service()
        assert (w.x_cur, w.y_cur) == (1, 3)

    def test_window_reset_after_full_window(self):
        w = WindowState(x=1, y=3)
        w.on_time_service()  # y' -> 2
        w.on_time_service()  # y' -> 1 == x' -> reset
        assert (w.x_cur, w.y_cur) == (1, 3)
        assert w.resets == 1

    def test_missed_deadline_consumes_loss(self):
        w = WindowState(x=2, y=5)
        w.missed_deadline()
        assert (w.x_cur, w.y_cur) == (1, 4)
        assert w.misses == 1

    def test_violation_boosts_denominator(self):
        w = WindowState(x=0, y=2)
        w.missed_deadline()
        assert w.violations == 1
        assert w.y_cur == 3

    def test_violation_saturates(self):
        w = WindowState(x=0, y=2)
        w.y_cur = 255
        w.missed_deadline()
        assert w.y_cur == 255

    def test_constraint_ratio(self):
        assert WindowState(x=1, y=4).constraint == 0.25
        assert WindowState(x=0, y=0).constraint == 0.0


class TestSelection:
    def test_edf_dominates(self):
        d = dwcs_with([SwStream(stream_id=i) for i in range(2)])
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=9.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=0.0, deadline=3.0))
        assert d.select(0.0) == 1

    def test_equal_deadline_lowest_constraint(self):
        d = dwcs_with(
            [
                SwStream(stream_id=0, loss_numerator=1, loss_denominator=2),
                SwStream(stream_id=1, loss_numerator=1, loss_denominator=4),
            ]
        )
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=5.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=0.0, deadline=5.0))
        assert d.select(0.0) == 1  # 1/4 < 1/2

    def test_zero_constraints_highest_denominator(self):
        d = dwcs_with(
            [
                SwStream(stream_id=0, loss_numerator=0, loss_denominator=3),
                SwStream(stream_id=1, loss_numerator=0, loss_denominator=9),
            ]
        )
        for sid in (0, 1):
            d.enqueue(Packet(stream_id=sid, seq=0, arrival=0.0, deadline=5.0))
        assert d.select(0.0) == 1

    def test_fcfs_fallback(self):
        d = dwcs_with(
            [
                SwStream(stream_id=0, loss_numerator=1, loss_denominator=2),
                SwStream(stream_id=1, loss_numerator=1, loss_denominator=2),
            ]
        )
        d.enqueue(Packet(stream_id=0, seq=0, arrival=7.0, deadline=5.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=2.0, deadline=5.0))
        assert d.select(8.0) == 1

    def test_empty_returns_none(self):
        d = dwcs_with([SwStream(stream_id=0)])
        assert d.select(0.0) is None
        assert d.dequeue(0.0) is None

    def test_requires_deadlines(self):
        d = dwcs_with([SwStream(stream_id=0)])
        with pytest.raises(ValueError):
            d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0))


class TestDequeueDynamics:
    def test_winner_window_adjusts(self):
        d = dwcs_with(
            [SwStream(stream_id=0, loss_numerator=1, loss_denominator=4)]
        )
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=9.0))
        d.dequeue(0.0)
        assert d.windows[0].y_cur == 3

    def test_losers_with_late_heads_adjust(self):
        d = dwcs_with(
            [
                SwStream(stream_id=0, loss_numerator=1, loss_denominator=4),
                SwStream(stream_id=1, loss_numerator=2, loss_denominator=4),
            ]
        )
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=3.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=0.0, deadline=1.0))
        # At t=5 both heads are late; stream 1 wins (earlier deadline),
        # stream 0's head registers a miss.
        winner = d.dequeue(5.0)
        assert winner.stream_id == 1
        assert d.windows[0].misses == 1

    def test_drop_late_policy(self):
        d = dwcs_with(
            [
                SwStream(stream_id=0, loss_numerator=1, loss_denominator=4),
                SwStream(stream_id=1, loss_numerator=1, loss_denominator=4),
            ],
            drop_late=True,
        )
        d.enqueue(Packet(stream_id=0, seq=0, arrival=0.0, deadline=1.0))
        d.enqueue(Packet(stream_id=1, seq=0, arrival=0.0, deadline=0.5))
        d.dequeue(5.0)  # stream 1 wins; stream 0's late head is dropped
        assert len(d.dropped) == 1
        assert d.dropped[0].stream_id == 0
        assert d.backlog == 0

    def test_fair_share_emerges_from_periods(self):
        # Backlogged streams with periods 4,4,2,1 share 1:1:2:4.
        periods = {0: 4, 1: 4, 2: 2, 3: 1}
        d = dwcs_with(
            [
                SwStream(stream_id=i, period=periods[i], loss_numerator=1, loss_denominator=2)
                for i in range(4)
            ]
        )
        for sid, T in periods.items():
            for k in range(1200):
                d.enqueue(
                    Packet(
                        stream_id=sid,
                        seq=k,
                        arrival=0.0,
                        deadline=float((k + 1) * T),
                    )
                )
        counts = {i: 0 for i in range(4)}
        for _ in range(800):
            counts[d.dequeue(0.0).stream_id] += 1
        assert counts[0] == pytest.approx(100, abs=3)
        assert counts[1] == pytest.approx(100, abs=3)
        assert counts[2] == pytest.approx(200, abs=4)
        assert counts[3] == pytest.approx(400, abs=6)

    def test_missed_deadlines_accessor(self):
        d = dwcs_with([SwStream(stream_id=0, loss_numerator=1, loss_denominator=2)])
        assert d.missed_deadlines(0) == 0


class TestLossToleranceSemantics:
    def test_low_tolerance_stream_served_more_under_overload(self):
        """Two equally-loaded streams, one with tight loss tolerance:
        under overload with droppable packets, DWCS serves the stream
        that can afford fewer losses and sheds the tolerant one — the
        whole point of window-constraints."""
        d = DWCS(drop_late=True)
        d.add_stream(
            SwStream(stream_id=0, period=1, loss_numerator=1, loss_denominator=8)
        )  # tight: 1 loss per 8
        d.add_stream(
            SwStream(stream_id=1, period=1, loss_numerator=6, loss_denominator=8)
        )  # loose: 6 losses per 8
        for k in range(600):
            for sid in (0, 1):
                d.enqueue(
                    Packet(
                        stream_id=sid,
                        seq=k,
                        arrival=float(k),
                        deadline=float(k + 2),
                    )
                )
        served = {0: 0, 1: 0}
        t = 0
        # 2x overload: one service per tick, two arrivals per tick.
        while (packet := d.dequeue(float(t))) is not None:
            served[packet.stream_id] += 1
            t += 1
        drops = {0: 0, 1: 0}
        for packet in d.dropped:
            drops[packet.stream_id] += 1
        assert served[0] > 2 * served[1]
        assert drops[1] > 2 * drops[0]

    def test_violation_boost_recovers_starved_stream(self):
        """A stream pushed into violation climbs back via rule 3."""
        d = DWCS()
        d.add_stream(
            SwStream(stream_id=0, period=1, loss_numerator=0, loss_denominator=2)
        )
        d.add_stream(
            SwStream(stream_id=1, period=1, loss_numerator=0, loss_denominator=2)
        )
        # Stream 0's packets carry later deadlines, so it keeps losing
        # at first; each miss raises its denominator until it wins.
        for k in range(40):
            d.enqueue(
                Packet(stream_id=0, seq=k, arrival=float(k), deadline=float(k + 5))
            )
            d.enqueue(
                Packet(stream_id=1, seq=k, arrival=float(k), deadline=float(k + 1))
            )
        first_win_of_0 = None
        for t in range(40):
            p = d.dequeue(float(t))
            if p.stream_id == 0 and first_win_of_0 is None:
                first_win_of_0 = t
        assert first_win_of_0 is not None
        assert d.windows[0].violations >= 0  # bookkeeping sane
