"""Tests for bandwidth/delay metrics and report rendering."""

import numpy as np
import pytest

from repro.metrics import (
    BandwidthMeter,
    DelayTracker,
    format_quantity,
    render_series,
    render_table,
)


class TestBandwidthMeter:
    def test_windowed_series(self):
        m = BandwidthMeter()
        # 1500 bytes every 10us for 1000us -> 150 MB/s.
        for k in range(100):
            m.record(0, k * 10.0, 1500)
        s = m.series(0, window_us=100.0, t_end=1000.0)
        assert len(s.mbps) == 10
        assert np.allclose(s.mbps, 150.0)
        assert s.mean_mbps == pytest.approx(150.0)

    def test_empty_stream(self):
        m = BandwidthMeter()
        s = m.series(7, window_us=10.0, t_end=100.0)
        assert np.all(s.mbps == 0)
        assert s.mean_mbps == 0.0

    def test_total_bytes_and_mean(self):
        m = BandwidthMeter()
        m.record(1, 10.0, 500)
        m.record(1, 20.0, 1500)
        assert m.total_bytes(1) == 2000
        assert m.mean_mbps(1, t_end=100.0) == pytest.approx(20.0)

    def test_ratios(self):
        m = BandwidthMeter()
        for k in range(10):
            m.record(0, k * 10.0, 100)
            m.record(1, k * 10.0, 400)
        ratios = m.ratios(t_end=100.0)
        assert ratios[0] == pytest.approx(1.0)
        assert ratios[1] == pytest.approx(4.0)

    def test_window_validation(self):
        m = BandwidthMeter()
        with pytest.raises(ValueError):
            m.series(0, window_us=0.0)

    def test_stream_ids_sorted(self):
        m = BandwidthMeter()
        m.record(3, 0.0, 1)
        m.record(1, 0.0, 1)
        assert m.stream_ids == [1, 3]


class TestDelayTracker:
    def test_series_delays(self):
        t = DelayTracker()
        t.record(0, arrival_us=10.0, departure_us=25.0)
        t.record(0, arrival_us=20.0, departure_us=30.0)
        s = t.series(0)
        assert np.allclose(s.delays_us, [15.0, 10.0])
        assert s.mean_us == pytest.approx(12.5)
        assert s.max_us == pytest.approx(15.0)

    def test_percentile(self):
        t = DelayTracker()
        for k in range(100):
            t.record(0, 0.0, float(k + 1))
        assert t.series(0).percentile_us(50) == pytest.approx(50.5)

    def test_rejects_time_travel(self):
        t = DelayTracker()
        with pytest.raises(ValueError):
            t.record(0, arrival_us=10.0, departure_us=5.0)

    def test_smoothed_window(self):
        t = DelayTracker()
        for k in range(10):
            t.record(0, 0.0, float(k))
        s = t.series(0)
        sm = s.smoothed(3)
        assert len(sm) == 8
        assert sm[0] == pytest.approx(1.0)

    def test_smoothed_degenerate(self):
        t = DelayTracker()
        t.record(0, 0.0, 1.0)
        s = t.series(0)
        assert np.array_equal(s.smoothed(5), s.delays_us)

    def test_empty_series(self):
        t = DelayTracker()
        s = t.series(9)
        assert s.mean_us == 0.0
        assert s.max_us == 0.0
        assert s.percentile_us(99) == 0.0


class TestRendering:
    def test_format_quantity(self):
        assert format_quantity(0) == "0"
        assert format_quantity(12) == "12"
        assert format_quantity(1_234_567) == "1,234,567"
        assert format_quantity(2_500_000.0) == "2,500,000"
        assert format_quantity(0.0012345) == "0.001234"
        assert format_quantity(True) == "True"

    def test_render_table_alignment(self):
        out = render_table(
            ["name", "pps"],
            [["click", 333000], ["sharestreams", 7600000]],
            title="cmp",
        )
        lines = out.splitlines()
        assert lines[0] == "cmp"
        assert "name" in lines[1] and "pps" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_render_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series_downsamples(self):
        xs = list(range(100))
        ys = [float(x) for x in xs]
        out = render_series("ramp", xs, ys, max_points=4)
        assert out.startswith("ramp")
        assert out.count(":") == 4

    def test_render_series_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], [1.0])

    def test_render_series_units(self):
        out = render_series("bw", [1], [2.0], x_unit="s", y_unit="MBps")
        assert "[s : MBps]" in out


class TestJainIndex:
    def test_equal_streams_perfectly_fair(self):
        m = BandwidthMeter()
        for sid in range(4):
            m.record(sid, 50.0, 1000)
        assert m.jain_index(t_end=100.0) == pytest.approx(1.0)

    def test_single_hog_approaches_reciprocal_n(self):
        m = BandwidthMeter()
        m.record(0, 50.0, 10_000)
        for sid in (1, 2, 3):
            m.record(sid, 50.0, 1)
        assert m.jain_index(t_end=100.0) == pytest.approx(0.25, abs=0.01)

    def test_weighted_normalization(self):
        m = BandwidthMeter()
        for sid, share in [(0, 1), (1, 1), (2, 2), (3, 4)]:
            m.record(sid, 50.0, 1500 * share)
        weights = {0: 1.0, 1: 1.0, 2: 2.0, 3: 4.0}
        assert m.jain_index(t_end=100.0, weights=weights) == pytest.approx(1.0)
        assert m.jain_index(t_end=100.0) < 1.0

    def test_empty_meter(self):
        assert BandwidthMeter().jain_index(t_end=1.0) == 0.0

    def test_rejects_bad_weight(self):
        m = BandwidthMeter()
        m.record(0, 1.0, 1)
        with pytest.raises(ValueError):
            m.jain_index(t_end=1.0, weights={0: 0.0})
