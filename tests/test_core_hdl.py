"""Structural tests for the generated Verilog skeleton."""

import re

import pytest

from repro.core.config import ArchConfig, Routing
from repro.core.hdl import emit_decision_block, emit_top, emit_verilog
from repro.core.shuffle import perfect_shuffle


class TestDecisionBlockModule:
    def test_bundle_width(self):
        text = emit_decision_block()
        assert "input  wire [53:0] a_bundle" in text
        assert "output wire [53:0] winner" in text

    def test_field_slices_match_layout(self):
        text = emit_decision_block()
        assert "a_bundle[53:38]" in text  # deadline
        assert "a_bundle[37:30]" in text  # x
        assert "a_bundle[29:22]" in text  # y
        assert "a_bundle[21:6]" in text  # arrival
        assert "a_bundle[5:1]" in text  # sid
        assert "a_bundle[0]" in text  # valid

    def test_serial_comparison_present(self):
        text = emit_decision_block()
        assert "16'h8000" in text  # MSB test of the wrapped difference

    def test_deadline_only_drops_multipliers(self):
        full = emit_decision_block(deadline_only=False)
        simple = emit_decision_block(deadline_only=True)
        assert "prod_a" in full
        assert "prod_a" not in simple


class TestShuffleWiring:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_instance_count_is_half_n(self, n):
        text = emit_verilog(ArchConfig(n_slots=n))
        assert len(re.findall(r"decision_block u_decide_\d+", text)) == n // 2

    @pytest.mark.parametrize("n", [4, 8])
    def test_wiring_is_the_perfect_shuffle(self, n):
        text = emit_verilog(ArchConfig(n_slots=n))
        expected = perfect_shuffle(list(range(n)))
        for i, src in enumerate(expected):
            assert f"assign shuffled[{i}] = slots_in[{src}];" in text


class TestTopModule:
    def test_fsm_states_present(self):
        text = emit_top(ArchConfig(n_slots=4))
        for state in ("S_LOAD", "S_SCHEDULE", "S_PRIORITY_UPDATE"):
            assert state in text

    @pytest.mark.parametrize("n,k", [(4, 2), (8, 3), (16, 4), (32, 5)])
    def test_pass_count_matches_log2n(self, n, k):
        text = emit_top(ArchConfig(n_slots=n))
        assert f"pass_count == 3'd{k - 1}" in text

    def test_header_mentions_routing(self):
        text = emit_verilog(ArchConfig(n_slots=8, routing=Routing.WR))
        assert "routing=WR" in text

    def test_deterministic(self):
        cfg = ArchConfig(n_slots=16)
        assert emit_verilog(cfg) == emit_verilog(cfg)

    def test_balanced_module_blocks(self):
        text = emit_verilog(ArchConfig(n_slots=4))
        assert text.count("module ") == text.count("endmodule")
