"""Trace-replay determinism and the golden decision-trace vector.

The structured decision trace is only useful as a correctness oracle
if it is deterministic down to the byte: the same workload must
serialize to the identical JSONL stream on every run, from *either*
engine.  These tests pin that property and replay the committed golden
vector (``tests/golden/decision_trace.json``) so any change to the
event schema, flattening order or encoding fails loudly until the
vector is regenerated and the diff reviewed.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.batch_engine import make_scheduler
from repro.core.differential import generate_scenario, run_engine
from repro.observability import (
    DecisionEvent,
    TraceRecorder,
    deserialize_events,
)

GOLDEN = Path(__file__).parent / "golden"
sys.path.insert(0, str(GOLDEN))

from regen import (  # noqa: E402  (path set up above)
    DECISION_TRACE_CYCLES,
    build_decision_trace,
    dwcs_arch_streams,
    dwcs_arrivals,
)


def _run_dwcs(engine: str, n_cycles: int = DECISION_TRACE_CYCLES) -> TraceRecorder:
    """The golden DWCS workload against either engine, trace attached."""
    recorder = TraceRecorder()
    scheduler = make_scheduler(*dwcs_arch_streams(), engine=engine, observer=recorder)
    for t in range(n_cycles):
        for sid, deadline, arrival in dwcs_arrivals(t):
            scheduler.enqueue(sid, deadline=deadline, arrival=arrival)
        scheduler.decision_cycle(
            t, consume="winner", count_misses=True, drop_late=(t % 3 == 0)
        )
    return recorder


class TestReplayDeterminism:
    def test_same_engine_twice_is_byte_identical(self):
        assert _run_dwcs("reference").serialize() == _run_dwcs("reference").serialize()

    def test_engines_serialize_byte_identically(self):
        ref = _run_dwcs("reference").serialize()
        batch = _run_dwcs("batch").serialize()
        tensor = _run_dwcs("tensor").serialize()
        assert ref == batch
        assert ref == tensor

    @pytest.mark.parametrize("seed", [3, 17, 4242])
    def test_randomized_scenarios_byte_identical_across_engines(self, seed):
        scenario = generate_scenario(seed, n_cycles=120, max_slots=16)
        recs = {}
        for engine in ("reference", "batch", "tensor"):
            recs[engine] = TraceRecorder()
            run_engine(scenario, engine, observer=recs[engine])
        assert recs["reference"].serialize() == recs["batch"].serialize()
        assert recs["reference"].serialize() == recs["tensor"].serialize()

    def test_serialization_round_trips(self):
        recorder = _run_dwcs("reference")
        events = deserialize_events(recorder.serialize())
        assert events == list(recorder.events())
        assert all(isinstance(e, DecisionEvent) for e in events)


class TestGoldenDecisionTrace:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads((GOLDEN / "decision_trace.json").read_text())

    def test_builder_matches_committed_vector(self, golden):
        assert build_decision_trace() == golden

    @pytest.mark.parametrize("engine", ["reference", "batch", "tensor"])
    def test_engine_replays_golden_bytes(self, golden, engine):
        recorder = _run_dwcs(engine, n_cycles=golden["n_cycles"])
        assert recorder.serialize().decode("utf-8") == golden["jsonl"]
        assert recorder.to_dicts() == golden["events"]

    def test_golden_covers_all_event_kinds(self, golden):
        kinds = {e["kind"] for e in golden["events"]}
        assert kinds == {"decide", "miss", "drop"}

    def test_golden_jsonl_matches_events(self, golden):
        parsed = [json.loads(line) for line in golden["jsonl"].splitlines()]
        assert parsed == golden["events"]
