"""Minutes-scale churn soak of the million-stream aggregation tier.

Excluded from tier-1 (the ``soak`` marker is deselected by default via
``addopts``); run explicitly with::

    PYTHONPATH=src python -m pytest -m soak tests/test_aggregation_soak.py -s

Sustains a 1M-stream population under continuous churn + traffic for
``SOAK_SECONDS`` (default 60) wall-clock seconds and asserts the
steady-state invariants: membership accounting stays exact, every
accepted packet is serviced, per-stream hot-path state drains back to
empty, and RSS does not creep across the run (leak detection — the
bound is absolute, so per-operation leaks of even a few bytes fail it
at soak volumes).

Environment knobs: ``SOAK_SECONDS`` (duration), ``SOAK_STREAMS``
(population, default 1,000,000).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.aggregation import AggregationTier

SOAK_SECONDS = float(os.environ.get("SOAK_SECONDS", 60))
SOAK_STREAMS = int(os.environ.get("SOAK_STREAMS", 1_000_000))

#: RSS creep allowed across the soak (absolute; catches per-op leaks).
SOAK_RSS_BOUND_MB = 96.0


def _rss_bytes() -> int:
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found")


@pytest.mark.soak
def test_million_stream_churn_soak():
    tier = AggregationTier(1024, engine="batch", strict=False)
    for sid in range(SOAK_STREAMS):
        tier.join(sid)
    rss_start = _rss_bytes()

    deadline = 1 << 30
    next_sid = SOAK_STREAMS
    rotation = min(250_000, SOAK_STREAMS // 2)
    churned = submitted = iterations = 0
    started = time.perf_counter()
    while time.perf_counter() - started < SOAK_SECONDS:
        # One soak beat: a churn burst (fresh joins displace old
        # members), a traffic burst across the new arrivals plus a
        # rotating slice of the standing population, then a service
        # burst that drains everything just queued.
        for _ in range(500):
            tier.join(next_sid)
            tier.leave(next_sid - SOAK_STREAMS, weight=1)
            next_sid += 1
            churned += 1
        base = next_sid - 500
        for i in range(500):
            tier.submit(base + i, deadline)
            tier.submit(base - rotation + i, deadline)
            submitted += 2
        drained = tier.drain()
        assert drained == 1000
        assert tier.active_members == SOAK_STREAMS
        assert tier.core._pending == {}
        assert tier.core._finish == {}
        # The service log is a replay/debug aid, not hot-path state —
        # dropping it each beat keeps the soak's RSS check about the
        # tier itself.
        tier.services.clear()
        iterations += 1

    rss_creep = _rss_bytes() - rss_start
    elapsed = time.perf_counter() - started
    assert tier.core.serviced == tier.core.enqueued == submitted
    assert rss_creep <= SOAK_RSS_BOUND_MB * 1e6, (
        f"RSS crept {rss_creep / 1e6:.1f} MB over {elapsed:.0f}s of churn "
        f"(bound {SOAK_RSS_BOUND_MB} MB) — the tier leaks per-operation state"
    )
    print(
        f"\nsoak: {elapsed:.0f}s, {iterations} beats, {churned:,} churn ops, "
        f"{submitted:,} packets serviced, RSS creep "
        f"{rss_creep / 1e6:+.1f} MB (bound {SOAK_RSS_BOUND_MB} MB)"
    )
