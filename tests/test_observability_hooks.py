"""Tests for the observer hook protocol plumbing.

CompositeObserver's delivery policy (registration order, exception
isolation) is load-bearing for conformance monitoring: the monitor
composes with the metrics observer and the legacy trace through this
class, and a broken telemetry sink must never take down the scheduling
run or silence its peers.
"""

import pytest

from repro.observability import CompositeObserver, resolve_observer
from repro.observability.hooks import LegacyTraceObserver
from tests.test_observability_rollup import FakeOutcome


class Recorder:
    def __init__(self, log, name):
        self.log = log
        self.name = name

    def on_decision(self, outcome):
        self.log.append((self.name, "decision", outcome.now))

    def on_run_summary(self, result):
        self.log.append((self.name, "summary", result))

    def finalize(self):
        self.log.append((self.name, "finalize", None))


class Exploder:
    def __init__(self, log=None):
        self.log = log

    def on_decision(self, outcome):
        raise RuntimeError("boom")

    def on_run_summary(self, result):
        raise RuntimeError("summary boom")


class TestOrdering:
    def test_registration_order_preserved(self):
        log = []
        comp = CompositeObserver([Recorder(log, "a"), Recorder(log, "b")])
        comp.on_decision(FakeOutcome(0))
        comp.on_decision(FakeOutcome(1))
        assert log == [
            ("a", "decision", 0),
            ("b", "decision", 0),
            ("a", "decision", 1),
            ("b", "decision", 1),
        ]

    def test_run_summary_forwarded_in_order_and_duck_typed(self):
        log = []

        class DecisionOnly:
            def on_decision(self, outcome):
                log.append(("d", "decision", outcome.now))

        comp = CompositeObserver(
            [Recorder(log, "a"), DecisionOnly(), Recorder(log, "b")]
        )
        comp.on_run_summary("result")
        assert log == [("a", "summary", "result"), ("b", "summary", "result")]

    def test_finalize_forwarded_to_supporting_observers(self):
        log = []

        class DecisionOnly:
            def on_decision(self, outcome):
                pass

        comp = CompositeObserver(
            [Recorder(log, "a"), DecisionOnly(), Recorder(log, "b")]
        )
        comp.finalize()
        assert log == [("a", "finalize", None), ("b", "finalize", None)]


class TestExceptionIsolation:
    def test_failing_observer_does_not_silence_others(self):
        log = []
        comp = CompositeObserver(
            [Recorder(log, "a"), Exploder(), Recorder(log, "b")]
        )
        with pytest.warns(RuntimeWarning, match="Exploder.*isolated"):
            comp.on_decision(FakeOutcome(0))
        # Both healthy observers saw the event; the error was recorded.
        assert log == [("a", "decision", 0), ("b", "decision", 0)]
        assert len(comp.errors) == 1
        index, hook, exc = comp.errors[0]
        assert index == 1 and hook == "on_decision"
        assert isinstance(exc, RuntimeError)

    def test_warning_emitted_once_per_observer(self):
        import warnings

        comp = CompositeObserver([Exploder()])
        with pytest.warns(RuntimeWarning):
            comp.on_decision(FakeOutcome(0))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            comp.on_decision(FakeOutcome(1))
        assert not [w for w in record if w.category is RuntimeWarning]
        assert len(comp.errors) == 2  # errors still recorded

    def test_error_list_is_bounded(self):
        comp = CompositeObserver([Exploder()])
        with pytest.warns(RuntimeWarning):
            for t in range(CompositeObserver.MAX_ERRORS + 50):
                comp.on_decision(FakeOutcome(t))
        assert len(comp.errors) == CompositeObserver.MAX_ERRORS

    def test_run_summary_isolation(self):
        log = []
        comp = CompositeObserver([Exploder(), Recorder(log, "a")])
        with pytest.warns(RuntimeWarning, match="on_run_summary"):
            comp.on_run_summary("result")
        assert log == [("a", "summary", "result")]

    def test_engine_run_survives_poisoned_observer(self):
        """End to end: a raising observer composed with a healthy one
        must not perturb the scheduling run or the healthy telemetry."""
        from repro.core.attributes import SchedulingMode, StreamConfig
        from repro.core.config import ArchConfig, Routing
        from repro.core.scheduler import ShareStreamsScheduler

        log = []
        comp = CompositeObserver([Exploder(), Recorder(log, "ok")])
        arch = ArchConfig(n_slots=2, routing=Routing.WR, wrap=False)
        streams = [
            StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
            for i in range(2)
        ]
        s = ShareStreamsScheduler(arch, streams, observer=comp)
        with pytest.warns(RuntimeWarning):
            for t in range(4):
                s.enqueue(0, deadline=t + 1, arrival=t)
                s.decision_cycle(t, consume="winner")
        assert len(log) == 4
        assert len(comp.errors) == 4


class TestResolveObserver:
    def test_none_stays_none(self):
        assert resolve_observer(None, None) is None

    def test_single_observer_passes_through(self):
        obs = Recorder([], "a")
        assert resolve_observer(None, obs) is obs

    def test_trace_plus_observer_composes_observer_first(self):
        obs = Recorder([], "a")

        class Log:
            def emit(self, *a, **k):
                pass

        combined = resolve_observer(Log(), obs)
        assert isinstance(combined, CompositeObserver)
        assert combined.observers[0] is obs
        assert isinstance(combined.observers[1], LegacyTraceObserver)


class TestProfilerIsolation:
    """Regression: a raising observer must not skew phase timings.

    The warn-once RuntimeWarning (and the bounded error-list append) can
    be arbitrarily expensive — warning filters, captured tracebacks — so
    that bookkeeping must run *outside* the profiler's timed window, or
    the first failure inflates ``observer[i].on_decision`` for the very
    observer being isolated.
    """

    def _fake_clock_setup(self, monkeypatch):
        import warnings as warnings_module

        from repro.observability.profiling import PhaseProfiler

        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        real_warn = warnings_module.warn

        def slow_warn(*args, **kwargs):
            clock["now"] += 10.0  # a pathologically expensive warning
            return real_warn(*args, **kwargs)

        monkeypatch.setattr(warnings_module, "warn", slow_warn)
        return PhaseProfiler(clock=fake_clock), clock

    def test_warn_cost_attributed_to_no_observer(self, monkeypatch):
        profiler, clock = self._fake_clock_setup(monkeypatch)
        log = []
        comp = CompositeObserver(
            [Exploder(), Recorder(log, "a")], profiler=profiler
        )
        with pytest.warns(RuntimeWarning):
            comp.on_decision(FakeOutcome(0))
        report = profiler.report()
        # The exploder's own phase saw zero fake-clock time: the 10s
        # spent warning about it happened outside every timed window.
        assert report["observer[0].on_decision"].wall_s == 0.0
        assert report["observer[1].on_decision"].wall_s == 0.0
        assert log == [("a", "decision", 0)]
        assert clock["now"] == 10.0  # the warning really did "cost" 10s

    def test_bounded_errors_and_warn_once_with_profiler(self, monkeypatch):
        profiler, clock = self._fake_clock_setup(monkeypatch)
        comp = CompositeObserver([Exploder()], profiler=profiler)
        with pytest.warns(RuntimeWarning):
            for t in range(CompositeObserver.MAX_ERRORS + 10):
                comp.on_decision(FakeOutcome(t))
        assert len(comp.errors) == CompositeObserver.MAX_ERRORS
        assert clock["now"] == 10.0  # warn-once: a single slow warning
        report = profiler.report()
        assert report["observer[0].on_decision"].wall_s == 0.0
        assert (
            report["observer[0].on_decision"].calls
            == CompositeObserver.MAX_ERRORS + 10
        )

    def test_healthy_observers_still_timed(self):
        from repro.observability.profiling import PhaseProfiler

        profiler = PhaseProfiler()
        log = []
        comp = CompositeObserver([Recorder(log, "a")], profiler=profiler)
        comp.on_decision(FakeOutcome(0))
        comp.finalize()
        report = profiler.report()
        assert report["observer[0].on_decision"].calls == 1
        assert report["observer[0].finalize"].calls == 1
