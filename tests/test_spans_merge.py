"""Span-merge determinism across the process pool.

The acceptance criterion the tentpole pins: one traced sharded campaign
produces one merged span tree whose *canonical* serialization is
byte-identical for any worker count — worker spans are recorded in the
workers, shipped back with the shard payloads and absorbed by the parent
tracer, and nothing about process layout may leak into canonical bytes.
The second half of the contract: attaching (or omitting) a tracer never
changes the campaign result itself.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.differential import campaign
from repro.observability.spans import SpanTracer

WORKER_COUNTS = (1, 2, 4)

seed_lists = st.lists(
    st.integers(min_value=0, max_value=50),
    min_size=1,
    max_size=4,
    unique=True,
)

relaxed = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _traced_campaign(seeds, workers, engine):
    tracer = SpanTracer("merge-test")
    result = campaign(
        seeds,
        n_cycles=40,
        engine=engine,
        workers=workers,
        use_cache=False,
        tracer=tracer,
    )
    return result, tracer


@relaxed
@given(seeds=seed_lists)
def test_tensor_campaign_span_tree_worker_invariant(seeds):
    trees = {}
    summaries = {}
    for workers in WORKER_COUNTS:
        result, tracer = _traced_campaign(seeds, workers, "tensor")
        assert result.passed
        trees[workers] = tracer.canonical_bytes()
        summaries[workers] = result.summary_json()
    assert trees[1] == trees[2] == trees[4]
    assert summaries[1] == summaries[2] == summaries[4]
    assert trees[1]  # non-empty: the campaign really was traced


@relaxed
@given(seeds=seed_lists)
def test_batch_campaign_span_tree_worker_invariant(seeds):
    trees = [
        _traced_campaign(seeds, workers, "batch")[1].canonical_bytes()
        for workers in WORKER_COUNTS
    ]
    assert trees[0] == trees[1] == trees[2]


def test_cache_hits_keep_span_tree_invariant(tmp_path):
    """Warm-cache runs record parent-side cache-hit spans at the items'
    original ordinals, so cached and executed runs agree on paths."""
    seeds = [3, 7, 11, 19]
    cache_dir = tmp_path / "cache"

    def run(workers):
        tracer = SpanTracer("cache-test")
        result = campaign(
            seeds,
            n_cycles=40,
            engine="batch",
            workers=workers,
            cache_dir=cache_dir,
            tracer=tracer,
        )
        return result, tracer

    cold, cold_tracer = run(1)
    assert cold.cached == 0
    warm1, warm1_tracer = run(1)
    warm4, warm4_tracer = run(4)
    assert warm1.cached == len(seeds) == warm4.cached
    assert warm1_tracer.canonical_bytes() == warm4_tracer.canonical_bytes()
    hits = [
        r for r in warm1_tracer.records() if r.tags.get("cache") == "hit"
    ]
    assert len(hits) == len(seeds)
    # Cache state changes execution depth (hits skip the engine-run
    # subtree), not identity: the seed-item spans themselves keep the
    # same paths and span ids across cold and warm runs.
    def seed_spans(tracer):
        return {
            r.path: r.span_id
            for r in tracer.records()
            if r.canonical and r.name == "seed"
        }

    assert seed_spans(cold_tracer) == seed_spans(warm1_tracer)


def test_disabled_tracer_leaves_campaign_summary_untouched():
    """tracer=None (the seed baseline) and a traced run produce
    byte-identical campaign summaries."""
    seeds = range(6)
    baseline = campaign(
        seeds, n_cycles=40, engine="tensor", workers=2, use_cache=False
    )
    traced, _ = _traced_campaign(seeds, 2, "tensor")
    assert baseline.summary_json() == traced.summary_json()
