"""Tests for the live /metrics HTTP endpoint and the dashboard."""

import io
import json
import urllib.request

import pytest

from repro.observability import (
    ConformanceMonitor,
    Dashboard,
    MetricsRegistry,
    StreamSlo,
    TelemetryServer,
    parse_prometheus_text,
)
from tests.test_observability_rollup import FakeOutcome


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


@pytest.fixture
def registry():
    r = MetricsRegistry()
    r.counter("demo_total", "a counter").inc(7, stream=0)
    r.gauge("demo_depth", "a gauge").set(4.5)
    r.histogram("demo_hist", "a histogram", buckets=(1, 8)).observe(3)
    return r


class TestMetricsEndpoint:
    def test_scrape_round_trips_through_strict_parser(self, registry):
        """Acceptance criteria: /metrics output survives the strict
        parse_prometheus_text round trip and equals the live snapshot."""
        with TelemetryServer(registry) as server:
            status, ctype, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert parse_prometheus_text(body.decode()) == registry.snapshot()

    def test_scrape_reflects_live_updates(self, registry):
        with TelemetryServer(registry) as server:
            _, _, before = fetch(f"{server.url}/metrics")
            registry.counter("demo_total").inc(5, stream=0)
            _, _, after = fetch(f"{server.url}/metrics")
        assert before != after
        assert parse_prometheus_text(after.decode()) == registry.snapshot()

    def test_ephemeral_port_resolves(self, registry):
        server = TelemetryServer(registry, port=0)
        with pytest.raises(RuntimeError):
            server.port  # not started yet
        try:
            server.start()
            assert server.port > 0
        finally:
            server.stop()

    def test_double_start_rejected(self, registry):
        with TelemetryServer(registry) as server:
            with pytest.raises(RuntimeError):
                server.start()

    def test_stop_is_idempotent(self, registry):
        server = TelemetryServer(registry).start()
        server.stop()
        server.stop()


class TestMonitorEndpoints:
    def _monitor(self):
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0)],
            window_cycles=2,
            flight_recorder=False,
        )
        for t in range(4):
            monitor.on_decision(
                FakeOutcome(t, winner=0, serviced=(0,), misses=(0,))
            )
        return monitor

    def test_rollups_payload(self, registry):
        monitor = self._monitor()
        with TelemetryServer(registry, monitor=monitor) as server:
            status, ctype, body = fetch(f"{server.url}/rollups")
        assert status == 200 and ctype == "application/json"
        payload = json.loads(body)
        assert payload["window_cycles"] == 2
        assert payload["windows_closed"] == 2
        assert len(payload["windows"]) == 2
        assert payload["windows"][0]["streams"]["0"]["misses"] == 2

    def test_violations_payload(self, registry):
        monitor = self._monitor()
        with TelemetryServer(registry, monitor=monitor) as server:
            _, _, body = fetch(f"{server.url}/violations")
        payload = json.loads(body)
        assert payload["windows_evaluated"] == 2
        assert len(payload["violations"]) == 2
        assert payload["violations"][0]["objective"] == "miss_budget"

    def test_payloads_empty_without_monitor(self, registry):
        with TelemetryServer(registry) as server:
            _, _, rollups = fetch(f"{server.url}/rollups")
            _, _, violations = fetch(f"{server.url}/violations")
        assert json.loads(rollups) == {"windows": []}
        assert json.loads(violations) == {"violations": []}

    def test_healthz_and_404(self, registry):
        with TelemetryServer(registry) as server:
            status, _, body = fetch(f"{server.url}/healthz")
            assert status == 200 and body == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(f"{server.url}/nope")
            assert exc.value.code == 404

    def test_slo_metrics_appear_in_scrape(self):
        """The monitor's violation counters land in the same registry
        the endpoint serves."""
        registry = MetricsRegistry()
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0)],
            window_cycles=2,
            flight_recorder=False,
            registry=registry,
        )
        for t in range(2):
            monitor.on_decision(
                FakeOutcome(t, winner=0, serviced=(0,), misses=(0,))
            )
        with TelemetryServer(registry, monitor=monitor) as server:
            _, _, body = fetch(f"{server.url}/metrics")
        parsed = parse_prometheus_text(body.decode())
        samples = parsed["sharestreams_slo_violations_total"]["samples"]
        assert sum(samples.values()) == 1


class TestDashboard:
    def _monitor(self, violate=True):
        monitor = ConformanceMonitor(
            [StreamSlo(sid=0, miss_budget=0 if violate else 10)],
            window_cycles=2,
            flight_capacity=4,
        )
        for t in range(4):
            monitor.on_decision(
                FakeOutcome(t, winner=0, serviced=(0,), misses=(0,))
            )
        return monitor

    def test_frame_contents(self):
        monitor = self._monitor()
        frame = Dashboard(monitor, out=io.StringIO()).render_frame()
        assert "conformance monitor" in frame
        assert "FAIL" in frame
        assert "active violations:" in frame
        assert "flight dumps:" in frame

    def test_clean_run_shows_ok(self):
        monitor = self._monitor(violate=False)
        frame = Dashboard(monitor, out=io.StringIO()).render_frame()
        assert "FAIL" not in frame and " ok" in frame

    def test_empty_monitor_renders(self):
        monitor = ConformanceMonitor([], window_cycles=100)
        frame = Dashboard(monitor, out=io.StringIO()).render_frame()
        assert "no finished window yet" in frame

    def test_attach_draws_every_window(self):
        monitor = ConformanceMonitor([], window_cycles=2)
        out = io.StringIO()
        dash = Dashboard(monitor, out=out, ansi=False).attach()
        for t in range(6):
            monitor.on_decision(FakeOutcome(t, winner=0, serviced=(0,)))
        assert dash.frames_drawn == 3
        assert out.getvalue().count("conformance monitor") == 3

    def test_ansi_mode_emits_clear_sequence(self):
        monitor = self._monitor()
        out = io.StringIO()
        Dashboard(monitor, out=out, ansi=True).draw()
        assert out.getvalue().startswith("\x1b[H\x1b[2J")

    def test_non_tty_defaults_to_plain_frames(self):
        dash = Dashboard(self._monitor(), out=io.StringIO())
        assert dash.ansi is False


class TestSpansEndpoint:
    def _tracer(self):
        from repro.observability import SpanTracer

        tracer = SpanTracer("endpoint-test")
        with tracer.span("campaign", kind="campaign", seeds=2):
            with tracer.span("seed", ordinal=1) as sp:
                sp.measure(lane=1)
            with tracer.span("seed", ordinal=0):
                pass
        return tracer

    def test_spans_payload_served_path_sorted(self, registry):
        tracer = self._tracer()
        with TelemetryServer(registry, tracer=tracer) as server:
            status, ctype, body = fetch(f"{server.url}/spans")
        assert status == 200 and ctype == "application/json"
        payload = json.loads(body)
        assert payload["schema"] == 1
        assert payload["trace_id"] == "endpoint-test"
        assert [s["path"] for s in payload["spans"]] == [
            "campaign[0]",
            "campaign[0]/seed[0]",
            "campaign[0]/seed[1]",
        ]
        assert payload["spans"][2]["measures"] == {"lane": 1}

    def test_spans_empty_without_tracer(self, registry):
        with TelemetryServer(registry) as server:
            _, _, body = fetch(f"{server.url}/spans")
        assert json.loads(body) == {"schema": 1, "spans": []}

    def test_spans_reflect_live_recording(self, registry):
        from repro.observability import SpanTracer

        tracer = SpanTracer("live")
        with TelemetryServer(registry, tracer=tracer) as server:
            _, _, before = fetch(f"{server.url}/spans")
            with tracer.span("campaign"):
                pass
            _, _, after = fetch(f"{server.url}/spans")
        assert json.loads(before)["spans"] == []
        assert len(json.loads(after)["spans"]) == 1
