"""Tests for the bench-record schema and the perf-trend trajectory."""

import json

import pytest

from repro import benchtrend
from repro.benchtrend import (
    BENCH_SCHEMA,
    append_snapshot,
    bench_payload,
    bench_record,
    bench_slug,
    build_snapshot,
    check_regressions,
    discover_bench_files,
    load_trajectory,
    normalize_payload,
    validate_bench,
    validate_trajectory,
    write_bench,
    write_trajectory,
)


class TestRecordsAndPayloads:
    def test_record_shape(self):
        rec = bench_record("ops", 1200.5, "ops/s", slots=8, direction="higher")
        assert rec == {
            "name": "ops",
            "value": 1200.5,
            "unit": "ops/s",
            "metadata": {"slots": 8, "direction": "higher"},
        }

    @pytest.mark.parametrize("bad", [True, "12", None, [1]])
    def test_record_rejects_non_numeric_values(self, bad):
        with pytest.raises(TypeError):
            bench_record("ops", bad)

    def test_payload_sorts_records_and_validates(self):
        payload = bench_payload(
            "demo",
            [bench_record("b", 2), bench_record("a", 1), bench_record("a", 3, s=1)],
        )
        assert payload["schema"] == BENCH_SCHEMA
        assert [r["name"] for r in payload["records"]] == ["a", "a", "b"]

    def test_payload_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            bench_payload("demo", [bench_record("a", 1, direction="up")])

    def test_validate_reports_specific_problems(self):
        problems = validate_bench(
            {
                "schema": 99,
                "bench": "",
                "records": [{"name": "", "value": "x", "extra": 1}],
            }
        )
        text = "\n".join(problems)
        assert "schema" in text and "bench" in text
        assert "records[0].name" in text and "records[0].value" in text
        assert "unexpected keys" in text

    def test_write_bench_is_canonical(self, tmp_path):
        out = tmp_path / "BENCH_DEMO.json"
        payload = write_bench(out, "demo", [bench_record("a", 1)])
        text = out.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == payload
        write_bench(out, "demo", [bench_record("a", 1)])
        assert out.read_text() == text  # regeneration is byte-stable

    def test_write_bench_refuses_schema_downgrade(self, tmp_path):
        """A newer-schema artifact must never be silently rewritten."""
        out = tmp_path / "BENCH_DEMO.json"
        future = {"schema": benchtrend.BENCH_SCHEMA + 1, "records": []}
        out.write_text(json.dumps(future))
        with pytest.raises(ValueError, match="refusing to overwrite"):
            write_bench(out, "demo", [bench_record("a", 1)])
        assert json.loads(out.read_text()) == future  # untouched

    def test_write_bench_replaces_invalid_existing_file(self, tmp_path):
        """Garbage at the target path was never an artifact: overwrite."""
        out = tmp_path / "BENCH_DEMO.json"
        out.write_text("not json {")
        payload = write_bench(out, "demo", [bench_record("a", 1)])
        assert json.loads(out.read_text()) == payload


class TestNormalization:
    def test_schema1_passes_through(self):
        payload = bench_payload("demo", [bench_record("a", 1)])
        assert normalize_payload(payload, bench="demo") is payload

    def test_legacy_flattening_and_unit_inference(self):
        legacy = {
            "unit": "widgets",
            "workload": "demo feed",
            "join_per_second": 100.0,
            "churn_ratio": 0.9,
            "nested": {"rss_delta_mb": 12.5},
            "series": [5, 7],
            "passed": True,
        }
        norm = normalize_payload(legacy, bench="agg")
        by_name = {r["name"]: r for r in norm["records"]}
        assert norm["workload"] == "demo feed"
        assert by_name["join_per_second"]["unit"] == "per_second"
        assert by_name["churn_ratio"]["unit"] == "ratio"
        assert by_name["nested.rss_delta_mb"]["unit"] == "MB"
        assert by_name["series.0"]["value"] == 5
        assert by_name["series.1"]["unit"] == "widgets"  # top-level default
        assert "passed" not in by_name  # bools are not measurements
        assert all(r["metadata"]["legacy"] for r in norm["records"])
        assert validate_bench(norm) == []

    def test_bench_slug(self):
        assert bench_slug("BENCH_CAMPAIGN.json") == "campaign"
        assert bench_slug("/x/BENCH_AGGREGATION.json") == "aggregation"


def _bench_dir(tmp_path, value=100.0):
    write_bench(
        tmp_path / "BENCH_DEMO.json",
        "demo",
        [bench_record("throughput", value, "ops/s", direction="higher")],
    )
    return tmp_path


class TestTrajectory:
    def test_discovery_excludes_trajectory(self, tmp_path):
        _bench_dir(tmp_path)
        (tmp_path / "BENCH_TRAJECTORY.json").write_text("{}")
        assert [p.name for p in discover_bench_files(tmp_path)] == [
            "BENCH_DEMO.json"
        ]

    def test_append_coalesces_identical_snapshots(self, tmp_path):
        _bench_dir(tmp_path)
        trajectory = load_trajectory(tmp_path / "BENCH_TRAJECTORY.json")
        assert append_snapshot(trajectory, build_snapshot(tmp_path))
        assert not append_snapshot(trajectory, build_snapshot(tmp_path))
        _bench_dir(tmp_path, value=130.0)
        assert append_snapshot(trajectory, build_snapshot(tmp_path))
        assert [s["sequence"] for s in trajectory["snapshots"]] == [0, 1]
        assert validate_trajectory(trajectory) == []

    def test_round_trip_and_validation_error(self, tmp_path):
        _bench_dir(tmp_path)
        path = tmp_path / "BENCH_TRAJECTORY.json"
        trajectory = load_trajectory(path)
        append_snapshot(trajectory, build_snapshot(tmp_path, label="r1"))
        write_trajectory(path, trajectory)
        assert load_trajectory(path) == trajectory
        broken = dict(trajectory)
        broken["snapshots"] = [{"sequence": -1, "benches": {}}]
        write_trajectory(path, {**broken, "schema": 1})
        with pytest.raises(ValueError):
            load_trajectory(path)

    def _two_snapshots(self, tmp_path, old, new, direction, **meta):
        trajectory = {"schema": 1, "snapshots": []}
        for value in (old, new):
            write_bench(
                tmp_path / "BENCH_DEMO.json",
                "demo",
                [bench_record("m", value, direction=direction, **meta)],
            )
            append_snapshot(trajectory, build_snapshot(tmp_path))
        return trajectory

    def test_regression_detected_against_direction(self, tmp_path):
        trajectory = self._two_snapshots(tmp_path, 100.0, 60.0, "higher")
        problems = check_regressions(trajectory)
        assert len(problems) == 1 and "demo:m" in problems[0]

    def test_improvement_and_tolerance_pass(self, tmp_path):
        assert check_regressions(
            self._two_snapshots(tmp_path, 100.0, 140.0, "higher")
        ) == []
        assert check_regressions(
            self._two_snapshots(tmp_path, 100.0, 90.0, "higher")
        ) == []  # within default 25% tolerance
        assert check_regressions(
            self._two_snapshots(tmp_path, 100.0, 30.0, "higher", tolerance=0.8)
        ) == []  # explicit per-record tolerance honored

    def test_lower_is_better_direction(self, tmp_path):
        trajectory = self._two_snapshots(tmp_path, 10.0, 20.0, "lower")
        assert len(check_regressions(trajectory)) == 1

    def test_single_snapshot_never_regresses(self, tmp_path):
        _bench_dir(tmp_path)
        trajectory = {"schema": 1, "snapshots": []}
        append_snapshot(trajectory, build_snapshot(tmp_path))
        assert check_regressions(trajectory) == []


class TestRepoArtifacts:
    """The committed artifacts conform to the schema they define."""

    def test_committed_bench_files_are_schema1(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        files = discover_bench_files(root)
        assert files, "expected committed BENCH_*.json artifacts"
        for path in files:
            payload = json.loads(path.read_text())
            assert validate_bench(payload) == [], path.name

    def test_committed_trajectory_validates(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        trajectory = json.loads((root / "BENCH_TRAJECTORY.json").read_text())
        assert validate_trajectory(trajectory) == []
        assert benchtrend.check_regressions(trajectory) == []
