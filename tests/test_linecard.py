"""Tests for the switch line-card realization."""

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.linecard import Linecard


def make_linecard(n_slots=4, routing=Routing.WR, **arch_kwargs):
    arch = ArchConfig(n_slots=n_slots, routing=routing, wrap=False, **arch_kwargs)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n_slots)
    ]
    return Linecard(arch, streams)


class TestThroughput:
    def test_paper_anchor_4_slots(self):
        lc = make_linecard(4)
        for sid in range(4):
            for k in range(200):
                lc.feed(sid, deadline=(sid + 1) + k, arrival=k)
        result = lc.run(500)
        assert result.throughput_pps == pytest.approx(7_600_000)

    def test_behavioral_matches_analytic(self):
        lc = make_linecard(8)
        for sid in range(8):
            for k in range(100):
                lc.feed(sid, deadline=(sid + 1) + k, arrival=k)
        result = lc.run(400)
        assert result.throughput_pps == pytest.approx(
            lc.model_throughput_pps()
        )

    def test_block_mode_multiplies_throughput(self):
        lc = make_linecard(4, routing=Routing.BA)
        for sid in range(4):
            for k in range(300):
                lc.feed(sid, deadline=(sid + 1) + k, arrival=k)
        result = lc.run(200, consume="block")
        assert result.packets_scheduled == 800
        assert result.throughput_pps == pytest.approx(
            lc.model_throughput_pps(block=True)
        )

    def test_elapsed_time(self):
        lc = make_linecard(4)
        lc.feed(0, deadline=1, arrival=0)
        result = lc.run(1)
        assert result.elapsed_us == pytest.approx(
            lc.cycles_per_decision / lc.clock_mhz
        )


class TestWinnerSequence:
    def test_edf_order_recorded(self):
        lc = make_linecard(4)
        deadlines = {0: 9, 1: 2, 2: 7, 3: 5}
        for sid, d in deadlines.items():
            lc.feed(sid, deadline=d, arrival=0)
        result = lc.run(4, record_winners=True)
        assert result.winner_sequence == (1, 3, 2, 0)

    def test_idle_cycles_schedule_nothing(self):
        lc = make_linecard(4)
        result = lc.run(10)
        assert result.packets_scheduled == 0
        assert result.throughput_pps == 0.0 or result.packets_scheduled == 0


class TestModelBehavioralAgreement:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_throughput_model_matches_run_all_widths(self, n):
        lc = make_linecard(n)
        for sid in range(n):
            for k in range(60):
                lc.feed(sid, deadline=(sid + 1) + k, arrival=k)
        result = lc.run(50)
        assert result.throughput_pps == pytest.approx(
            lc.model_throughput_pps()
        )
