"""Tests for the drop-late scheduling policy and jitter metrics."""

import numpy as np
import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.metrics.delay import DelayTracker


def overload_scheduler(mode=SchedulingMode.EDF):
    arch = ArchConfig(n_slots=2, routing=Routing.WR, wrap=False)
    s = ShareStreamsScheduler(
        arch,
        [StreamConfig(sid=i, period=1, mode=mode) for i in range(2)],
    )
    return s


class TestDropLate:
    def test_drops_expired_heads(self):
        s = overload_scheduler()
        s.enqueue(0, deadline=1, arrival=0)
        s.enqueue(0, deadline=2, arrival=1)
        s.enqueue(0, deadline=50, arrival=2)
        out = s.decision_cycle(10, drop_late=True)
        assert [(sid, p.deadline) for sid, p in out.dropped] == [
            (0, 1),
            (0, 2),
        ]
        # The fresh head is what got serviced.
        assert out.serviced[0][1].deadline == 50

    def test_drops_counted_as_misses(self):
        s = overload_scheduler()
        s.enqueue(0, deadline=1, arrival=0)
        s.enqueue(0, deadline=2, arrival=1)
        s.decision_cycle(10, drop_late=True, count_misses=True)
        assert s.slot(0).counters.missed_deadlines == 2

    def test_no_drop_when_fresh(self):
        s = overload_scheduler()
        s.enqueue(0, deadline=50, arrival=0)
        out = s.decision_cycle(10, drop_late=True)
        assert out.dropped == ()

    def test_overload_with_drop_keeps_backlog_bounded(self):
        s = overload_scheduler()
        for t in range(200):
            for sid in range(2):
                s.enqueue(sid, deadline=t + 1, arrival=t)
            s.decision_cycle(t, consume="winner", drop_late=True)
        for sid in range(2):
            backlog = s.slot(sid).backlog
            assert backlog <= 2, backlog

    def test_without_drop_backlog_grows(self):
        s = overload_scheduler()
        for t in range(200):
            for sid in range(2):
                s.enqueue(sid, deadline=t + 1, arrival=t)
            s.decision_cycle(t, consume="winner", drop_late=False)
        total = sum(s.slot(i).backlog for i in range(2))
        assert total > 150

    def test_dwcs_drop_applies_loss_updates(self):
        s = overload_scheduler(mode=SchedulingMode.DWCS)
        slot = s.slot(0)
        slot.attributes.loss_numerator = 2
        slot.attributes.loss_denominator = 4
        s.enqueue(0, deadline=1, arrival=0)
        s.enqueue(0, deadline=40, arrival=1)
        s.decision_cycle(10, drop_late=True, consume="none")
        # One loss consumed by the dropped head.
        assert slot.attributes.loss_numerator == 1


class TestJitterMetrics:
    def test_constant_delay_zero_jitter(self):
        t = DelayTracker()
        for k in range(10):
            t.record(0, float(k), float(k) + 5.0)
        s = t.series(0)
        assert s.jitter_us == 0.0
        assert s.peak_to_peak_jitter_us == 0.0

    def test_alternating_delay(self):
        t = DelayTracker()
        for k in range(10):
            t.record(0, float(k), float(k) + (5.0 if k % 2 else 9.0))
        s = t.series(0)
        assert s.jitter_us == pytest.approx(4.0)
        assert s.peak_to_peak_jitter_us == pytest.approx(4.0)

    def test_single_frame(self):
        t = DelayTracker()
        t.record(0, 0.0, 1.0)
        assert t.series(0).jitter_us == 0.0

    def test_endsystem_jitter_ordering(self):
        """Higher-share streams see lower jitter under bursty load."""
        from repro.experiments.figure9 import run_figure9

        result = run_figure9(n_bursts=2, burst_size=600)
        j1 = result.series[0].jitter_us
        j4 = result.series[3].jitter_us
        assert j4 < j1
