"""Property-based differential tests: BatchScheduler vs the oracle.

The batch engine must be winner-for-winner, miss-for-miss and
packet-for-packet identical to the cycle-level object model on any
scenario.  Scenarios are derived from integer seeds by
:func:`repro.core.differential.generate_scenario`; a failing test
prints the seed, and ``cross_validate(generate_scenario(seed))``
reproduces the divergence exactly.

The full acceptance campaign (200 scenarios x 1000 cycles) can be run
standalone with::

    PYTHONPATH=src python -m repro.core.differential --count 200
"""

from hypothesis import given, settings

from repro.core.attributes import SchedulingMode
from repro.core.config import BlockMode, Routing
from repro.core.differential import (
    campaign,
    cross_validate,
    cross_validate_traces,
    generate_scenario,
    run_engine,
)
from tests.strategies import differential_scenarios


def _assert_agrees(scenario):
    divergence = cross_validate(scenario)
    assert divergence is None, (
        f"\nreproduce with seed {scenario.seed}:\n{divergence}"
    )


class TestCampaign:
    def test_two_hundred_randomized_scenarios(self):
        """The acceptance campaign: >= 200 seeded scenarios spanning
        both routings, both block modes and >= 2 disciplines, with
        zero divergences from the object model."""
        result = campaign(range(200), n_cycles=300)
        assert result.scenarios == 200
        assert result.routings == {Routing.BA, Routing.WR}
        assert result.block_modes == {BlockMode.MAX_FIRST, BlockMode.MIN_FIRST}
        assert len(result.modes) >= 2
        assert result.passed, "\n\n".join(str(d) for d in result.divergences)

    def test_long_runs_thousand_cycles(self):
        """A slice of the campaign at >= 1k decision cycles each."""
        for seed in range(16):
            _assert_agrees(generate_scenario(seed, n_cycles=1000))

    def test_large_extended_configs(self):
        """Beyond-single-chip widths (up to 64 streams) also agree."""
        checked = 0
        seed = 0
        while checked < 4:
            scenario = generate_scenario(seed, n_cycles=300)
            if scenario.n_slots == 64:
                _assert_agrees(scenario)
                checked += 1
            seed += 1


class TestTraceEquivalence:
    def test_fifty_scenarios_byte_identical_telemetry(self):
        """The trace-equivalence acceptance campaign: >= 50 randomized
        scenarios where both engines' structured telemetry event
        streams (and their canonical serializations) are identical,
        with zero divergences."""
        result = campaign(range(50), n_cycles=200, mode="trace")
        assert result.scenarios == 50
        assert result.routings == {Routing.BA, Routing.WR}
        assert result.block_modes == {BlockMode.MAX_FIRST, BlockMode.MIN_FIRST}
        assert result.passed, "\n\n".join(str(d) for d in result.divergences)

    def test_single_scenario_validator(self):
        scenario = generate_scenario(11, n_cycles=200)
        assert cross_validate_traces(scenario) is None


class TestPropertyBased:
    @given(scenario=differential_scenarios(n_cycles=1000, max_slots=16))
    @settings(max_examples=25, deadline=None, print_blob=True)
    def test_any_seed_agrees(self, scenario):
        """Any scenario drawn from the full seed space agrees over 1k
        cycles (hypothesis prints the falsifying seed on failure)."""
        _assert_agrees(scenario)


class TestScenarioGenerator:
    def test_deterministic(self):
        assert generate_scenario(42) == generate_scenario(42)

    def test_seed_sensitivity(self):
        assert generate_scenario(1) != generate_scenario(2)

    def test_traces_are_reproducible(self):
        scenario = generate_scenario(7, n_cycles=100)
        assert run_engine(scenario, "batch") == run_engine(scenario, "batch")

    def test_coverage_of_design_space(self):
        """200 seeds cover both routings, both block modes, both
        schedules, both arithmetic modes and all four disciplines."""
        scenarios = [generate_scenario(s) for s in range(200)]
        assert {s.routing for s in scenarios} == {Routing.BA, Routing.WR}
        assert {s.block_mode for s in scenarios} == {
            BlockMode.MAX_FIRST,
            BlockMode.MIN_FIRST,
        }
        assert {s.schedule for s in scenarios} == {"paper", "bitonic"}
        assert {s.wrap for s in scenarios} == {True, False}
        modes = {st.mode for s in scenarios for st in s.streams}
        assert modes == {
            SchedulingMode.DWCS,
            SchedulingMode.EDF,
            SchedulingMode.STATIC_PRIORITY,
            SchedulingMode.FAIR_SHARE,
        }
