"""Tests for the hierarchical link-sharing baseline."""

import pytest
from collections import Counter

from repro.disciplines import Packet, SwStream
from repro.disciplines.hfsc import ClassNode, HierarchicalFairShare


def build_tree():
    h = HierarchicalFairShare()
    h.add_class("realtime", weight=7.0)
    h.add_class("besteffort", weight=3.0)
    h.add_class("video", parent="realtime", weight=2.0)
    h.add_class("audio", parent="realtime", weight=1.0)
    h.bind_stream(SwStream(stream_id=0), "video")
    h.bind_stream(SwStream(stream_id=1), "audio")
    h.bind_stream(SwStream(stream_id=2), "besteffort")
    return h


def backlog(h, packets_per_stream=500, length=1500):
    for k in range(packets_per_stream):
        for sid in (0, 1, 2):
            h.enqueue(Packet(stream_id=sid, seq=k, arrival=0.0, length=length))


class TestTreeConstruction:
    def test_duplicate_class_rejected(self):
        h = HierarchicalFairShare()
        h.add_class("a")
        with pytest.raises(ValueError):
            h.add_class("a")

    def test_interior_class_cannot_bind(self):
        h = build_tree()
        with pytest.raises(ValueError):
            h.bind_stream(SwStream(stream_id=9), "realtime")

    def test_leaf_cannot_have_children(self):
        h = build_tree()
        with pytest.raises(ValueError):
            h.add_class("sub", parent="video")

    def test_double_bind_rejected(self):
        h = build_tree()
        with pytest.raises(ValueError):
            h.bind_stream(SwStream(stream_id=9), "video")

    def test_unbound_stream_rejected(self):
        h = build_tree()
        with pytest.raises(KeyError):
            h.enqueue(Packet(stream_id=7, seq=0, arrival=0.0))

    def test_bad_weight(self):
        with pytest.raises(ValueError):
            ClassNode(name="x", weight=0.0)


class TestLinkSharing:
    def test_top_level_70_30(self):
        h = build_tree()
        backlog(h)
        served = Counter(h.dequeue(0.0).stream_id for _ in range(1000))
        realtime = served[0] + served[1]
        assert realtime == pytest.approx(700, abs=10)
        assert served[2] == pytest.approx(300, abs=10)

    def test_inner_level_2_to_1(self):
        h = build_tree()
        backlog(h)
        served = Counter(h.dequeue(0.0).stream_id for _ in range(900))
        assert served[0] / served[1] == pytest.approx(2.0, rel=0.05)

    def test_work_conserving_when_class_idle(self):
        # Only best-effort is backlogged: it gets the whole link.
        h = build_tree()
        for k in range(50):
            h.enqueue(Packet(stream_id=2, seq=k, arrival=0.0))
        served = Counter(h.dequeue(0.0).stream_id for _ in range(50))
        assert served[2] == 50

    def test_excess_redistributes_within_parent(self):
        # Audio idle: video absorbs all of realtime's 70%.
        h = build_tree()
        for k in range(1000):
            h.enqueue(Packet(stream_id=0, seq=k, arrival=0.0))
            h.enqueue(Packet(stream_id=2, seq=k, arrival=0.0))
        served = Counter(h.dequeue(0.0).stream_id for _ in range(1000))
        assert served[0] == pytest.approx(700, abs=10)

    def test_empty_dequeue(self):
        h = build_tree()
        assert h.dequeue(0.0) is None

    def test_fifo_within_stream(self):
        h = build_tree()
        first = Packet(stream_id=0, seq=0, arrival=0.0)
        second = Packet(stream_id=0, seq=1, arrival=1.0)
        h.enqueue(first)
        h.enqueue(second)
        assert h.dequeue(2.0) is first
        assert h.dequeue(2.0) is second

    def test_registry_exposure(self):
        from repro.disciplines import DISCIPLINES, create, info_for

        assert "hfs" in DISCIPLINES
        assert info_for("hfs").family == "fair-queuing"
        assert create("hfs").name == "hfs"
