"""Tests for the composed ShareStreams scheduler."""

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.scheduler import ShareStreamsScheduler


def edf_scheduler(n_slots=4, routing=Routing.BA, block_mode=BlockMode.MAX_FIRST):
    arch = ArchConfig(
        n_slots=n_slots, routing=routing, block_mode=block_mode, wrap=False
    )
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n_slots)
    ]
    return ShareStreamsScheduler(arch, streams)


class TestSlotManagement:
    def test_load_stream_binds_slot(self):
        s = edf_scheduler()
        assert len(s.active_slots) == 4
        assert s.slot(2).config.sid == 2

    def test_rejects_duplicate_slot(self):
        s = edf_scheduler()
        with pytest.raises(ValueError):
            s.load_stream(StreamConfig(sid=0))

    def test_rejects_out_of_range_sid(self):
        arch = ArchConfig(n_slots=4)
        s = ShareStreamsScheduler(arch)
        with pytest.raises(ValueError):
            s.load_stream(StreamConfig(sid=7))

    def test_missing_slot_raises(self):
        s = ShareStreamsScheduler(ArchConfig(n_slots=4))
        with pytest.raises(KeyError):
            s.slot(1)

    def test_partial_population(self):
        arch = ArchConfig(n_slots=8, wrap=False)
        s = ShareStreamsScheduler(
            arch, [StreamConfig(sid=3, mode=SchedulingMode.EDF)]
        )
        s.enqueue(3, deadline=5, arrival=0)
        outcome = s.decision_cycle(0)
        assert outcome.winner_sid == 3
        assert outcome.block == (3,)


class TestDecisionCycle:
    def test_edf_winner(self):
        s = edf_scheduler(routing=Routing.WR)
        deadlines = [9, 2, 7, 5]
        for sid, d in enumerate(deadlines):
            s.enqueue(sid, deadline=d, arrival=0)
        outcome = s.decision_cycle(0)
        assert outcome.winner_sid == 1
        assert outcome.circulated_sid == 1

    def test_all_idle_returns_empty(self):
        s = edf_scheduler()
        outcome = s.decision_cycle(0)
        assert outcome.block == ()
        assert outcome.circulated_sid is None
        assert outcome.serviced == ()

    def test_consume_winner_pops_one(self):
        s = edf_scheduler(routing=Routing.WR)
        for sid in range(4):
            s.enqueue(sid, deadline=sid + 1, arrival=0)
        outcome = s.decision_cycle(0, consume="winner")
        assert len(outcome.serviced) == 1
        assert outcome.serviced[0][0] == 0

    def test_consume_block_pops_all(self):
        s = edf_scheduler(routing=Routing.BA)
        for sid in range(4):
            s.enqueue(sid, deadline=sid + 1, arrival=0)
        outcome = s.decision_cycle(0, consume="block")
        assert len(outcome.serviced) == 4

    def test_consume_none_preserves_state(self):
        s = edf_scheduler()
        s.enqueue(0, deadline=1, arrival=0)
        s.decision_cycle(0, consume="none")
        assert s.slot(0).head is not None

    def test_block_consume_requires_ba(self):
        s = edf_scheduler(routing=Routing.WR)
        s.enqueue(0, deadline=1, arrival=0)
        with pytest.raises(ValueError):
            s.decision_cycle(0, consume="block")

    def test_unknown_consume_rejected(self):
        s = edf_scheduler()
        with pytest.raises(ValueError):
            s.decision_cycle(0, consume="everything")

    def test_hw_cycles_accounting(self):
        s = edf_scheduler()
        s.enqueue(0, deadline=1, arrival=0)
        outcome = s.decision_cycle(0)
        assert outcome.hw_cycles == 2 + 1  # log2(4) passes + update
        assert s.cycles_per_decision == 3


class TestBlockModes:
    def test_max_first_circulates_head(self):
        s = edf_scheduler(block_mode=BlockMode.MAX_FIRST)
        for sid in range(4):
            s.enqueue(sid, deadline=sid + 1, arrival=0)
        outcome = s.decision_cycle(0, consume="none")
        assert outcome.circulated_sid == outcome.block[0]

    def test_min_first_circulates_tail(self):
        s = edf_scheduler(block_mode=BlockMode.MIN_FIRST)
        for sid in range(4):
            s.enqueue(sid, deadline=sid + 1, arrival=0)
        outcome = s.decision_cycle(0, consume="none")
        assert outcome.circulated_sid == outcome.block[-1]

    def test_min_first_consumes_reversed(self):
        s = edf_scheduler(block_mode=BlockMode.MIN_FIRST)
        for sid in range(4):
            s.enqueue(sid, deadline=sid + 1, arrival=0)
        outcome = s.decision_cycle(0, consume="block")
        sids = [sid for sid, _ in outcome.serviced]
        assert sids == list(reversed(list(outcome.block)))

    def test_max_first_rotates_winners(self):
        # EDF winner bias rotates service among contending streams.
        s = edf_scheduler(block_mode=BlockMode.MAX_FIRST)
        for c in range(200):
            for sid in range(4):
                s.enqueue(sid, deadline=(sid + 1) + c, arrival=c)
            s.decision_cycle(c, consume="block", count_misses=False)
        wins = [s.slot(i).counters.wins for i in range(4)]
        assert sum(wins) == 200
        assert all(40 <= w <= 60 for w in wins), wins


class TestMissCounting:
    def test_misses_reported_and_counted(self):
        s = edf_scheduler(routing=Routing.WR)
        s.enqueue(0, deadline=1, arrival=0)
        s.enqueue(1, deadline=50, arrival=0)
        outcome = s.decision_cycle(10, consume="none")
        assert outcome.misses == (0,)
        assert s.slot(0).counters.missed_deadlines == 1

    def test_count_misses_off(self):
        s = edf_scheduler()
        s.enqueue(0, deadline=1, arrival=0)
        outcome = s.decision_cycle(10, consume="none", count_misses=False)
        assert outcome.misses == ()
        assert s.slot(0).counters.missed_deadlines == 0


class TestCounters:
    def test_counters_keyed_by_sid(self):
        s = edf_scheduler()
        s.enqueue(2, deadline=1, arrival=0)
        s.decision_cycle(0)
        counters = s.counters()
        assert set(counters) == {0, 1, 2, 3}
        assert counters[2].wins == 1
