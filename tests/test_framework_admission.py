"""Tests for admission control and QoS delay bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.admission import (
    StreamRequest,
    admit,
    minimum_utilization,
    slot_delay_bound,
)


class TestMinimumUtilization:
    def test_no_tolerance_needs_full_rate(self):
        r = StreamRequest(stream_id=0, period=4.0)
        assert minimum_utilization(r) == pytest.approx(0.25)

    def test_tolerance_discounts(self):
        # 1-of-2 may be lost: only half the packets must go out.
        r = StreamRequest(
            stream_id=0, period=4.0, loss_numerator=1, loss_denominator=2
        )
        assert minimum_utilization(r) == pytest.approx(0.125)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamRequest(stream_id=0, period=0.0)
        with pytest.raises(ValueError):
            StreamRequest(stream_id=0, period=1.0, loss_numerator=3, loss_denominator=2)


class TestAdmit:
    def test_admits_feasible_set(self):
        requests = [
            StreamRequest(stream_id=i, period=4.0) for i in range(4)
        ]
        decision = admit(requests)
        assert decision.admitted
        assert decision.total_utilization == pytest.approx(1.0)
        assert decision.headroom == pytest.approx(0.0)

    def test_rejects_overload(self):
        requests = [
            StreamRequest(stream_id=i, period=2.0) for i in range(4)
        ]
        decision = admit(requests)
        assert not decision.admitted
        assert decision.total_utilization == pytest.approx(2.0)

    def test_tolerance_buys_admission(self):
        # Four streams at T=2 overload; with 1/2 tolerance they fit.
        requests = [
            StreamRequest(
                stream_id=i, period=2.0, loss_numerator=1, loss_denominator=2
            )
            for i in range(4)
        ]
        assert admit(requests).admitted

    def test_capacity_rescaling(self):
        requests = [StreamRequest(stream_id=0, period=1.05)]
        assert admit(requests).admitted
        assert not admit(requests, capacity=0.9).admitted

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            admit([StreamRequest(stream_id=0, period=1.0)] * 2)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            admit([], capacity=0.0)

    @given(
        periods=st.lists(
            st.floats(min_value=1.0, max_value=64.0), min_size=1, max_size=16
        )
    )
    @settings(max_examples=50)
    def test_monotonicity(self, periods):
        """Adding a stream never lowers total utilization."""
        requests = [
            StreamRequest(stream_id=i, period=p) for i, p in enumerate(periods)
        ]
        total_all = admit(requests).total_utilization
        total_butlast = admit(requests[:-1]).total_utilization
        assert total_all >= total_butlast


class TestAdmissionPredictsScheduler:
    """The admission verdict matches observed scheduler behavior."""

    def _run(self, periods, cycles=400):
        from repro.core.attributes import SchedulingMode, StreamConfig
        from repro.core.config import ArchConfig, Routing
        from repro.core.scheduler import ShareStreamsScheduler

        arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
        s = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(sid=i, period=periods[i], mode=SchedulingMode.EDF)
                for i in range(4)
            ],
        )
        for sid in range(4):
            T = periods[sid]
            for k in range(cycles // T + 2):
                s.enqueue(sid, deadline=sid + (k + 1) * T, arrival=k * T)
        misses = 0
        for t in range(cycles):
            misses += len(s.decision_cycle(t, consume="winner").misses)
        return misses

    def test_admitted_set_meets_deadlines(self):
        periods = [4, 4, 4, 4]  # utilization exactly 1
        decision = admit(
            [StreamRequest(stream_id=i, period=p) for i, p in enumerate(periods)]
        )
        assert decision.admitted
        assert self._run(periods) == 0

    def test_rejected_set_misses(self):
        periods = [2, 2, 2, 2]  # utilization 2
        decision = admit(
            [StreamRequest(stream_id=i, period=p) for i, p in enumerate(periods)]
        )
        assert not decision.admitted
        assert self._run(periods) > 0


class TestDelayBound:
    def test_basic_bound(self):
        assert slot_delay_bound(4.0) == 4.0
        assert slot_delay_bound(4.0, queued_ahead=2) == 12.0

    def test_packet_time_scaling(self):
        assert slot_delay_bound(4.0, packet_time=1.2) == pytest.approx(4.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_delay_bound(0.0)
        with pytest.raises(ValueError):
            slot_delay_bound(1.0, queued_ahead=-1)

    def test_bound_holds_in_simulation(self):
        """Observed slot delays stay within the analytic bound."""
        from repro.core.attributes import SchedulingMode, StreamConfig
        from repro.core.config import ArchConfig, Routing
        from repro.core.scheduler import ShareStreamsScheduler

        periods = [4, 4, 2, 2]  # utilization = 1/4+1/4+1/2+1/2... = 1.5 -> trim
        periods = [4, 4, 4, 4]
        arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
        s = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(sid=i, period=periods[i], mode=SchedulingMode.EDF)
                for i in range(4)
            ],
        )
        for sid in range(4):
            for k in range(110):
                s.enqueue(sid, deadline=sid + (k + 1) * 4, arrival=k * 4)
        worst = 0.0
        for t in range(400):
            out = s.decision_cycle(t, consume="winner", count_misses=False)
            for sid, packet in out.serviced:
                worst = max(worst, t - packet.arrival)
        # One packet per period queued at a time: bound = 1 * T + slack
        # for the initial deadline stagger.
        assert worst <= slot_delay_bound(4.0, queued_ahead=1) + 4
