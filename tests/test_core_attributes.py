"""Tests for stream attributes, configs and wire packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import (
    ATTRIBUTE_WORD_BITS,
    HardwareAttributes,
    SchedulingMode,
    StreamConfig,
    pack_attributes,
    unpack_attributes,
)


class TestSchedulingMode:
    def test_update_modes(self):
        assert SchedulingMode.DWCS.updates_priority
        assert SchedulingMode.EDF.updates_priority
        assert SchedulingMode.FAIR_SHARE.updates_priority

    def test_bypass_modes(self):
        assert not SchedulingMode.STATIC_PRIORITY.updates_priority
        assert not SchedulingMode.SERVICE_TAG.updates_priority


class TestStreamConfig:
    def test_defaults(self):
        cfg = StreamConfig(sid=3)
        assert cfg.period == 1
        assert cfg.window_constraint == 0.0
        assert cfg.mode is SchedulingMode.DWCS

    def test_window_constraint_ratio(self):
        cfg = StreamConfig(sid=0, loss_numerator=1, loss_denominator=4)
        assert cfg.window_constraint == 0.25

    def test_rejects_bad_sid(self):
        with pytest.raises(ValueError):
            StreamConfig(sid=32)

    def test_rejects_negative_period(self):
        with pytest.raises(ValueError):
            StreamConfig(sid=0, period=-1)

    def test_rejects_numerator_above_denominator(self):
        with pytest.raises(ValueError):
            StreamConfig(sid=0, loss_numerator=3, loss_denominator=2)

    def test_rejects_wide_deadline(self):
        with pytest.raises(ValueError):
            StreamConfig(sid=0, initial_deadline=1 << 16)


class TestHardwareAttributes:
    def test_from_config(self):
        cfg = StreamConfig(
            sid=5, loss_numerator=2, loss_denominator=8, initial_deadline=100
        )
        attrs = HardwareAttributes.from_config(cfg, arrival=7)
        assert attrs.sid == 5
        assert attrs.deadline == 100
        assert attrs.loss_numerator == 2
        assert attrs.loss_denominator == 8
        assert attrs.arrival == 7
        assert attrs.mode is SchedulingMode.DWCS

    def test_copy_is_independent(self):
        attrs = HardwareAttributes(sid=1, deadline=10)
        clone = attrs.copy()
        clone.deadline = 20
        assert attrs.deadline == 10

    def test_advance_deadline_wraps(self):
        attrs = HardwareAttributes(sid=0, deadline=65535)
        attrs.advance_deadline(2)
        assert attrs.deadline == 1

    def test_window_constraint_zero_denominator(self):
        attrs = HardwareAttributes(sid=0, loss_numerator=0, loss_denominator=0)
        assert attrs.window_constraint == 0.0

    def test_rejects_negative_deadline(self):
        with pytest.raises(ValueError):
            HardwareAttributes(sid=0, deadline=-1)

    def test_allows_wide_deadline_for_ideal_mode(self):
        # Ideal-arithmetic mode carries unbounded deadlines; width is
        # enforced only at the wire boundary.
        attrs = HardwareAttributes(sid=0, deadline=1 << 20)
        assert attrs.deadline == 1 << 20


class TestWirePacking:
    def test_word_width(self):
        # deadline(16) + x(8) + y(8) + arrival(16) + sid(5) + valid(1)
        assert ATTRIBUTE_WORD_BITS == 54

    def test_roundtrip_example(self):
        attrs = HardwareAttributes(
            sid=17,
            deadline=0xBEEF,
            loss_numerator=3,
            loss_denominator=9,
            arrival=0x1234,
        )
        word = pack_attributes(attrs)
        back = unpack_attributes(word)
        assert back == attrs

    def test_pack_rejects_wide_deadline(self):
        attrs = HardwareAttributes(sid=0, deadline=1 << 16)
        with pytest.raises(ValueError):
            pack_attributes(attrs)

    def test_unpack_rejects_wide_word(self):
        with pytest.raises(ValueError):
            unpack_attributes(1 << ATTRIBUTE_WORD_BITS)

    @given(
        sid=st.integers(0, 31),
        deadline=st.integers(0, (1 << 16) - 1),
        x=st.integers(0, 255),
        y=st.integers(0, 255),
        arrival=st.integers(0, (1 << 16) - 1),
        valid=st.booleans(),
    )
    def test_roundtrip_property(self, sid, deadline, x, y, arrival, valid):
        attrs = HardwareAttributes(
            sid=sid,
            deadline=deadline,
            loss_numerator=x,
            loss_denominator=y,
            arrival=arrival,
            valid=valid,
        )
        assert unpack_attributes(pack_attributes(attrs)) == attrs
