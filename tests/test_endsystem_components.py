"""Tests for the endsystem components: QM, streaming unit, TE, aggregation."""

import numpy as np
import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.endsystem.aggregation import AggregatedSlot, StreamletSet
from repro.endsystem.queue_manager import QueueManager
from repro.endsystem.streaming_unit import StreamingUnit
from repro.endsystem.transmission import TransmissionEngine
from repro.sim.nic import Link
from repro.traffic.specs import EndsystemStreamSpec


def make_specs(n=2, frames=10):
    return [
        EndsystemStreamSpec(
            sid=i,
            share=1.0,
            arrivals_us=np.zeros(frames),
        )
        for i in range(n)
    ]


class TestQueueManager:
    def test_produce_and_pop(self):
        qm = QueueManager(make_specs())
        frame = qm.produce(0, arrival_us=5.0)
        assert frame.seq == 0
        assert qm.backlog(0) == 1
        popped = qm.pop(0)
        assert popped is frame
        assert qm.descriptors[0].consumed == 1

    def test_preload_queues_workload(self):
        qm = QueueManager(make_specs(frames=25))
        assert qm.preload(1) == 25
        assert qm.backlog(1) == 25

    def test_full_ring_drops(self):
        specs = make_specs(frames=10)
        qm = QueueManager(specs, queue_capacity=4)
        for _ in range(4):
            assert qm.produce(0, 0.0) is not None
        assert qm.produce(0, 0.0) is None
        assert qm.descriptors[0].dropped_full == 1

    def test_duplicate_sid_rejected(self):
        specs = make_specs(2)
        specs[1] = EndsystemStreamSpec(sid=0, arrivals_us=np.zeros(1))
        with pytest.raises(ValueError):
            QueueManager(specs)

    def test_total_backlog(self):
        qm = QueueManager(make_specs())
        qm.produce(0, 0.0)
        qm.produce(1, 0.0)
        assert qm.total_backlog == 2


class TestStreamingUnit:
    def _setup(self, batch=4, depth=8):
        specs = make_specs(n=2, frames=20)
        qm = QueueManager(specs)
        arch = ArchConfig(n_slots=2, routing=Routing.WR, wrap=False)
        sched = ShareStreamsScheduler(
            arch,
            [
                StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
                for i in range(2)
            ],
        )
        unit = StreamingUnit(
            qm, sched, {0: 2, 1: 3}, batch_size=batch, card_queue_depth=depth
        )
        return qm, sched, unit

    def test_refill_moves_batch(self):
        qm, sched, unit = self._setup(batch=4)
        qm.preload(0)
        moved, pci_time = unit.refill_slot(0, now_us=0.0)
        assert moved == 4
        assert pci_time > 0
        assert unit.card_backlog(0) == 4

    def test_deadlines_advance_by_period(self):
        qm, sched, unit = self._setup(batch=3)
        qm.preload(1)  # period 3
        unit.refill_slot(1, 0.0)
        slot = sched.slot(1)
        deadlines = [slot.attributes.deadline]
        deadlines += [p.deadline for p in slot.pending]
        assert deadlines == [3, 6, 9]

    def test_respects_card_depth(self):
        qm, sched, unit = self._setup(batch=64, depth=8)
        qm.preload(0)
        unit.refill_slot(0, 0.0)
        assert unit.card_backlog(0) == 8

    def test_nothing_to_ship_is_noop(self):
        qm, sched, unit = self._setup()
        moved, pci_time = unit.refill_slot(0, 0.0)
        assert (moved, pci_time) == (0, 0.0)

    def test_refill_all(self):
        qm, sched, unit = self._setup(batch=2)
        qm.preload(0)
        qm.preload(1)
        moved, _ = unit.refill_all(0.0)
        assert moved == 4

    def test_validation(self):
        qm, sched, _ = self._setup()
        with pytest.raises(ValueError):
            StreamingUnit(qm, sched, {0: 1, 1: 1}, batch_size=0)


class TestTransmissionEngine:
    def _te(self, include_pci=False):
        specs = make_specs(n=1, frames=5)
        qm = QueueManager(specs)
        qm.preload(0)
        link = Link("fast", 1e10)
        te = TransmissionEngine(qm, link, include_pci=include_pci)
        return qm, te

    def test_transmit_pops_and_records(self):
        qm, te = self._te()
        frame, done = te.transmit(0, now_us=0.0)
        assert frame is not None
        assert done > 0
        assert te.frames_sent == 1
        assert te.bandwidth.total_bytes(0) == 1500
        assert len(te.delay.series(0).delays_us) == 1

    def test_empty_stream_is_noop(self):
        qm, te = self._te()
        for _ in range(5):
            te.transmit(0, 0.0)
        frame, done = te.transmit(0, now_us=7.0)
        assert frame is None and done == 7.0

    def test_service_time_host_bound_without_pci(self):
        qm, te = self._te(include_pci=False)
        assert te.service_time_us(1500) == pytest.approx(
            te.host.packet_cost_us
        )

    def test_service_time_adds_pio(self):
        qm, te = self._te(include_pci=True)
        assert te.service_time_us(1500) == pytest.approx(
            te.host.packet_cost_us + te.host.pio_cost_us
        )

    def test_departure_hook(self):
        specs = make_specs(n=1, frames=2)
        qm = QueueManager(specs)
        qm.preload(0)
        seen = []
        te = TransmissionEngine(
            qm,
            Link("l", 1e9),
            include_pci=False,
            on_departure=lambda sid, f, t: seen.append((sid, f.seq)),
        )
        te.transmit(0, 0.0)
        assert seen == [(0, 0)]


class TestAggregation:
    def test_round_robin_within_set(self):
        slot = AggregatedSlot(0, [StreamletSet(0, 3)])
        picks = [slot.pick()[2] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_weighted_sets_share_2_to_1(self):
        slot = AggregatedSlot(
            3, [StreamletSet(0, 2, weight=2.0), StreamletSet(1, 2, weight=1.0)]
        )
        counts = {0: 0, 1: 0}
        for _ in range(300):
            counts[slot.pick()[1]] += 1
        assert counts[0] == 200
        assert counts[1] == 100

    def test_smooth_interleaving(self):
        # Smooth WRR: no long bursts from one set at weight 2:1.
        slot = AggregatedSlot(
            0, [StreamletSet(0, 1, weight=2.0), StreamletSet(1, 1, weight=1.0)]
        )
        seq = [slot.pick()[1] for _ in range(9)]
        # Set 1 appears once in every 3 picks.
        for i in range(0, 9, 3):
            assert seq[i : i + 3].count(1) == 1

    def test_service_counts(self):
        slot = AggregatedSlot(1, [StreamletSet(0, 2)])
        slot.pick()
        slot.pick()
        slot.pick()
        counts = slot.service_counts()
        assert counts[(1, 0, 0)] == 2
        assert counts[(1, 0, 1)] == 1

    def test_streamlet_total(self):
        slot = AggregatedSlot(
            0, [StreamletSet(0, 50), StreamletSet(1, 50)]
        )
        assert slot.n_streamlets == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregatedSlot(0, [])
        with pytest.raises(ValueError):
            AggregatedSlot(0, [StreamletSet(0, 1), StreamletSet(0, 1)])
        with pytest.raises(ValueError):
            StreamletSet(0, 0)
        with pytest.raises(ValueError):
            StreamletSet(0, 1, weight=0.0)


class TestStreamingUnitTransferModes:
    def _unit(self, mode):
        specs = make_specs(n=1, frames=200)
        qm = QueueManager(specs)
        qm.preload(0)
        arch = ArchConfig(n_slots=2, routing=Routing.WR, wrap=False)
        sched = ShareStreamsScheduler(
            arch, [StreamConfig(sid=0, period=1, mode=SchedulingMode.EDF)]
        )
        unit = StreamingUnit(
            qm, sched, {0: 1}, batch_size=128, card_queue_depth=256,
            transfer_mode=mode,
        )
        return unit

    def test_forced_pio_mode(self):
        unit = self._unit("pio")
        unit.refill_slot(0, 0.0)
        assert all(t.mode == "pio" for t in unit.pci.transfers)

    def test_forced_dma_mode(self):
        unit = self._unit("dma")
        unit.refill_slot(0, 0.0)
        assert all(t.mode == "dma" for t in unit.pci.transfers)

    def test_auto_picks_cheaper(self):
        unit = self._unit("auto")
        unit.refill_slot(0, 0.0)  # 128 offsets = 64 words -> DMA wins
        assert unit.pci.transfers[0].mode == unit.pci.best_mode(64)
