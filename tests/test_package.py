"""Package-level tests: exports, version, documentation hygiene."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.disciplines",
    "repro.endsystem",
    "repro.experiments",
    "repro.framework",
    "repro.hwmodel",
    "repro.linecard",
    "repro.metrics",
    "repro.sim",
    "repro.traffic",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        for name in (
            "ArchConfig",
            "BlockMode",
            "Routing",
            "SchedulingMode",
            "ShareStreamsScheduler",
            "StreamConfig",
        ):
            assert hasattr(repro, name)

    def test_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        """Every public class and function carries a docstring."""
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_core_methods_documented(self):
        from repro.core.scheduler import ShareStreamsScheduler

        for name, member in inspect.getmembers(
            ShareStreamsScheduler, predicate=inspect.isfunction
        ):
            if name.startswith("_"):
                continue
            assert member.__doc__, f"ShareStreamsScheduler.{name} undocumented"
