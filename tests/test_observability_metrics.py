"""Unit tests for the observability metrics, profiling and recorder.

Covers the metric primitives (counter / gauge / histogram semantics),
the registry (get-or-create, type conflicts, canonical snapshot), the
Prometheus text exporter round-trip through the strict parser, the
JSON exporter, the phase profiler, the trace recorder's ring-buffer
bookkeeping and the :class:`Observability` facade.
"""

import json

import pytest

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.observability import (
    Observability,
    PhaseProfiler,
    TraceRecorder,
    MetricsRegistry,
    parse_prometheus_text,
)


def _edf_scheduler(observer, n_slots: int = 2) -> ShareStreamsScheduler:
    arch = ArchConfig(n_slots=n_slots, routing=Routing.WR, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n_slots)
    ]
    return ShareStreamsScheduler(arch, streams, observer=observer)


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = MetricsRegistry().counter("x_total")
        c.inc(stream=0)
        c.inc(3, stream=1)
        assert c.value(stream=0) == 1
        assert c.value(stream=1) == 3
        assert c.value(stream=7) == 0
        assert c.total() == 4
        assert c.label_sets() == [{"stream": "0"}, {"stream": "1"}]

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3

    def test_labeled(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4, stream=2)
        assert g.value(stream=2) == 4
        assert g.value() == 0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 555.5
        names = dict(
            ((name, labels), value) for name, labels, value in h.sample_lines()
        )
        assert names[("lat_bucket", '{le="1"}')] == 1
        assert names[("lat_bucket", '{le="10"}')] == 2
        assert names[("lat_bucket", '{le="100"}')] == 3
        assert names[("lat_bucket", '{le="+Inf"}')] == 4

    def test_rejects_bad_buckets(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("a", buckets=())
        with pytest.raises(ValueError):
            r.histogram("b", buckets=(1, 1))

    def test_label_sets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1,))
        h.observe(0.5, stream=1)
        h.observe(0.5, stream=0)
        assert h.label_sets() == [{"stream": "0"}, {"stream": "1"}]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        r = MetricsRegistry()
        assert r.counter("a_total") is r.counter("a_total")

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a_total")
        with pytest.raises(TypeError):
            r.gauge("a_total")

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("a_total").inc(2, stream=1)
        r.gauge("d").set(7)
        snap = r.snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["samples"] == {'a_total{stream="1"}': 2.0}
        assert snap["d"]["samples"] == {"d": 7.0}

    def test_clear_resets_samples(self):
        r = MetricsRegistry()
        r.counter("a_total").inc()
        r.clear()
        assert r.counter("a_total").value() == 0


class TestPrometheusRoundTrip:
    def _populated(self) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("req_total", "requests").inc(3, stream=0)
        r.counter("req_total").inc(1, stream=1)
        r.gauge("depth", "queue depth").set(2.5, stream=0)
        h = r.histogram("lat", "latency", buckets=(1, 8))
        h.observe(0.5, stream=0)
        h.observe(100, stream=0)
        return r

    def test_round_trip_equals_snapshot(self):
        r = self._populated()
        assert parse_prometheus_text(r.to_prometheus_text()) == r.snapshot()

    def test_text_contains_type_and_help(self):
        text = self._populated().to_prometheus_text()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{stream="0",le="+Inf"} 2' in text

    def test_integral_values_render_without_decimal(self):
        text = self._populated().to_prometheus_text()
        assert 'req_total{stream="0"} 3\n' in text
        assert 'depth{stream="0"} 2.5' in text

    def test_json_round_trip(self):
        r = self._populated()
        assert json.loads(r.to_json()) == r.snapshot()

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all!")

    def test_parser_rejects_sample_without_type(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("orphan_metric 3\n")


class TestPhaseProfiler:
    def test_phases_accumulate(self):
        ticks = iter(range(100))
        p = PhaseProfiler(clock=lambda: next(ticks))
        with p.phase("a"):
            pass
        with p.phase("a"):
            pass
        stats = p.report()
        assert stats["a"].calls == 2
        assert stats["a"].wall_s == 2.0  # two 1-tick spans

    def test_add_cycles_and_render(self):
        p = PhaseProfiler()
        p.add_cycles("hw", 640)
        assert p.report()["hw"].hw_cycles == 640
        assert "hw" in p.render()

    def test_clear(self):
        p = PhaseProfiler()
        p.add_cycles("hw", 1)
        p.clear()
        assert not p.report()


class TestTraceRecorder:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_eviction_is_never_silent(self):
        recorder = TraceRecorder(capacity=4)
        s = _edf_scheduler(recorder)
        for t in range(8):
            s.enqueue(0, deadline=t + 1, arrival=t)
            s.decision_cycle(t)
        assert recorder.recorded == 8
        assert recorder.evicted == 4
        with pytest.raises(ValueError):
            recorder.serialize()
        # Explicit opt-in still works and keeps only the tail.
        data = recorder.serialize(allow_truncated=True)
        assert len(data.splitlines()) == 4

    def test_clear_resets_everything(self):
        recorder = TraceRecorder(capacity=2)
        s = _edf_scheduler(recorder)
        for t in range(4):
            s.decision_cycle(t)
        recorder.clear()
        assert recorder.recorded == 0
        assert recorder.evicted == 0
        assert not list(recorder.events())
        # Sequence numbering restarts.
        s.decision_cycle(4)
        assert list(recorder.events())[0].seq == 0

    def test_kind_filter(self):
        recorder = TraceRecorder()
        s = _edf_scheduler(recorder)
        s.enqueue(0, deadline=1, arrival=0)
        s.decision_cycle(0)
        s.decision_cycle(5)  # idle decide
        assert len(list(recorder.events("decide"))) == 2
        assert recorder.kinds() == {"decide": 2}


class TestObservabilityFacade:
    def test_sinks_toggle_independently(self):
        obs = Observability(trace=False, metrics=True, profile=False)
        assert obs.recorder is None
        assert obs.profiler is None
        s = _edf_scheduler(obs)
        s.enqueue(0, deadline=1, arrival=0)
        s.decision_cycle(0)
        assert obs.metrics.counter("sharestreams_decisions_total").value() == 1

    def test_phase_is_usable_without_profiler(self):
        obs = Observability(profile=False)
        with obs.phase("anything"):
            pass  # must be a no-op context, not an error

    def test_render_mentions_all_sections(self):
        obs = Observability()
        s = _edf_scheduler(obs)
        s.enqueue(0, deadline=1, arrival=0)
        with obs.phase("unit.test"):
            s.decision_cycle(0)
        out = obs.render()
        assert "decide" in out
        assert "sharestreams_decisions_total" in out
        assert "unit.test" in out

    def test_clear_resets_all_sinks(self):
        obs = Observability()
        s = _edf_scheduler(obs)
        s.enqueue(0, deadline=1, arrival=0)
        with obs.phase("p"):
            s.decision_cycle(0)
        obs.clear()
        assert obs.recorder.recorded == 0
        assert not obs.profiler.report()
        snapshot = obs.metrics.snapshot()
        assert all(not family["samples"] for family in snapshot.values())
