"""Tests for the shared ablation sweeps."""

import pytest

from repro.experiments.ablations import (
    aggregation_sweep,
    extensions_sweep,
    pio_dma_crossover,
    sort_schedule_sweep,
    transfer_cost_sweep,
)


class TestSortSchedule:
    def test_bitonic_always_sorts(self):
        points = sort_schedule_sweep(slot_counts=(4, 8), trials=50)
        for p in points:
            if p.schedule == "bitonic":
                assert p.fully_sorted_fraction == 1.0

    def test_paper_degrades_with_width(self):
        points = {
            (p.schedule, p.n_slots): p
            for p in sort_schedule_sweep(slot_counts=(4, 16), trials=50)
        }
        assert (
            points[("paper", 16)].fully_sorted_fraction
            < points[("paper", 4)].fully_sorted_fraction
        )

    def test_pass_costs(self):
        points = {
            (p.schedule, p.n_slots): p.passes
            for p in sort_schedule_sweep(slot_counts=(16,), trials=1)
        }
        assert points[("paper", 16)] == 4
        assert points[("bitonic", 16)] == 10

    def test_deterministic_given_seed(self):
        a = sort_schedule_sweep(slot_counts=(8,), trials=30, seed=3)
        b = sort_schedule_sweep(slot_counts=(8,), trials=30, seed=3)
        assert a == b


class TestTransferCost:
    def test_monotone_decreasing(self):
        rows = transfer_cost_sweep((0.0, 1.0, 3.0), frames_per_stream=200)
        pps = [r[1] for r in rows]
        assert pps == sorted(pps, reverse=True)

    def test_zero_cost_hits_no_pci_anchor(self):
        rows = transfer_cost_sweep((0.0,), frames_per_stream=400)
        assert rows[0][1] == pytest.approx(469_483, rel=0.02)


class TestCrossover:
    def test_small_pio_large_dma(self):
        rows = pio_dma_crossover()
        assert rows[0][3] == "pio"
        assert rows[-1][3] == "dma"

    def test_times_match_modes(self):
        for words, pio, dma, best in pio_dma_crossover():
            assert best == ("pio" if pio <= dma else "dma")


class TestAggregationSweep:
    def test_bandwidth_inverse_to_degree(self):
        rows = aggregation_sweep((10, 20), frames_per_stream=1500)
        by_degree = {r["degree"]: r for r in rows}
        ratio = (
            by_degree[10]["slot1_streamlet_mbps"]
            / by_degree[20]["slot1_streamlet_mbps"]
        )
        assert ratio == pytest.approx(2.0, rel=0.1)

    def test_fpga_slices_constant(self):
        rows = aggregation_sweep((10, 20), frames_per_stream=1000)
        assert rows[0]["aggregated_slices"] == rows[1]["aggregated_slices"]
        assert rows[1]["dedicated_slices"] == 2 * rows[0]["dedicated_slices"]


class TestExtensionsSweep:
    def test_ordering(self):
        for row in extensions_sweep((4, 32)):
            assert row["base_pps"] < row["compute_ahead_pps"] < row["virtex2_pps"]

    def test_area_factor_bounded(self):
        for row in extensions_sweep((8,)):
            assert 1.0 < row["area_factor"] < 1.4
