"""Tests for the fair-queuing service-tag hardware mapping."""

import pytest

from repro.core.tag_mapping import ServiceTagFrontend
from repro.disciplines import SFQ, WFQ, Packet, SwStream


def mirrored(flavor: str, weights, wrap=False):
    hw = ServiceTagFrontend(4, flavor=flavor, quantum=1.0, wrap=wrap)
    sw = SFQ() if flavor == "sfq" else WFQ()
    for sid, w in enumerate(weights):
        hw.add_stream(sid, w)
        sw.add_stream(SwStream(stream_id=sid, weight=w))
    return hw, sw


class TestConstruction:
    def test_rejects_unknown_flavor(self):
        with pytest.raises(ValueError):
            ServiceTagFrontend(4, flavor="gps")

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            ServiceTagFrontend(4, quantum=0)

    def test_rejects_duplicate_stream(self):
        fe = ServiceTagFrontend(4)
        fe.add_stream(0)
        with pytest.raises(ValueError):
            fe.add_stream(0)

    def test_rejects_bad_weight(self):
        fe = ServiceTagFrontend(4)
        with pytest.raises(ValueError):
            fe.add_stream(0, weight=0)

    def test_no_priority_update_cycle(self):
        # Service-tag mapping uses LOAD + SCHEDULE only (Section 4.3):
        # log2(4) = 2 sort passes + the 1-cycle circulation.
        fe = ServiceTagFrontend(4)
        assert fe.hw_cycles_per_decision == 3
        fe.add_stream(0)
        fe.enqueue(0)
        outcome = fe.dequeue()
        # The slot's window attributes never changed (update bypassed).
        slot = fe.scheduler.slot(0)
        assert slot.attributes.loss_numerator == 0
        assert slot.attributes.loss_denominator == 0
        assert outcome.circulated_sid == 0


class TestTagOrdering:
    def test_sfq_matches_software_order(self):
        hw, sw = mirrored("sfq", [1.0, 1.0, 2.0, 4.0])
        seq = 0
        for _ in range(50):
            for sid in range(4):
                hw.enqueue(sid, length=1500)
                sw.enqueue(
                    Packet(stream_id=sid, seq=seq, arrival=0.0, length=1500)
                )
                seq += 1
        hw_order = [hw.dequeue().circulated_sid for _ in range(120)]
        sw_order = [sw.dequeue(0.0).stream_id for _ in range(120)]
        assert hw_order == sw_order

    def test_wfq_shares(self):
        hw, _ = mirrored("wfq", [1.0, 3.0])
        for _ in range(200):
            hw.enqueue(0)
            hw.enqueue(1)
        counts = {0: 0, 1: 0}
        for _ in range(200):
            counts[hw.dequeue().circulated_sid] += 1
        assert counts[1] == pytest.approx(150, abs=3)

    def test_sfq_with_16bit_wrap(self):
        # Wrapped serial tags keep ordering as long as the spread stays
        # within the horizon.
        hw = ServiceTagFrontend(2, flavor="sfq", quantum=1500.0, wrap=True)
        hw.add_stream(0, 1.0)
        hw.add_stream(1, 1.0)
        served = []
        for round_ in range(300):
            hw.enqueue(0)
            hw.enqueue(1)
            served.append(hw.dequeue().circulated_sid)
            served.append(hw.dequeue().circulated_sid)
        # Perfectly alternating service at equal weights.
        assert served.count(0) == served.count(1) == 300

    def test_overflow_guard(self):
        hw = ServiceTagFrontend(2, flavor="wfq", quantum=0.001, wrap=True)
        hw.add_stream(0, 1.0)
        with pytest.raises(OverflowError):
            for _ in range(200):
                hw.enqueue(0, length=1500)

    def test_empty_dequeue(self):
        hw = ServiceTagFrontend(2)
        hw.add_stream(0)
        outcome = hw.dequeue()
        assert outcome.circulated_sid is None

    def test_virtual_time_advances(self):
        hw, _ = mirrored("sfq", [1.0, 1.0])
        for _ in range(4):
            hw.enqueue(0)
            hw.enqueue(1)
        v0 = hw.virtual_time
        for _ in range(6):
            hw.dequeue()
        assert hw.virtual_time > v0


class TestRandomizedAgreement:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        # Power-of-two weights keep every 1000-byte tag increment an
        # exact integer, so quantization into the 16-bit code grid is
        # lossless.  Arbitrary float weights can land two distinct tags
        # in the same unit code point (e.g. 250.0 and 250.98 with
        # quantum=1.0), where the hardware legitimately falls back to
        # the FCFS tie-break while the full-precision software oracle
        # still orders them — exact agreement only holds on the grid.
        weights=st.lists(
            st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0, 8.0]),
            min_size=2,
            max_size=4,
        ),
        pattern=st.lists(st.integers(0, 3), min_size=4, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_sfq_agreement_random_weights(self, weights, pattern):
        """Hardware tag mapping == software SFQ for grid weights and
        arbitrary arrival interleavings."""
        n = len(weights)
        hw = ServiceTagFrontend(4, flavor="sfq", quantum=1.0, wrap=False)
        sw = SFQ()
        for sid, w in enumerate(weights):
            hw.add_stream(sid, w)
            sw.add_stream(SwStream(stream_id=sid, weight=w))
        count = 0
        for k, pick in enumerate(pattern):
            sid = pick % n
            hw.enqueue(sid, length=1000)
            # Arrival = enqueue order, matching the frontend's internal
            # arrival sequence (Table 2's FCFS tie-break input).
            sw.enqueue(
                Packet(stream_id=sid, seq=k, arrival=float(k), length=1000)
            )
            count += 1
        hw_seq = [hw.dequeue().circulated_sid for _ in range(count)]
        sw_seq = [sw.dequeue(0.0).stream_id for _ in range(count)]
        assert hw_seq == sw_seq
