"""Tests for the architecture configuration."""

import pytest

from repro.core.config import ArchConfig, BlockMode, Routing


class TestValidation:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_accepts_power_of_two_slots(self, n):
        assert ArchConfig(n_slots=n).n_slots == n

    @pytest.mark.parametrize("n", [0, 1, 3, 5, 12, 64])
    def test_rejects_bad_slot_counts(self, n):
        with pytest.raises(ValueError):
            ArchConfig(n_slots=n)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            ArchConfig(n_slots=4, schedule="mergesort")

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            ArchConfig(n_slots=4, clock_mhz=0)


class TestDerivedProperties:
    def test_winner_only(self):
        assert ArchConfig(n_slots=4, routing=Routing.WR).winner_only
        assert not ArchConfig(n_slots=4, routing=Routing.BA).winner_only

    @pytest.mark.parametrize("n,passes", [(4, 2), (8, 3), (16, 4), (32, 5)])
    def test_sort_passes_paper(self, n, passes):
        assert ArchConfig(n_slots=n).sort_passes == passes

    def test_sort_passes_bitonic(self):
        cfg = ArchConfig(n_slots=8, schedule="bitonic")
        assert cfg.sort_passes == 6

    def test_bitonic_wr_uses_tournament_depth(self):
        cfg = ArchConfig(n_slots=8, schedule="bitonic", routing=Routing.WR)
        assert cfg.sort_passes == 3

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_decision_blocks_half(self, n):
        assert ArchConfig(n_slots=n).decision_blocks == n // 2

    def test_default_block_mode(self):
        assert ArchConfig(n_slots=4).block_mode is BlockMode.MAX_FIRST
