"""Mixed traffic: EDF, static-priority and fair-share on one scheduler.

The paper's core interoperability claim (Sections 1, 4.3): the unified
canonical architecture serves "a mix of EDF, static-priority and
fair-share streams based on user specifications" with a single
hardware realization.  This example binds one stream of each kind plus
a best-effort stream to a 4-slot scheduler and shows:

* the EDF stream's deadlines are met while it has slack,
* the static-priority stream is served ahead of best-effort,
* the fair-share pair splits the residual bandwidth by its weights.

Run:  python examples/mixed_traffic.py
"""

from collections import Counter

from repro import (
    ArchConfig,
    Routing,
    SchedulingMode,
    ShareStreamsScheduler,
    StreamConfig,
)


def main() -> None:
    arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
    scheduler = ShareStreamsScheduler(
        arch,
        [
            # Slot 0: real-time EDF stream, one frame every 4 ticks.
            StreamConfig(sid=0, period=4, mode=SchedulingMode.EDF),
            # Slot 1: fair-share stream at twice slot 2's rate.
            StreamConfig(
                sid=1,
                period=2,
                loss_numerator=1,
                loss_denominator=2,
                mode=SchedulingMode.FAIR_SHARE,
            ),
            # Slot 2: fair-share stream (half of slot 1).
            StreamConfig(
                sid=2,
                period=4,
                loss_numerator=1,
                loss_denominator=2,
                mode=SchedulingMode.FAIR_SHARE,
            ),
            # Slot 3: best-effort, mapped as a large static "deadline"
            # (time-invariant priority; loses every contended cycle).
            StreamConfig(
                sid=3,
                period=1,
                initial_deadline=60000,
                mode=SchedulingMode.STATIC_PRIORITY,
            ),
        ],
    )

    n_cycles = 400
    # EDF stream: deadline k*4; fair-share streams: deadlines from
    # their periods; best-effort: always backlogged at fixed priority.
    for k in range(n_cycles):
        scheduler.enqueue(0, deadline=(k + 1) * 4, arrival=k)
        scheduler.enqueue(1, deadline=(k + 1) * 2, arrival=k)
        scheduler.enqueue(2, deadline=(k + 1) * 4, arrival=k)
        scheduler.enqueue(3, deadline=60000, arrival=k)

    service = Counter()
    for t in range(n_cycles):
        outcome = scheduler.decision_cycle(t, consume="winner")
        if outcome.circulated_sid is not None:
            service[outcome.circulated_sid] += 1

    labels = {
        0: "EDF (T=4)",
        1: "fair-share (weight 2)",
        2: "fair-share (weight 1)",
        3: "best-effort (static)",
    }
    print(f"service over {n_cycles} decision cycles:")
    for sid in range(4):
        share = service[sid] / n_cycles
        print(f"  {labels[sid]:24s} {service[sid]:4d} cycles ({share:.0%})")

    misses = scheduler.slot(0).counters.missed_deadlines
    print(f"\nEDF stream missed deadlines: {misses}")
    ratio = service[1] / max(service[2], 1)
    print(f"fair-share service ratio (weight 2 : weight 1): {ratio:.2f}")


if __name__ == "__main__":
    main()
