"""Quickstart: schedule four streams on the canonical architecture.

Builds a 4-slot ShareStreams scheduler in EDF mode, feeds each stream a
handful of requests, and runs decision cycles — printing the winner and
the emitted block each cycle, plus the per-slot performance counters.

Run:  python examples/quickstart.py
"""

from repro import (
    ArchConfig,
    Routing,
    SchedulingMode,
    ShareStreamsScheduler,
    StreamConfig,
)


def main() -> None:
    # Base architecture (BA): the whole sorted block is emitted.
    arch = ArchConfig(n_slots=4, routing=Routing.BA, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(4)
    ]
    scheduler = ShareStreamsScheduler(arch, streams)

    # Four streams with staggered deadlines, one request per cycle
    # (the Table 3 workload at toy scale).
    for t in range(8):
        for sid in range(4):
            scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)

    print("cycle | winner | emitted block | hw cycles")
    for t in range(8):
        outcome = scheduler.decision_cycle(t, consume="winner")
        print(
            f"{t:5d} | S{outcome.winner_sid + 1}     | "
            f"{' '.join(f'S{s + 1}' for s in outcome.block):13s} | "
            f"{outcome.hw_cycles}"
        )

    print("\nper-slot counters (wins / serviced / missed deadlines):")
    for sid, counters in scheduler.counters().items():
        print(
            f"  stream {sid + 1}: {counters.wins} / {counters.serviced} / "
            f"{counters.missed_deadlines}"
        )


if __name__ == "__main__":
    main()
