"""Host-based router: the full endsystem pipeline (Figure 3).

Runs the composed endsystem simulation — Queue Manager, streaming unit
(PCI batched arrival-time transfers), FPGA scheduler, Transmission
Engine — on the paper's 1:1:2:4 workload, then prints the per-stream
bandwidth (Figure 8's result), queuing delays, and the PCI/SRAM
transfer accounting.

Run:  python examples/host_router.py [frames_per_stream]
"""

import sys

from repro.endsystem import EndsystemConfig, EndsystemRouter
from repro.metrics.report import render_series, render_table
from repro.traffic import ratio_workload


def main(frames_per_stream: int = 8000) -> None:
    specs = ratio_workload((1, 1, 2, 4), frames_per_stream=frames_per_stream)
    router = EndsystemRouter(specs, EndsystemConfig())
    result = router.run(preload=True)

    print(
        f"delivered {result.frames_sent:,} frames "
        f"({result.bytes_sent / 1e6:.0f} MB) in "
        f"{result.elapsed_us / 1e6:.2f} simulated seconds "
        f"-> {result.throughput_pps:,.0f} pps, "
        f"{result.throughput_mbps:.1f} MBps aggregate"
    )

    bw = result.te.bandwidth
    horizon = result.elapsed_us / 4  # saturated phase
    rows = []
    for sid in bw.stream_ids:
        series = bw.series(sid, horizon, t_end=horizon)
        delays = result.te.delay.series(sid)
        rows.append(
            [
                f"stream {sid + 1}",
                f"{float(series.mbps[0]):.2f}",
                f"{delays.mean_us / 1e3:.1f}",
                f"{delays.percentile_us(99) / 1e3:.1f}",
            ]
        )
    print()
    print(
        render_table(
            ["stream", "steady MBps", "mean delay ms", "p99 delay ms"],
            rows,
            title="per-stream QoS (saturated phase)",
        )
    )

    print("\nbandwidth over time:")
    for sid in bw.stream_ids:
        series = bw.series(sid, result.elapsed_us / 24, t_end=result.elapsed_us)
        print(
            " ",
            render_series(
                f"stream {sid + 1}",
                series.times_us / 1e6,
                series.mbps,
                max_points=10,
                x_unit="s",
                y_unit="MBps",
            ),
        )

    print(
        f"\nPCI: {result.pci.total_words:,} words moved in "
        f"{len(result.pci.transfers):,} transfers "
        f"({result.pci.total_time_us / 1e3:.1f} ms bus time); "
        f"SRAM bank ownership switches: {result.sram.total_switches:,}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
