"""Line-card at wire speed: the full Figure 2 path under a 10G feed.

Drives the FabricLinecard — switch fabric depositing arrival times in
dual-ported SRAM, scheduler pumping decisions at the calibrated Virtex
clock, winner Stream IDs written back for the transceiver — and checks
the wire-speed feasibility claims for both emission modes.

Run:  python examples/linecard_wirespeed.py
"""

from repro.core import ArchConfig, Routing, SchedulingMode, StreamConfig
from repro.linecard import FabricLinecard, Linecard, SwitchFabric
from repro.metrics.report import render_table


def main() -> None:
    arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=True)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(4)
    ]
    lc = FabricLinecard(arch, streams)
    fabric = SwitchFabric(lc.sram)

    # The fabric offers 500 packets per stream with staggered arrivals.
    for sid in range(4):
        fabric.offer(sid, range(sid, 500 + sid))

    result = lc.pump(1600)
    ids = lc.sram.drain_ids(1600)
    print(
        f"pumped {result.decisions:,} decisions in "
        f"{result.elapsed_us:.1f} us at {result.clock_mhz:.1f} MHz -> "
        f"{result.throughput_pps / 1e6:.2f} Mpps "
        f"({len(ids):,} stream IDs emitted to the transceiver)"
    )
    print(
        f"fabric stats: {lc.sram.stats.packets_deposited:,} deposited, "
        f"{lc.sram.stats.packets_dropped_full} dropped at partitions\n"
    )

    rows = []
    for size in (64, 1500):
        for label, rate in (("1G", 1e9), ("10G", 1e10)):
            ba = Linecard(
                ArchConfig(n_slots=32, routing=Routing.BA), streams=[]
            )
            wr = Linecard(
                ArchConfig(n_slots=32, routing=Routing.WR), streams=[]
            )
            rows.append(
                [
                    f"{size}B @ {label}",
                    f"{wr.wire_speed_utilization(rate, size):.2f}",
                    f"{ba.wire_speed_utilization(rate, size, block=True):.2f}",
                ]
            )
    print(
        render_table(
            ["frame/link", "WR utilization", "BA-block utilization"],
            rows,
            title="wire-speed feasibility (32 slots)",
        )
    )
    print(
        "\nthe paper's claim holds: every case is wire-speed except "
        "64B @ 10G under winner-only routing — the case block "
        "decisions rescue"
    )


if __name__ == "__main__":
    main()
