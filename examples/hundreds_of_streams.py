"""Hundreds of streams on one chip (the Section 6 goal).

"We are currently integrating those elements of the architecture that
will allow us to construct, demonstrate and run a system with hundreds
of streams."  This example does exactly that with the pieces the paper
already provides: a 32-slot scheduler (the largest single-chip design
Figure 7 evaluates) with 32 streamlets aggregated per slot — 1024
streams — plus per-slot weighted QoS.

Run:  python examples/hundreds_of_streams.py
"""

from repro.core import (
    ArchConfig,
    Routing,
    SchedulingMode,
    ShareStreamsScheduler,
    StreamConfig,
)
from repro.core.config import Routing
from repro.endsystem.aggregation import AggregatedSlot, StreamletSet
from repro.hwmodel import area_model, clock_rate_mhz
from repro.metrics.report import render_table

N_SLOTS = 32
STREAMLETS_PER_SLOT = 32


def main() -> None:
    # Slot i gets weight 1 + i//8 (four weight classes of 8 slots).
    weights = [1 + (i // 8) for i in range(N_SLOTS)]
    periods = [max(w for w in weights) * 4 // w for i, w in enumerate(weights)]

    arch = ArchConfig(n_slots=N_SLOTS, routing=Routing.WR, wrap=False)
    scheduler = ShareStreamsScheduler(
        arch,
        [
            StreamConfig(
                sid=i,
                period=periods[i],
                loss_numerator=1,
                loss_denominator=2,
                mode=SchedulingMode.FAIR_SHARE,
            )
            for i in range(N_SLOTS)
        ],
    )
    aggregators = {
        i: AggregatedSlot(i, [StreamletSet(0, STREAMLETS_PER_SLOT)])
        for i in range(N_SLOTS)
    }

    # Fully backlogged: every slot always has requests.
    n_cycles = 16_000
    depth = n_cycles  # enough pending requests per slot
    for sid in range(N_SLOTS):
        for k in range(depth // periods[sid] + 2):
            scheduler.enqueue(sid, deadline=(k + 1) * periods[sid], arrival=0)

    service = [0] * N_SLOTS
    streamlet_hits: dict[tuple, int] = {}
    for t in range(n_cycles):
        outcome = scheduler.decision_cycle(t, consume="winner", count_misses=False)
        sid = outcome.circulated_sid
        if sid is None:
            continue
        service[sid] += 1
        key = aggregators[sid].pick()
        streamlet_hits[key] = streamlet_hits.get(key, 0) + 1

    total_streams = N_SLOTS * STREAMLETS_PER_SLOT
    print(
        f"{total_streams} streams ({N_SLOTS} slots x {STREAMLETS_PER_SLOT} "
        f"streamlets), {n_cycles:,} decision cycles\n"
    )

    rows = []
    for cls in range(4):
        slots = [i for i in range(N_SLOTS) if i // 8 == cls]
        got = sum(service[i] for i in slots)
        hits = [
            streamlet_hits.get((i, 0, j), 0)
            for i in slots
            for j in range(STREAMLETS_PER_SLOT)
        ]
        rows.append(
            [
                f"class {cls + 1} (weight {cls + 1})",
                len(slots) * STREAMLETS_PER_SLOT,
                got,
                f"{got / n_cycles:.1%}",
                f"{min(hits)}..{max(hits)}",
            ]
        )
    print(
        render_table(
            ["weight class", "streams", "slot services", "share", "per-streamlet services"],
            rows,
        )
    )

    area = area_model(N_SLOTS, Routing.WR)
    print(
        f"\nFPGA budget: {area.total_slices:.0f} slices "
        f"({area.utilization:.0%} of a Virtex 1000) at "
        f"{clock_rate_mhz(N_SLOTS, Routing.WR):.0f} MHz — "
        f"{total_streams} streams would need "
        f"{total_streams * 150:,} slices without aggregation"
    )


if __name__ == "__main__":
    main()
