"""Media streaming with loss-tolerance: MPEG streams under DWCS.

The workload the paper's introduction motivates: real-time media
streams with per-stream loss constraints sharing a link with
best-effort traffic.  Three MPEG-like streams (30/25/15 fps) carry
(x, y) window constraints; a best-effort bulk stream soaks up the
rest.  The run is audited with the window-constraint checker: did the
schedule actually honor every stream's "at most x late per y frames"?

Run:  python examples/media_streaming.py
"""

from repro.disciplines import (
    DWCS,
    LATE,
    ON_TIME,
    ConstraintChecker,
    Packet,
    SwStream,
)
from repro.metrics.report import render_table
from repro.traffic.mpeg import GoPPattern, mpeg_stream


def main() -> None:
    # Media streams: (fps, window constraint x/y).
    media = {
        0: (30.0, (1, 4)),
        1: (25.0, (1, 3)),
        2: (15.0, (2, 5)),
    }
    best_effort = 3

    dwcs = DWCS()
    for sid, (fps, (x, y)) in media.items():
        dwcs.add_stream(
            SwStream(
                stream_id=sid,
                period=1e6 / fps,
                loss_numerator=x,
                loss_denominator=y,
            )
        )
    dwcs.add_stream(SwStream(stream_id=best_effort, period=1e6))

    # Enqueue ~4 seconds of media; deadlines one period after arrival.
    horizon_us = 4e6
    n_frames = {}
    for sid, (fps, _) in media.items():
        arrivals, sizes = mpeg_stream(int(4 * fps), fps=fps, rng=sid)
        n_frames[sid] = len(arrivals)
        for k, (t, size) in enumerate(zip(arrivals, sizes)):
            dwcs.enqueue(
                Packet(
                    stream_id=sid,
                    seq=k,
                    arrival=float(t),
                    deadline=float(t) + 1e6 / fps,
                    length=int(size),
                )
            )
    # Best-effort bulk: heavily backlogged 1500B frames, huge deadlines.
    for k in range(2000):
        dwcs.enqueue(
            Packet(
                stream_id=best_effort,
                seq=k,
                arrival=0.0,
                deadline=horizon_us * 10,
                length=1500,
            )
        )

    # Service loop: a 25 Mbit/s drain (us per byte = 8 / 25).
    checker = ConstraintChecker(
        {sid: constraint for sid, (_, constraint) in media.items()}
    )
    served_bytes = {sid: 0 for sid in list(media) + [best_effort]}
    now = 0.0
    while now < horizon_us:
        packet = dwcs.dequeue(now)
        if packet is None:
            break
        served_bytes[packet.stream_id] += packet.length
        if packet.stream_id in media:
            late = packet.deadline is not None and packet.deadline < now
            checker.record(packet.stream_id, LATE if late else ON_TIME)
        now += packet.length * 8 / 25.0  # 25 Mb/s in us/byte

    rows = []
    for sid, audit in checker.audit().items():
        fps, (x, y) = media[sid]
        rows.append(
            [
                f"media {sid} ({fps:g} fps)",
                f"{x}/{y}",
                audit.packets,
                audit.losses,
                audit.worst_window_losses,
                "OK" if audit.satisfied else "VIOLATED",
            ]
        )
    print(
        render_table(
            ["stream", "constraint x/y", "frames", "late", "worst window", "verdict"],
            rows,
            title="window-constraint audit over 4 s at 25 Mb/s",
        )
    )
    total = sum(served_bytes.values())
    print(
        f"\nbest-effort got {served_bytes[best_effort] / 1e6:.2f} MB of "
        f"{total / 1e6:.2f} MB total ({served_bytes[best_effort] / total:.0%}) "
        f"— media QoS held while spare capacity flowed to bulk traffic"
    )


if __name__ == "__main__":
    main()
