"""Wire-speed explorer: the Figure 1 framework as a tool.

Answers the paper's framework questions for a configuration you pick:
given a stream count, frame size and link rate, can the scheduling
rate be realized — on a processor, and on the FPGA canonical
architecture (winner-only and block configurations)?

Run:  python examples/wirespeed_explorer.py [n_streams] [frame_bytes] [gbps]
e.g.  python examples/wirespeed_explorer.py 32 64 10
"""

import sys

from repro.core.config import Routing
from repro.framework import (
    SOFTWARE_LATENCY_US,
    evaluate_point,
    feasibility,
    packet_time_us,
)
from repro.metrics.report import render_table


def main(n_streams: int = 32, frame_bytes: int = 1500, gbps: float = 10.0) -> None:
    rate = gbps * 1e9
    pt = packet_time_us(frame_bytes, rate)
    print(
        f"{n_streams} streams, {frame_bytes}-byte frames on a "
        f"{gbps:g} Gb/s link -> packet-time {pt:.3f} us "
        f"({1e6 / pt:,.0f} decisions/s required)\n"
    )

    rows = []
    for label, kwargs in [
        ("FPGA, winner-only (WR)", dict(routing=Routing.WR, block=False)),
        ("FPGA, block (BA)", dict(routing=Routing.BA, block=True)),
    ]:
        point = feasibility(n_streams, frame_bytes, rate, **kwargs)
        rows.append(
            [
                label,
                f"{point.effective_decision_us:.3f}",
                f"{point.margin:.1f}x",
                "yes" if point.feasible else "NO",
            ]
        )
    sw = evaluate_point(
        "dwcs",
        n_streams,
        frame_bytes,
        rate,
        target="software",
        software_latency_us=50.0,
    )
    rows.append(
        [
            "software DWCS (P-III class, 50us)",
            "50.000",
            f"{sw.headroom:.3f}x",
            "yes" if sw.realizable else "NO",
        ]
    )
    print(
        render_table(
            ["target", "per-packet decision us", "headroom", "meets wire-speed"],
            rows,
        )
    )

    print("\nmeasured software scheduler latencies the paper cites:")
    for system, us in SOFTWARE_LATENCY_US.items():
        verdict = "ok" if us <= pt else "too slow"
        print(f"  {system:48s} {us:5.1f} us  [{verdict}]")


if __name__ == "__main__":
    args = [float(a) for a in sys.argv[1:]]
    main(
        int(args[0]) if len(args) > 0 else 32,
        int(args[1]) if len(args) > 1 else 1500,
        args[2] if len(args) > 2 else 10.0,
    )
