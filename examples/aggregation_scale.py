"""Scaling with streamlet aggregation (Figure 10's scenario).

Binds hundreds of streamlets to four stream-slots — the FPGA enforces
slot-level QoS while the (simulated) Stream processor round-robins
streamlets inside each slot, including slot 4's two weighted sets.
Prints per-streamlet bandwidth and the FPGA state storage the
aggregation saves compared with one Register Base block per stream.

Run:  python examples/aggregation_scale.py [streamlets_per_slot]
"""

import sys

from repro.core.config import Routing
from repro.experiments.figure10 import run_figure10
from repro.hwmodel.area import REGISTER_SLICES, area_model
from repro.hwmodel.virtex import VIRTEX_1000
from repro.metrics.report import render_table


def main(streamlets_per_slot: int = 100) -> None:
    result = run_figure10(
        frames_per_stream=8000, streamlets_per_slot=streamlets_per_slot
    )
    rep = result.representative_mbps()

    print(
        render_table(
            ["slot / streamlet set", "per-streamlet MBps"],
            [[group, f"{mbps:.4f}"] for group, mbps in rep.items()],
            title=f"{streamlets_per_slot} streamlets per slot, slots at 1:1:2:4",
        )
    )

    total = 4 * streamlets_per_slot
    dedicated = total * REGISTER_SLICES
    aggregated = area_model(4, Routing.WR).register_slices
    print(
        f"\n{total} streams on 4 stream-slots: register area "
        f"{aggregated} slices (vs {dedicated:,} slices for per-stream "
        f"slots — {dedicated / aggregated:.0f}x saved; a Virtex 1000 has "
        f"{VIRTEX_1000.slices:,} slices total)"
    )
    counts = result.aggregators[3].service_counts()
    set1 = sum(n for (s, g, _), n in counts.items() if g == 0)
    set2 = sum(n for (s, g, _), n in counts.items() if g == 1)
    print(
        f"slot 4 weighted sets: set1 {set1:,} services, set2 {set2:,} "
        f"(ratio {set1 / max(set2, 1):.2f}, configured 2.0)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
