"""Earliest-Deadline-First scheduling.

EDF uses a single attribute — the packet deadline — for comparison
(Section 2, "Attribute Comparison Complexity").  DWCS degenerates to
EDF when window constraints are zero and deadlines are distinct; the
hardware's EDF mode (used for Table 3) is cross-validated against this
reference.
"""

from __future__ import annotations

import heapq
import itertools

from repro.disciplines.base import Discipline, Packet

__all__ = ["EDF"]


class EDF(Discipline):
    """Deadline-ordered priority queue, FCFS (arrival, then insertion
    order) among equal deadlines."""

    name = "edf"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, float, int, Packet]] = []
        self._counter = itertools.count()

    def enqueue(self, packet: Packet) -> None:
        if packet.stream_id not in self.streams:
            raise KeyError(f"unknown stream {packet.stream_id}")
        if packet.deadline is None:
            raise ValueError("EDF requires packets to carry deadlines")
        heapq.heappush(
            self._heap,
            (packet.deadline, packet.arrival, next(self._counter), packet),
        )
        self._note_enqueued()

    def dequeue(self, now: float) -> Packet | None:
        if not self._heap:
            return None
        self._note_dequeued()
        return heapq.heappop(self._heap)[3]

    def peek_deadline(self) -> float | None:
        """Deadline of the most urgent queued packet, if any."""
        return self._heap[0][0] if self._heap else None
