"""Deficit Round Robin — the router plug-ins comparator (Section 5.2).

DRR (Shreedhar & Varghese; used by Decasper et al.'s router plug-ins
[5] and by Cisco's GSR line-cards, Section 5.2) serves backlogged
streams round-robin, granting each a *quantum* of bytes per round
proportional to its weight; unspent quantum carries over in a deficit
counter.  O(1) per packet, but provides no deadline semantics — the
contrast the paper draws against window-constrained scheduling.
"""

from __future__ import annotations

import math
from collections import deque

from repro.disciplines.base import Discipline, Packet, SwStream

__all__ = ["DRR"]


class DRR(Discipline):
    """Deficit Round Robin with per-stream byte quanta.

    Parameters
    ----------
    base_quantum:
        Bytes granted per round to a stream of weight 1.0.  Should be
        at least the maximum packet length for O(1) operation.
    """

    name = "drr"

    def __init__(self, base_quantum: int = 1500) -> None:
        super().__init__()
        if base_quantum <= 0:
            raise ValueError("base_quantum must be positive")
        self.base_quantum = base_quantum
        self._queues: dict[int, deque[Packet]] = {}
        self._deficit: dict[int, float] = {}
        self._active: deque[int] = deque()
        self._in_active: set[int] = set()
        # Streams already granted their quantum in the current visit to
        # the head of the round list.
        self._granted: set[int] = set()

    def _on_stream_added(self, stream: SwStream) -> None:
        self._queues[stream.stream_id] = deque()
        self._deficit[stream.stream_id] = 0.0

    def enqueue(self, packet: Packet) -> None:
        sid = packet.stream_id
        if sid not in self._queues:
            raise KeyError(f"unknown stream {sid}")
        self._queues[sid].append(packet)
        self._note_enqueued()
        if sid not in self._in_active:
            self._active.append(sid)
            self._in_active.add(sid)

    def dequeue(self, now: float) -> Packet | None:
        if not self._active:
            return None
        # Upper bound on visits before some head fits its deficit: each
        # stream needs at most ceil(head_len / grant) quantum grants.
        cap = 1 + len(self._active) + sum(
            math.ceil(
                self._queues[sid][0].length
                / (self.base_quantum * self.streams[sid].weight)
            )
            for sid in self._active
        )
        for _ in range(cap):
            sid = self._active[0]
            queue = self._queues[sid]
            if sid not in self._granted:
                # The stream just reached the head of the round: grant
                # its quantum exactly once for this visit.
                self._deficit[sid] += (
                    self.base_quantum * self.streams[sid].weight
                )
                self._granted.add(sid)
            if self._deficit[sid] < queue[0].length:
                # Turn over: head no longer fits the remaining deficit.
                self._active.rotate(-1)
                self._granted.discard(sid)
                continue
            packet = queue.popleft()
            self._deficit[sid] -= packet.length
            self._note_dequeued()
            if not queue:
                self._deficit[sid] = 0.0
                self._active.popleft()
                self._in_active.discard(sid)
                self._granted.discard(sid)
            return packet
        raise RuntimeError(
            "DRR failed to find a serviceable head; base_quantum is "
            "likely far smaller than the packet lengths in use"
        )
