"""Hierarchical link-sharing scheduler (H-FSC-style baseline).

Section 4.1 cites Stoica et al.'s Hierarchical Fair Service Curve
scheduler (~7-10 µs per packet on a 200 MHz Pentium) as the fastest
software comparator, and Section 3 notes H-FSC among the QoS
capabilities studied for software routers.  This module provides the
*link-sharing* half of that design as a clean baseline: a class
hierarchy where each interior node divides its bandwidth among its
children by weight, realized with start-time fair queuing at every
level (a faithful simplification — we do not implement decoupled
service curves, which DESIGN.md records as a substitution).

The hierarchy lets experiments express the paper's workload mixes
directly: e.g. link → {real-time 70%, best-effort 30%},
real-time → {video 2, audio 1}.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disciplines.base import Discipline, Packet, SwStream

__all__ = ["ClassNode", "HierarchicalFairShare"]


@dataclass
class ClassNode:
    """One node of the link-sharing tree."""

    name: str
    weight: float = 1.0
    parent: "ClassNode | None" = None
    children: "list[ClassNode]" = field(default_factory=list)
    # Leaf state: the stream bound to this class (None for interior).
    stream_id: int | None = None
    # Fair-queuing state at this node's level.
    virtual_time: float = 0.0  # for *children* of this node
    start_tag: float = 0.0
    finish_tag: float = 0.0
    backlog: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("class weight must be positive")

    @property
    def is_leaf(self) -> bool:
        """Whether the node carries a stream rather than children."""
        return self.stream_id is not None

    def add_child(self, child: "ClassNode") -> "ClassNode":
        """Attach a child class."""
        if self.is_leaf:
            raise ValueError(f"leaf class {self.name!r} cannot have children")
        child.parent = self
        self.children.append(child)
        return child


class HierarchicalFairShare(Discipline):
    """Weighted link-sharing over a class tree (SFQ at each level).

    Build the tree first (:meth:`add_class`), bind streams to leaf
    classes (:meth:`bind_stream`), then enqueue/dequeue as usual.
    Service walks the tree from the root, picking at each level the
    backlogged child with the least start tag — giving weighted shares
    *within* every interior class, the paper-cited link-sharing goal.
    """

    name = "hfs"

    def __init__(self) -> None:
        super().__init__()
        self.root = ClassNode(name="root")
        self._classes: dict[str, ClassNode] = {"root": self.root}
        self._leaves: dict[int, ClassNode] = {}
        self._queues: dict[int, list[Packet]] = {}

    # tree construction --------------------------------------------------

    def add_class(
        self, name: str, parent: str = "root", weight: float = 1.0
    ) -> ClassNode:
        """Create an interior or (future-leaf) class under ``parent``."""
        if name in self._classes:
            raise ValueError(f"class {name!r} already exists")
        node = ClassNode(name=name, weight=weight)
        self._classes[parent].add_child(node)
        self._classes[name] = node
        return node

    def bind_stream(self, stream: SwStream, class_name: str) -> None:
        """Bind one stream to a leaf class and register it."""
        node = self._classes[class_name]
        if node.children:
            raise ValueError(f"class {class_name!r} is interior")
        if node.stream_id is not None:
            raise ValueError(f"class {class_name!r} already bound")
        node.stream_id = stream.stream_id
        self.add_stream(stream)
        self._leaves[stream.stream_id] = node
        self._queues[stream.stream_id] = []

    def enqueue(self, packet: Packet) -> None:
        node = self._leaves.get(packet.stream_id)
        if node is None:
            raise KeyError(f"stream {packet.stream_id} not bound to a class")
        self._queues[packet.stream_id].append(packet)
        self._note_enqueued()
        # Becoming backlogged: stamp start tags up the tree.
        self._activate(node, packet.length)

    def _activate(self, node: ClassNode, length: int) -> None:
        while node is not None:
            node.backlog += 1
            if node.backlog == 1 and node.parent is not None:
                parent = node.parent
                node.start_tag = max(node.finish_tag, parent.virtual_time)
                node.finish_tag = node.start_tag + length / node.weight
            node = node.parent

    def dequeue(self, now: float) -> Packet | None:
        if self.root.backlog == 0:
            return None
        # Walk down: least start tag among backlogged children.
        node = self.root
        while not node.is_leaf:
            candidates = [c for c in node.children if c.backlog > 0]
            chosen = min(candidates, key=lambda c: (c.start_tag, c.name))
            node.virtual_time = max(node.virtual_time, chosen.start_tag)
            node = chosen
        packet = self._queues[node.stream_id].pop(0)
        self._note_dequeued()
        # Deactivate / re-tag up the tree.
        leaf = node
        while leaf is not None:
            leaf.backlog -= 1
            leaf = leaf.parent
        if node.backlog > 0 and node.parent is not None:
            head = self._queues[node.stream_id][0]
            node.start_tag = max(node.finish_tag, node.parent.virtual_time)
            node.finish_tag = node.start_tag + head.length / node.weight
        # Re-tag interior ancestors that remain backlogged.
        ancestor = node.parent
        while ancestor is not None and ancestor.parent is not None:
            if ancestor.backlog > 0:
                ancestor.start_tag = max(
                    ancestor.finish_tag, ancestor.parent.virtual_time
                )
                ancestor.finish_tag = (
                    ancestor.start_tag + packet.length / ancestor.weight
                )
            ancestor = ancestor.parent
        return packet
