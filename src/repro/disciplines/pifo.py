"""Programmable PIFO rank-function disciplines over the unified core.

Sivaraman et al. (*Programmable Packet Scheduling at Line Rate*,
arXiv:1602.06045) observe that a large family of scheduling disciplines
decomposes into "compute a rank at enqueue, insert into a Push-In
First-Out queue".  The ShareStreams core has exactly the dual shape:
decide a winner per cycle from per-stream attributes.  This module is
the bridge: a :class:`RankFunction` is a small integer expression over
packet/stream attributes which is *compiled three ways* —

* an interpreted reference evaluator (plain Python ints) driving the
  cycle-level :class:`~repro.core.scheduler.ShareStreamsScheduler`,
* a vectorized ``(N,)`` NumPy evaluator driving
  :class:`~repro.core.batch_engine.BatchScheduler`, and
* a tensorized ``(S, N)`` evaluator driving
  :class:`~repro.core.tensor_engine.CampaignEngine` across whole
  scenario buckets at once —

and deposited into the engines through the Section 4.3 service-tag
mapping (:mod:`repro.core.tag_mapping`): the rank travels in the
16-bit-deadline attribute, the engines run their ``deadline_only=True``
simple-comparator configuration with ``wrap=False`` ideal arithmetic,
and the PRIORITY_UPDATE cycle is bypassed
(``SchedulingMode.SERVICE_TAG``).  Tie-breaks are therefore *exactly*
the engines' existing lexsort/bitonic order: smallest rank first, then
earliest arrival sequence, then lowest stream id.

Realizability condition
-----------------------
The engines serve each stream's slot queue FIFO (only head-of-line
packets compete), while an idealized PIFO could reorder within a
stream.  The two coincide iff every stream's ranks are non-decreasing
in enqueue order — the *per-stream monotonicity* condition.  All rank
functions shipped here satisfy it structurally (FCFS/SFQ) or under the
workload contract enforced by :func:`generate_pifo_scenario`
(non-decreasing per-stream deadlines for EDF-like ranks).

Expressions use only integer arithmetic (``+ - * //``, ``emax``,
``emin``): Python ints and ``np.int64`` implement identical floored
division, so the three evaluators are bit-equivalent by construction
and :func:`repro.core.differential.validate_rank_function` checks the
resulting run summaries byte-for-byte.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.core.tensor_engine import CampaignEngine
from repro.disciplines.base import Discipline, Packet, SwStream

__all__ = [
    "ATTRIBUTES",
    "Expr",
    "Attr",
    "Const",
    "attr",
    "emax",
    "emin",
    "RankFunction",
    "PIFO_RANK_FUNCTIONS",
    "register_rank_function",
    "rank_function",
    "PifoStream",
    "PifoScenario",
    "generate_pifo_scenario",
    "PifoFrontend",
    "PifoCampaignFrontend",
    "run_pifo",
    "run_pifo_bucket",
    "PifoDiscipline",
]

#: Attribute names a rank expression may reference.  Per-packet:
#: ``deadline`` (workload-assigned absolute deadline), ``arrival``
#: (global arrival sequence number), ``length`` (bytes).  Per-stream:
#: ``sid``, ``weight``, ``priority``, ``finish`` (running service tag),
#: ``credits`` (packets serviced so far).  Global: ``vtime`` (virtual
#: clock).  Finish-update expressions may additionally reference
#: ``rank``, the value just computed for the arriving packet.
ATTRIBUTES = (
    "deadline",
    "arrival",
    "length",
    "sid",
    "weight",
    "priority",
    "finish",
    "credits",
    "vtime",
)


# ----------------------------------------------------------------------
# expression AST
# ----------------------------------------------------------------------


class Expr:
    """Integer rank expression; build with operators and :func:`attr`."""

    def _coerce(self, other) -> Expr:
        if isinstance(other, Expr):
            return other
        if isinstance(other, int) and not isinstance(other, bool):
            return Const(other)
        raise TypeError(
            f"rank expressions are integer-only; got {other!r}"
        )

    def __add__(self, other):
        return BinOp("+", self, self._coerce(other))

    def __radd__(self, other):
        return BinOp("+", self._coerce(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._coerce(other))

    def __rsub__(self, other):
        return BinOp("-", self._coerce(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._coerce(other))

    def __rmul__(self, other):
        return BinOp("*", self._coerce(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, self._coerce(other))

    def __rfloordiv__(self, other):
        return BinOp("//", self._coerce(other), self)

    def __neg__(self):
        return BinOp("-", Const(0), self)

    def attributes(self) -> frozenset[str]:
        """Names of all attributes the expression reads."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable rendering (used by docs and the CLI)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal."""

    value: int

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def describe(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Attr(Expr):
    """Reference to one named attribute (see :data:`ATTRIBUTES`)."""

    name: str

    def attributes(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary integer operation: ``+ - * //``."""

    op: str
    lhs: Expr
    rhs: Expr

    def attributes(self) -> frozenset[str]:
        return self.lhs.attributes() | self.rhs.attributes()

    def describe(self) -> str:
        return f"({self.lhs.describe()} {self.op} {self.rhs.describe()})"


@dataclass(frozen=True)
class Extremum(Expr):
    """Elementwise max/min of two subexpressions."""

    kind: str  # "max" | "min"
    lhs: Expr
    rhs: Expr

    def attributes(self) -> frozenset[str]:
        return self.lhs.attributes() | self.rhs.attributes()

    def describe(self) -> str:
        return f"{self.kind}({self.lhs.describe()}, {self.rhs.describe()})"


def attr(name: str) -> Attr:
    """Reference a named attribute in a rank expression."""
    return Attr(name)


def emax(a, b) -> Extremum:
    """Elementwise maximum of two rank subexpressions."""
    probe = Const(0)
    return Extremum("max", probe._coerce(a), probe._coerce(b))


def emin(a, b) -> Extremum:
    """Elementwise minimum of two rank subexpressions."""
    probe = Const(0)
    return Extremum("min", probe._coerce(a), probe._coerce(b))


_SCALAR_OPS: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
}
_NUMPY_EXTREMA = {"max": np.maximum, "min": np.minimum}
_SCALAR_EXTREMA = {"max": max, "min": min}


def _compile_expr(expr: Expr, *, vectorized: bool) -> Callable[[dict], object]:
    """Lower an AST once into a closure chain (no per-call tree walk)."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Attr):
        name = expr.name
        return lambda env: env[name]
    if isinstance(expr, BinOp):
        lhs = _compile_expr(expr.lhs, vectorized=vectorized)
        rhs = _compile_expr(expr.rhs, vectorized=vectorized)
        op = _SCALAR_OPS[expr.op]
        return lambda env: op(lhs(env), rhs(env))
    if isinstance(expr, Extremum):
        lhs = _compile_expr(expr.lhs, vectorized=vectorized)
        rhs = _compile_expr(expr.rhs, vectorized=vectorized)
        ext = (_NUMPY_EXTREMA if vectorized else _SCALAR_EXTREMA)[expr.kind]
        return lambda env: ext(lhs(env), rhs(env))
    raise TypeError(f"not a rank expression: {expr!r}")


# ----------------------------------------------------------------------
# rank functions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RankFunction:
    """One discipline expressed as a rank computation at enqueue.

    Parameters
    ----------
    name:
        Registry name (addressed as ``pifo:<name>``).
    rank:
        Integer expression evaluated per arriving packet; *smaller
        rank wins*, ties broken by (arrival sequence, stream id) — the
        engines' native lexsort order.
    finish:
        Optional per-stream state update run after ranking: the
        stream's ``finish`` attribute is set to this expression's
        value.  May reference ``rank`` (the value just computed).
    vclock:
        Virtual-clock policy: ``"none"`` or ``"served_rank"``
        (``vtime = max(vtime, rank-of-serviced-packet)``, SFQ-style).
    description:
        One-line summary for docs/CLI.
    equivalent_to:
        Name of the handwritten discipline in
        :data:`repro.disciplines.registry.DISCIPLINES` this rank
        function re-expresses, if any;
        :func:`repro.core.differential.validate_rank_function` replays
        the same workload through it and checks the service order.
    """

    name: str
    rank: Expr
    finish: Expr | None = None
    vclock: str = "none"
    description: str = ""
    equivalent_to: str | None = None

    def __post_init__(self) -> None:
        if self.vclock not in ("none", "served_rank"):
            raise ValueError(f"unknown vclock policy {self.vclock!r}")
        bad = self.rank.attributes() - set(ATTRIBUTES)
        if bad:
            raise ValueError(f"unknown rank attributes: {sorted(bad)}")
        if self.finish is not None:
            bad = self.finish.attributes() - set(ATTRIBUTES) - {"rank"}
            if bad:
                raise ValueError(
                    f"unknown finish attributes: {sorted(bad)}"
                )

    # -- the three compilers -------------------------------------------

    def compile_reference(self) -> Callable[[dict[str, int]], int]:
        """Interpreted scalar evaluator: dict of Python ints -> int."""
        fn = _compile_expr(self.rank, vectorized=False)
        return lambda env: int(fn(env))

    def compile_batch(self):
        """Vectorized evaluator: dict of ``(N,)`` int64 arrays -> array."""
        fn = _compile_expr(self.rank, vectorized=True)

        def evaluate(env: dict[str, np.ndarray]) -> np.ndarray:
            out = np.asarray(fn(env), dtype=np.int64)
            if out.ndim != 1:
                raise ValueError("batch evaluator expects (N,) inputs")
            return out

        return evaluate

    def compile_tensor(self):
        """Tensorized evaluator: dict of ``(S, N)`` int64 arrays -> array."""
        fn = _compile_expr(self.rank, vectorized=True)

        def evaluate(env: dict[str, np.ndarray]) -> np.ndarray:
            out = np.asarray(fn(env), dtype=np.int64)
            if out.ndim != 2:
                raise ValueError("tensor evaluator expects (S, N) inputs")
            return out

        return evaluate

    def compile_finish(self, *, vectorized: bool):
        """Evaluator for the finish-tag update (``None`` if absent)."""
        if self.finish is None:
            return None
        return _compile_expr(self.finish, vectorized=vectorized)


#: name -> registered rank function (addressed as ``pifo:<name>``).
PIFO_RANK_FUNCTIONS: dict[str, RankFunction] = {}


def register_rank_function(fn: RankFunction) -> RankFunction:
    """Add a rank function to the ``pifo:`` registry."""
    if fn.name in PIFO_RANK_FUNCTIONS:
        raise ValueError(f"rank function {fn.name!r} already registered")
    PIFO_RANK_FUNCTIONS[fn.name] = fn
    return fn


def rank_function(name: str) -> RankFunction:
    """Look up a registered rank function by bare name."""
    try:
        return PIFO_RANK_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown rank function {name!r}; "
            f"known: {sorted(PIFO_RANK_FUNCTIONS)}"
        ) from None


# The four handwritten disciplines re-expressed as one expression each,
# plus one brand-new hybrid that exists *only* as a rank function.

register_rank_function(
    RankFunction(
        name="fcfs",
        rank=attr("arrival"),
        description="global FIFO: rank is the arrival sequence number",
        equivalent_to="fcfs",
    )
)

register_rank_function(
    RankFunction(
        name="edf",
        rank=attr("deadline"),
        description="earliest absolute deadline first",
        equivalent_to="edf",
    )
)

register_rank_function(
    RankFunction(
        name="prio",
        # The handwritten StaticPriority scans per-stream queues in
        # (priority, stream id) order, so equal priorities tie-break by
        # sid *before* arrival; fold sid into the rank to match.
        rank=attr("priority") * 256 + attr("sid"),
        description="static priority, sid-ordered within a class",
        equivalent_to="static_priority",
    )
)

register_rank_function(
    RankFunction(
        name="sfq",
        rank=emax(attr("finish"), attr("vtime")),
        finish=attr("rank") + attr("length") // attr("weight"),
        vclock="served_rank",
        description="start-time fair queuing via integer service tags",
        equivalent_to="sfq",
    )
)

register_rank_function(
    RankFunction(
        name="prio_edf",
        rank=attr("priority") * (1 << 20) + attr("deadline"),
        description="deadline-over-priority hybrid: EDF within a class",
    )
)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PifoStream:
    """One stream in a PIFO workload.

    ``weight`` is a positive integer dividing the packet length so the
    integer tag ``length // weight`` equals the handwritten SFQ float
    tag exactly; ``priority`` is a small static class (lower = more
    urgent).
    """

    sid: int
    weight: int = 1
    priority: int = 0


@dataclass(frozen=True)
class PifoScenario:
    """A deterministic seeded workload for the PIFO frontends.

    ``arrivals[t]`` lists the cycle's arriving packets as
    ``(sid, seq, deadline, length)`` tuples in ascending-sid order;
    ``seq`` is the globally unique arrival sequence number (so the
    lexsort never reaches the sid tie-break), and per-stream deadlines
    are non-decreasing (the PIFO realizability condition).
    """

    seed: int
    n_slots: int
    n_cycles: int
    streams: tuple[PifoStream, ...]
    arrivals: tuple[tuple[tuple[int, int, int, int], ...], ...]

    @property
    def total_arrivals(self) -> int:
        return sum(len(cycle) for cycle in self.arrivals)


#: Positive divisors of the 1500-byte packet length used for weights:
#: they make ``length / weight`` an exact integer-valued float, so the
#: handwritten float-tag SFQ and the integer PIFO tags agree exactly.
_WEIGHT_CHOICES = (1, 2, 3, 4, 5, 6, 10, 12)


def generate_pifo_scenario(
    seed: int,
    *,
    n_slots: int = 8,
    n_cycles: int = 200,
    p_arrival: float = 0.45,
    packet_length: int = 1500,
    max_lead: int = 48,
) -> PifoScenario:
    """Derive a deterministic PIFO workload from an integer seed.

    Per cycle, each stream receives at most one packet (Bernoulli
    ``p_arrival``), which keeps the vectorized per-cycle rank
    evaluation order-independent; deadlines are clamped per stream to
    be non-decreasing so EDF-like ranks satisfy the per-stream
    monotonicity condition.
    """
    if n_slots & (n_slots - 1) or n_slots < 2:
        raise ValueError("n_slots must be a power of two >= 2")
    rng = random.Random(seed ^ 0x91F0)
    streams = tuple(
        PifoStream(
            sid=sid,
            weight=rng.choice(_WEIGHT_CHOICES),
            priority=rng.randrange(4),
        )
        for sid in range(n_slots)
    )
    arrivals: list[tuple[tuple[int, int, int, int], ...]] = []
    last_deadline = [0] * n_slots
    seq = itertools.count(1)
    for t in range(n_cycles):
        cycle: list[tuple[int, int, int, int]] = []
        for sid in range(n_slots):
            if rng.random() < p_arrival:
                deadline = max(
                    last_deadline[sid], t + rng.randrange(1, max_lead)
                )
                last_deadline[sid] = deadline
                cycle.append((sid, next(seq), deadline, packet_length))
        arrivals.append(tuple(cycle))
    return PifoScenario(
        seed=seed,
        n_slots=n_slots,
        n_cycles=n_cycles,
        streams=streams,
        arrivals=tuple(arrivals),
    )


# ----------------------------------------------------------------------
# engine frontends
# ----------------------------------------------------------------------


def _pifo_arch(n_slots: int) -> ArchConfig:
    """The Section 4.3 service-tag configuration with ideal arithmetic."""
    return ArchConfig(
        n_slots=n_slots,
        routing=Routing.WR,
        deadline_only=True,
        wrap=False,
    )


def _service_tag_streams(n_slots: int) -> list[StreamConfig]:
    return [
        StreamConfig(sid=sid, period=0, mode=SchedulingMode.SERVICE_TAG)
        for sid in range(n_slots)
    ]


class _StreamTable:
    """Mutable per-stream rank state shared by all frontends."""

    __slots__ = ("weight", "priority", "finish", "credits", "vtime")

    def __init__(self, streams: Sequence[PifoStream], n_slots: int) -> None:
        self.weight = np.ones(n_slots, dtype=np.int64)
        self.priority = np.zeros(n_slots, dtype=np.int64)
        for s in streams:
            if s.weight <= 0 or s.weight != int(s.weight):
                raise ValueError("weight must be a positive integer")
            self.weight[s.sid] = s.weight
            self.priority[s.sid] = s.priority
        self.finish = np.zeros(n_slots, dtype=np.int64)
        self.credits = np.zeros(n_slots, dtype=np.int64)
        self.vtime = 0


class PifoFrontend:
    """Rank-function frontend for the reference and batch engines.

    The engine runs the ``deadline_only`` simple-comparator
    configuration; this frontend computes ranks (interpreted per packet
    for ``engine="reference"``, one vectorized ``(N,)`` evaluation per
    cycle for ``engine="batch"``), deposits them into the deadline
    field, and applies the virtual-clock/credit updates on service.
    """

    def __init__(
        self,
        fn: RankFunction,
        scenario: PifoScenario,
        *,
        engine: str = "reference",
    ) -> None:
        if engine not in ("reference", "batch"):
            raise ValueError(f"unknown pifo engine {engine!r}")
        self.fn = fn
        self.scenario = scenario
        self.engine = engine
        n = scenario.n_slots
        config = _pifo_arch(n)
        streams = _service_tag_streams(n)
        if engine == "reference":
            self.scheduler = ShareStreamsScheduler(config, streams)
        else:
            from repro.core.batch_engine import BatchScheduler

            self.scheduler = BatchScheduler(config, streams)
        self.table = _StreamTable(scenario.streams, n)
        self._sid_axis = np.arange(n, dtype=np.int64)
        if engine == "reference":
            self._rank_fn = fn.compile_reference()
            self._finish_fn = fn.compile_finish(vectorized=False)
        else:
            self._rank_fn = fn.compile_batch()
            self._finish_fn = fn.compile_finish(vectorized=True)
        self.services: list[tuple[int, int, int, int]] = []
        self.enqueued = 0

    # -- enqueue-side rank computation ---------------------------------

    def _rank_cycle_reference(
        self, cycle: Sequence[tuple[int, int, int, int]]
    ) -> list[int]:
        table = self.table
        ranks: list[int] = []
        for sid, seq, deadline, length in cycle:
            env = {
                "deadline": deadline,
                "arrival": seq,
                "length": length,
                "sid": sid,
                "weight": int(table.weight[sid]),
                "priority": int(table.priority[sid]),
                "finish": int(table.finish[sid]),
                "credits": int(table.credits[sid]),
                "vtime": table.vtime,
            }
            rank = self._rank_fn(env)
            if self._finish_fn is not None:
                env["rank"] = rank
                table.finish[sid] = int(self._finish_fn(env))
            ranks.append(rank)
        return ranks

    def _rank_cycle_batch(
        self, cycle: Sequence[tuple[int, int, int, int]]
    ) -> list[int]:
        table = self.table
        n = self.scenario.n_slots
        deadline = np.zeros(n, dtype=np.int64)
        arrival = np.zeros(n, dtype=np.int64)
        length = np.ones(n, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        for sid, seq, dl, ln in cycle:
            mask[sid] = True
            deadline[sid] = dl
            arrival[sid] = seq
            length[sid] = ln
        env = {
            "deadline": deadline,
            "arrival": arrival,
            "length": length,
            "sid": self._sid_axis,
            "weight": table.weight,
            "priority": table.priority,
            "finish": table.finish,
            "credits": table.credits,
            "vtime": np.full(n, table.vtime, dtype=np.int64),
        }
        ranks = self._rank_fn(env)
        if self._finish_fn is not None:
            env["rank"] = ranks
            updated = np.asarray(self._finish_fn(env), dtype=np.int64)
            table.finish = np.where(mask, updated, table.finish)
        return [int(ranks[sid]) for sid, _seq, _dl, _ln in cycle]

    # -- one decision cycle --------------------------------------------

    def step(self, t: int, cycle: Sequence[tuple[int, int, int, int]]) -> None:
        """Enqueue the cycle's arrivals, then run one decision."""
        if cycle:
            if self.engine == "reference":
                ranks = self._rank_cycle_reference(cycle)
            else:
                ranks = self._rank_cycle_batch(cycle)
            for (sid, seq, _deadline, length), rank in zip(cycle, ranks):
                self.scheduler.enqueue(
                    sid, deadline=rank, arrival=seq, length=length
                )
                self.enqueued += 1
        outcome = self.scheduler.decision_cycle(
            t, consume="winner", count_misses=False
        )
        if outcome.circulated_sid is not None:
            sid = outcome.circulated_sid
            _, packet = outcome.serviced[0]
            self.services.append((t, sid, packet.arrival, packet.deadline))
            self.table.credits[sid] += 1
            if self.fn.vclock == "served_rank":
                self.table.vtime = max(self.table.vtime, packet.deadline)

    def run(self) -> dict:
        """Play the whole scenario (arrival phase + drain) and summarize."""
        t = 0
        for t, cycle in enumerate(self.scenario.arrivals):
            self.step(t, cycle)
        t = self.scenario.n_cycles
        while len(self.services) < self.enqueued:
            self.step(t, ())
            t += 1
        return _summarize(self.fn, self.scenario, self)


class PifoCampaignFrontend:
    """Tensorized rank-function frontend: S same-shape scenarios at once.

    One ``(S, N)`` rank evaluation per cycle feeds a single
    :class:`CampaignEngine` holding every scenario's slot state; the
    per-scenario virtual clocks and credit counters advance from the
    lockstep decision outcomes.
    """

    def __init__(
        self, fn: RankFunction, scenarios: Sequence[PifoScenario],
        *, engine_backend: str = "numpy",
    ) -> None:
        if not scenarios:
            raise ValueError("need at least one scenario")
        shapes = {(s.n_slots, s.n_cycles) for s in scenarios}
        if len(shapes) > 1:
            raise ValueError(
                f"scenarios must share (n_slots, n_cycles); got {shapes}"
            )
        self.fn = fn
        self.scenarios = list(scenarios)
        s_count = len(self.scenarios)
        n = self.scenarios[0].n_slots
        self._s = s_count
        self._n = n
        # The rank/credit arrays stay NumPy (the compiled rank functions
        # are NumPy ufunc expressions); only the slot-state engine runs
        # on the selected backend, talking through enqueue/decision.
        self.engine = CampaignEngine(
            _pifo_arch(n),
            [_service_tag_streams(n) for _ in range(s_count)],
            engine_backend=engine_backend,
        )
        self._rank_fn = fn.compile_tensor()
        self._finish_fn = fn.compile_finish(vectorized=True)
        shape = (s_count, n)
        self._weight = np.ones(shape, dtype=np.int64)
        self._priority = np.zeros(shape, dtype=np.int64)
        for s, scenario in enumerate(self.scenarios):
            for stream in scenario.streams:
                if stream.weight <= 0 or stream.weight != int(stream.weight):
                    raise ValueError("weight must be a positive integer")
                self._weight[s, stream.sid] = stream.weight
                self._priority[s, stream.sid] = stream.priority
        self._finish = np.zeros(shape, dtype=np.int64)
        self._credits = np.zeros(shape, dtype=np.int64)
        self._vtime = np.zeros(s_count, dtype=np.int64)
        self._sid2d = np.broadcast_to(np.arange(n, dtype=np.int64), shape)
        self.services: list[list[tuple[int, int, int, int]]] = [
            [] for _ in range(s_count)
        ]
        self.enqueued = [0] * s_count

    def _step(self, t: int) -> None:
        s_count, n = self._s, self._n
        shape = (s_count, n)
        deadline = np.zeros(shape, dtype=np.int64)
        arrival = np.zeros(shape, dtype=np.int64)
        length = np.ones(shape, dtype=np.int64)
        mask = np.zeros(shape, dtype=bool)
        any_arrival = False
        for s, scenario in enumerate(self.scenarios):
            if t >= scenario.n_cycles:
                continue
            for sid, seq, dl, ln in scenario.arrivals[t]:
                mask[s, sid] = True
                deadline[s, sid] = dl
                arrival[s, sid] = seq
                length[s, sid] = ln
                any_arrival = True
        if any_arrival:
            env = {
                "deadline": deadline,
                "arrival": arrival,
                "length": length,
                "sid": self._sid2d,
                "weight": self._weight,
                "priority": self._priority,
                "finish": self._finish,
                "credits": self._credits,
                "vtime": np.broadcast_to(
                    self._vtime[:, None], shape
                ).astype(np.int64),
            }
            ranks = self._rank_fn(env)
            if self._finish_fn is not None:
                env["rank"] = ranks
                updated = np.asarray(self._finish_fn(env), dtype=np.int64)
                self._finish = np.where(mask, updated, self._finish)
            for s, scenario in enumerate(self.scenarios):
                if t >= scenario.n_cycles:
                    continue
                for sid, seq, _dl, ln in scenario.arrivals[t]:
                    self.engine.enqueue(
                        s,
                        sid,
                        deadline=int(ranks[s, sid]),
                        arrival=seq,
                        length=ln,
                    )
                    self.enqueued[s] += 1
        outcomes = self.engine.decision_cycle_all(
            t, consume="winner", count_misses=False
        )
        for s, outcome in enumerate(outcomes):
            if outcome.circulated_sid is None:
                continue
            sid = outcome.circulated_sid
            _, packet = outcome.serviced[0]
            self.services[s].append((t, sid, packet.arrival, packet.deadline))
            self._credits[s, sid] += 1
            if self.fn.vclock == "served_rank":
                self._vtime[s] = max(
                    int(self._vtime[s]), packet.deadline
                )

    def run(self) -> list[dict]:
        """Run all scenarios in lockstep; one summary per scenario."""
        n_cycles = self.scenarios[0].n_cycles
        t = 0
        for t in range(n_cycles):
            self._step(t)
        t = n_cycles
        while any(
            len(self.services[s]) < self.enqueued[s] for s in range(self._s)
        ):
            self._step(t)
            t += 1
        return [
            _summarize(self.fn, scenario, _CampaignView(self, s))
            for s, scenario in enumerate(self.scenarios)
        ]


class _CampaignView:
    """Adapts one campaign row to the summary contract of PifoFrontend."""

    def __init__(self, frontend: PifoCampaignFrontend, s: int) -> None:
        self.services = frontend.services[s]
        self.enqueued = frontend.enqueued[s]
        self._frontend = frontend
        self._s = s

    def counters(self):
        return self._frontend.engine.counters(self._s)

    @property
    def vtime(self) -> int:
        return int(self._frontend._vtime[self._s])


def _summarize(fn: RankFunction, scenario: PifoScenario, state) -> dict:
    """Canonical engine-independent run summary (byte-compared)."""
    if isinstance(state, PifoFrontend):
        counters = state.scheduler.counters()
        vtime = state.table.vtime
    else:
        counters = state.counters()
        vtime = state.vtime
    per_stream: dict[str, int] = {}
    for _t, sid, _seq, _rank in state.services:
        key = str(sid)
        per_stream[key] = per_stream.get(key, 0) + 1
    return {
        "format": 1,
        "discipline": fn.name,
        "seed": scenario.seed,
        "n_slots": scenario.n_slots,
        "n_cycles": scenario.n_cycles,
        "enqueued": state.enqueued,
        "services": [list(evt) for evt in state.services],
        "per_stream": per_stream,
        "final_vtime": int(vtime),
        "wins": [counters[sid].wins for sid in range(scenario.n_slots)],
        "serviced": [
            counters[sid].serviced for sid in range(scenario.n_slots)
        ],
    }


def run_pifo(
    fn: RankFunction | str, scenario: PifoScenario, *, engine: str = "reference"
) -> dict:
    """Run one rank function over one scenario on one engine.

    Returns the canonical summary dict; byte-identical across the
    three engines for any well-formed rank function.
    """
    if isinstance(fn, str):
        fn = rank_function(fn)
    if engine in ("reference", "batch"):
        return PifoFrontend(fn, scenario, engine=engine).run()
    if engine == "tensor":
        return PifoCampaignFrontend(fn, [scenario]).run()[0]
    raise ValueError(f"unknown pifo engine {engine!r}")


def run_pifo_bucket(
    fn: RankFunction | str, scenarios: Sequence[PifoScenario],
    *, engine_backend: str = "numpy",
) -> list[dict]:
    """Tensorized bucket run: all same-shape scenarios in one engine.

    ``engine_backend`` selects the campaign engine's array namespace
    (``"numpy"``, ``"numba"`` for the fused compiled kernels, or any
    other :mod:`repro.core.backend` name/instance); summaries are
    byte-identical across backends.
    """
    if isinstance(fn, str):
        fn = rank_function(fn)
    return PifoCampaignFrontend(
        fn, scenarios, engine_backend=engine_backend
    ).run()


# ----------------------------------------------------------------------
# software PIFO (registry-facing Discipline)
# ----------------------------------------------------------------------


class PifoDiscipline(Discipline):
    """A software PIFO driven by a rank function.

    A single priority queue ordered by ``(rank, arrival, seq)``; the
    interpreted evaluator computes the rank at enqueue.  Exists so rank
    functions are first-class citizens of
    :mod:`repro.disciplines.registry` (``create("pifo:<name>")``) next
    to their handwritten counterparts.
    """

    name = "pifo"

    def __init__(self, fn: RankFunction | str) -> None:
        super().__init__()
        if isinstance(fn, str):
            fn = rank_function(fn)
        self.fn = fn
        self.name = f"pifo:{fn.name}"
        self._rank_fn = fn.compile_reference()
        self._finish_fn = fn.compile_finish(vectorized=False)
        self._heap: list[tuple[int, float, int, Packet]] = []
        self._seq = itertools.count()
        self._finish: dict[int, int] = {}
        self._credits: dict[int, int] = {}
        self.virtual_time = 0

    def _on_stream_added(self, stream: SwStream) -> None:
        if stream.weight != int(stream.weight) or stream.weight <= 0:
            raise ValueError(
                "pifo disciplines need positive integer weights"
            )
        self._finish[stream.stream_id] = 0
        self._credits[stream.stream_id] = 0

    def enqueue(self, packet: Packet) -> None:
        stream = self.streams[packet.stream_id]
        sid = packet.stream_id
        env = {
            "deadline": int(packet.deadline or 0),
            "arrival": int(packet.arrival),
            "length": packet.length,
            "sid": sid,
            "weight": int(stream.weight),
            "priority": stream.priority,
            "finish": self._finish[sid],
            "credits": self._credits[sid],
            "vtime": self.virtual_time,
        }
        rank = self._rank_fn(env)
        if self._finish_fn is not None:
            env["rank"] = rank
            self._finish[sid] = int(self._finish_fn(env))
        packet.tag = float(rank)
        heapq.heappush(
            self._heap, (rank, packet.arrival, next(self._seq), packet)
        )
        self._note_enqueued()

    def dequeue(self, now: float) -> Packet | None:
        if not self._heap:
            return None
        rank, _arrival, _seq, packet = heapq.heappop(self._heap)
        self._credits[packet.stream_id] += 1
        if self.fn.vclock == "served_rank":
            self.virtual_time = max(self.virtual_time, rank)
        self._note_dequeued()
        return packet
