"""Common interface for pure-software packet scheduling disciplines.

Section 4.1 of the paper evaluates processor-resident schedulers (on
UltraSPARC, i960 and Pentium hosts) and concludes they cannot meet
multi-gigabit packet-times; Section 5.2 compares against software
routers (Click with SFQ, router plug-ins with DRR).  This package holds
clean-room Python implementations of those disciplines behind a single
interface so that:

* they serve as *oracles* for the cycle-level hardware model
  (`tests/test_cross_validation.py` checks the FPGA DWCS/EDF decisions
  against the software references), and
* pytest-benchmark can measure their per-decision latency, reproducing
  the *structure* of the paper's software-vs-hardware comparison.

The interface is enqueue/dequeue oriented: packets arrive with their
stream ID and the discipline picks which backlogged packet to transmit
next at a given time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

__all__ = ["Packet", "SwStream", "Discipline", "DisciplineInfo"]


@dataclass(slots=True)
class Packet:
    """One packet as seen by a software discipline.

    ``deadline`` is absolute (same unit as ``arrival``); ``tag`` is
    scratch space disciplines may use for service tags (virtual start
    or finish times).
    """

    stream_id: int
    seq: int
    arrival: float
    length: int = 1500
    deadline: float | None = None
    tag: float = 0.0


@dataclass(slots=True)
class SwStream:
    """Per-stream parameters a discipline may consult.

    ``weight`` drives fair-queuing shares and DRR quanta; ``priority``
    drives static-priority ordering (lower = more urgent); ``period``
    and ``loss_numerator``/``loss_denominator`` are the DWCS service
    constraints (request period ``T`` and window-constraint ``x/y``).
    """

    stream_id: int
    weight: float = 1.0
    priority: int = 0
    period: float = 1.0
    loss_numerator: int = 0
    loss_denominator: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.loss_numerator < 0 or self.loss_denominator < 0:
            raise ValueError("window-constraint terms must be non-negative")
        if self.loss_numerator > self.loss_denominator:
            raise ValueError("window numerator exceeds denominator")


@dataclass(frozen=True, slots=True)
class DisciplineInfo:
    """Table 1 metadata: how a discipline classifies along the paper's axes."""

    name: str
    family: str  # "priority-class" | "fair-queuing" | "window-constrained"
    priority: str
    grain: str
    input_queue: str
    service_tag_computation: str
    concurrency: str


class Discipline(abc.ABC):
    """A work-conserving packet scheduling discipline.

    Subclasses implement :meth:`enqueue` and :meth:`dequeue`; streams
    must be registered through :meth:`add_stream` before packets for
    them arrive.
    """

    #: Short registry name (e.g. ``"dwcs"``); subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self.streams: dict[int, SwStream] = {}
        self._backlog = 0

    def add_stream(self, stream: SwStream) -> None:
        """Register a stream's parameters (idempotent re-registration is an error)."""
        if stream.stream_id in self.streams:
            raise ValueError(f"stream {stream.stream_id} already registered")
        self.streams[stream.stream_id] = stream
        self._on_stream_added(stream)

    def _on_stream_added(self, stream: SwStream) -> None:
        """Hook for subclasses to set up per-stream state."""

    @abc.abstractmethod
    def enqueue(self, packet: Packet) -> None:
        """Accept one arriving packet into its stream's queue."""

    @abc.abstractmethod
    def dequeue(self, now: float) -> Packet | None:
        """Pick and remove the next packet to transmit at time ``now``.

        Returns ``None`` when no packet is backlogged.  Implementations
        must be work-conserving: if any packet is queued, one is
        returned.
        """

    @property
    def backlog(self) -> int:
        """Total packets currently queued across all streams."""
        return self._backlog

    def _note_enqueued(self) -> None:
        self._backlog += 1

    def _note_dequeued(self) -> None:
        if self._backlog <= 0:
            raise RuntimeError("dequeue accounting underflow")
        self._backlog -= 1
