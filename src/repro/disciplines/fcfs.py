"""First-come-first-serve: the paper's motivating non-solution.

Section 1: "FCFS stream schedulers on end-system server machines or
switches will easily allow bandwidth-hog streams to flow through, while
other streams starve."  Included as the baseline every QoS discipline
is measured against (and as Table 2's final tie-break rule).
"""

from __future__ import annotations

from collections import deque

from repro.disciplines.base import Discipline, Packet

__all__ = ["FCFS"]


class FCFS(Discipline):
    """Single shared FIFO across all streams."""

    name = "fcfs"

    def __init__(self) -> None:
        super().__init__()
        self._fifo: deque[Packet] = deque()

    def enqueue(self, packet: Packet) -> None:
        if packet.stream_id not in self.streams:
            raise KeyError(f"unknown stream {packet.stream_id}")
        self._fifo.append(packet)
        self._note_enqueued()

    def dequeue(self, now: float) -> Packet | None:
        if not self._fifo:
            return None
        self._note_dequeued()
        return self._fifo.popleft()
