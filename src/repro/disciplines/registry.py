"""Discipline registry and the Table 1 classification metadata.

Table 1 of the paper compares the three discipline families along five
dimensions (priority, grain, input queue, service-tag computation,
concurrency).  That classification is encoded here as data so the
Table 1 experiment regenerates the table from the same registry the
schedulers live in.
"""

from __future__ import annotations

from repro.disciplines.base import Discipline, DisciplineInfo
from repro.disciplines.drr import DRR
from repro.disciplines.dwcs import DWCS
from repro.disciplines.edf import EDF
from repro.disciplines.fair_queuing import SFQ, WFQ
from repro.disciplines.fcfs import FCFS
from repro.disciplines.hfsc import HierarchicalFairShare
from repro.disciplines.static_priority import StaticPriority

__all__ = [
    "DISCIPLINES",
    "FAMILY_INFO",
    "create",
    "info_for",
]

#: name -> discipline class, for all implemented software schedulers.
DISCIPLINES: dict[str, type[Discipline]] = {
    cls.name: cls
    for cls in (FCFS, StaticPriority, EDF, DWCS, WFQ, SFQ, DRR, HierarchicalFairShare)
}

#: Table 1 rows: the paper's comparison of the three discipline families.
FAMILY_INFO: dict[str, DisciplineInfo] = {
    "priority-class": DisciplineInfo(
        name="Priority-class",
        family="priority-class",
        priority="Stream-level dynamic",
        grain="Packet-level fixed",
        input_queue="Priority Queue",
        service_tag_computation="concurrent across streams",
        concurrency="Multiple decisions can be pipelined",
    ),
    "fair-queuing": DisciplineInfo(
        name="Fair-queuing (WFQ, SFQ)",
        family="fair-queuing",
        priority="Stream-level dynamic",
        grain="Packet-level fixed",
        input_queue="Priority Queue",
        service_tag_computation="per-stream serialized",
        concurrency="Multiple decisions are pipelined",
    ),
    "window-constrained": DisciplineInfo(
        name="Window-constrained ((m,k)-firm, DWCS)",
        family="window-constrained",
        priority="Stream-level dynamic",
        grain="Packet-level dynamic",
        input_queue="Simple circular queue",
        service_tag_computation="winner in previous decision cycle",
        concurrency="Successive decisions are serialized",
    ),
}

#: Classification of the programmable rank-function layer: like the
#: fair-queuing row, service tags are computed per packet, but the tag
#: expression itself is user-programmable (arXiv:1602.06045).
FAMILY_INFO["programmable"] = DisciplineInfo(
    name="Programmable PIFO (rank functions)",
    family="programmable",
    priority="Stream-level dynamic",
    grain="Packet-level fixed",
    input_queue="Priority Queue",
    service_tag_computation="rank expression at enqueue",
    concurrency="Multiple decisions can be pipelined",
)

#: Which family each implemented discipline belongs to.
_FAMILY_OF = {
    "fcfs": "priority-class",
    "static_priority": "priority-class",
    "drr": "fair-queuing",
    "wfq": "fair-queuing",
    "sfq": "fair-queuing",
    "hfs": "fair-queuing",
    "edf": "window-constrained",
    "dwcs": "window-constrained",
}


def create(name: str, **kwargs) -> Discipline:
    """Instantiate a discipline by registry name.

    Names of the form ``pifo:<rank-function>`` instantiate a software
    PIFO (:class:`repro.disciplines.pifo.PifoDiscipline`) driven by the
    named rank function from
    :data:`repro.disciplines.pifo.PIFO_RANK_FUNCTIONS`.
    """
    if name.startswith("pifo:"):
        from repro.disciplines.pifo import PifoDiscipline, rank_function

        return PifoDiscipline(rank_function(name[len("pifo:"):]), **kwargs)
    try:
        cls = DISCIPLINES[name]
    except KeyError:
        raise KeyError(
            f"unknown discipline {name!r}; known: {sorted(DISCIPLINES)}"
        ) from None
    return cls(**kwargs)


def info_for(name: str) -> DisciplineInfo:
    """Table 1 family classification for an implemented discipline."""
    if name.startswith("pifo:"):
        return FAMILY_INFO["programmable"]
    return FAMILY_INFO[_FAMILY_OF[name]]
