"""Static-priority (priority-class) scheduling.

The DiffServ-style discipline of Table 1: each stream carries a
time-invariant priority; the scheduler always serves the highest
priority (lowest number) backlogged stream, FIFO within a class.
Minimizes weighted mean delay for non-time-constrained traffic
(Section 2) but starves low-priority streams under load — the behavior
the fair-share experiments contrast against.
"""

from __future__ import annotations

from collections import deque

from repro.disciplines.base import Discipline, Packet, SwStream

__all__ = ["StaticPriority"]


class StaticPriority(Discipline):
    """Strict priority with FIFO service within each priority class."""

    name = "static_priority"

    def __init__(self) -> None:
        super().__init__()
        self._queues: dict[int, deque[Packet]] = {}
        self._by_priority: list[tuple[int, int]] = []  # (priority, stream_id)

    def _on_stream_added(self, stream: SwStream) -> None:
        self._queues[stream.stream_id] = deque()
        self._by_priority.append((stream.priority, stream.stream_id))
        self._by_priority.sort()

    def enqueue(self, packet: Packet) -> None:
        self._queues[packet.stream_id].append(packet)
        self._note_enqueued()

    def dequeue(self, now: float) -> Packet | None:
        for _, sid in self._by_priority:
            queue = self._queues[sid]
            if queue:
                self._note_dequeued()
                return queue.popleft()
        return None
