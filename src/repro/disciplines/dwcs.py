"""Reference software DWCS (Dynamic Window-Constrained Scheduling).

Pure-software implementation of the discipline the paper maps onto the
canonical architecture (Section 4.3, citing West et al. [26, 27]).
Each stream carries a request period ``T`` and a window-constraint
``W = x/y`` (at most ``x`` late/lost packets per window of ``y``).
Every decision:

1. streams are ordered pairwise by Table 2's rules (earliest deadline;
   ties → lowest current constraint ``x'/y'``; zero constraints →
   highest denominator; equal non-zero constraints → lowest numerator;
   otherwise FCFS);
2. the winner's head packet is transmitted and its window counters get
   the *winner* adjustment;
3. every other stream whose head deadline has passed gets the *loser*
   adjustment (priority effectively raised) and, when packets are
   droppable, sheds its late head.

The adjustment semantics follow the reconstruction documented in
DESIGN.md, shared with :mod:`repro.core.register_block`; this module is
deliberately an *independent* implementation (selection by sorting with
a key, not a comparator network) so the cross-validation tests compare
two formulations of the same rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.disciplines.base import Discipline, Packet, SwStream

__all__ = ["DWCS", "WindowState"]


@dataclass(slots=True)
class WindowState:
    """Current window counters ``(x', y')`` plus the original ``(x, y)``."""

    x: int
    y: int
    x_cur: int = field(default=-1)
    y_cur: int = field(default=-1)
    violations: int = 0
    misses: int = 0
    resets: int = 0

    def __post_init__(self) -> None:
        if self.x_cur < 0:
            self.x_cur = self.x
        if self.y_cur < 0:
            self.y_cur = self.y

    @property
    def constraint(self) -> float:
        """Current loss-tolerance ratio ``W' = x'/y'`` (0 when y' == 0)."""
        return self.x_cur / self.y_cur if self.y_cur else 0.0

    @property
    def zero(self) -> bool:
        """Whether the current constraint counts as zero for rule 3."""
        return self.x_cur == 0 or self.y_cur == 0

    def _reset(self) -> None:
        self.x_cur = self.x
        self.y_cur = self.y
        self.resets += 1

    def on_time_service(self) -> None:
        """Winner adjustment: window consumed one on-time packet."""
        if self.y_cur > 0:
            self.y_cur -= 1
        if self.y_cur == 0 or self.y_cur <= self.x_cur:
            self._reset()

    def missed_deadline(self) -> None:
        """Loser adjustment: a packet was late/lost in the window."""
        self.misses += 1
        if self.x_cur > 0:
            self.x_cur -= 1
            if self.y_cur > 0:
                self.y_cur -= 1
            if self.y_cur == 0 or self.x_cur == self.y_cur:
                self._reset()
        else:
            self.violations += 1
            self.y_cur = min(self.y_cur + 1, 255)


class DWCS(Discipline):
    """Reference DWCS scheduler over per-stream FIFO queues.

    Parameters
    ----------
    drop_late:
        When true, a stream whose head packet misses its deadline drops
        that packet (loss-tolerant media semantics); when false the
        late packet stays queued until serviced (late delivery).
    """

    name = "dwcs"

    def __init__(self, *, drop_late: bool = False) -> None:
        super().__init__()
        self.drop_late = drop_late
        self._queues: dict[int, deque[Packet]] = {}
        self.windows: dict[int, WindowState] = {}
        self.dropped: list[Packet] = []

    def _on_stream_added(self, stream: SwStream) -> None:
        self._queues[stream.stream_id] = deque()
        self.windows[stream.stream_id] = WindowState(
            x=stream.loss_numerator, y=stream.loss_denominator
        )

    def enqueue(self, packet: Packet) -> None:
        if packet.deadline is None:
            raise ValueError("DWCS requires packets to carry deadlines")
        self._queues[packet.stream_id].append(packet)
        self._note_enqueued()

    # ------------------------------------------------------------------

    def _selection_key(self, sid: int, now: float):
        """Total-order key equivalent to Table 2 (see core.rules)."""
        head = self._queues[sid][0]
        win = self.windows[sid]
        return (
            head.deadline,
            win.constraint,
            -win.y_cur if win.zero else 0,
            0 if win.zero else win.x_cur,
            head.arrival,
            sid,
        )

    def select(self, now: float) -> int | None:
        """Stream ID the Table 2 rules pick at time ``now`` (no side effects)."""
        backlogged = [sid for sid, q in self._queues.items() if q]
        if not backlogged:
            return None
        return min(backlogged, key=lambda sid: self._selection_key(sid, now))

    def dequeue(self, now: float) -> Packet | None:
        """One full DWCS decision: select, transmit, adjust windows."""
        winner_sid = self.select(now)
        if winner_sid is None:
            return None
        packet = self._queues[winner_sid].popleft()
        self._note_dequeued()
        window = self.windows[winner_sid]
        if packet.deadline is not None and packet.deadline < now:
            window.missed_deadline()
        else:
            window.on_time_service()
        self._advance_losers(now, winner_sid)
        return packet

    def _advance_losers(self, now: float, winner_sid: int) -> None:
        """Apply loser adjustments to streams whose heads are late."""
        for sid, queue in self._queues.items():
            if sid == winner_sid or not queue:
                continue
            head = queue[0]
            if head.deadline is not None and head.deadline < now:
                self.windows[sid].missed_deadline()
                if self.drop_late:
                    self.dropped.append(queue.popleft())
                    self._note_dequeued()

    def missed_deadlines(self, sid: int) -> int:
        """Missed-deadline count for one stream (Table 3's counter)."""
        return self.windows[sid].misses
