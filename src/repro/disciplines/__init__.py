"""Pure-software reference scheduling disciplines (baselines/oracles)."""

from repro.disciplines.analysis import (
    DROPPED,
    LATE,
    ON_TIME,
    ConstraintChecker,
    PacketOutcome,
    StreamAudit,
)
from repro.disciplines.base import Discipline, DisciplineInfo, Packet, SwStream
from repro.disciplines.drr import DRR
from repro.disciplines.dwcs import DWCS, WindowState
from repro.disciplines.edf import EDF
from repro.disciplines.fair_queuing import SFQ, WFQ
from repro.disciplines.fcfs import FCFS
from repro.disciplines.hfsc import ClassNode, HierarchicalFairShare
from repro.disciplines.pifo import (
    PIFO_RANK_FUNCTIONS,
    PifoDiscipline,
    RankFunction,
    attr,
    emax,
    emin,
    rank_function,
    register_rank_function,
)
from repro.disciplines.registry import DISCIPLINES, FAMILY_INFO, create, info_for
from repro.disciplines.static_priority import StaticPriority

__all__ = [
    "ClassNode",
    "ConstraintChecker",
    "DISCIPLINES",
    "HierarchicalFairShare",
    "DROPPED",
    "DRR",
    "DWCS",
    "Discipline",
    "DisciplineInfo",
    "EDF",
    "FAMILY_INFO",
    "FCFS",
    "LATE",
    "ON_TIME",
    "PIFO_RANK_FUNCTIONS",
    "Packet",
    "PacketOutcome",
    "PifoDiscipline",
    "RankFunction",
    "SFQ",
    "StaticPriority",
    "StreamAudit",
    "SwStream",
    "WFQ",
    "WindowState",
    "attr",
    "create",
    "emax",
    "emin",
    "info_for",
    "rank_function",
    "register_rank_function",
]
