"""Service-tag fair-queuing disciplines: WFQ and SFQ.

Fair-queuing schedulers (Table 1, middle column; Demers et al. [6],
Zhang [29]) assign each arriving packet a *service tag* — a virtual
start or finish time — and always transmit the packet with the least
tag.  Tags never change once computed, which is exactly why the
canonical architecture can map these disciplines using only the LOAD
and SCHEDULE states (Section 4.3): the deadline field carries the tag
and the PRIORITY_UPDATE cycle is bypassed.

* :class:`WFQ` — Weighted Fair Queuing: finish-time tags
  ``F = max(F_prev, V(t)) + L / w`` against a virtual time ``V`` that
  advances at rate ``1 / sum(active weights)`` per unit of service.
* :class:`SFQ` — Start-time Fair Queuing (the discipline in the Click
  comparison of Section 5.2): start-time tags
  ``S = max(V(t), F_prev)``, ``F = S + L / w``, with virtual time set
  to the start tag of the packet in service — cheap to compute and
  robust to rate fluctuation.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

from repro.disciplines.base import Discipline, Packet, SwStream

__all__ = ["WFQ", "SFQ"]


class _TaggedFQ(Discipline):
    """Shared machinery: per-stream FIFOs + a tag-ordered heap of heads."""

    def __init__(self) -> None:
        super().__init__()
        self._queues: dict[int, deque[Packet]] = {}
        self._finish: dict[int, float] = {}
        self._heap: list[tuple[float, float, int, int, Packet]] = []
        self._counter = itertools.count()
        self.virtual_time = 0.0

    def _on_stream_added(self, stream: SwStream) -> None:
        self._queues[stream.stream_id] = deque()
        self._finish[stream.stream_id] = 0.0

    def _push_head(self, packet: Packet) -> None:
        # Tag ties resolve FCFS (arrival, then a stable counter) — the
        # same rule-5 fallback the Decision blocks apply (Table 2).
        heapq.heappush(
            self._heap,
            (
                packet.tag,
                packet.arrival,
                next(self._counter),
                packet.stream_id,
                packet,
            ),
        )

    def enqueue(self, packet: Packet) -> None:
        stream = self.streams.get(packet.stream_id)
        if stream is None:
            raise KeyError(f"unknown stream {packet.stream_id}")
        queue = self._queues[packet.stream_id]
        was_empty = not queue
        self._tag_packet(packet, stream, head_of_line=was_empty)
        queue.append(packet)
        if was_empty:
            self._push_head(packet)
        self._note_enqueued()

    def dequeue(self, now: float) -> Packet | None:
        while self._heap:
            _, _, _, sid, packet = heapq.heappop(self._heap)
            queue = self._queues[sid]
            if not queue or queue[0] is not packet:
                continue  # stale heap entry
            queue.popleft()
            self._note_dequeued()
            self._on_service(packet)
            if queue:
                head = queue[0]
                self._retag_head(head, self.streams[sid])
                self._push_head(head)
            return packet
        return None

    # hooks -------------------------------------------------------------

    def _tag_packet(self, packet: Packet, stream: SwStream, head_of_line: bool) -> None:
        raise NotImplementedError

    def _retag_head(self, packet: Packet, stream: SwStream) -> None:
        """Recompute the tag when a queued packet becomes head-of-line."""

    def _on_service(self, packet: Packet) -> None:
        """Advance virtual time as the packet enters service."""


class WFQ(_TaggedFQ):
    """Weighted Fair Queuing with finish-time tags."""

    name = "wfq"

    def _tag_packet(self, packet: Packet, stream: SwStream, head_of_line: bool) -> None:
        start = max(self._finish[stream.stream_id], self.virtual_time)
        finish = start + packet.length / stream.weight
        self._finish[stream.stream_id] = finish
        packet.tag = finish

    def _on_service(self, packet: Packet) -> None:
        active_weight = sum(
            self.streams[sid].weight
            for sid, q in self._queues.items()
            if q or sid == packet.stream_id
        )
        self.virtual_time += packet.length / max(active_weight, 1e-12)


class SFQ(_TaggedFQ):
    """Start-time Fair Queuing with start-time tags."""

    name = "sfq"

    def _tag_packet(self, packet: Packet, stream: SwStream, head_of_line: bool) -> None:
        start = max(self._finish[stream.stream_id], self.virtual_time)
        self._finish[stream.stream_id] = start + packet.length / stream.weight
        packet.tag = start

    def _on_service(self, packet: Packet) -> None:
        # SFQ sets virtual time to the start tag of the packet in service.
        self.virtual_time = max(self.virtual_time, packet.tag)
