"""Random Early Detection (RED) queue management.

Section 5.2's commercial comparator — the Cisco GSR 12000 line-card —
is "capable of wire-speed QoS using deficit round-robin (DRR) and
Random Early Detect (RED) policies" with 8 queues per port.  RED is
the active-queue-management half of that: arriving packets are dropped
probabilistically as the *average* queue depth (an EWMA) moves between
a minimum and maximum threshold, signalling congestion early.

Classic Floyd/Jacobson formulation:

* ``avg = (1 - wq) * avg + wq * q`` per arrival (with an idle-time
  decay when the queue drained);
* below ``min_th``: never drop; above ``max_th``: always drop;
* between: drop with ``p_b = max_p * (avg - min_th)/(max_th - min_th)``,
  inflated by the count of packets since the last drop,
  ``p_a = p_b / (1 - count * p_b)``, spacing drops evenly.

Deterministic given a seed, so the comparison experiments reproduce.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.disciplines.base import Packet

__all__ = ["REDStats", "REDQueue"]


@dataclass(slots=True)
class REDStats:
    """Drop/acceptance accounting for one RED queue."""

    accepted: int = 0
    dropped_early: int = 0
    dropped_forced: int = 0
    dropped_full: int = 0

    @property
    def offered(self) -> int:
        """Total arrivals."""
        return (
            self.accepted
            + self.dropped_early
            + self.dropped_forced
            + self.dropped_full
        )

    @property
    def drop_rate(self) -> float:
        """Fraction of arrivals dropped."""
        offered = self.offered
        dropped = offered - self.accepted
        return dropped / offered if offered else 0.0


class REDQueue:
    """One FIFO queue guarded by RED admission.

    Parameters
    ----------
    min_th, max_th:
        Average-depth thresholds (packets).
    max_p:
        Drop probability at ``max_th``.
    wq:
        EWMA weight for the average queue size.
    capacity:
        Hard limit (tail drop beyond it).
    rng:
        Seedable random source.
    """

    def __init__(
        self,
        min_th: int = 5,
        max_th: int = 15,
        *,
        max_p: float = 0.1,
        wq: float = 0.002,
        capacity: int = 64,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        if not 0 < wq <= 1:
            raise ValueError("wq must be in (0, 1]")
        if capacity < max_th:
            raise ValueError("capacity must be at least max_th")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.wq = wq
        self.capacity = capacity
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self._queue: deque[Packet] = deque()
        self.avg = 0.0
        self._count = -1  # packets since last drop (-1 = none pending)
        self._idle_since: float | None = 0.0
        self.stats = REDStats()

    def __len__(self) -> int:
        return len(self._queue)

    def _update_avg(self, now: float) -> None:
        q = len(self._queue)
        if q == 0 and self._idle_since is not None:
            # Idle decay: average halves roughly every 1/wq idle slots.
            idle = max(0.0, now - self._idle_since)
            self.avg *= (1 - self.wq) ** idle
        self.avg = (1 - self.wq) * self.avg + self.wq * q

    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        """Offer one packet; returns False when RED (or the hard cap)
        dropped it."""
        self._update_avg(now)
        if len(self._queue) >= self.capacity:
            self.stats.dropped_full += 1
            return False
        if self.avg >= self.max_th:
            self.stats.dropped_forced += 1
            self._count = 0
            return False
        if self.avg > self.min_th:
            self._count += 1
            p_b = self.max_p * (self.avg - self.min_th) / (
                self.max_th - self.min_th
            )
            denom = 1.0 - self._count * p_b
            p_a = p_b / denom if denom > 0 else 1.0
            if self._rng.random() < p_a:
                self.stats.dropped_early += 1
                self._count = 0
                return False
        else:
            self._count = -1
        self._queue.append(packet)
        self.stats.accepted += 1
        self._idle_since = None
        return True

    def dequeue(self, now: float = 0.0) -> Packet | None:
        """Remove the head packet."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        if not self._queue:
            self._idle_since = now
        return packet

    def peek(self) -> Packet | None:
        """Head packet without removal."""
        return self._queue[0] if self._queue else None
