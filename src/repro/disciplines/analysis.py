"""Window-constraint satisfaction analysis over service traces.

DWCS's service guarantee is *window-constrained*: for stream ``i`` with
constraint ``W_i = x_i / y_i``, **no more than** ``x_i`` packets may be
lost or serviced late in any window of ``y_i`` consecutive packets of
the stream (Section 2).  The schedulers in this repository adjust
window counters to chase that guarantee; this module provides the
independent *checker* that audits whether a produced schedule actually
honored it — the verification half the paper's counters imply.

:class:`ConstraintChecker` consumes a per-stream trace of packet
outcomes (on-time / late / dropped) and reports, per stream:

* the number of violating windows (sliding, per the (m,k)-firm
  definition the paper cites [8]),
* the worst window (most losses in any ``y`` consecutive packets),
* loss statistics.

Vectorized with a sliding-window sum so auditing 64000-packet traces
is instant (profile-first guidance: the checker runs inside property
tests and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ON_TIME",
    "LATE",
    "DROPPED",
    "PacketOutcome",
    "StreamAudit",
    "ConstraintChecker",
]

#: Outcome codes for a packet in a stream's trace.
ON_TIME = 0
LATE = 1
DROPPED = 2


@dataclass(frozen=True, slots=True)
class PacketOutcome:
    """One packet's fate in the audited schedule."""

    stream_id: int
    seq: int
    outcome: int  # ON_TIME / LATE / DROPPED

    def __post_init__(self) -> None:
        if self.outcome not in (ON_TIME, LATE, DROPPED):
            raise ValueError(f"unknown outcome code {self.outcome}")


@dataclass(frozen=True, slots=True)
class StreamAudit:
    """Constraint-satisfaction verdict for one stream."""

    stream_id: int
    x: int
    y: int
    packets: int
    losses: int
    violating_windows: int
    worst_window_losses: int

    @property
    def satisfied(self) -> bool:
        """Whether every window met the constraint."""
        return self.violating_windows == 0

    @property
    def loss_rate(self) -> float:
        """Overall fraction of late/dropped packets."""
        return self.losses / self.packets if self.packets else 0.0


class ConstraintChecker:
    """Audits service traces against per-stream window constraints.

    Parameters
    ----------
    constraints:
        ``stream_id -> (x, y)``: at most ``x`` losses per ``y``
        consecutive packets.  ``y == 0`` means unconstrained.
    """

    def __init__(self, constraints: dict[int, tuple[int, int]]) -> None:
        for sid, (x, y) in constraints.items():
            if x < 0 or y < 0:
                raise ValueError(f"stream {sid}: negative constraint terms")
            if y and x > y:
                raise ValueError(f"stream {sid}: x > y in constraint")
        self.constraints = dict(constraints)
        self._traces: dict[int, list[int]] = {sid: [] for sid in constraints}

    def record(self, stream_id: int, outcome: int) -> None:
        """Append one packet outcome to a stream's trace."""
        if stream_id not in self._traces:
            raise KeyError(f"no constraint registered for stream {stream_id}")
        if outcome not in (ON_TIME, LATE, DROPPED):
            raise ValueError(f"unknown outcome code {outcome}")
        self._traces[stream_id].append(outcome)

    def record_outcome(self, packet: PacketOutcome) -> None:
        """Append one :class:`PacketOutcome`."""
        self.record(packet.stream_id, packet.outcome)

    def extend(self, stream_id: int, outcomes) -> None:
        """Append a batch of outcome codes."""
        for outcome in outcomes:
            self.record(stream_id, int(outcome))

    # ------------------------------------------------------------------

    def audit_stream(self, stream_id: int) -> StreamAudit:
        """Audit one stream's full trace (sliding windows of size y)."""
        x, y = self.constraints[stream_id]
        trace = np.asarray(self._traces[stream_id], dtype=np.int8)
        lost = (trace != ON_TIME).astype(np.int32)
        losses = int(lost.sum())
        if y == 0 or len(trace) < y:
            # Unconstrained, or not enough packets for a full window.
            worst = losses if y == 0 or len(trace) else 0
            return StreamAudit(
                stream_id=stream_id,
                x=x,
                y=y,
                packets=len(trace),
                losses=losses,
                violating_windows=0,
                worst_window_losses=min(worst, losses),
            )
        # Sliding-window loss counts via cumulative sums (vectorized).
        cumulative = np.concatenate(([0], np.cumsum(lost)))
        window_losses = cumulative[y:] - cumulative[:-y]
        return StreamAudit(
            stream_id=stream_id,
            x=x,
            y=y,
            packets=len(trace),
            losses=losses,
            violating_windows=int((window_losses > x).sum()),
            worst_window_losses=int(window_losses.max()),
        )

    def audit(self) -> dict[int, StreamAudit]:
        """Audit every registered stream."""
        return {sid: self.audit_stream(sid) for sid in self.constraints}

    @property
    def all_satisfied(self) -> bool:
        """Whether every stream's constraint held over its whole trace."""
        return all(a.satisfied for a in self.audit().values())
