"""Bounded, category-tagged event log (absorbed from ``repro.sim.trace``).

The paper's evaluation reasons about *sequences* — which stream won
each decision cycle, when each transfer fired, when each frame hit the
wire.  :class:`TraceLog` is a lightweight, category-tagged event log
the components can share: bounded (ring semantics so long runs don't
exhaust memory), filterable, and renderable as a text timeline for
debugging experiment drivers.

This module is the home of the legacy free-form log; the structured,
engine-emitted decision trace lives in
:mod:`repro.observability.events`.  ``repro.sim.trace`` re-exports
these names for backward compatibility.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence."""

    time: float
    category: str
    message: str
    data: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Look up one attached datum."""
        for k, v in self.data:
            if k == key:
                return v
        return default


class TraceLog:
    """Bounded, category-tagged event log.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are evicted FIFO.
    enabled_categories:
        If given, only these categories are recorded (cheap filtering
        at the source).
    """

    def __init__(
        self,
        capacity: int = 100_000,
        *,
        enabled_categories: Iterable[str] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled = (
            frozenset(enabled_categories) if enabled_categories else None
        )
        self._category_counts: dict[str, int] = {}
        self.dropped = 0
        self.recorded = 0

    def emit(
        self, time: float, category: str, message: str, **data: Any
    ) -> None:
        """Record one event (no-op for disabled categories)."""
        if self._enabled is not None and category not in self._enabled:
            return
        if len(self._events) == self._events.maxlen:
            evicted = self._events[0]
            self.dropped += 1
            remaining = self._category_counts.get(evicted.category, 1) - 1
            if remaining:
                self._category_counts[evicted.category] = remaining
            else:
                self._category_counts.pop(evicted.category, None)
        self._events.append(
            TraceEvent(
                time=time,
                category=category,
                message=message,
                data=tuple(sorted(data.items())),
            )
        )
        self._category_counts[category] = (
            self._category_counts.get(category, 0) + 1
        )
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """All retained events, optionally filtered by category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def categories(self) -> dict[str, int]:
        """Retained event count per category (O(1), kept incrementally)."""
        return dict(self._category_counts)

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= time < end``."""
        return [e for e in self._events if start <= e.time < end]

    def render(self, *, limit: int = 50) -> str:
        """Text timeline of the most recent ``limit`` events."""
        lines = []
        events = list(self._events)[-limit:]
        for e in events:
            extra = (
                " " + " ".join(f"{k}={v}" for k, v in e.data) if e.data else ""
            )
            lines.append(f"[{e.time:>12.3f}] {e.category:<12} {e.message}{extra}")
        if self.dropped:
            lines.append(f"... ({self.dropped} older events evicted)")
        return "\n".join(lines)

    def clear(self) -> None:
        """Discard all retained events *and* every retained counter.

        A log is routinely shared across :class:`repro.sim.engine.Simulator`
        reuses; the reset covers the ring, the eviction/recorded
        counters and the incremental per-category counts together so a
        cleared log is indistinguishable from a fresh one (no counter
        leakage between runs).
        """
        # Build-then-swap: the new state is installed in one tuple
        # assignment so no reader interleaved between statements can
        # observe a half-cleared log.
        fresh_events: deque[TraceEvent] = deque(maxlen=self._events.maxlen)
        self._events, self._category_counts, self.dropped, self.recorded = (
            fresh_events,
            {},
            0,
            0,
        )
