"""Structured decision-trace recorder (the engine-emitted event stream).

Every decision cycle of either engine —
:class:`~repro.core.scheduler.ShareStreamsScheduler` or
:class:`~repro.core.batch_engine.BatchScheduler` — produces one
:class:`~repro.core.scheduler.DecisionOutcome`.  The recorder flattens
each outcome into a canonical sequence of :class:`DecisionEvent`
records:

* one ``decide`` event per cycle (emitted block, circulated winner,
  serviced slots in transmission order, hardware cycles consumed);
* one ``miss`` event per missed-deadline registration;
* one ``drop`` event per packet shed by the drop-late policy.

The flattening is *engine-agnostic and deterministic*, so two engines
that agree on every outcome produce **byte-identical** serialized
traces — which is exactly what the trace-equivalence differential mode
(:func:`repro.core.differential.cross_validate_traces`) asserts, and
what the golden trace vector under ``tests/golden/`` pins.

Events are kept in a bounded ring (old events evicted FIFO) so
telemetry never exhausts memory on long runs; eviction is counted, and
serialization of a truncated trace refuses by default to avoid silent
partial-trace comparisons.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

__all__ = [
    "DecisionEvent",
    "TraceRecorder",
    "events_from_outcome",
    "serialize_events",
    "deserialize_events",
]

#: Recognized event kinds, in per-cycle emission order.
EVENT_KINDS = ("decide", "miss", "drop")


@dataclass(frozen=True, slots=True)
class DecisionEvent:
    """One structured telemetry event.

    Attributes
    ----------
    seq:
        Monotone sequence number within the recording (0-based).
    now:
        Scheduler time of the decision cycle that produced the event.
    kind:
        ``"decide"``, ``"miss"`` or ``"drop"``.
    sid:
        Circulated winner for ``decide`` (``None`` when idle); the
        affected stream for ``miss``/``drop``.
    block:
        Emitted block in priority order (``decide`` only, else empty).
    serviced:
        Stream IDs consumed this cycle in transmission order
        (``decide`` only, else empty).
    deadline:
        Shed packet's deadline (``drop`` only, else ``None``).
    hw_cycles:
        Hardware cycles the decision consumed (``decide`` only, else 0).
    """

    seq: int
    now: int
    kind: str
    sid: int | None
    block: tuple[int, ...] = ()
    serviced: tuple[int, ...] = ()
    deadline: int | None = None
    hw_cycles: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (tuples become lists)."""
        return {
            "seq": self.seq,
            "now": self.now,
            "kind": self.kind,
            "sid": self.sid,
            "block": list(self.block),
            "serviced": list(self.serviced),
            "deadline": self.deadline,
            "hw_cycles": self.hw_cycles,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DecisionEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seq=d["seq"],
            now=d["now"],
            kind=d["kind"],
            sid=d["sid"],
            block=tuple(d["block"]),
            serviced=tuple(d["serviced"]),
            deadline=d["deadline"],
            hw_cycles=d["hw_cycles"],
        )

    def canonical_line(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def events_from_outcome(outcome, start_seq: int = 0) -> list[DecisionEvent]:
    """Flatten one ``DecisionOutcome`` into its event sequence.

    The emission order is fixed (decide, then misses in slot order,
    then drops in shed order) — both engines report misses/drops in
    slot/shed order already, so the flattening is deterministic.
    """
    seq = start_seq
    events = [
        DecisionEvent(
            seq=seq,
            now=int(outcome.now),
            kind="decide",
            sid=outcome.circulated_sid,
            block=tuple(outcome.block),
            serviced=tuple(sid for sid, _pkt in outcome.serviced),
            hw_cycles=int(outcome.hw_cycles),
        )
    ]
    for sid in outcome.misses:
        seq += 1
        events.append(
            DecisionEvent(seq=seq, now=int(outcome.now), kind="miss", sid=sid)
        )
    for sid, packet in outcome.dropped:
        seq += 1
        events.append(
            DecisionEvent(
                seq=seq,
                now=int(outcome.now),
                kind="drop",
                sid=sid,
                deadline=int(packet.deadline),
            )
        )
    return events


def serialize_events(events: Iterable[DecisionEvent]) -> bytes:
    """Canonical byte serialization (one JSON object per line)."""
    lines = [e.canonical_line() for e in events]
    return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")


def deserialize_events(data: bytes | str) -> list[DecisionEvent]:
    """Inverse of :func:`serialize_events`."""
    text = data.decode("utf-8") if isinstance(data, bytes) else data
    return [
        DecisionEvent.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


class TraceRecorder:
    """Ring-buffered structured decision-trace recorder.

    Implements the engine hook protocol (:meth:`on_decision`), so it
    can be passed directly as ``observer=`` to either engine or
    composed through :class:`repro.observability.Observability`.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are evicted FIFO (the
        eviction count is kept so truncation is never silent).
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._events: deque[DecisionEvent] = deque(maxlen=capacity)
        self.recorded = 0
        self.evicted = 0
        self._next_seq = 0

    # -- hook protocol -------------------------------------------------

    def on_decision(self, outcome) -> None:
        """Record one decision cycle's events."""
        for event in events_from_outcome(outcome, start_seq=self._next_seq):
            if len(self._events) == self._events.maxlen:
                self.evicted += 1
            self._events.append(event)
            self.recorded += 1
            self._next_seq += 1

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DecisionEvent]:
        return iter(self._events)

    def events(self, kind: str | None = None) -> list[DecisionEvent]:
        """Retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Retained event count per kind."""
        counts: dict[str, int] = {}
        for e in self._events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def to_dicts(self) -> list[dict[str, Any]]:
        """Retained events as plain dicts (golden-vector payload)."""
        return [e.to_dict() for e in self._events]

    # -- serialization -------------------------------------------------

    def serialize(self, *, allow_truncated: bool = False) -> bytes:
        """Canonical byte serialization of the retained trace.

        Raises unless ``allow_truncated`` when events were evicted —
        comparing a truncated trace byte-for-byte would silently skip
        the evicted prefix.
        """
        if self.evicted and not allow_truncated:
            raise ValueError(
                f"trace truncated ({self.evicted} events evicted); "
                "raise capacity or pass allow_truncated=True"
            )
        return serialize_events(self._events)

    def render(self, *, limit: int = 30) -> str:
        """Text tail of the trace plus per-kind totals."""
        lines = []
        for e in list(self._events)[-limit:]:
            detail = ""
            if e.kind == "decide":
                detail = (
                    f" winner={e.sid} block={list(e.block)}"
                    f" serviced={list(e.serviced)} hw_cycles={e.hw_cycles}"
                )
            elif e.kind == "miss":
                detail = f" sid={e.sid}"
            elif e.kind == "drop":
                detail = f" sid={e.sid} deadline={e.deadline}"
            lines.append(f"[t={e.now:>8}] {e.kind:<7}{detail}")
        counts = self.kinds()
        summary = " ".join(f"{k}={counts.get(k, 0)}" for k in EVENT_KINDS)
        lines.append(
            f"--- {self.recorded} events recorded ({summary})"
            + (f", {self.evicted} evicted" if self.evicted else "")
        )
        return "\n".join(lines)

    def clear(self) -> None:
        """Discard retained events and reset every counter together."""
        fresh: deque[DecisionEvent] = deque(maxlen=self._events.maxlen)
        self._events, self.recorded, self.evicted, self._next_seq = (
            fresh,
            0,
            0,
            0,
        )
