"""The engine hook protocol and the standard observers.

Both engines (:class:`~repro.core.scheduler.ShareStreamsScheduler` and
:class:`~repro.core.batch_engine.BatchScheduler`) expose one hook: an
optional ``observer`` whose :meth:`~DecisionObserver.on_decision` is
called with the finished
:class:`~repro.core.scheduler.DecisionOutcome` of every decision
cycle.  Because the payload *is* the outcome — the same object the
differential harness already certifies identical across engines — any
observer sees an identical event stream from either engine by
construction, and the guard is a single ``is not None`` test when
telemetry is disabled (the same cost structure as the pre-existing
``trace`` guard).

Observers provided here:

* :class:`LegacyTraceObserver` — adapts the historical
  :class:`~repro.observability.tracelog.TraceLog` ``decide``/``miss``/
  ``drop`` emission (the ``trace=`` keyword both engines keep
  accepting);
* :class:`MetricsObserver` — derives the per-stream scheduling metrics
  (service counts, wins, misses, drops, deadline slack, inter-service
  jitter, hw cycles) into a
  :class:`~repro.observability.metrics.MetricsRegistry`;
* :class:`CompositeObserver` — fan-out to several observers.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Protocol, runtime_checkable

from repro.observability.metrics import MetricsRegistry

__all__ = [
    "DecisionObserver",
    "CompositeObserver",
    "LegacyTraceObserver",
    "MetricsObserver",
    "resolve_observer",
]


@runtime_checkable
class DecisionObserver(Protocol):
    """Anything that can receive per-cycle decision outcomes."""

    def on_decision(self, outcome) -> None:  # pragma: no cover - protocol
        ...


class CompositeObserver:
    """Fan one decision stream out to several observers.

    Delivery policy (tested in ``tests/test_observability_hooks.py``):

    * observers receive every event in **registration order**;
    * a raising observer is **isolated** — its exception is caught and
      recorded (bounded :attr:`errors` list, one ``RuntimeWarning`` per
      offending observer) and the remaining observers still receive the
      event.  Telemetry must never take down the scheduling run, and
      one broken sink must never silence the others;
    * with a ``profiler``, each observer's dispatch is timed as its own
      ``observer[i].<hook>`` phase, and **only the observer's own call**
      sits inside the timed window — error bookkeeping (the bounded
      error list, the warn-once ``RuntimeWarning``) runs outside it, so
      a raising observer cannot skew its own or a sibling's timings.
    """

    __slots__ = ("observers", "errors", "_warned", "profiler")

    #: Retained ``(observer_index, hook_name, exception)`` records.
    MAX_ERRORS = 100

    def __init__(self, observers: Iterable, *, profiler=None) -> None:
        self.observers = tuple(observers)
        self.errors: list[tuple[int, str, BaseException]] = []
        self._warned: set[int] = set()
        self.profiler = profiler

    def _dispatch(self, index, obs, hook_name, call) -> None:
        exc: Exception | None = None
        if self.profiler is None:
            try:
                call()
            except Exception as e:  # noqa: BLE001 - isolation is the point
                exc = e
        else:
            with self.profiler.phase(f"observer[{index}].{hook_name}"):
                try:
                    call()
                except Exception as e:  # noqa: BLE001 - isolation is the point
                    exc = e
        if exc is None:
            return
        # Outside any timed phase: the cost of recording/warning about a
        # failure is attributed to no observer.
        if len(self.errors) < self.MAX_ERRORS:
            self.errors.append((index, hook_name, exc))
        if index not in self._warned:
            self._warned.add(index)
            warnings.warn(
                f"observer {index} ({type(obs).__name__}) raised in "
                f"{hook_name} and is being isolated: {exc!r}",
                RuntimeWarning,
                stacklevel=3,
            )

    def on_decision(self, outcome) -> None:
        for index, obs in enumerate(self.observers):
            self._dispatch(
                index, obs, "on_decision", lambda: obs.on_decision(outcome)
            )

    def on_run_summary(self, result) -> None:
        """Forward whole-run summaries to observers that accept them."""
        for index, obs in enumerate(self.observers):
            hook = getattr(obs, "on_run_summary", None)
            if hook is not None:
                self._dispatch(
                    index, obs, "on_run_summary", lambda: hook(result)
                )

    def finalize(self) -> None:
        """Forward end-of-run finalization to observers that accept it."""
        for index, obs in enumerate(self.observers):
            hook = getattr(obs, "finalize", None)
            if hook is not None:
                self._dispatch(index, obs, "finalize", hook)


class LegacyTraceObserver:
    """Emit the historical TraceLog event stream from outcomes.

    Reproduces exactly the ``decide`` / ``miss`` / ``drop`` events (and
    their ordering) the engines used to emit inline, so existing
    consumers of ``trace=TraceLog(...)`` observe no change.
    """

    __slots__ = ("log",)

    def __init__(self, log) -> None:
        self.log = log

    def on_decision(self, outcome) -> None:
        now = float(outcome.now)
        self.log.emit(
            now,
            "decide",
            "decision cycle",
            winner=outcome.circulated_sid,
            block=tuple(outcome.block),
            serviced=len(outcome.serviced),
        )
        for sid in outcome.misses:
            self.log.emit(now, "miss", "late head", sid=sid)
        for sid, packet in outcome.dropped:
            self.log.emit(
                now, "drop", "late head shed", sid=sid,
                deadline=packet.deadline,
            )


#: Bucket grids in scheduler time units (powers of two: slack and
#: jitter both span a few orders of magnitude across workloads).
SLACK_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0)
JITTER_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class MetricsObserver:
    """Feed the standard scheduling metrics from decision outcomes.

    Registered metrics (all prefixed, default ``sharestreams``):

    * ``_decisions_total`` — decision cycles observed;
    * ``_idle_cycles_total`` — cycles with no eligible stream;
    * ``_hw_cycles_total`` — modeled hardware cycles consumed;
    * ``_serviced_total{stream}`` / ``_wins_total{stream}`` /
      ``_misses_total{stream}`` / ``_drops_total{stream}``;
    * ``_deadline_slack{stream}`` histogram — ``deadline - now`` of
      each serviced packet (negative = serviced late);
    * ``_inter_service{stream}`` histogram — scheduler-time gap
      between a stream's consecutive services (jitter).

    Invariants the property suite asserts: each histogram's per-stream
    observation count tracks the corresponding counter (slack count ==
    serviced count; inter-service count == serviced count - 1 per
    stream with >= 1 service).
    """

    def __init__(
        self, registry: MetricsRegistry, *, prefix: str = "sharestreams"
    ) -> None:
        self.registry = registry
        self.decisions = registry.counter(
            f"{prefix}_decisions_total", "decision cycles observed"
        )
        self.idle = registry.counter(
            f"{prefix}_idle_cycles_total", "cycles with no eligible stream"
        )
        self.hw_cycles = registry.counter(
            f"{prefix}_hw_cycles_total", "modeled hardware cycles consumed"
        )
        self.serviced = registry.counter(
            f"{prefix}_serviced_total", "packets consumed per stream"
        )
        self.wins = registry.counter(
            f"{prefix}_wins_total", "circulated-winner cycles per stream"
        )
        self.misses = registry.counter(
            f"{prefix}_misses_total", "missed-deadline registrations per stream"
        )
        self.drops = registry.counter(
            f"{prefix}_drops_total", "late packets shed per stream"
        )
        self.slack = registry.histogram(
            f"{prefix}_deadline_slack",
            "deadline minus service time per serviced packet",
            buckets=SLACK_BUCKETS,
        )
        self.inter_service = registry.histogram(
            f"{prefix}_inter_service",
            "scheduler-time gap between consecutive services per stream",
            buckets=JITTER_BUCKETS,
        )
        self._last_service: dict[int, int] = {}

    def on_decision(self, outcome) -> None:
        self.decisions.inc()
        self.hw_cycles.inc(outcome.hw_cycles)
        if outcome.circulated_sid is None:
            self.idle.inc()
        else:
            self.wins.inc(stream=outcome.circulated_sid)
        now = int(outcome.now)
        for sid, packet in outcome.serviced:
            self.serviced.inc(stream=sid)
            self.slack.observe(packet.deadline - now, stream=sid)
            last = self._last_service.get(sid)
            if last is not None:
                self.inter_service.observe(now - last, stream=sid)
            self._last_service[sid] = now
        for sid in outcome.misses:
            self.misses.inc(stream=sid)
        for sid, _packet in outcome.dropped:
            self.drops.inc(stream=sid)


def resolve_observer(trace, observer):
    """Combine the legacy ``trace=`` keyword with an explicit observer.

    Returns a single observer (or ``None``) for the engines to guard
    on; the explicit observer sees each outcome first.
    """
    observers = []
    if observer is not None:
        observers.append(observer)
    if trace is not None:
        observers.append(LegacyTraceObserver(trace))
    if not observers:
        return None
    if len(observers) == 1:
        return observers[0]
    return CompositeObserver(observers)
