"""Refreshing terminal dashboard for live conformance monitoring.

Renders the state of a :class:`~repro.observability.monitor.ConformanceMonitor`
as a fixed-layout text frame — per-stream rollup table of the latest
window, recent-window summary strip, and the active-violation list —
and redraws it as windows close.  Frames are plain strings, so the
renderer is testable without a terminal; the driver only decides *how*
to emit them (ANSI home+clear on a TTY, frame-per-window append
otherwise, as ``repro monitor`` does).
"""

from __future__ import annotations

import sys
from typing import IO

__all__ = ["Dashboard"]

_CLEAR = "\x1b[H\x1b[2J"


class Dashboard:
    """Turn monitor state into frames and stream them to a writer.

    Parameters
    ----------
    monitor:
        The conformance monitor to render.
    out:
        Destination stream (default: stdout).
    ansi:
        Clear-and-home before each frame (``None`` = auto: only when
        ``out`` is a TTY).
    recent:
        Windows shown in the history strip.
    """

    def __init__(
        self,
        monitor,
        *,
        out: IO[str] | None = None,
        ansi: bool | None = None,
        recent: int = 8,
    ) -> None:
        self.monitor = monitor
        self.out = out if out is not None else sys.stdout
        if ansi is None:
            ansi = bool(getattr(self.out, "isatty", lambda: False)())
        self.ansi = ansi
        self.recent = recent
        self.frames_drawn = 0

    def attach(self) -> "Dashboard":
        """Subscribe to the monitor's rollup stream; returns self."""
        self.monitor.rollup.subscribe(lambda _rollup: self.draw())
        return self

    # -- rendering -----------------------------------------------------

    def render_frame(self) -> str:
        """One complete dashboard frame as text."""
        monitor = self.monitor
        rollup = monitor.rollup.latest
        lines = []
        title = (
            f"ShareStreams conformance monitor — "
            f"window {monitor.rollup.window_cycles} cycles, "
            f"{monitor.rollup.windows_closed} closed, "
            f"{len(monitor.violations)} violation(s)"
        )
        lines.append(title)
        lines.append("=" * len(title))
        if rollup is None:
            lines.append("(no finished window yet)")
            return "\n".join(lines)
        lines.append(
            f"latest window {rollup.index}: cycles "
            f"[{rollup.start_cycle}..{rollup.end_cycle}] "
            f"serviced={rollup.total_serviced} misses={rollup.total_misses} "
            f"drops={rollup.total_drops} idle={rollup.idle_cycles}"
        )
        lines.append(
            f"{'sid':>4} {'serviced':>9} {'share':>7} {'misses':>7} "
            f"{'drops':>6} {'gap p50':>8} {'gap p90':>8} {'gap max':>8} {'slo':>5}"
        )
        violating = {
            v.sid for v in monitor.slo.active(rollup.index)
        }
        for sid, stats in sorted(rollup.streams.items()):
            flag = "FAIL" if sid in violating else (
                "ok" if sid in monitor.slo.slos else "-"
            )
            lines.append(
                f"{sid:>4} {stats.serviced:>9} {stats.service_share:>7.3f} "
                f"{stats.misses:>7} {stats.drops:>6} {stats.gap_p50:>8.1f} "
                f"{stats.gap_p90:>8.1f} {stats.gap_max:>8.1f} {flag:>5}"
            )
        history = list(monitor.rollup.history)[-self.recent :]
        if len(history) > 1:
            strip = " ".join(
                f"w{r.index}:{r.total_misses}m" for r in history
            )
            lines.append(f"recent windows (misses): {strip}")
        active = monitor.slo.active(rollup.index)
        if active:
            lines.append("active violations:")
            for violation in active:
                lines.append("  " + violation.describe())
        if monitor.flight is not None and monitor.flight.dumps:
            lines.append(
                f"flight dumps: {monitor.flight.dumps_written} "
                f"(latest: {monitor.flight.dumps[-1].describe()})"
            )
        return "\n".join(lines)

    def draw(self) -> None:
        """Write one frame to the destination stream."""
        frame = self.render_frame()
        if self.ansi:
            self.out.write(_CLEAR + frame + "\n")
        else:
            self.out.write(frame + "\n\n")
        self.out.flush()
        self.frames_drawn += 1
