"""Live telemetry endpoint: stdlib-``http.server`` Prometheus scrape.

Serves the conformance-monitoring state of a running (or finished)
experiment over HTTP with zero third-party dependencies:

* ``GET /metrics`` — the attached
  :class:`~repro.observability.metrics.MetricsRegistry` in Prometheus
  text exposition format (0.0.4); the output round-trips through the
  strict :func:`~repro.observability.metrics.parse_prometheus_text`
  parser, which the endpoint smoke test asserts;
* ``GET /rollups`` — recent :class:`WindowRollup` records as JSON
  (when a :class:`~repro.observability.monitor.ConformanceMonitor` is
  attached);
* ``GET /violations`` — every recorded ``SloViolation`` as JSON;
* ``GET /spans`` — the attached
  :class:`~repro.observability.spans.SpanTracer`'s span tree as JSON
  (path-sorted, timing included; empty when no tracer is attached);
* ``GET /healthz`` — liveness probe (``ok``).

The server is a ``ThreadingHTTPServer`` on a daemon thread: binding
``port=0`` picks an ephemeral port (exposed as :attr:`TelemetryServer.port`
after :meth:`start`), and :meth:`stop` shuts it down cleanly.  Reads of
registry/monitor state are snapshot-style (render-then-send), which is
safe for the single-threaded simulation loop these attach to.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "sharestreams-telemetry/1.0"

    # set by TelemetryServer on the server instance
    def _telemetry(self):
        return self.server.telemetry  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        telemetry = self._telemetry()
        if path == "/metrics":
            self._send(200, telemetry.metrics_text(), "text/plain; version=0.0.4")
        elif path == "/rollups":
            self._send_json(telemetry.rollups_payload())
        elif path == "/violations":
            self._send_json(telemetry.violations_payload())
        elif path == "/spans":
            self._send_json(telemetry.spans_payload())
        elif path in ("/healthz", "/"):
            self._send(200, "ok\n", "text/plain")
        else:
            self._send(404, "not found\n", "text/plain")

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, payload: Any) -> None:
        self._send(
            200,
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            "application/json",
        )

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (tests and CLI runs)."""


class TelemetryServer:
    """Background HTTP server exposing metrics + conformance state.

    Parameters
    ----------
    registry:
        The metrics registry rendered at ``/metrics``.
    monitor:
        Optional :class:`~repro.observability.monitor.ConformanceMonitor`
        backing ``/rollups`` and ``/violations`` (both return empty
        payloads when absent).
    tracer:
        Optional :class:`~repro.observability.spans.SpanTracer` backing
        ``/spans`` (empty payload when absent).
    host / port:
        Bind address; ``port=0`` selects an ephemeral port.
    """

    def __init__(
        self,
        registry,
        *,
        monitor=None,
        tracer=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.monitor = monitor
        self.tracer = tracer
        self._bind = (host, port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self for chaining."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        httpd = ThreadingHTTPServer(self._bind, _Handler)
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="sharestreams-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The bound port (ephemeral ports resolve after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, _ = self._bind
        return f"http://{host}:{self.port}"

    # -- payload renderers (called from handler threads) ---------------

    def metrics_text(self) -> str:
        """Prometheus text exposition of the attached registry."""
        return self.registry.to_prometheus_text()

    def rollups_payload(self) -> dict[str, Any]:
        """Recent rollup windows as plain JSON."""
        if self.monitor is None:
            return {"windows": []}
        return {
            "window_cycles": self.monitor.rollup.window_cycles,
            "windows_closed": self.monitor.rollup.windows_closed,
            "windows": [r.to_dict() for r in self.monitor.rollup.history],
        }

    def violations_payload(self) -> dict[str, Any]:
        """Every recorded violation as plain JSON."""
        if self.monitor is None:
            return {"violations": []}
        return {
            "windows_evaluated": self.monitor.slo.windows_evaluated,
            "violations": [v.to_dict() for v in self.monitor.violations],
        }

    def spans_payload(self) -> dict[str, Any]:
        """The attached tracer's span tree as plain JSON (path-sorted)."""
        from repro.observability.spans import SPAN_SCHEMA, _path_key

        if self.tracer is None:
            return {"schema": SPAN_SCHEMA, "spans": []}
        rows = sorted(self.tracer.records(), key=lambda r: _path_key(r.path))
        return {
            "schema": SPAN_SCHEMA,
            "trace_id": self.tracer.trace_id,
            "spans": [r.to_dict() for r in rows],
        }
