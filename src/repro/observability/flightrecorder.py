"""Violation flight recorder: always-on trace ring, frozen on breach.

Post-mortem debugging of a QoS violation needs the decision cycles
*leading up to* the breach — but retaining a full event log defeats the
O(streams) memory promise of the monitoring layer.  The flight recorder
keeps only a small ring of the last ``capacity`` decision cycles
(flattened to canonical :class:`~repro.observability.events.DecisionEvent`
records, one global monotone ``seq`` across the whole run); when the
SLO monitor emits a violation, the ring is frozen into an immutable
:class:`FlightDump` — the serialized JSONL is the same canonical format
as :meth:`TraceRecorder.serialize`, so a dump replays through either
engine and compares byte-for-byte (``cross_validate_traces`` style).

Dump cadence is debounced per rollup window: a window that breaches
five objectives produces *one* dump (the ring contents are identical),
tagged with every violation of that window.  Dumps are optionally
mirrored to disk (``dump_dir``) as ``flight-<n>.jsonl`` plus a
``flight-<n>.meta.json`` sidecar describing the triggering violations.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.observability.events import (
    DecisionEvent,
    events_from_outcome,
    serialize_events,
)

__all__ = ["FlightDump", "FlightRecorder"]


@dataclass(frozen=True, slots=True)
class FlightDump:
    """One frozen ring: the last K decision cycles before a violation."""

    index: int  # 0-based dump number within the run
    trigger_window: int  # rollup window index of the first trigger
    events: tuple[DecisionEvent, ...]
    cycles: int  # decision cycles covered by the events
    violations: tuple[Any, ...] = field(default=())  # SloViolation records

    def serialize(self) -> bytes:
        """Canonical JSONL bytes (same format as ``TraceRecorder``)."""
        return serialize_events(self.events)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON metadata (without the event payload)."""
        return {
            "index": self.index,
            "trigger_window": self.trigger_window,
            "cycles": self.cycles,
            "events": len(self.events),
            "violations": [v.to_dict() for v in self.violations],
        }

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        span = ""
        if self.events:
            span = f" t=[{self.events[0].now}..{self.events[-1].now}]"
        return (
            f"dump {self.index}: window {self.trigger_window}, "
            f"{self.cycles} cycles / {len(self.events)} events{span}, "
            f"{len(self.violations)} violation(s)"
        )


class FlightRecorder:
    """Always-on ring of the last K decision cycles, frozen on breach.

    The ring holds whole decision cycles (each cycle is 1..N flattened
    events), so a frozen dump always starts at a cycle boundary and the
    canonical serialization replays cleanly.  ``seq`` numbers are
    globally monotone across the run — two engines producing identical
    outcomes therefore produce byte-identical dumps.

    Parameters
    ----------
    capacity:
        Decision cycles retained in the ring.
    dump_dir:
        When given, each frozen dump is also written there as
        ``flight-<n>.jsonl`` + ``flight-<n>.meta.json``.
    max_dumps:
        Retained in-memory dumps (oldest evicted first); disk files
        are never evicted.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        dump_dir: str | Path | None = None,
        max_dumps: int = 16,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._ring: deque[tuple[DecisionEvent, ...]] = deque(maxlen=capacity)
        self._next_seq = 0
        self.cycles_recorded = 0
        self.dumps: deque[FlightDump] = deque(maxlen=max_dumps)
        self.dumps_written = 0
        # violations accumulated for the current window's (single) dump
        self._pending_window: int | None = None
        self._pending: list[Any] = []

    # -- hook protocol -------------------------------------------------

    def on_decision(self, outcome) -> None:
        """Append one decision cycle's events to the ring.

        A new cycle arriving after a violation flushes the pending dump
        first, so the frozen ring never includes post-breach cycles.
        """
        if self._pending:
            self._freeze()
        events = tuple(
            events_from_outcome(outcome, start_seq=self._next_seq)
        )
        self._next_seq += len(events)
        self._ring.append(events)
        self.cycles_recorded += 1

    def on_violation(self, violation) -> None:
        """Mark the current ring for freezing (debounced per window).

        Violations of the *same* rollup window share one dump; a
        violation from a new window freezes the previous window's dump
        immediately.
        """
        window = violation.window_index
        if self._pending and self._pending_window != window:
            self._freeze()
        self._pending_window = window
        self._pending.append(violation)

    def finalize(self) -> None:
        """Flush a pending dump at end of run."""
        if self._pending:
            self._freeze()

    # -- freezing ------------------------------------------------------

    def _freeze(self) -> FlightDump:
        events = tuple(e for cycle in self._ring for e in cycle)
        dump = FlightDump(
            index=self.dumps_written,
            trigger_window=(
                self._pending_window if self._pending_window is not None else -1
            ),
            events=events,
            cycles=len(self._ring),
            violations=tuple(self._pending),
        )
        self.dumps.append(dump)
        self.dumps_written += 1
        self._pending_window = None
        self._pending.clear()
        if self.dump_dir is not None:
            self._write(dump)
        return dump

    def _write(self, dump: FlightDump) -> None:
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        stem = self.dump_dir / f"flight-{dump.index}"
        stem.with_suffix(".jsonl").write_bytes(dump.serialize())
        stem.with_suffix(".meta.json").write_text(
            json.dumps(dump.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- queries -------------------------------------------------------

    @property
    def latest(self) -> FlightDump | None:
        """Most recent frozen dump, if any."""
        return self.dumps[-1] if self.dumps else None

    def clear(self) -> None:
        """Discard ring contents, pending state and retained dumps."""
        self._ring.clear()
        self._next_seq = 0
        self.cycles_recorded = 0
        self.dumps.clear()
        self.dumps_written = 0
        self._pending_window = None
        self._pending.clear()
