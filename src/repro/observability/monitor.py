"""Online QoS conformance monitoring: SLOs over streaming rollups.

The paper's guarantees are *per-stream contracts* — DWCS tolerates at
most ``x`` misses per window of ``y`` requests, the fair-share runs
promise bandwidth ratios (Figures 8-10), and isolation promises bounded
service gaps under overload.  This module turns those contracts into
declarative :class:`StreamSlo` objectives evaluated online against
every finished :class:`~repro.observability.rollup.WindowRollup`:

* **miss budget** — allowed missed-deadline registrations per rollup
  window (the DWCS ``x`` per ``y`` loss tolerance, rescaled to the
  window);
* **share band** — tolerated ``[min_share, max_share]`` interval of
  the stream's service share (fraction of the window's serviced
  packets), matching the Figure 8/10 targets;
* **max gap** — maximum tolerated inter-service gap in decision
  cycles (including end-of-window staleness, so full starvation is
  caught).

Each breach emits a structured :class:`SloViolation` with a
*burn rate* (how fast the violation budget is being consumed: observed
over threshold; ``inf`` for a zero budget), is recorded, forwarded to
subscribers (the flight recorder freezes on it) and — when a metrics
registry is attached — counted in ``*_slo_violations_total`` and
exposed as a ``*_slo_burn_rate`` gauge for the ``/metrics`` endpoint.

:class:`ConformanceMonitor` bundles rollup + SLO evaluation + flight
recorder behind the single engine hook (``on_decision`` /
``on_run_summary``), so one instance attaches to either engine, the
endsystem router, the line-card or any experiment driver; the batch
engine's vectorized ``run_periodic`` path (no per-cycle events) is
covered by whole-run conformance evaluation in ``on_run_summary``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.observability.flightrecorder import FlightRecorder
from repro.observability.rollup import (
    RollupObserver,
    StreamWindowStats,
    WindowRollup,
)

__all__ = [
    "StreamSlo",
    "SloViolation",
    "SloMonitor",
    "ConformanceMonitor",
    "slos_from_shares",
    "slos_from_streams",
    "violation_from_dict",
]


@dataclass(frozen=True, slots=True)
class StreamSlo:
    """Declarative per-stream service-level objectives.

    Any objective left ``None`` is not evaluated.  ``min_share`` /
    ``max_share`` are evaluated only for windows that serviced at least
    one packet (an all-idle window has no meaningful shares);
    ``max_gap`` is evaluated only for streams with recorded service
    history (a stream that never transmitted cannot be distinguished
    from one with no traffic).
    """

    sid: int
    miss_budget: int | None = None  # allowed misses per rollup window
    min_share: float | None = None  # service-share tolerance band
    max_share: float | None = None
    max_gap: int | None = None  # max inter-service gap (cycles)

    def __post_init__(self) -> None:
        if self.miss_budget is not None and self.miss_budget < 0:
            raise ValueError("miss_budget must be >= 0")
        for name in ("min_share", "max_share"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if (
            self.min_share is not None
            and self.max_share is not None
            and self.min_share > self.max_share
        ):
            raise ValueError("min_share exceeds max_share")
        if self.max_gap is not None and self.max_gap <= 0:
            raise ValueError("max_gap must be positive")

    @property
    def objectives(self) -> tuple[str, ...]:
        """Names of the objectives this SLO actually evaluates."""
        names = []
        if self.miss_budget is not None:
            names.append("miss_budget")
        if self.min_share is not None or self.max_share is not None:
            names.append("share_band")
        if self.max_gap is not None:
            names.append("max_gap")
        return tuple(names)


@dataclass(frozen=True, slots=True)
class SloViolation:
    """One detected SLO breach (structured, serializable).

    ``burn_rate`` is the violation-budget burn: observed over
    threshold (``inf`` when the threshold is zero), or threshold over
    observed for under-delivery objectives (``min_share``) — always
    normalized so > 1 means the budget is being consumed faster than
    the objective allows.
    """

    sid: int
    objective: str  # "miss_budget" | "share_band" | "max_gap"
    observed: float
    threshold: float
    burn_rate: float
    window_index: int
    window_start: int
    window_end: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation."""
        return {
            "sid": self.sid,
            "objective": self.objective,
            "observed": self.observed,
            "threshold": self.threshold,
            "burn_rate": self.burn_rate,
            "window_index": self.window_index,
            "window_start": self.window_start,
            "window_end": self.window_end,
        }

    def canonical_line(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        """Human-readable one-liner for reports and the dashboard."""
        burn = "inf" if math.isinf(self.burn_rate) else f"{self.burn_rate:.2f}"
        return (
            f"window {self.window_index} [{self.window_start}..{self.window_end}] "
            f"stream {self.sid}: {self.objective} observed={self.observed:g} "
            f"threshold={self.threshold:g} burn={burn}x"
        )


def violation_from_dict(data: dict[str, Any]) -> SloViolation:
    """Reconstruct a :class:`SloViolation` from its :meth:`~SloViolation.to_dict` form."""
    return SloViolation(
        sid=int(data["sid"]),
        objective=str(data["objective"]),
        observed=float(data["observed"]),
        threshold=float(data["threshold"]),
        burn_rate=float(data["burn_rate"]),
        window_index=int(data["window_index"]),
        window_start=int(data["window_start"]),
        window_end=int(data["window_end"]),
    )


def _burn(observed: float, threshold: float) -> float:
    if threshold <= 0:
        return math.inf if observed > 0 else 0.0
    return observed / threshold


_EMPTY_STATS_FIELDS = dict(
    serviced=0, wins=0, misses=0, drops=0, service_share=0.0,
    service_rate=0.0, miss_rate=0.0, drop_rate=0.0,
    gap_p50=0.0, gap_p90=0.0, gap_max=0.0,
)


class SloMonitor:
    """Evaluate declarative SLOs against finished rollup windows.

    Parameters
    ----------
    slos:
        One :class:`StreamSlo` per monitored stream (duplicates rejected).
    registry:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        when given, violations are counted in
        ``{prefix}_slo_violations_total{stream,objective}`` and the
        latest per-objective burn rates exposed as
        ``{prefix}_slo_burn_rate{stream,objective}`` gauges.
    """

    def __init__(
        self,
        slos: Iterable[StreamSlo] = (),
        *,
        registry=None,
        prefix: str = "sharestreams",
    ) -> None:
        self.slos: dict[int, StreamSlo] = {}
        for slo in slos:
            if slo.sid in self.slos:
                raise ValueError(f"duplicate SLO for stream {slo.sid}")
            self.slos[slo.sid] = slo
        self.violations: list[SloViolation] = []
        self.windows_evaluated = 0
        self._subscribers: list[Callable[[SloViolation], None]] = []
        self._violation_counter = None
        self._burn_gauge = None
        if registry is not None:
            self._violation_counter = registry.counter(
                f"{prefix}_slo_violations_total",
                "SLO breaches per stream and objective",
            )
            self._burn_gauge = registry.gauge(
                f"{prefix}_slo_burn_rate",
                "latest violation-budget burn rate per stream and objective",
            )

    def subscribe(self, callback: Callable[[SloViolation], None]) -> None:
        """Register a callback invoked with every emitted violation."""
        self._subscribers.append(callback)

    # -- evaluation ----------------------------------------------------

    def on_rollup(self, rollup: WindowRollup) -> list[SloViolation]:
        """Evaluate every SLO against one finished window."""
        found: list[SloViolation] = []
        for sid, slo in self.slos.items():
            stats = rollup.streams.get(sid)
            if stats is None:
                stats = StreamWindowStats(sid=sid, **_EMPTY_STATS_FIELDS)
            found.extend(self._evaluate(slo, stats, rollup))
        self.windows_evaluated += 1
        for violation in found:
            self._emit(violation)
        return found

    def _evaluate(
        self, slo: StreamSlo, stats: StreamWindowStats, rollup: WindowRollup
    ) -> list[SloViolation]:
        out: list[SloViolation] = []

        def violation(objective: str, observed: float, threshold: float, burn: float):
            out.append(
                SloViolation(
                    sid=slo.sid,
                    objective=objective,
                    observed=float(observed),
                    threshold=float(threshold),
                    burn_rate=burn,
                    window_index=rollup.index,
                    window_start=rollup.start_cycle,
                    window_end=rollup.end_cycle,
                )
            )

        if slo.miss_budget is not None:
            burn = _burn(stats.misses, slo.miss_budget)
            self._set_burn(slo.sid, "miss_budget", burn)
            if stats.misses > slo.miss_budget:
                violation("miss_budget", stats.misses, slo.miss_budget, burn)
        if (
            slo.min_share is not None or slo.max_share is not None
        ) and rollup.total_serviced > 0:
            share = stats.service_share
            if slo.min_share is not None and share < slo.min_share:
                burn = _burn(slo.min_share, share)
                self._set_burn(slo.sid, "share_band", burn)
                violation("share_band", share, slo.min_share, burn)
            elif slo.max_share is not None and share > slo.max_share:
                burn = _burn(share, slo.max_share)
                self._set_burn(slo.sid, "share_band", burn)
                violation("share_band", share, slo.max_share, burn)
            else:
                self._set_burn(slo.sid, "share_band", 0.0)
        if slo.max_gap is not None and stats.gap_max > 0:
            burn = _burn(stats.gap_max, slo.max_gap)
            self._set_burn(slo.sid, "max_gap", burn)
            if stats.gap_max > slo.max_gap:
                violation("max_gap", stats.gap_max, slo.max_gap, burn)
        return out

    def evaluate_run_summary(
        self, result, *, window_cycles: int | None = None
    ) -> list[SloViolation]:
        """Whole-run conformance over a ``PeriodicRunResult``.

        The batch engine's vectorized path reports final per-stream
        counters instead of per-cycle events; miss budgets are rescaled
        to the run length (``budget * ceil(cycles / window)``) and the
        share band is evaluated over whole-run serviced fractions.
        Gap objectives need per-cycle data and are skipped.
        """
        cycles = int(result.decision_cycles)
        if cycles <= 0:
            return []
        windows = (
            max(1, math.ceil(cycles / window_cycles)) if window_cycles else 1
        )
        total_serviced = int(result.serviced.sum())
        found: list[SloViolation] = []
        for sid, slo in self.slos.items():
            in_range = 0 <= sid < len(result.serviced)
            misses = int(result.misses[sid]) if in_range else 0
            serviced = int(result.serviced[sid]) if in_range else 0
            if slo.miss_budget is not None:
                budget = slo.miss_budget * windows
                burn = _burn(misses, budget)
                self._set_burn(sid, "miss_budget", burn)
                if misses > budget:
                    found.append(
                        SloViolation(
                            sid=sid,
                            objective="miss_budget",
                            observed=float(misses),
                            threshold=float(budget),
                            burn_rate=burn,
                            window_index=-1,  # whole-run evaluation
                            window_start=0,
                            window_end=cycles - 1,
                        )
                    )
            if (
                slo.min_share is not None or slo.max_share is not None
            ) and total_serviced > 0:
                share = serviced / total_serviced
                breach = None
                if slo.min_share is not None and share < slo.min_share:
                    breach = (slo.min_share, _burn(slo.min_share, share))
                elif slo.max_share is not None and share > slo.max_share:
                    breach = (slo.max_share, _burn(share, slo.max_share))
                if breach is not None:
                    threshold, burn = breach
                    self._set_burn(sid, "share_band", burn)
                    found.append(
                        SloViolation(
                            sid=sid,
                            objective="share_band",
                            observed=share,
                            threshold=threshold,
                            burn_rate=burn,
                            window_index=-1,
                            window_start=0,
                            window_end=cycles - 1,
                        )
                    )
                else:
                    self._set_burn(sid, "share_band", 0.0)
        for violation in found:
            self._emit(violation)
        return found

    # -- bookkeeping ---------------------------------------------------

    def _emit(self, violation: SloViolation) -> None:
        self.violations.append(violation)
        if self._violation_counter is not None:
            self._violation_counter.inc(
                stream=violation.sid, objective=violation.objective
            )
        for callback in self._subscribers:
            callback(violation)

    def _set_burn(self, sid: int, objective: str, burn: float) -> None:
        if self._burn_gauge is not None:
            self._burn_gauge.set(burn, stream=sid, objective=objective)

    def active(self, window_index: int | None = None) -> list[SloViolation]:
        """Violations of the most recent window (or a specific one)."""
        if not self.violations:
            return []
        if window_index is None:
            window_index = self.violations[-1].window_index
        return [v for v in self.violations if v.window_index == window_index]

    def clear(self) -> None:
        """Forget every recorded violation."""
        self.violations.clear()
        self.windows_evaluated = 0


class ConformanceMonitor:
    """Rollups + SLO evaluation + flight recorder behind one hook.

    The composition order per decision cycle is deliberate: the flight
    recorder records the outcome *first*, then the rollup aggregates it
    (possibly closing a window, evaluating SLOs and — on a violation —
    freezing the flight recorder), so the violating cycle is always
    inside the frozen dump.

    Parameters
    ----------
    slos:
        Per-stream objectives (may be empty: rollups and the flight
        ring still run, nothing is ever flagged).
    window_cycles:
        Rollup window size in decision cycles.
    registry:
        Optional metrics registry for violation counters / burn gauges.
    flight_recorder:
        Keep the always-on decision-cycle ring and dump it on
        violations.
    flight_capacity:
        Decision cycles retained in the flight ring.
    dump_dir:
        When given, violation dumps are also written there as JSONL.
    rollup_history / gap_buckets / prefix:
        Forwarded to the rollup observer / SLO monitor.
    """

    def __init__(
        self,
        slos: Iterable[StreamSlo] = (),
        *,
        window_cycles: int = 256,
        registry=None,
        flight_recorder: bool = True,
        flight_capacity: int = 64,
        dump_dir=None,
        rollup_history: int = 64,
        gap_buckets=None,
        prefix: str = "sharestreams",
    ) -> None:
        kwargs = {"keep": rollup_history}
        if gap_buckets is not None:
            kwargs["gap_buckets"] = gap_buckets
        self.rollup = RollupObserver(window_cycles, **kwargs)
        self.slo = SloMonitor(slos, registry=registry, prefix=prefix)
        self.flight: FlightRecorder | None = (
            FlightRecorder(flight_capacity, dump_dir=dump_dir)
            if flight_recorder
            else None
        )
        self.rollup.subscribe(self.slo.on_rollup)
        if self.flight is not None:
            self.slo.subscribe(self.flight.on_violation)

    # -- engine hook protocol ------------------------------------------

    def on_decision(self, outcome) -> None:
        """Record, then aggregate (window close may freeze the ring)."""
        if self.flight is not None:
            self.flight.on_decision(outcome)
        self.rollup.on_decision(outcome)

    def on_run_summary(self, result) -> None:
        """Post-run conformance for the vectorized whole-run path."""
        self.slo.evaluate_run_summary(
            result, window_cycles=self.rollup.window_cycles
        )

    def finalize(self) -> None:
        """Flush the partial final window (drivers call this at run end)."""
        self.rollup.finalize()
        if self.flight is not None:
            self.flight.finalize()

    # -- queries -------------------------------------------------------

    @property
    def violations(self) -> list[SloViolation]:
        """Every violation recorded so far, in emission order."""
        return self.slo.violations

    @property
    def dumps(self):
        """Flight-recorder dumps captured so far (empty if disabled)."""
        return self.flight.dumps if self.flight is not None else []

    def report(self) -> str:
        """Plain-text conformance summary (CLI / render integration)."""
        lines = [
            f"windows evaluated: {self.slo.windows_evaluated} "
            f"(size {self.rollup.window_cycles} cycles), "
            f"objectives on {len(self.slo.slos)} streams, "
            f"violations: {len(self.violations)}"
        ]
        for violation in self.violations[-20:]:
            lines.append("  " + violation.describe())
        if self.flight is not None and self.flight.dumps:
            lines.append(
                f"flight dumps: {len(self.flight.dumps)} "
                f"x last {self.flight.capacity} cycles"
            )
            for dump in self.flight.dumps:
                lines.append("  " + dump.describe())
        return "\n".join(lines)

    def clear(self) -> None:
        """Reset rollups, violations and flight state."""
        self.rollup.clear()
        self.slo.clear()
        if self.flight is not None:
            self.flight.clear()

    # -- mergeable state (multi-process runs) --------------------------

    def state_dict(self) -> dict[str, Any]:
        """Picklable/JSON-able conformance state for cross-process merge.

        Captures the finished-window history, the evaluation count and
        the violation list.  Flight-recorder dumps are file-backed and
        intentionally excluded (each worker writes its own).
        """
        return {
            "windows_closed": self.rollup.windows_closed,
            "windows": [w.to_dict() for w in self.rollup.history],
            "windows_evaluated": self.slo.windows_evaluated,
            "violations": [v.to_dict() for v in self.slo.violations],
        }

    def absorb_state(self, state: dict[str, Any]) -> None:
        """Fold one worker's :meth:`state_dict` into this monitor.

        Window indices are re-based onto this monitor's counter so a
        sequence of absorbed shards yields the same monotonic window
        numbering a single monitor observing the shards back-to-back
        would assign; violations keep their window linkage (whole-run
        evaluations, index ``-1``, are not re-based).  Metric counters
        and burn gauges are *not* touched — those travel in the metrics
        registry snapshot and are merged by
        :meth:`~repro.observability.metrics.MetricsRegistry.absorb`,
        so absorbing both never double-counts.
        """
        from repro.observability.rollup import rollup_from_dict

        offset = self.rollup.windows_closed
        for data in state["windows"]:
            rollup = rollup_from_dict(data)
            self.rollup.history.append(
                WindowRollup(
                    index=rollup.index + offset,
                    start_cycle=rollup.start_cycle,
                    end_cycle=rollup.end_cycle,
                    cycles=rollup.cycles,
                    idle_cycles=rollup.idle_cycles,
                    total_serviced=rollup.total_serviced,
                    total_misses=rollup.total_misses,
                    total_drops=rollup.total_drops,
                    streams=rollup.streams,
                )
            )
        self.rollup.windows_closed += int(state["windows_closed"])
        self.slo.windows_evaluated += int(state["windows_evaluated"])
        for data in state["violations"]:
            violation = violation_from_dict(data)
            if violation.window_index >= 0:
                violation = SloViolation(
                    sid=violation.sid,
                    objective=violation.objective,
                    observed=violation.observed,
                    threshold=violation.threshold,
                    burn_rate=violation.burn_rate,
                    window_index=violation.window_index + offset,
                    window_start=violation.window_start,
                    window_end=violation.window_end,
                )
            self.slo.violations.append(violation)


# ----------------------------------------------------------------------
# declarative-SLO constructors
# ----------------------------------------------------------------------


def slos_from_shares(
    shares: Mapping[int, float],
    *,
    tolerance: float = 0.25,
    max_gap: int | None = None,
) -> list[StreamSlo]:
    """Share-band SLOs from relative bandwidth shares (Figs. 8-10).

    Each stream's expected service share is its share of the total;
    the tolerated band is ``expected * (1 ± tolerance)`` (clamped to
    [0, 1]).  E.g. the 1:1:2:4 workload with 25% tolerance gives
    stream 3 a [0.375, 0.625] band around its 0.5 target.
    """
    if not shares:
        raise ValueError("no shares given")
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must be in (0, 1)")
    total = float(sum(shares.values()))
    if total <= 0:
        raise ValueError("shares must sum to a positive total")
    slos = []
    for sid, share in sorted(shares.items()):
        expected = share / total
        slos.append(
            StreamSlo(
                sid=sid,
                min_share=max(0.0, expected * (1.0 - tolerance)),
                max_share=min(1.0, expected * (1.0 + tolerance)),
                max_gap=max_gap,
            )
        )
    return slos


def slos_from_streams(
    streams: Iterable, *, window_cycles: int
) -> list[StreamSlo]:
    """Miss-budget SLOs from DWCS stream configs (``x`` per ``y``).

    A DWCS/fair-share constraint tolerates ``x`` losses per window of
    ``y`` requests; with one request per ``period`` cycles, a rollup
    window of ``window_cycles`` sees about ``window_cycles / period``
    requests, so the scaled budget is
    ``ceil(x * window_cycles / (y * period))``.  Streams without a
    window constraint (``y == 0``) get no miss objective.
    """
    if window_cycles <= 0:
        raise ValueError("window_cycles must be positive")
    slos = []
    for stream in streams:
        x = stream.loss_numerator
        y = stream.loss_denominator
        if y <= 0:
            continue
        budget = math.ceil(x * window_cycles / (y * max(1, stream.period)))
        slos.append(StreamSlo(sid=stream.sid, miss_budget=budget))
    return slos
