"""Streaming time-windowed rollups over the decision-outcome stream.

The passive telemetry of the observability layer (trace ring, metrics
registry) answers "what happened" after the fact; conformance
monitoring needs windowed *rates* while the run is still going.
:class:`RollupObserver` sits on the same engine hook as every other
observer (``on_decision`` receives each finished
:class:`~repro.core.scheduler.DecisionOutcome`) and aggregates it into
fixed-size windows of decision cycles, incrementally:

* per-stream service counts, circulated wins, missed-deadline
  registrations and drops — and the derived *service share* (fraction
  of the window's serviced packets), service/miss/drop *rates* (per
  decision cycle);
* inter-service gap quantiles per stream via :class:`GapSketch`, a
  small fixed-bucket sketch (powers of two, O(1) per observation,
  O(buckets) memory) — no event log is retained;
* window-end *staleness* (cycles since a stream's last service), so
  starvation is visible even for streams serviced zero times in the
  window.

Memory is O(streams) regardless of run length: one counter set and one
sketch per stream, reset at each window boundary (only the last-service
cycle persists across windows, to keep gap accounting continuous).
Finished windows are published to subscribers (the SLO monitor) as
immutable :class:`WindowRollup` records and kept in a bounded history
for the dashboard.

Windows are measured in *decision cycles* — the scheduler's own time
unit, identical across both engines by construction — so rollups from
the reference and batch engines agree exactly on identical workloads.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "GapSketch",
    "StreamWindowStats",
    "WindowRollup",
    "RollupObserver",
    "rollup_from_dict",
]

#: Default sketch bounds: powers of two in decision cycles, matching
#: the jitter histogram grid of :class:`~repro.observability.hooks.MetricsObserver`.
DEFAULT_GAP_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class GapSketch:
    """Fixed-bucket quantile sketch for inter-service gaps.

    ``observe`` files a value into the first bucket whose upper bound
    covers it (one integer increment); ``quantile`` walks the bucket
    counts and returns the covering bucket's upper bound — a
    conservative (never under-reporting) estimate, exact for values on
    the power-of-two grid.  Values beyond the last bound land in an
    implicit overflow bucket whose quantile estimate is the true
    maximum (tracked exactly).
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "max", "sum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_GAP_BUCKETS) -> None:
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("sketch needs at least one bucket")
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.max = 0.0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """File one observation (O(buckets) worst case, tiny constant)."""
        value = float(value)
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """Conservative q-quantile estimate (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = max(1, math.ceil(q * self.total))
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= target:
                return bound
        return self.max  # target falls in the overflow bucket

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def clear(self) -> None:
        """Reset every bucket and summary statistic."""
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.max = 0.0
        self.sum = 0.0


@dataclass(frozen=True, slots=True)
class StreamWindowStats:
    """One stream's aggregated behavior over one rollup window.

    ``gap_max`` includes end-of-window staleness (cycles since the
    stream's last service), so a stream starved for the whole window
    reports a gap of at least the window length rather than silence.
    Gap fields are 0 for streams with no recorded service history.
    """

    sid: int
    serviced: int
    wins: int
    misses: int
    drops: int
    service_share: float  # fraction of the window's serviced packets
    service_rate: float  # serviced per decision cycle
    miss_rate: float  # misses per decision cycle
    drop_rate: float  # drops per decision cycle
    gap_p50: float
    gap_p90: float
    gap_max: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (endpoint / dump payload)."""
        return {
            "sid": self.sid,
            "serviced": self.serviced,
            "wins": self.wins,
            "misses": self.misses,
            "drops": self.drops,
            "service_share": self.service_share,
            "service_rate": self.service_rate,
            "miss_rate": self.miss_rate,
            "drop_rate": self.drop_rate,
            "gap_p50": self.gap_p50,
            "gap_p90": self.gap_p90,
            "gap_max": self.gap_max,
        }


@dataclass(frozen=True, slots=True)
class WindowRollup:
    """One finished rollup window (immutable, published to subscribers)."""

    index: int  # 0-based window number within the recording
    start_cycle: int  # scheduler time of the window's first decision
    end_cycle: int  # scheduler time of the window's last decision
    cycles: int  # decision cycles aggregated (== window size, except
    # for a final partial window flushed by finalize())
    idle_cycles: int
    total_serviced: int
    total_misses: int
    total_drops: int
    streams: dict[int, StreamWindowStats]

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (endpoint / dump payload)."""
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "cycles": self.cycles,
            "idle_cycles": self.idle_cycles,
            "total_serviced": self.total_serviced,
            "total_misses": self.total_misses,
            "total_drops": self.total_drops,
            "streams": {
                str(sid): stats.to_dict()
                for sid, stats in sorted(self.streams.items())
            },
        }


def rollup_from_dict(data: dict[str, Any]) -> WindowRollup:
    """Reconstruct a :class:`WindowRollup` from its :meth:`~WindowRollup.to_dict` form.

    Inverse of the JSON payload shape, used to merge rollup histories
    across worker-process boundaries (``repro.runner``).
    """
    return WindowRollup(
        index=int(data["index"]),
        start_cycle=int(data["start_cycle"]),
        end_cycle=int(data["end_cycle"]),
        cycles=int(data["cycles"]),
        idle_cycles=int(data["idle_cycles"]),
        total_serviced=int(data["total_serviced"]),
        total_misses=int(data["total_misses"]),
        total_drops=int(data["total_drops"]),
        streams={
            int(sid): StreamWindowStats(**stats)
            for sid, stats in data["streams"].items()
        },
    )


class RollupObserver:
    """Incremental windowed aggregation over the decision hook.

    Implements the engine hook protocol (``on_decision``), so it can be
    handed directly as ``observer=`` to either engine or composed
    through :class:`~repro.observability.hooks.CompositeObserver` /
    :class:`~repro.observability.Observability`.

    Parameters
    ----------
    window_cycles:
        Decision cycles per rollup window.
    keep:
        Finished windows retained in :attr:`history` (FIFO).
    gap_buckets:
        Bucket bounds of the per-stream inter-service gap sketches.
    """

    def __init__(
        self,
        window_cycles: int = 256,
        *,
        keep: int = 64,
        gap_buckets: Iterable[float] = DEFAULT_GAP_BUCKETS,
    ) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = window_cycles
        self.history: deque[WindowRollup] = deque(maxlen=keep)
        self.windows_closed = 0
        self._gap_buckets = tuple(gap_buckets)
        self._subscribers: list[Callable[[WindowRollup], None]] = []
        # -- current-window state (all O(streams)) --
        self._decisions = 0
        self._idle = 0
        self._start_cycle = 0
        self._last_cycle = 0
        self._serviced: dict[int, int] = {}
        self._wins: dict[int, int] = {}
        self._misses: dict[int, int] = {}
        self._drops: dict[int, int] = {}
        self._sketches: dict[int, GapSketch] = {}
        # -- cross-window state --
        self._last_service: dict[int, int] = {}

    # -- subscription --------------------------------------------------

    def subscribe(self, callback: Callable[[WindowRollup], None]) -> None:
        """Register a callback invoked with every finished window."""
        self._subscribers.append(callback)

    # -- hook protocol -------------------------------------------------

    def on_decision(self, outcome) -> None:
        """Fold one decision outcome into the current window."""
        now = int(outcome.now)
        if self._decisions == 0:
            self._start_cycle = now
        self._last_cycle = now
        self._decisions += 1
        sid = outcome.circulated_sid
        if sid is None:
            self._idle += 1
        else:
            self._wins[sid] = self._wins.get(sid, 0) + 1
        for sid, _packet in outcome.serviced:
            self._serviced[sid] = self._serviced.get(sid, 0) + 1
            last = self._last_service.get(sid)
            if last is not None:
                sketch = self._sketches.get(sid)
                if sketch is None:
                    sketch = self._sketches[sid] = GapSketch(self._gap_buckets)
                sketch.observe(now - last)
            self._last_service[sid] = now
        for sid in outcome.misses:
            self._misses[sid] = self._misses.get(sid, 0) + 1
        for sid, _packet in outcome.dropped:
            self._drops[sid] = self._drops.get(sid, 0) + 1
        if self._decisions >= self.window_cycles:
            self._close_window()

    # -- window lifecycle ----------------------------------------------

    def finalize(self) -> WindowRollup | None:
        """Flush the current partial window (end of run).

        Returns the flushed rollup, or ``None`` when the window was
        empty (nothing observed since the last boundary).
        """
        if self._decisions == 0:
            return None
        return self._close_window()

    def _close_window(self) -> WindowRollup:
        cycles = self._decisions
        end = self._last_cycle
        total_serviced = sum(self._serviced.values())
        sids = (
            set(self._serviced)
            | set(self._wins)
            | set(self._misses)
            | set(self._drops)
            | set(self._last_service)
        )
        streams: dict[int, StreamWindowStats] = {}
        for sid in sorted(sids):
            serviced = self._serviced.get(sid, 0)
            misses = self._misses.get(sid, 0)
            drops = self._drops.get(sid, 0)
            sketch = self._sketches.get(sid)
            gap_p50 = sketch.quantile(0.5) if sketch is not None else 0.0
            gap_p90 = sketch.quantile(0.9) if sketch is not None else 0.0
            gap_max = sketch.max if sketch is not None else 0.0
            last = self._last_service.get(sid)
            if last is not None:
                gap_max = max(gap_max, float(end - last))
            streams[sid] = StreamWindowStats(
                sid=sid,
                serviced=serviced,
                wins=self._wins.get(sid, 0),
                misses=misses,
                drops=drops,
                service_share=(
                    serviced / total_serviced if total_serviced else 0.0
                ),
                service_rate=serviced / cycles,
                miss_rate=misses / cycles,
                drop_rate=drops / cycles,
                gap_p50=gap_p50,
                gap_p90=gap_p90,
                gap_max=gap_max,
            )
        rollup = WindowRollup(
            index=self.windows_closed,
            start_cycle=self._start_cycle,
            end_cycle=end,
            cycles=cycles,
            idle_cycles=self._idle,
            total_serviced=total_serviced,
            total_misses=sum(self._misses.values()),
            total_drops=sum(self._drops.values()),
            streams=streams,
        )
        self.windows_closed += 1
        self.history.append(rollup)
        self._reset_window()
        for callback in self._subscribers:
            callback(rollup)
        return rollup

    def _reset_window(self) -> None:
        self._decisions = 0
        self._idle = 0
        self._serviced.clear()
        self._wins.clear()
        self._misses.clear()
        self._drops.clear()
        self._sketches.clear()

    @property
    def latest(self) -> WindowRollup | None:
        """Most recently finished window, if any."""
        return self.history[-1] if self.history else None

    def clear(self) -> None:
        """Discard all windowed state and history."""
        self._reset_window()
        self._last_service.clear()
        self.history.clear()
        self.windows_closed = 0
