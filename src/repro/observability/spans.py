"""Hierarchical span tracing across the campaign/shard/aggregation stack.

The PR 2 observer layer sees *inside* one engine run (decision traces,
metrics, per-phase profiling).  This module observes *across* the layers
that dominate campaign runtime: the ``run_sharded`` worker pool, the
differential bucket pre-pass, ``ResultCache`` hits, tensor-engine phases
and aggregation churn.  It records a tree of spans::

    campaign -> (shard) -> bucket -> engine_run -> phase
                                  -> churn op (aggregation tier)

with three hard guarantees:

**Deterministic identity.**  A span's identity is its *path* — a
``name[ordinal]`` chain from the trace root, with ordinals assigned
per-parent per-name (or pinned explicitly, e.g. to an item's original
input index).  ``span_id = sha256(trace_id + ":" + path)[:16]``, so the
same logical work always produces the same ID no matter where or when it
executed.

**Worker-count invariance.**  Spans recorded in pool workers are shipped
back with the shard result payload and absorbed by the parent tracer.
Canonical output (`canonical_bytes`) contains only worker-count-invariant
facts: path, identity, kind and deterministic tags.  Wall-clock timing
lives in the non-canonical fields (``start_us``/``dur_us``/``measures``),
and spans whose *existence* depends on execution layout (one per shard)
are flagged ``canonical=False`` and excluded entirely — mirroring how
``CampaignResult.summary()`` excludes ``workers``/``cached``.  The result:
byte-identical canonical span trees for any worker count.

**Near-zero disabled path.**  Every instrumentation site guards on a
single ``tracer is not None`` (the PR 2 observer contract); hot loops
accumulate counters and emit one aggregated span per phase/op kind.

Exporters: canonical JSONL, full JSONL (timing included) and the Chrome
trace-event format (load ``trace.json`` in Perfetto / ``chrome://tracing``).
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "SPAN_SCHEMA",
    "SpanRecord",
    "SpanTracer",
    "activate_tracer",
    "canonical_span_bytes",
    "chrome_trace",
    "critical_path",
    "current_tracer",
    "deterministic_span_id",
    "load_spans_jsonl",
    "spans_jsonl_bytes",
    "summarize_spans",
]

SPAN_SCHEMA = 1

#: Tag value types that serialize deterministically; anything else is str()'d.
_TAG_SCALARS = (bool, int, float, str)


def deterministic_span_id(trace_id: str, path: str) -> str:
    """Content-addressed span ID: stable across runs, machines, workers."""
    return hashlib.sha256(f"{trace_id}:{path}".encode()).hexdigest()[:16]


def _clean_tags(tags: dict[str, Any] | None) -> dict[str, Any]:
    if not tags:
        return {}
    return {
        str(k): (v if isinstance(v, _TAG_SCALARS) or v is None else str(v))
        for k, v in tags.items()
    }


@dataclass(slots=True)
class SpanRecord:
    """One node of the span tree.

    Canonical fields (``canonical_dict``): name, kind, path, span_id,
    parent_id, tags.  Non-canonical: the ``canonical`` flag itself plus
    all wall-clock facts — ``start_us`` (epoch microseconds, coherent
    across processes), ``dur_us`` and free-form numeric ``measures``.
    """

    name: str
    kind: str
    path: str
    span_id: str
    parent_id: str | None
    tags: dict[str, Any] = field(default_factory=dict)
    canonical: bool = True
    start_us: int = 0
    dur_us: int = 0
    measures: dict[str, Any] = field(default_factory=dict)

    def tag(self, **tags: Any) -> "SpanRecord":
        """Attach deterministic key/value facts (part of canonical output)."""
        self.tags.update(_clean_tags(tags))
        return self

    def measure(self, **measures: Any) -> "SpanRecord":
        """Attach wall-clock/layout facts (excluded from canonical output)."""
        self.measures.update(measures)
        return self

    def canonical_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "parent_id": self.parent_id,
            "path": self.path,
            "span_id": self.span_id,
            "tags": dict(sorted(self.tags.items())),
        }

    def to_dict(self) -> dict[str, Any]:
        d = self.canonical_dict()
        d["canonical"] = self.canonical
        d["start_us"] = self.start_us
        d["dur_us"] = self.dur_us
        d["measures"] = dict(sorted(self.measures.items()))
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=d["name"],
            kind=d["kind"],
            path=d["path"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            tags=dict(d.get("tags", {})),
            canonical=bool(d.get("canonical", True)),
            start_us=int(d.get("start_us", 0)),
            dur_us=int(d.get("dur_us", 0)),
            measures=dict(d.get("measures", {})),
        )


def _path_key(path: str) -> tuple[tuple[str, int], ...]:
    """Total order on span paths: segment-wise (name, ordinal)."""
    key = []
    for segment in path.split("/"):
        name, _, ordinal = segment.rpartition("[")
        key.append((name, int(ordinal[:-1])))
    return tuple(key)


class SpanTracer:
    """Records a deterministic span tree for one trace.

    A tracer is either a *root* tracer (``SpanTracer("trace-id")``) or a
    *worker* tracer reconstructed from a propagated context
    (``SpanTracer.from_context(ctx)``) whose spans attach under the
    parent's current span.  ``span()`` opens a timed span as a context
    manager; ``record_span()`` appends a pre-aggregated completed span
    (the shape used for engine phases and churn-op rollups).
    """

    __slots__ = (
        "trace_id",
        "_clock",
        "_wall",
        "_records",
        "_stack",
        "_root_path",
        "_root_id",
        "_root_ordinals",
    )

    def __init__(
        self,
        trace_id: str = "trace",
        *,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.trace_id = trace_id
        self._clock = clock
        self._wall = wall
        self._records: list[SpanRecord] = []
        # (record, per-child ordinal counters, clock at open)
        self._stack: list[tuple[SpanRecord, dict[str, int], float]] = []
        self._root_path = ""
        self._root_id: str | None = None
        self._root_ordinals: dict[str, int] = {}

    # -- trace-context propagation (picklable, crosses the process pool) --

    def context(self) -> dict[str, Any]:
        """Picklable context naming the current span (or the trace root)."""
        if self._stack:
            record = self._stack[-1][0]
            return {
                "trace_id": self.trace_id,
                "path": record.path,
                "span_id": record.span_id,
            }
        return {
            "trace_id": self.trace_id,
            "path": self._root_path,
            "span_id": self._root_id,
        }

    @classmethod
    def from_context(cls, ctx: dict[str, Any]) -> "SpanTracer":
        tracer = cls(ctx["trace_id"])
        tracer._root_path = ctx.get("path") or ""
        tracer._root_id = ctx.get("span_id")
        return tracer

    def export_records(self) -> list[dict[str, Any]]:
        """All records as plain dicts (the shard-payload wire format)."""
        return [r.to_dict() for r in self._records]

    def absorb(self, records: Iterable[dict[str, Any] | SpanRecord]) -> None:
        """Merge records shipped back from a worker tracer."""
        for r in records:
            self._records.append(
                r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r)
            )

    # -- recording --

    @property
    def current(self) -> SpanRecord | None:
        return self._stack[-1][0] if self._stack else None

    def _open(
        self,
        name: str,
        kind: str,
        ordinal: int | None,
        canonical: bool,
        tags: dict[str, Any] | None,
    ) -> SpanRecord:
        if self._stack:
            parent, counters, _ = self._stack[-1]
            parent_path, parent_id = parent.path, parent.span_id
        else:
            counters = self._root_ordinals
            parent_path, parent_id = self._root_path, self._root_id
        if ordinal is None:
            ordinal = counters.get(name, 0)
            counters[name] = ordinal + 1
        segment = f"{name}[{ordinal}]"
        path = f"{parent_path}/{segment}" if parent_path else segment
        record = SpanRecord(
            name=name,
            kind=kind,
            path=path,
            span_id=deterministic_span_id(self.trace_id, path),
            parent_id=parent_id,
            tags=_clean_tags(tags),
            canonical=canonical,
            start_us=int(self._wall() * 1e6),
        )
        self._records.append(record)
        return record

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        *,
        ordinal: int | None = None,
        canonical: bool = True,
        **tags: Any,
    ) -> Iterator[SpanRecord]:
        """Open a timed span.  ``ordinal`` pins the path segment (use the
        item's original input index so worker layout never shifts paths);
        by default ordinals count up per parent per name."""
        record = self._open(name, kind, ordinal, canonical, tags)
        self._stack.append((record, {}, self._clock()))
        try:
            yield record
        finally:
            _, _, t0 = self._stack.pop()
            record.dur_us = int((self._clock() - t0) * 1e6)

    def record_span(
        self,
        name: str,
        kind: str = "span",
        *,
        ordinal: int | None = None,
        canonical: bool = True,
        tags: dict[str, Any] | None = None,
        measures: dict[str, Any] | None = None,
        dur_us: int = 0,
    ) -> SpanRecord:
        """Append an already-completed span (aggregated phase/op rollups)."""
        record = self._open(name, kind, ordinal, canonical, tags)
        record.dur_us = int(dur_us)
        if measures:
            record.measures.update(measures)
        return record

    # -- views / exporters --

    def records(self) -> list[SpanRecord]:
        return list(self._records)

    def canonical_bytes(self) -> bytes:
        return canonical_span_bytes(self._records)

    def jsonl_bytes(self) -> bytes:
        return spans_jsonl_bytes(self._records)

    def chrome_trace(self) -> dict[str, Any]:
        return chrome_trace(self._records, trace_id=self.trace_id)


# -- the current-tracer contextvar: lets deeply nested task code --
# -- (validate_seed / validate_bucket, running inside pool workers) --
# -- attach spans without threading a tracer through every signature --

_ACTIVE: contextvars.ContextVar[SpanTracer | None] = contextvars.ContextVar(
    "repro_active_span_tracer", default=None
)


def current_tracer() -> SpanTracer | None:
    """The tracer activated for the current execution context, if any."""
    return _ACTIVE.get()


@contextmanager
def activate_tracer(tracer: SpanTracer) -> Iterator[SpanTracer]:
    """Make ``tracer`` visible to ``current_tracer()`` within the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


# -- record-list exporters (work on tracer output or loaded JSONL) --


def _as_records(records: Iterable[SpanRecord | dict[str, Any]]) -> list[SpanRecord]:
    return [
        r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r) for r in records
    ]


def canonical_span_bytes(records: Iterable[SpanRecord | dict[str, Any]]) -> bytes:
    """Canonical JSONL: worker-count-invariant spans only, path-sorted,
    timing excluded.  Byte-identical for any worker count."""
    rows = sorted(
        (r for r in _as_records(records) if r.canonical),
        key=lambda r: _path_key(r.path),
    )
    out = []
    for r in rows:
        out.append(
            json.dumps(
                r.canonical_dict(), sort_keys=True, separators=(",", ":")
            ).encode()
        )
        out.append(b"\n")
    return b"".join(out)


def spans_jsonl_bytes(records: Iterable[SpanRecord | dict[str, Any]]) -> bytes:
    """Full JSONL (timing + measures included), path-sorted."""
    rows = sorted(_as_records(records), key=lambda r: _path_key(r.path))
    out = []
    for r in rows:
        out.append(
            json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":")).encode()
        )
        out.append(b"\n")
    return b"".join(out)


def load_spans_jsonl(path: str | Path) -> list[SpanRecord]:
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def chrome_trace(
    records: Iterable[SpanRecord | dict[str, Any]], *, trace_id: str = "trace"
) -> dict[str, Any]:
    """Chrome trace-event export (open in Perfetto or chrome://tracing).

    Every span becomes one complete event (``ph: "X"``).  Spans carry an
    optional ``lane`` measure (0 = coordinator, N = pool shard N) used as
    the thread ID so concurrent shards render as parallel tracks.
    """
    rows = _as_records(records)
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"sharestreams-repro:{trace_id}"},
        }
    ]
    lanes = sorted({int(r.measures.get("lane", 0)) for r in rows})
    for lane in lanes:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": lane,
                "args": {"name": "coordinator" if lane == 0 else f"shard-{lane}"},
            }
        )
    for r in sorted(rows, key=lambda r: (r.start_us, _path_key(r.path))):
        args: dict[str, Any] = {"path": r.path, "span_id": r.span_id}
        args.update(r.tags)
        args.update({k: v for k, v in r.measures.items() if k != "lane"})
        events.append(
            {
                "ph": "X",
                "name": r.name,
                "cat": r.kind,
                "ts": r.start_us,
                "dur": max(int(r.dur_us), 1),
                "pid": 0,
                "tid": int(r.measures.get("lane", 0)),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize_spans(
    records: Iterable[SpanRecord | dict[str, Any]],
) -> list[dict[str, Any]]:
    """Rollup per (kind, name): span count, total wall, numeric-tag sums
    and string-tag value counts (e.g. ``cache=hit`` occurrences)."""
    groups: dict[tuple[str, str], dict[str, Any]] = {}
    for r in _as_records(records):
        g = groups.setdefault(
            (r.kind, r.name),
            {
                "kind": r.kind,
                "name": r.name,
                "count": 0,
                "wall_us": 0,
                "tag_totals": {},
                "tag_counts": {},
            },
        )
        g["count"] += 1
        g["wall_us"] += int(r.dur_us)
        for k, v in r.tags.items():
            if isinstance(v, bool) or isinstance(v, str):
                key = f"{k}={v}"
                g["tag_counts"][key] = g["tag_counts"].get(key, 0) + 1
            elif isinstance(v, (int, float)):
                g["tag_totals"][k] = g["tag_totals"].get(k, 0) + v
        wall = r.measures.get("wall_us")
        if isinstance(wall, (int, float)):
            g["wall_us"] += int(wall)
    return sorted(
        groups.values(), key=lambda g: (-g["wall_us"], g["kind"], g["name"])
    )


def critical_path(
    records: Iterable[SpanRecord | dict[str, Any]],
) -> list[dict[str, Any]]:
    """Greedy longest chain: from the longest root span, descend into the
    longest child at each level.  Each entry reports the span's wall time,
    its share of the root, and its *self* time (wall minus children)."""
    rows = _as_records(records)
    if not rows:
        return []
    by_id = {r.span_id: r for r in rows}
    children: dict[str | None, list[SpanRecord]] = {}
    roots = []
    for r in rows:
        if r.parent_id in by_id:
            children.setdefault(r.parent_id, []).append(r)
        else:
            roots.append(r)

    def span_wall(r: SpanRecord) -> int:
        wall = r.measures.get("wall_us")
        return int(r.dur_us) or (int(wall) if isinstance(wall, (int, float)) else 0)

    root = max(roots, key=lambda r: (span_wall(r), _path_key(r.path)))
    root_wall = max(span_wall(root), 1)
    chain = []
    node: SpanRecord | None = root
    while node is not None:
        kids = children.get(node.span_id, [])
        child_wall = sum(span_wall(k) for k in kids)
        wall = span_wall(node)
        chain.append(
            {
                "path": node.path,
                "name": node.name,
                "kind": node.kind,
                "wall_us": wall,
                "self_us": max(wall - child_wall, 0),
                "fraction": round(wall / root_wall, 4),
                "tags": dict(sorted(node.tags.items())),
            }
        )
        node = (
            max(kids, key=lambda r: (span_wall(r), _path_key(r.path)))
            if kids
            else None
        )
    return chain
