"""Lightweight per-phase profiling hooks (wall time + cycle accounting).

Drivers wrap their pipeline phases (refill, decide, transmit, ...) in
:meth:`PhaseProfiler.phase` context managers; engines contribute
modeled hardware cycles via :meth:`PhaseProfiler.add_cycles`.  The
profiler is only ever consulted when telemetry is enabled — disabled
runs never construct one, and the drivers branch around the context
manager entirely (zero overhead when off).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PhaseStat", "PhaseProfiler"]


@dataclass(frozen=True, slots=True)
class PhaseStat:
    """Accumulated cost of one named phase."""

    name: str
    calls: int
    wall_s: float
    hw_cycles: int

    @property
    def mean_us(self) -> float:
        """Mean wall time per call, microseconds."""
        return self.wall_s / self.calls * 1e6 if self.calls else 0.0


class PhaseProfiler:
    """Accumulates per-phase call counts, wall time and modeled cycles."""

    def __init__(self, *, clock=time.perf_counter) -> None:
        self._clock = clock
        self._calls: dict[str, int] = {}
        self._wall: dict[str, float] = {}
        self._cycles: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        """Time one execution of the named phase."""
        t0 = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - t0
            self._calls[name] = self._calls.get(name, 0) + 1
            self._wall[name] = self._wall.get(name, 0.0) + elapsed

    def add_cycles(self, name: str, cycles: int) -> None:
        """Attribute modeled hardware cycles to the named phase."""
        self._cycles[name] = self._cycles.get(name, 0) + int(cycles)

    def report(self) -> dict[str, PhaseStat]:
        """Per-phase stats, keyed by phase name."""
        names = set(self._calls) | set(self._cycles)
        return {
            name: PhaseStat(
                name=name,
                calls=self._calls.get(name, 0),
                wall_s=self._wall.get(name, 0.0),
                hw_cycles=self._cycles.get(name, 0),
            )
            for name in sorted(names)
        }

    def render(self) -> str:
        """Text table of the accumulated phases."""
        stats = self.report()
        if not stats:
            return "(no phases profiled)"
        lines = [f"{'phase':<24} {'calls':>8} {'wall ms':>10} {'us/call':>9} {'hw cycles':>10}"]
        for s in stats.values():
            lines.append(
                f"{s.name:<24} {s.calls:>8} {s.wall_s * 1e3:>10.3f} "
                f"{s.mean_us:>9.2f} {s.hw_cycles:>10}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        """Reset all accumulated phases."""
        self._calls.clear()
        self._wall.clear()
        self._cycles.clear()
