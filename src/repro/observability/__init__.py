"""Unified observability layer: tracing + metrics + profiling.

One subsystem, three concerns, one hook (see
``docs/OBSERVABILITY.md``):

* **Decision tracing** — :class:`TraceRecorder` turns every decision
  cycle of either engine into a canonical, serializable event stream
  (ring-buffered; byte-identical across engines by construction).
* **Metrics** — :class:`MetricsRegistry` (counters, gauges,
  histograms) with Prometheus-text and JSON exporters, fed by
  :class:`MetricsObserver` from decision outcomes and directly by the
  endsystem host / line-card / experiment drivers.
* **Profiling** — :class:`PhaseProfiler` accumulates per-phase wall
  time and modeled hardware cycles.

:class:`Observability` bundles all three behind the single engine hook
(``observer=``) plus a ``phase()`` context manager for drivers.  When
telemetry is off, nothing is constructed and the engines' only cost is
one ``is not None`` test per decision cycle.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.observability.dashboard import Dashboard
from repro.observability.events import (
    DecisionEvent,
    TraceRecorder,
    deserialize_events,
    events_from_outcome,
    serialize_events,
)
from repro.observability.flightrecorder import FlightDump, FlightRecorder
from repro.observability.hooks import (
    CompositeObserver,
    DecisionObserver,
    LegacyTraceObserver,
    MetricsObserver,
    resolve_observer,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    parse_prometheus_text,
)
from repro.observability.monitor import (
    ConformanceMonitor,
    SloMonitor,
    SloViolation,
    StreamSlo,
    slos_from_shares,
    slos_from_streams,
    violation_from_dict,
)
from repro.observability.profiling import PhaseProfiler, PhaseStat
from repro.observability.rollup import (
    GapSketch,
    RollupObserver,
    StreamWindowStats,
    WindowRollup,
    rollup_from_dict,
)
from repro.observability.server import TelemetryServer
from repro.observability.spans import (
    SPAN_SCHEMA,
    SpanRecord,
    SpanTracer,
    activate_tracer,
    canonical_span_bytes,
    chrome_trace,
    critical_path,
    current_tracer,
    deterministic_span_id,
    load_spans_jsonl,
    spans_jsonl_bytes,
    summarize_spans,
)
from repro.observability.tracelog import TraceEvent, TraceLog

__all__ = [
    "SPAN_SCHEMA",
    "SpanRecord",
    "SpanTracer",
    "activate_tracer",
    "canonical_span_bytes",
    "chrome_trace",
    "critical_path",
    "current_tracer",
    "deterministic_span_id",
    "load_spans_jsonl",
    "spans_jsonl_bytes",
    "summarize_spans",
    "CompositeObserver",
    "ConformanceMonitor",
    "Counter",
    "Dashboard",
    "DecisionEvent",
    "DecisionObserver",
    "FlightDump",
    "FlightRecorder",
    "GapSketch",
    "Gauge",
    "Histogram",
    "LegacyTraceObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "Observability",
    "PhaseProfiler",
    "PhaseStat",
    "RollupObserver",
    "SloMonitor",
    "SloViolation",
    "StreamSlo",
    "StreamWindowStats",
    "TelemetryServer",
    "TraceEvent",
    "TraceLog",
    "TraceRecorder",
    "WindowRollup",
    "deserialize_events",
    "events_from_outcome",
    "merge_snapshots",
    "parse_prometheus_text",
    "resolve_observer",
    "rollup_from_dict",
    "serialize_events",
    "slos_from_shares",
    "slos_from_streams",
    "violation_from_dict",
]


class Observability:
    """Facade bundling trace recorder, metrics registry and profiler.

    Implements the engine hook protocol (``on_decision`` /
    ``on_run_summary``), so one instance can be handed to any engine,
    the endsystem router, the line-card or an experiment driver.

    Parameters
    ----------
    trace:
        Record the structured decision trace.
    metrics:
        Maintain the standard scheduling metrics.
    profile:
        Accumulate per-phase wall time (drivers call :meth:`phase`).
    monitor:
        Optional :class:`~repro.observability.monitor.ConformanceMonitor`
        (streaming rollups + SLO evaluation + flight recorder) fed from
        the same hook; see ``repro.observability.monitor``.
    trace_capacity:
        Ring capacity of the decision-trace recorder.
    metrics_prefix:
        Metric-name prefix of the standard scheduling metrics.
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = True,
        monitor=None,
        trace_capacity: int = 1_000_000,
        metrics_prefix: str = "sharestreams",
    ) -> None:
        self.recorder = TraceRecorder(capacity=trace_capacity) if trace else None
        self.metrics = MetricsRegistry() if metrics else None
        self._metrics_observer = (
            MetricsObserver(self.metrics, prefix=metrics_prefix)
            if self.metrics is not None
            else None
        )
        self._prefix = metrics_prefix
        self.profiler = PhaseProfiler() if profile else None
        self.monitor = monitor

    # -- engine hook protocol ------------------------------------------

    def on_decision(self, outcome) -> None:
        """Dispatch one decision outcome to the enabled sinks."""
        if self.recorder is not None:
            self.recorder.on_decision(outcome)
        if self._metrics_observer is not None:
            self._metrics_observer.on_decision(outcome)
        if self.monitor is not None:
            self.monitor.on_decision(outcome)

    def on_run_summary(self, result) -> None:
        """Fold a whole-run summary (``PeriodicRunResult``) into metrics.

        The batch engine's vectorized ``run_periodic`` path does not
        emit per-cycle events (that would reintroduce the Python loop
        it exists to avoid); instead it reports its final per-stream
        counters here as gauges.
        """
        if self.monitor is not None:
            self.monitor.on_run_summary(result)
        if self.metrics is None:
            return
        serviced = self.metrics.gauge(
            f"{self._prefix}_run_serviced", "per-stream serviced (run summary)"
        )
        wins = self.metrics.gauge(
            f"{self._prefix}_run_wins", "per-stream wins (run summary)"
        )
        misses = self.metrics.gauge(
            f"{self._prefix}_run_misses", "per-stream misses (run summary)"
        )
        cycles = self.metrics.gauge(
            f"{self._prefix}_run_decision_cycles", "decision cycles (run summary)"
        )
        cycles.set(result.decision_cycles)
        for sid in range(len(result.serviced)):
            if result.serviced[sid] or result.wins[sid] or result.misses[sid]:
                serviced.set(int(result.serviced[sid]), stream=sid)
                wins.set(int(result.wins[sid]), stream=sid)
                misses.set(int(result.misses[sid]), stream=sid)

    def finalize(self) -> None:
        """End-of-run hook: flush the monitor's partial rollup window.

        Drivers call this once after the last decision cycle; safe to
        call with monitoring disabled (it is then a no-op).
        """
        if self.monitor is not None:
            self.monitor.finalize()

    # -- driver-side helpers -------------------------------------------

    def phase(self, name: str):
        """Context manager timing one phase (no-op without a profiler)."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.phase(name)

    def render(self, *, trace_limit: int = 20) -> str:
        """Human-readable summary of everything enabled."""
        parts = []
        if self.recorder is not None:
            parts.append("== decision trace ==")
            parts.append(self.recorder.render(limit=trace_limit))
        if self.profiler is not None:
            report = self.profiler.report()
            if report:
                parts.append("== phase profile ==")
                parts.append(self.profiler.render())
        if self.monitor is not None:
            parts.append("== conformance ==")
            parts.append(self.monitor.report())
        if self.metrics is not None and self.metrics.names():
            parts.append("== metrics ==")
            parts.append(self.metrics.to_prometheus_text().rstrip("\n"))
        return "\n".join(parts) if parts else "(telemetry empty)"

    def clear(self) -> None:
        """Reset every enabled sink."""
        if self.recorder is not None:
            self.recorder.clear()
        if self.metrics is not None:
            self.metrics.clear()
            self._metrics_observer = MetricsObserver(
                self.metrics, prefix=self._prefix
            )
        if self.profiler is not None:
            self.profiler.clear()
        if self.monitor is not None:
            self.monitor.clear()
