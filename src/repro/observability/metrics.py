"""Metrics registry: counters, gauges, histograms + exporters.

A minimal, dependency-free metrics layer shaped after the Prometheus
data model: named metrics with label sets, exported either as the
Prometheus text exposition format or as JSON.  The endsystem host, the
line-card and the experiment drivers all feed one
:class:`MetricsRegistry`; :class:`repro.observability.hooks.MetricsObserver`
derives the per-stream scheduling metrics (service counts, misses,
drops, deadline slack, inter-service jitter) from the engines' decision
outcomes.

Round-tripping is first-class: :func:`parse_prometheus_text` parses the
text exposition back into the same canonical ``{metric: {type, samples}}``
shape :meth:`MetricsRegistry.snapshot` produces, so tests can assert
``parse(export(registry)) == registry.snapshot()`` exactly.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "parse_prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_suffix(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


def _fmt(value: float) -> str:
    """Exposition-format number: integral values render without '.0'."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared name/help/type plumbing."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def sample_lines(self) -> list[tuple[str, str, float]]:
        """``(sample_name, label_suffix, value)`` rows for export."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError("counters cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labeled series (0 if never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def label_sets(self) -> list[dict[str, str]]:
        """Every label set this counter has seen."""
        return [dict(key) for key in sorted(self._values)]

    def total(self) -> float:
        """Sum over all label sets."""
        return sum(self._values.values())

    def sample_lines(self) -> list[tuple[str, str, float]]:
        return [
            (self.name, _label_suffix(key), v)
            for key, v in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """Last-write-wins value, optionally per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labeled series to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Adjust the labeled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labeled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def sample_lines(self) -> list[tuple[str, str, float]]:
        return [
            (self.name, _label_suffix(key), v)
            for key, v in sorted(self._values.items())
        ]


#: Default histogram buckets: powers of two, good for slack/jitter in
#: scheduler time units.
DEFAULT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` files the value into every bucket whose upper bound is
    >= the value, plus the implicit ``+Inf`` bucket; ``_sum``/``_count``
    series are kept per label set.  The invariant the property tests
    assert: ``count == +Inf bucket`` and, when fed from the decision
    hook, ``count == the matching counter total``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.buckets = bounds
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._totals: dict[tuple[tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """File one observation into the labeled series."""
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * len(self.buckets)
            self._counts[key] = counts
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        """Observations filed under the labeled series."""
        return self._totals.get(_label_key(labels), 0)

    def total_count(self) -> int:
        """Observations filed across all label sets."""
        return sum(self._totals.values())

    def label_sets(self) -> list[dict[str, str]]:
        """Every label set this histogram has seen."""
        return [dict(key) for key in sorted(self._totals)]

    def sum(self, **labels: Any) -> float:
        """Sum of observed values under the labeled series."""
        return self._sums.get(_label_key(labels), 0.0)

    def sample_lines(self) -> list[tuple[str, str, float]]:
        lines: list[tuple[str, str, float]] = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            for bound, c in zip(self.buckets, counts):
                lines.append(
                    (
                        f"{self.name}_bucket",
                        _label_suffix(key + (("le", _fmt(bound)),)),
                        float(c),
                    )
                )
            lines.append(
                (
                    f"{self.name}_bucket",
                    _label_suffix(key + (("le", "+Inf"),)),
                    float(self._totals[key]),
                )
            )
            lines.append((f"{self.name}_sum", _label_suffix(key), self._sums[key]))
            lines.append(
                (f"{self.name}_count", _label_suffix(key), float(self._totals[key]))
            )
        return lines


class MetricsRegistry:
    """Named metric store with get-or-create accessors and exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- get-or-create accessors --------------------------------------

    def _get(self, name: str, cls, **kwargs) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the named histogram."""
        return self._get(name, Histogram, help=help, buckets=buckets)

    # -- introspection -------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        """The named metric, or None."""
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Canonical export-equivalent view.

        ``{metric_name: {"type": kind, "samples": {sample_key: value}}}``
        where ``sample_key`` is ``sample_name + label_suffix`` exactly
        as the text exposition renders it.  This is the shape
        :func:`parse_prometheus_text` reconstructs, making round-trip
        comparison an equality check.
        """
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            samples = {
                sample_name + suffix: value
                for sample_name, suffix, value in metric.sample_lines()
            }
            out[name] = {"type": metric.kind, "samples": samples}
        return out

    # -- exporters -----------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, suffix, value in metric.sample_lines():
                lines.append(f"{sample_name}{suffix} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> str:
        """JSON exporter: the :meth:`snapshot` shape, pretty-printed."""
        return json.dumps(self.snapshot(), indent=1, sort_keys=True) + "\n"

    def clear(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()

    # -- mergeable snapshots -------------------------------------------

    def absorb(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot`-shaped dict into this registry.

        The workhorse of multi-process telemetry: worker shards export
        their registries as snapshots (picklable, JSON-able) and the
        parent absorbs them *in shard order* — counters and histograms
        accumulate, gauges keep last-write-wins semantics, so absorbing
        per-shard snapshots in input order reproduces the registry a
        single process observing the same stream would have built.
        Existing metrics keep their help text; new ones are created on
        demand.  Type conflicts and histogram-bucket mismatches raise
        ``ValueError``.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            samples = data["samples"]
            if kind == "counter":
                self._absorb_counter(name, samples)
            elif kind == "gauge":
                self._absorb_gauge(name, samples)
            elif kind == "histogram":
                self._absorb_histogram(name, samples)
            else:
                raise ValueError(f"metric {name!r}: unknown type {kind!r}")

    def _absorb_counter(self, name: str, samples: dict[str, float]) -> None:
        counter = self.counter(name)
        for sample_key, value in samples.items():
            _, labels = _split_sample_key(sample_key)
            counter._values[labels] = counter._values.get(labels, 0.0) + value

    def _absorb_gauge(self, name: str, samples: dict[str, float]) -> None:
        gauge = self.gauge(name)
        for sample_key, value in samples.items():
            _, labels = _split_sample_key(sample_key)
            gauge._values[labels] = float(value)

    def _absorb_histogram(self, name: str, samples: dict[str, float]) -> None:
        # Regroup the flat sample rows by label set.
        buckets: dict[tuple, dict[str, float]] = {}
        sums: dict[tuple, float] = {}
        totals: dict[tuple, float] = {}
        bounds: set[str] = set()
        for sample_key, value in samples.items():
            sample_name, labels = _split_sample_key(sample_key)
            if sample_name == f"{name}_bucket":
                le = dict(labels)["le"]
                key = tuple(kv for kv in labels if kv[0] != "le")
                buckets.setdefault(key, {})[le] = value
                if le != "+Inf":
                    bounds.add(le)
            elif sample_name == f"{name}_sum":
                sums[labels] = value
            elif sample_name == f"{name}_count":
                totals[labels] = value
            else:
                raise ValueError(
                    f"histogram {name!r}: unexpected sample {sample_key!r}"
                )
        if name in self:
            hist = self._metrics[name]
            if not isinstance(hist, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {hist.kind}"
                )
            if bounds and tuple(sorted(float(b) for b in bounds)) != hist.buckets:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ from the "
                    f"registered metric's"
                )
        else:
            hist = self.histogram(
                name,
                buckets=(
                    sorted(float(b) for b in bounds)
                    if bounds
                    else DEFAULT_BUCKETS
                ),
            )
        for key, per_bound in buckets.items():
            counts = hist._counts.get(key)
            if counts is None:
                counts = hist._counts[key] = [0] * len(hist.buckets)
            for i, bound in enumerate(hist.buckets):
                counts[i] += int(per_bound.get(_fmt(bound), 0))
            hist._sums[key] = hist._sums.get(key, 0.0) + sums.get(key, 0.0)
            hist._totals[key] = hist._totals.get(key, 0) + int(
                totals.get(key, 0)
            )


_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _split_sample_key(
    sample_key: str,
) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Invert ``sample_name + _label_suffix(labels)`` rendering."""
    brace = sample_key.find("{")
    if brace < 0:
        return sample_key, ()
    name = sample_key[:brace]
    labels = tuple(_LABEL_RE.findall(sample_key[brace:]))
    return name, labels


def merge_snapshots(
    snapshots: Iterable[dict[str, dict[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Merge :meth:`MetricsRegistry.snapshot` dicts, in order.

    Pure snapshot-level merge (no registry reconstruction): counter and
    histogram samples add, gauge samples keep the *last* snapshot's
    value — so merging per-shard snapshots in input order matches the
    sequential observation order.  The result is itself snapshot-shaped
    and compares equal (``==`` / canonical JSON) to the registry a
    single pass would produce.
    """
    out: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for name, data in snap.items():
            entry = out.get(name)
            if entry is None:
                entry = out[name] = {"type": data["type"], "samples": {}}
            elif entry["type"] != data["type"]:
                raise ValueError(
                    f"metric {name!r}: type conflict "
                    f"{entry['type']!r} vs {data['type']!r}"
                )
            merged = entry["samples"]
            if data["type"] == "gauge":
                merged.update(data["samples"])
            else:
                for key, value in data["samples"].items():
                    merged[key] = merged.get(key, 0.0) + value
    return {
        name: {
            "type": out[name]["type"],
            "samples": dict(sorted(out[name]["samples"].items())),
        }
        for name in sorted(out)
    }


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)$"
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _base_name(sample_name: str, kind: str) -> str:
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse the text exposition back into the :meth:`~MetricsRegistry.snapshot` shape.

    Strict enough for round-trip testing: unknown lines, samples
    without a preceding ``# TYPE``, and malformed sample lines raise
    ``ValueError``.
    """
    out: dict[str, dict[str, Any]] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line {raw!r}")
            _, _, name, kind = parts
            types[name] = kind
            out[name] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample line {raw!r}")
        sample_name = m.group("name")
        owner = None
        for name, kind in types.items():
            if _base_name(sample_name, kind) == name:
                owner = name
                break
        if owner is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its TYPE line"
            )
        key = sample_name + (m.group("labels") or "")
        out[owner]["samples"][key] = _parse_value(m.group("value"))
    return out
