"""Implementation-complexity model of the Figure 1 framework.

Section 2 decomposes a dynamic-priority discipline's implementation
complexity into three factors:

* **State storage** — attributes/counters kept per stream;
* **Attribute-comparison complexity** — how many attributes one
  pairwise decision consults (EDF/WFQ: one; DWCS: several);
* **Winner-selection and priority-update rates** — whether priorities
  must be recomputed every decision cycle.

The framework (Figure 1a) relates *QoS bounds* and *scale* (stream
count, granularity) to a required *scheduling rate*, and Figure 1b asks
whether that rate is realizable for a discipline of given complexity.
This module encodes both: a per-discipline complexity profile and the
achievable-rate / required-rate comparison for processor and FPGA
targets, using the Section 4.1 software-latency measurements and the
calibrated FPGA timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Routing
from repro.framework.packet_time import packet_time_us
from repro.hwmodel.timing import decision_time_us

__all__ = [
    "DisciplineProfile",
    "PROFILES",
    "SOFTWARE_LATENCY_US",
    "required_rate_dps",
    "achievable_rate_dps",
    "FrameworkPoint",
    "evaluate_point",
]


@dataclass(frozen=True, slots=True)
class DisciplineProfile:
    """Complexity profile of one discipline family (Figure 1b)."""

    name: str
    state_bits_per_stream: int
    comparison_attributes: int
    updates_every_cycle: bool

    @property
    def complexity_score(self) -> float:
        """Relative implementation complexity (dimensionless ranking).

        Comparison width and a per-cycle-update multiplier dominate;
        state is cheap in CLB flip-flops.  Used only to *rank*
        disciplines as Figure 1b does, not as an absolute cost.
        """
        update_factor = 2.0 if self.updates_every_cycle else 1.0
        return (
            self.comparison_attributes * update_factor
            + self.state_bits_per_stream / 64.0
        )


#: Per-stream register widths follow Figure 4's field sizes.
PROFILES: dict[str, DisciplineProfile] = {
    "fcfs": DisciplineProfile("fcfs", 16, 1, False),
    "static_priority": DisciplineProfile("static_priority", 21, 1, False),
    "edf": DisciplineProfile("edf", 37, 1, False),
    "wfq": DisciplineProfile("wfq", 53, 1, False),
    "sfq": DisciplineProfile("sfq", 53, 1, False),
    "drr": DisciplineProfile("drr", 37, 1, False),
    "dwcs": DisciplineProfile("dwcs", 53, 4, True),
}

#: Measured software scheduler latencies the paper cites (Section 4.1),
#: microseconds per decision.
SOFTWARE_LATENCY_US: dict[str, float] = {
    "dwcs @ UltraSPARC 300MHz (West et al.)": 50.0,
    "dwcs @ i960RD 66MHz (Krishnamurthy et al.)": 67.0,
    "drr @ Pentium 233MHz NetBSD (Decasper et al.)": 35.0,
    "hfsc @ Pentium 200MHz (Stoica et al.)": 8.5,
}


def required_rate_dps(
    n_streams: int, length_bytes: int, rate_bps: float
) -> float:
    """Decisions/second needed to keep a link busy at a frame size.

    One decision per packet-time; independent of stream count for
    winner-per-decision operation (more streams raise the *decision
    latency*, handled on the achievable side).
    """
    if n_streams <= 0:
        raise ValueError("need at least one stream")
    return 1e6 / packet_time_us(length_bytes, rate_bps)


def achievable_rate_dps(
    discipline: str,
    n_slots: int,
    *,
    target: str = "fpga",
    routing: Routing = Routing.WR,
    software_latency_us: float | None = None,
) -> float:
    """Decisions/second a target sustains for a discipline.

    ``target="fpga"`` uses the calibrated Virtex timing model (the
    decision latency is discipline-independent by construction of the
    canonical architecture — that is the point of the single-cycle
    Decision block).  ``target="software"`` uses a measured or supplied
    per-decision latency.
    """
    if target == "fpga":
        return 1e6 / decision_time_us(n_slots, routing)
    if target == "software":
        if software_latency_us is None:
            # Default to the paper's P-III-era DWCS figure scaled by
            # comparison width relative to DWCS.
            profile = PROFILES[discipline]
            software_latency_us = 50.0 * (
                profile.complexity_score / PROFILES["dwcs"].complexity_score
            )
        return 1e6 / software_latency_us
    raise ValueError(f"unknown target {target!r}")


@dataclass(frozen=True, slots=True)
class FrameworkPoint:
    """One (discipline, scale, link) point in the Figure 1 space."""

    discipline: str
    n_streams: int
    length_bytes: int
    rate_bps: float
    target: str
    required_dps: float
    achievable_dps: float

    @property
    def realizable(self) -> bool:
        """Whether the target sustains the required scheduling rate."""
        return self.achievable_dps >= self.required_dps

    @property
    def headroom(self) -> float:
        """achievable / required (>= 1 means realizable)."""
        return self.achievable_dps / self.required_dps


def evaluate_point(
    discipline: str,
    n_streams: int,
    length_bytes: int,
    rate_bps: float,
    *,
    target: str = "fpga",
    routing: Routing = Routing.WR,
    software_latency_us: float | None = None,
) -> FrameworkPoint:
    """Evaluate realizability of one framework point (Figure 1)."""
    if discipline not in PROFILES:
        raise KeyError(f"unknown discipline {discipline!r}")
    n_slots = max(2, 1 << (n_streams - 1).bit_length())
    return FrameworkPoint(
        discipline=discipline,
        n_streams=n_streams,
        length_bytes=length_bytes,
        rate_bps=rate_bps,
        target=target,
        required_dps=required_rate_dps(n_streams, length_bytes, rate_bps),
        achievable_dps=achievable_rate_dps(
            discipline,
            n_slots,
            target=target,
            routing=routing,
            software_latency_us=software_latency_us,
        ),
    )
