"""The Section 2 architectural framework (Figure 1)."""

from repro.framework.admission import (
    AdmissionDecision,
    StreamRequest,
    admit,
    minimum_utilization,
    slot_delay_bound,
)
from repro.framework.complexity import (
    PROFILES,
    SOFTWARE_LATENCY_US,
    DisciplineProfile,
    FrameworkPoint,
    achievable_rate_dps,
    evaluate_point,
    required_rate_dps,
)
from repro.framework.packet_time import (
    PAPER_FRAME_SIZES,
    PAPER_LINK_RATES,
    FeasibilityPoint,
    feasibility,
    packet_time_us,
)

__all__ = [
    "AdmissionDecision",
    "DisciplineProfile",
    "FeasibilityPoint",
    "FrameworkPoint",
    "StreamRequest",
    "admit",
    "minimum_utilization",
    "slot_delay_bound",
    "PAPER_FRAME_SIZES",
    "PAPER_LINK_RATES",
    "PROFILES",
    "SOFTWARE_LATENCY_US",
    "achievable_rate_dps",
    "evaluate_point",
    "feasibility",
    "packet_time_us",
    "required_rate_dps",
]
