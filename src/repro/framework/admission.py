"""Admission control: QoS bounds and schedulability (Figure 1's axes).

The framework's *QoS Bounds* axis (bandwidth, delay, delay-jitter —
Section 2) needs an admission test: can a set of window-constrained
streams be scheduled so every constraint holds?  This module implements
the standard DWCS feasibility condition from the paper's cited analysis
(West & Poellabauer [26]):

* each stream ``i`` with request period ``T_i`` and window-constraint
  ``W_i = x_i / y_i`` *requires* a minimum utilization
  ``U_i = (1 - x_i / y_i) / T_i`` (it must transmit at least
  ``y_i - x_i`` of every ``y_i`` packets, one packet-time each);
* a unit-capacity link is schedulable when ``sum_i U_i <= 1``.

It also provides the per-slot **delay bound** the conclusion promises
for aggregated streams ("the stream-slot they are bound to will be
guaranteed a delay-bound"): a slot holding share ``1/T`` of the link
serves its head within ``T`` packet-times once granted, so a
streamlet queued behind ``q`` others in its slot waits at most
``(q + 1) * T`` packet-times.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "StreamRequest",
    "AdmissionDecision",
    "minimum_utilization",
    "admit",
    "slot_delay_bound",
]


@dataclass(frozen=True, slots=True)
class StreamRequest:
    """One stream's QoS request presented to admission control."""

    stream_id: int
    period: float  # request period T, in packet-times
    loss_numerator: int = 0
    loss_denominator: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.loss_numerator < 0 or self.loss_denominator < 0:
            raise ValueError("window terms must be non-negative")
        if self.loss_denominator and self.loss_numerator > self.loss_denominator:
            raise ValueError("x must not exceed y")


def minimum_utilization(request: StreamRequest) -> float:
    """Link share the stream needs: ``(1 - x/y) / T``.

    With no window tolerance (``x = 0`` or ``y = 0``) every packet must
    go out: the full ``1/T``.
    """
    if request.loss_denominator == 0:
        tolerance = 0.0
    else:
        tolerance = request.loss_numerator / request.loss_denominator
    return (1.0 - tolerance) / request.period


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    total_utilization: float
    per_stream: dict[int, float]

    @property
    def headroom(self) -> float:
        """Residual link share available to best-effort traffic."""
        return max(0.0, 1.0 - self.total_utilization)


def admit(
    requests: list[StreamRequest], *, capacity: float = 1.0
) -> AdmissionDecision:
    """DWCS utilization-based admission test over a shared link.

    ``capacity`` rescales for links serving other reserved traffic
    (e.g. admit against 0.9 to keep 10% for control traffic).
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    ids = [r.stream_id for r in requests]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate stream ids in admission request")
    per_stream = {r.stream_id: minimum_utilization(r) for r in requests}
    total = sum(per_stream.values())
    return AdmissionDecision(
        admitted=total <= capacity,
        total_utilization=total,
        per_stream=per_stream,
    )


def slot_delay_bound(
    period: float, *, queued_ahead: int = 0, packet_time: float = 1.0
) -> float:
    """Worst-case delay for a packet bound to a stream-slot.

    A slot with request period ``T`` is served at least once every
    ``T`` packet-times under an admitted schedule; a packet entering
    with ``queued_ahead`` packets before it in the slot's queue
    therefore leaves within ``(queued_ahead + 1) * T`` packet-times.
    Aggregation trades per-streamlet deadlines for exactly this
    slot-level bound (Section 6's conclusion).
    """
    if period <= 0 or packet_time <= 0:
        raise ValueError("period and packet_time must be positive")
    if queued_ahead < 0:
        raise ValueError("queued_ahead must be non-negative")
    return (queued_ahead + 1) * period * packet_time
