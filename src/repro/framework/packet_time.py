"""Packet-time arithmetic and wire-speed feasibility checks.

"Scheduling disciplines must be able to make a decision within a
packet-time (packet-length(in bits) / line-speed(bps)) to maintain high
link utilization." (Section 1.)  This module provides the packet-time
figures the paper quotes (64-byte and 1500-byte Ethernet frames on
1 Gb/s and 10 Gb/s links) and the feasibility predicate behind its
claim that "our Virtex I implementation can easily meet the packet-time
requirements of all frame sizes on gigabit links, and 1500-byte frames
on 10 Gbps links".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Routing
from repro.hwmodel.timing import decision_time_us

__all__ = [
    "packet_time_us",
    "FeasibilityPoint",
    "feasibility",
    "PAPER_FRAME_SIZES",
    "PAPER_LINK_RATES",
]

#: Frame sizes the paper reasons about (bytes).
PAPER_FRAME_SIZES = (64, 1500)
#: Link rates the paper reasons about (bits/second).
PAPER_LINK_RATES = {"1Gbps": 1e9, "10Gbps": 1e10}


def packet_time_us(length_bytes: int, rate_bps: float) -> float:
    """Serialization time of one frame, in microseconds."""
    if length_bytes <= 0:
        raise ValueError("length must be positive")
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    return length_bytes * 8 / rate_bps * 1e6


@dataclass(frozen=True, slots=True)
class FeasibilityPoint:
    """Whether a design point meets a link's packet-time."""

    n_slots: int
    routing: Routing
    length_bytes: int
    rate_bps: float
    block: bool
    decision_us: float
    packet_us: float

    @property
    def effective_decision_us(self) -> float:
        """Decision time per packet (a block amortizes over N packets)."""
        if self.block:
            return self.decision_us / self.n_slots
        return self.decision_us

    @property
    def feasible(self) -> bool:
        """True when a decision completes within one packet-time."""
        return self.effective_decision_us <= self.packet_us

    @property
    def margin(self) -> float:
        """packet-time / per-packet decision time (>= 1 is feasible)."""
        return self.packet_us / self.effective_decision_us


def feasibility(
    n_slots: int,
    length_bytes: int,
    rate_bps: float,
    *,
    routing: Routing = Routing.WR,
    block: bool = False,
    schedule: str = "paper",
) -> FeasibilityPoint:
    """Evaluate one (design, frame size, link rate) feasibility point."""
    return FeasibilityPoint(
        n_slots=n_slots,
        routing=routing,
        length_bytes=length_bytes,
        rate_bps=rate_bps,
        block=block,
        decision_us=decision_time_us(n_slots, routing, schedule=schedule),
        packet_us=packet_time_us(length_bytes, rate_bps),
    )
