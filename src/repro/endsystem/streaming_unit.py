"""Streaming unit: keeps the card-side per-stream queues full.

"The Streaming unit keeps per-stream queues on the FPGA PCI card full
using a combination of push and pull transfers.  For small transfers,
the Stream processor can push arrival-times to the FPGA PCI card.  For
bulk-transfers, the Stream processor will set the DMA engine registers
and assert the pull-start line." (Section 4.2.)

This component moves *arrival-time offsets* (not frames) from the
Queue Manager into the scheduler's slot pending queues, assigns the
per-slot virtual deadlines that realize each stream's share
(``deadline += period`` per request, the hardware's EDF/fair-share
encoding), and accounts the PCI cost of each batch on the
:class:`~repro.sim.pci.PCIBus`.
"""

from __future__ import annotations

from repro.core.batch_engine import BatchScheduler
from repro.core.scheduler import ShareStreamsScheduler
from repro.core.tensor_engine import TensorScheduler
from repro.endsystem.queue_manager import QueueManager
from repro.sim.pci import PCIBus
from repro.sim.sram import BankedSRAM, Owner

__all__ = ["StreamingUnit"]


class StreamingUnit:
    """Batched arrival-time mover between QM and scheduler slots.

    Parameters
    ----------
    qm, scheduler:
        The host-side queues and the card-side scheduler (either
        engine: the object model or the vectorized batch engine).
    periods:
        Per-stream virtual request periods (deadline spacing); derived
        from shares by the host setup.
    pci:
        Transfer accountant.
    sram:
        Card SRAM banks (ownership arbitration accounting).
    batch_size:
        Arrival-time offsets moved per transfer; the push/pull split is
        decided per batch (PIO for small, DMA for bulk).
    card_queue_depth:
        Target depth of each slot's card-side pending queue.
    """

    def __init__(
        self,
        qm: QueueManager,
        scheduler: ShareStreamsScheduler | BatchScheduler | TensorScheduler,
        periods: dict[int, int],
        *,
        pci: PCIBus | None = None,
        sram: BankedSRAM | None = None,
        batch_size: int = 64,
        card_queue_depth: int = 256,
        transfer_mode: str = "auto",
    ) -> None:
        if batch_size <= 0 or card_queue_depth <= 0:
            raise ValueError("batch size and queue depth must be positive")
        self.qm = qm
        self.scheduler = scheduler
        self.periods = dict(periods)
        self.pci = pci or PCIBus()
        self.sram = sram or BankedSRAM()
        self.batch_size = batch_size
        self.card_queue_depth = card_queue_depth
        self.transfer_mode = transfer_mode
        # Next virtual deadline per slot (advances by the period per
        # request — the fair-share encoding).
        self._next_deadline: dict[int, int] = {
            sid: self.periods[sid] for sid in qm.stream_ids
        }
        # How many of each stream's frames have had their arrival times
        # shipped to the card already.
        self._shipped: dict[int, int] = {sid: 0 for sid in qm.stream_ids}

    def card_backlog(self, sid: int) -> int:
        """Requests currently on the card for one slot (incl. latched)."""
        slot = self.scheduler.slot(sid)
        return slot.backlog + (1 if slot.head is not None else 0)

    def refill_slot(self, sid: int, now_us: float) -> tuple[int, float]:
        """Top up one slot's card queue; returns (moved, pci_time_us).

        Moves at most one batch.  Only frames already present in the QM
        ring (arrived) are eligible — their 16-bit arrival offsets are
        what crosses the bus.
        """
        desc = self.qm.descriptors[sid]
        available = desc.produced - self._shipped[sid]
        room = self.card_queue_depth - self.card_backlog(sid)
        count = min(available, room, self.batch_size)
        if count <= 0:
            return 0, 0.0
        pci_time = self.pci.push_arrival_times(count, self.transfer_mode)
        # Host writes the offsets into the card SRAM bank, then the
        # scheduler's memory interface reads them back — each direction
        # change pays the bank-ownership switch the paper identifies as
        # the Celoxica card's transfer bottleneck (Section 5.2).
        words = (count + 1) // 2
        bank = self.sram.bank(0)
        pci_time += bank.write(Owner.HOST, 0, [0] * words)
        _, switch_cost = bank.read(Owner.FPGA, 0, words)
        pci_time += switch_cost
        period = self.periods[sid]
        arrivals = desc.spec.arrivals_us
        frame_bytes = desc.spec.frame_bytes
        for _ in range(count):
            seq = self._shipped[sid]
            deadline = self._next_deadline[sid]
            self._next_deadline[sid] = deadline + period
            self.scheduler.enqueue(
                sid,
                deadline=deadline,
                arrival=int(arrivals[seq]),
                length=frame_bytes,
            )
            self._shipped[sid] += 1
        return count, pci_time

    def refill_all(self, now_us: float) -> tuple[int, float]:
        """Refill every slot once; returns (total moved, total pci time)."""
        moved = 0
        pci_time = 0.0
        for sid in self.qm.stream_ids:
            n, t = self.refill_slot(sid, now_us)
            moved += n
            pci_time += t
        return moved, pci_time
