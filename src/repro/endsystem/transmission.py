"""Transmission Engine (TE): drains scheduled streams to the network.

"Transmission Engine threads are responsible for enabling transfer of
packets in scheduled streams to the network (set DMA registers on NI to
enable DMA pulls)." (Section 4.2.)  The TE receives scheduled 5-bit
Stream IDs from the card, pops the corresponding frame from the Queue
Manager's per-stream ring (the synchronization-free consumer side) and
hands it to the link, charging the calibrated host per-packet cost.
"""

from __future__ import annotations

from typing import Callable

from repro.endsystem.queue_manager import Frame, QueueManager
from repro.hwmodel.host import PIII_550_LINUX24, HostCostModel
from repro.metrics.bandwidth import BandwidthMeter
from repro.metrics.delay import DelayTracker
from repro.sim.nic import Link
from repro.sim.pci import PCIBus

__all__ = ["TransmissionEngine"]


class TransmissionEngine:
    """Per-frame service path: QM pop -> host cost -> wire.

    Parameters
    ----------
    qm:
        Queue manager holding the frames.
    link:
        Output link (or effective playout drain) frames serialize on.
    host:
        Calibrated host cost model.
    include_pci:
        Charge the per-frame PIO cost (arrival-time push + stream-ID
        read) on the service path, as the paper's 299,065 pps
        measurement does; off for the 469,483 pps configuration.
    pci:
        Accountant for the stream-ID read-back transfers.
    on_departure:
        Optional hook ``(sid, frame, departure_us)`` — the aggregation
        experiment attributes slot departures to streamlets here.
    """

    def __init__(
        self,
        qm: QueueManager,
        link: Link,
        *,
        host: HostCostModel = PIII_550_LINUX24,
        include_pci: bool = True,
        pci: PCIBus | None = None,
        hw_decision_us: float = 0.0,
        transfer_cost_us: float | None = None,
        on_departure: Callable[[int, Frame, float], None] | None = None,
    ) -> None:
        self.qm = qm
        self.link = link
        self.host = host
        self.include_pci = include_pci
        self.pci = pci or PCIBus()
        self.hw_decision_us = hw_decision_us
        # Per-frame transfer cost on the critical path; defaults to the
        # calibrated PIO cost, overridable for peer-to-peer transfers
        # (Section 5.2: "We expect peer-peer PCI transfers ... to
        # enhance the performance").
        self.transfer_cost_us = (
            host.pio_cost_us if transfer_cost_us is None else transfer_cost_us
        )
        self.on_departure = on_departure
        self.bandwidth = BandwidthMeter()
        self.delay = DelayTracker()
        self.frames_sent = 0
        self.bytes_sent = 0

    def service_time_us(self, length_bytes: int) -> float:
        """Per-frame service time: the max of the concurrent stages.

        Queuing, scheduling and streaming run concurrently (Section 5's
        "Concurrency is crucial..."), so the pipeline rate is set by
        its slowest stage: wire serialization, host per-packet work
        (plus the transfer cost when on the critical path), or the
        hardware decision.
        """
        host_cost = self.host.packet_cost_us
        if self.include_pci:
            host_cost += self.transfer_cost_us
        return max(
            self.link.packet_time_us(length_bytes),
            host_cost,
            self.hw_decision_us,
        )

    def transmit(self, sid: int, now_us: float) -> tuple[Frame | None, float]:
        """Send the head frame of stream ``sid``; returns (frame, t_done).

        ``None`` (and ``now_us``) when the QM ring for the stream was
        empty — a scheduling/queueing inconsistency the caller treats
        as a no-op cycle.
        """
        frame = self.qm.pop(sid)
        if frame is None:
            return None, now_us
        if self.include_pci:
            self.pci.read_stream_ids(1)
        departure = now_us + self.service_time_us(frame.length_bytes)
        self.frames_sent += 1
        self.bytes_sent += frame.length_bytes
        self.bandwidth.record(sid, departure, frame.length_bytes)
        self.delay.record(sid, frame.arrival_us, departure)
        if self.on_departure is not None:
            self.on_departure(sid, frame, departure)
        return frame, departure
