"""Streamlet aggregation: many streams bound to one stream-slot.

"If aggregate QoS is required over a set of streams without any
per-stream QoS, then many streams (called streamlets, if aggregated)
can be bound to a single Register Base block or Stream-slot.  This is a
powerful strategy to achieve scale by trading lower QoS bounds for
higher stream count, or processor memory footprint size for lower FPGA
state storage." (Section 4.3.)

The paper's Figure 10 run binds 100 streamlet queues to each of four
slots (slots sharing 1:1:2:4), serves streamlets round-robin *on the
Stream processor* ("Round-robin service policy can be completed fast
and efficiently on the Stream processor, while more complex ordering
and decisions are accelerated on the FPGA"), and even hosts two
streamlet *sets* inside slot 4, set 1 at double the bandwidth of set 2.

:class:`AggregatedSlot` implements exactly that: smooth weighted
round-robin across sets, plain round-robin within a set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StreamletSet", "AggregatedSlot", "StreamletKey"]

#: (slot id, set index, streamlet index) — identity of one streamlet.
StreamletKey = tuple[int, int, int]


@dataclass
class StreamletSet:
    """One set of equally-treated streamlets inside a slot.

    ``weight`` sets the set's share of the slot's bandwidth relative to
    its sibling sets (Figure 10's slot 4: set 1 weight 2, set 2
    weight 1).
    """

    set_index: int
    n_streamlets: int
    weight: float = 1.0
    _cursor: int = field(default=0, init=False)
    served: list[int] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.n_streamlets <= 0:
            raise ValueError("a set needs at least one streamlet")
        if self.weight <= 0:
            raise ValueError("set weight must be positive")
        self.served = [0] * self.n_streamlets

    def next_streamlet(self) -> int:
        """Round-robin within the set ("cycling through active queues")."""
        index = self._cursor
        self._cursor = (self._cursor + 1) % self.n_streamlets
        self.served[index] += 1
        return index


class AggregatedSlot:
    """Streamlet multiplexing for one stream-slot.

    Uses smooth weighted round-robin across sets: each pick, every
    set's credit grows by its weight and the richest set is served,
    paying the total weight — deterministic, and interleaves service
    proportionally to weights without bursts.
    """

    def __init__(self, slot_id: int, sets: list[StreamletSet]) -> None:
        if not sets:
            raise ValueError("need at least one streamlet set")
        indices = [s.set_index for s in sets]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate set indices")
        self.slot_id = slot_id
        self.sets = list(sets)
        self._credit = [0.0] * len(sets)
        self._total_weight = sum(s.weight for s in sets)
        self.picks = 0

    @property
    def n_streamlets(self) -> int:
        """Total streamlets aggregated into the slot."""
        return sum(s.n_streamlets for s in self.sets)

    def pick(self) -> StreamletKey:
        """Attribute one slot service to a streamlet."""
        best = 0
        for i in range(len(self.sets)):
            self._credit[i] += self.sets[i].weight
            if self._credit[i] > self._credit[best]:
                best = i
        self._credit[best] -= self._total_weight
        chosen = self.sets[best]
        self.picks += 1
        return (self.slot_id, chosen.set_index, chosen.next_streamlet())

    def service_counts(self) -> dict[StreamletKey, int]:
        """Services attributed to each streamlet so far."""
        counts: dict[StreamletKey, int] = {}
        for s in self.sets:
            for i, n in enumerate(s.served):
                counts[(self.slot_id, s.set_index, i)] = n
        return counts
