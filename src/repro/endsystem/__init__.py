"""Endsystem/host-router realization of the ShareStreams architecture."""

from repro.endsystem.aggregation import AggregatedSlot, StreamletKey, StreamletSet
from repro.endsystem.host import (
    PLAYOUT_LINK_128M,
    EndsystemConfig,
    EndsystemResult,
    EndsystemRouter,
)
from repro.endsystem.queue_manager import Frame, QueueManager, StreamDescriptor
from repro.endsystem.stats import PipelineReport, StageLoad, analyze_pipeline
from repro.endsystem.streaming_unit import StreamingUnit
from repro.endsystem.transmission import TransmissionEngine

__all__ = [
    "AggregatedSlot",
    "EndsystemConfig",
    "EndsystemResult",
    "EndsystemRouter",
    "Frame",
    "PLAYOUT_LINK_128M",
    "PipelineReport",
    "QueueManager",
    "StageLoad",
    "StreamDescriptor",
    "StreamingUnit",
    "StreamletKey",
    "StreamletSet",
    "TransmissionEngine",
    "analyze_pipeline",
]
