"""Pipeline-stage analysis of an endsystem run.

Section 5's design lesson is that *concurrency between queuing,
scheduling and data streaming* sets the endsystem's throughput: the
pipeline runs at the rate of its slowest stage.  This module breaks an
:class:`~repro.endsystem.host.EndsystemResult` down by stage — wire
serialization, host per-packet work, PCI transfer, hardware decisions,
SRAM arbitration — and identifies the bottleneck, reproducing the
paper's diagnosis that the Celoxica SRAM ownership switching (folded
into the PIO cost) bounds the PIO configuration while the host bounds
the DMA/no-PCI configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.endsystem.host import EndsystemResult

__all__ = ["StageLoad", "PipelineReport", "analyze_pipeline"]


@dataclass(frozen=True, slots=True)
class StageLoad:
    """One pipeline stage's per-frame cost and aggregate busy time."""

    name: str
    per_frame_us: float
    busy_us: float
    utilization: float


@dataclass(frozen=True, slots=True)
class PipelineReport:
    """Stage-by-stage utilization of one endsystem run."""

    stages: tuple[StageLoad, ...]
    elapsed_us: float
    frames: int

    @property
    def bottleneck(self) -> StageLoad:
        """The stage with the highest utilization."""
        return max(self.stages, key=lambda s: s.utilization)

    def stage(self, name: str) -> StageLoad:
        """Look up one stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"unknown stage {name!r}")


def analyze_pipeline(result: EndsystemResult, *, include_pci: bool | None = None) -> PipelineReport:
    """Decompose a run into per-stage utilizations.

    ``include_pci`` overrides whether the PIO cost sat on the critical
    path (defaults to what the run's TE actually charged).
    """
    te = result.te
    frames = result.frames_sent
    elapsed = result.elapsed_us
    if frames == 0 or elapsed == 0:
        return PipelineReport(stages=(), elapsed_us=elapsed, frames=0)
    if include_pci is None:
        include_pci = te.include_pci

    mean_bytes = result.bytes_sent / frames
    wire_us = te.link.packet_time_us(int(round(mean_bytes)))
    host_us = te.host.packet_cost_us
    pio_us = te.transfer_cost_us if include_pci else 0.0
    hw_us = te.hw_decision_us
    # Streaming-unit bus accounting (overlapped, not on the TE path).
    bus_us_total = result.pci.total_time_us
    sram_us_total = result.sram.total_switch_time_us

    def stage(name: str, per_frame: float, busy: float | None = None) -> StageLoad:
        busy_total = per_frame * frames if busy is None else busy
        return StageLoad(
            name=name,
            per_frame_us=per_frame,
            busy_us=busy_total,
            utilization=min(1.0, busy_total / elapsed),
        )

    stages = (
        stage("wire", wire_us),
        stage("host", host_us),
        stage("pci-pio (critical path)", pio_us),
        stage("fpga decision", hw_us),
        stage("pci bus (overlapped)", bus_us_total / frames, bus_us_total),
        stage("sram arbitration (overlapped)", sram_us_total / frames, sram_us_total),
    )
    return PipelineReport(stages=stages, elapsed_us=elapsed, frames=frames)
