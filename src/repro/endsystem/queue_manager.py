"""Queue Manager (QM): per-stream queues on the Stream processor.

"The ShareStreams architecture maintains per-stream queues usually
created on a stream processor by a Queue Manager.  ShareStreams'
per-stream queues are circular buffers with separate read and write
pointers for concurrent access, without any synchronization needs."
(Section 4.2, Figure 3.)

The QM owns the frames themselves (payload stays in processor memory —
only 16-bit arrival-time offsets and 5-bit stream IDs cross the PCI
bus) and the per-stream descriptors holding service attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.ring import CircularQueue
from repro.traffic.specs import EndsystemStreamSpec

__all__ = ["Frame", "StreamDescriptor", "QueueManager"]


@dataclass(frozen=True, slots=True)
class Frame:
    """One queued frame in processor memory."""

    stream_id: int
    seq: int
    arrival_us: float
    length_bytes: int


@dataclass(slots=True)
class StreamDescriptor:
    """QM descriptor: the stream's service attributes and progress."""

    spec: EndsystemStreamSpec
    produced: int = 0
    consumed: int = 0
    dropped_full: int = 0


class QueueManager:
    """Per-stream circular frame queues plus descriptors.

    Parameters
    ----------
    specs:
        Workload streams to create queues for.
    queue_capacity:
        Ring capacity per stream; the fully-backlogged experiments size
        it to hold the whole workload (the paper queues all 64000
        frames up-front).
    """

    def __init__(
        self,
        specs: list[EndsystemStreamSpec],
        *,
        queue_capacity: int = 1 << 17,
    ) -> None:
        self.descriptors: dict[int, StreamDescriptor] = {}
        self.queues: dict[int, CircularQueue] = {}
        for spec in specs:
            if spec.sid in self.descriptors:
                raise ValueError(f"duplicate stream id {spec.sid}")
            self.descriptors[spec.sid] = StreamDescriptor(spec=spec)
            self.queues[spec.sid] = CircularQueue(queue_capacity)

    @property
    def stream_ids(self) -> list[int]:
        """All managed streams, in ID order."""
        return sorted(self.queues)

    def produce(self, sid: int, arrival_us: float) -> Frame | None:
        """Producer side: append the stream's next frame at ``arrival_us``.

        Returns the frame, or ``None`` if the ring was full (counted as
        a producer-side drop).
        """
        desc = self.descriptors[sid]
        frame = Frame(
            stream_id=sid,
            seq=desc.produced,
            arrival_us=arrival_us,
            length_bytes=desc.spec.frame_bytes,
        )
        if not self.queues[sid].push(frame):
            desc.dropped_full += 1
            return None
        desc.produced += 1
        return frame

    def preload(self, sid: int) -> int:
        """Queue every frame of the stream's workload up-front.

        Models the Section 5.2 methodology ("We start the clock after
        64000 packets from each stream are queued").  Returns how many
        frames were queued.
        """
        desc = self.descriptors[sid]
        queued = 0
        for arrival in np.asarray(desc.spec.arrivals_us, dtype=np.float64):
            if self.produce(sid, float(arrival)) is None:
                break
            queued += 1
        return queued

    def pop(self, sid: int) -> Frame | None:
        """Consumer side (Transmission Engine): take the head frame."""
        frame = self.queues[sid].pop()
        if frame is not None:
            self.descriptors[sid].consumed += 1
        return frame

    def backlog(self, sid: int) -> int:
        """Frames queued for one stream."""
        return len(self.queues[sid])

    @property
    def total_backlog(self) -> int:
        """Frames queued across all streams."""
        return sum(len(q) for q in self.queues.values())
