"""Endsystem/host-router realization: the full Figure 3 pipeline.

Composes the Queue Manager, Streaming Unit, FPGA scheduler and
Transmission Engine into one simulated host router:

* frames arrive into QM per-stream circular queues (producer side);
* the streaming unit batches 16-bit arrival-time offsets over PCI into
  the card-side slot queues, assigning virtual deadlines that realize
  each stream's share (``deadline += period`` per request);
* the scheduler hardware (max-finding configuration — "critical for
  bandwidth allocation", Section 5.1) picks a winner per service slot;
* the TE pops the winner's frame and serializes it onto the output
  link, the pipeline rate being the slowest concurrent stage.

The default playout link is 128 Mbit/s — calibrated so the 1:1:2:4 run
lands on the paper's 2/2/4/8 MBps per-stream bandwidths (Figures 8 and
10); Section 5.2's throughput configuration swaps in a 10 GbE link so
the host cost dominates, reproducing the 469k/299k pps anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import BatchScheduler, make_scheduler
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.core.tensor_engine import TensorScheduler
from repro.endsystem.queue_manager import Frame, QueueManager
from repro.endsystem.streaming_unit import StreamingUnit
from repro.endsystem.transmission import TransmissionEngine
from repro.hwmodel.host import PIII_550_LINUX24, HostCostModel
from repro.hwmodel.timing import decision_time_us
from repro.sim.engine import Simulator
from repro.sim.nic import Link
from repro.sim.pci import PCIBus, PCIConfig
from repro.sim.sram import BankedSRAM
from repro.traffic.specs import EndsystemStreamSpec

__all__ = ["EndsystemConfig", "EndsystemResult", "EndsystemRouter", "PLAYOUT_LINK_128M"]

#: Effective drain rate calibrated to the paper's Figure 8/10 scale
#: (aggregate ~16 MBps over four streams at 1:1:2:4 -> 2/2/4/8 MBps).
PLAYOUT_LINK_128M = Link("playout-128Mbps", 128e6)


#: Per-frame cost of peer-to-peer batched DMA transfers: the DMA setup
#: amortized over a 64-offset batch plus burst streaming, with no
#: host-mediated PIO and no SRAM bank ping-pong (Section 5.2's expected
#: improvement: "peer-peer transfers can be completed with high-rates
#: on modern backplane buses").
PEER_TRANSFER_COST_US = 0.15


@dataclass(frozen=True, slots=True)
class EndsystemConfig:
    """Configuration of one endsystem router instance.

    ``peer_to_peer`` replaces the per-frame PIO cost with the amortized
    peer DMA cost — the forward-looking configuration Section 5.2
    anticipates (e.g. a network processor on the PCI bus exchanging
    directly with the FPGA card).

    ``engine`` selects the scheduler implementation: ``"reference"``
    (the cycle-level object model, the oracle), ``"batch"`` (the
    vectorized engine) or ``"tensor"`` (the scenario-tensorized
    campaign engine's single-scenario adapter) — both fast paths are
    behaviorally identical, cross-validated by
    :mod:`repro.core.differential`.
    """

    link: Link = PLAYOUT_LINK_128M
    host: HostCostModel = PIII_550_LINUX24
    pci: PCIConfig = field(default_factory=PCIConfig)
    include_pci: bool = True
    peer_to_peer: bool = False
    batch_size: int = 64
    card_queue_depth: int = 256
    n_slots: int = 4
    routing: Routing = Routing.WR
    sram_switch_cost_us: float = 1.0
    engine: str = "reference"

    @property
    def transfer_cost_us(self) -> float:
        """Per-frame transfer cost on the critical path."""
        if not self.include_pci:
            return 0.0
        if self.peer_to_peer:
            return PEER_TRANSFER_COST_US
        return self.host.pio_cost_us


@dataclass
class EndsystemResult:
    """Measurements of one endsystem run."""

    elapsed_us: float
    frames_sent: int
    bytes_sent: int
    te: TransmissionEngine
    pci: PCIBus
    sram: BankedSRAM
    scheduler: ShareStreamsScheduler | BatchScheduler | TensorScheduler

    @property
    def throughput_pps(self) -> float:
        """Frames per second over the whole run."""
        return self.frames_sent / self.elapsed_us * 1e6 if self.elapsed_us else 0.0

    @property
    def throughput_mbps(self) -> float:
        """Megabytes per second over the whole run."""
        return self.bytes_sent / self.elapsed_us if self.elapsed_us else 0.0


class EndsystemRouter:
    """The composed endsystem/host-router simulation.

    Parameters
    ----------
    specs:
        Workload streams (one per scheduler slot).
    config:
        Endsystem parameters.
    on_departure:
        Optional ``(sid, frame, departure_us)`` hook (aggregation).
    observer:
        Telemetry hook, forwarded to the scheduler engine (per-decision
        events/metrics).  When it is a full
        :class:`repro.observability.Observability`, the router
        additionally profiles its pipeline phases (refill / decide /
        transmit) and feeds endsystem metrics (frames/bytes
        transmitted, card-queue depths).  ``None`` disables all of it.
    """

    def __init__(
        self,
        specs: list[EndsystemStreamSpec],
        config: EndsystemConfig | None = None,
        *,
        on_departure: Callable[[int, Frame, float], None] | None = None,
        observer=None,
    ) -> None:
        self.config = config or EndsystemConfig()
        if len(specs) > self.config.n_slots:
            raise ValueError(
                f"{len(specs)} streams exceed {self.config.n_slots} slots"
            )
        self.specs = list(specs)
        self.sim = Simulator()
        self.qm = QueueManager(specs)
        self.pci = PCIBus(self.config.pci)
        self.sram = BankedSRAM(switch_cost_us=self.config.sram_switch_cost_us)

        periods = self._periods_from_shares()
        arch = ArchConfig(
            n_slots=self.config.n_slots,
            routing=self.config.routing,
            wrap=False,  # ideal arithmetic: runs exceed the 16-bit horizon
        )
        streams = [
            StreamConfig(
                sid=spec.sid,
                period=periods[spec.sid],
                loss_numerator=spec.loss_numerator,
                loss_denominator=spec.loss_denominator,
                initial_deadline=0,
                mode=spec.mode,
            )
            for spec in specs
        ]
        self.scheduler = make_scheduler(
            arch, streams, engine=self.config.engine, observer=observer
        )
        self.observer = observer
        # Telemetry is duck-typed so a bare TraceRecorder works too;
        # every helper below is None when disabled (zero overhead).
        self._phase = getattr(observer, "phase", None)
        metrics = getattr(observer, "metrics", None)
        if metrics is not None:
            self._tx_frames = metrics.counter(
                "endsystem_tx_frames_total", "frames onto the playout link"
            )
            self._tx_bytes = metrics.counter(
                "endsystem_tx_bytes_total", "bytes onto the playout link"
            )
            self._card_depth = metrics.gauge(
                "endsystem_card_queue_depth",
                "card-side slot queue depth at last service",
            )
        else:
            self._tx_frames = self._tx_bytes = self._card_depth = None
        self.streaming = StreamingUnit(
            self.qm,
            self.scheduler,
            periods,
            pci=self.pci,
            sram=self.sram,
            batch_size=self.config.batch_size,
            card_queue_depth=self.config.card_queue_depth,
        )
        self.te = TransmissionEngine(
            self.qm,
            self.config.link,
            host=self.config.host,
            include_pci=self.config.include_pci,
            pci=self.pci,
            hw_decision_us=decision_time_us(
                self.config.n_slots, self.config.routing
            ),
            transfer_cost_us=self.config.transfer_cost_us
            if self.config.include_pci
            else None,
            on_departure=on_departure,
        )
        self._tick = 0  # scheduler virtual time (decision count)
        self._pending_arrivals = 0

    # ------------------------------------------------------------------

    def _periods_from_shares(self) -> dict[int, int]:
        """Integer request periods inversely proportional to shares."""
        shares = {spec.sid: Fraction(spec.share).limit_denominator(64) for spec in self.specs}
        top = max(shares.values())
        periods: dict[int, int] = {}
        denom_lcm = 1
        rel = {sid: top / s for sid, s in shares.items()}
        for frac in rel.values():
            denom_lcm = denom_lcm * frac.denominator // _gcd(
                denom_lcm, frac.denominator
            )
        for sid, frac in rel.items():
            periods[sid] = int(frac * denom_lcm)
        return periods

    # ------------------------------------------------------------------

    def _schedule_arrivals(self) -> None:
        """Emit producer events for every frame with a timed arrival."""
        for spec in self.specs:
            for arrival in spec.arrivals_us:
                self.sim.schedule_at(
                    float(arrival), self._on_arrival, spec.sid, float(arrival)
                )
                self._pending_arrivals += 1

    def _on_arrival(self, sid: int, arrival_us: float) -> None:
        self.qm.produce(sid, arrival_us)
        self._pending_arrivals -= 1

    def _service(self) -> None:
        """One TE service slot: refill, decide, transmit, reschedule."""
        now = self.sim.now
        # Keep the card queues topped up (streaming unit runs
        # concurrently; PCI time is accounted, not serialized here —
        # its critical-path share is in the TE's per-frame PIO cost).
        if self._phase is None:
            self.streaming.refill_all(now)
            outcome = self.scheduler.decision_cycle(
                self._tick, consume="winner", count_misses=False
            )
        else:
            with self._phase("endsystem.refill"):
                self.streaming.refill_all(now)
            with self._phase("endsystem.decide"):
                outcome = self.scheduler.decision_cycle(
                    self._tick, consume="winner", count_misses=False
                )
        self._tick += 1
        if outcome.circulated_sid is None:
            # Nothing eligible on the card.
            if self._pending_arrivals > 0:
                next_time = self.sim.peek_time()
                if next_time is not None:
                    self.sim.schedule_at(
                        max(next_time, now), self._service
                    )
                return
            return  # workload drained: stop the service chain
        sid = outcome.circulated_sid
        if self._phase is None:
            frame, done = self.te.transmit(sid, now)
        else:
            with self._phase("endsystem.transmit"):
                frame, done = self.te.transmit(sid, now)
        if frame is None:
            # Offsets reached the card before the frame hit the QM ring
            # (transient); retry at the next event.
            self.sim.schedule(1.0, self._service)
            return
        if self._tx_frames is not None:
            self._tx_frames.inc(stream=sid)
            self._tx_bytes.inc(frame.length_bytes, stream=sid)
            self._card_depth.set(self.scheduler.slot(sid).backlog, stream=sid)
        self.sim.schedule_at(done, self._service)

    # ------------------------------------------------------------------

    def run(self, *, preload: bool = False, max_events: int | None = None) -> EndsystemResult:
        """Execute the workload to completion.

        ``preload=True`` queues every frame up-front (the Section 5.2
        methodology); otherwise frames arrive per their spec times.
        """
        if preload:
            for spec in self.specs:
                self.qm.preload(spec.sid)
        else:
            self._schedule_arrivals()
        self.sim.schedule(0.0, self._service)
        self.sim.run(max_events=max_events)
        finalize = getattr(self.observer, "finalize", None)
        if finalize is not None:
            finalize()  # flush the conformance monitor's partial window
        return EndsystemResult(
            elapsed_us=self.sim.now,
            frames_sent=self.te.frames_sent,
            bytes_sent=self.te.bytes_sent,
            te=self.te,
            pci=self.pci,
            sram=self.sram,
            scheduler=self.scheduler,
        )


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
