"""Seeded churn workloads + byte-comparable replay for the tier.

A scenario is a fully materialized, deterministic event script — per
cycle: stream joins, stream leaves, packet arrivals — derived from one
integer seed.  :func:`run_aggregation` replays it on a standalone
:class:`~repro.aggregation.tier.AggregationTier` (reference or batch
engine); :func:`run_aggregation_bucket` replays a same-shape batch of
scenarios in lockstep on one tensorized
:class:`~repro.aggregation.tier.AggregationCampaign`.  Both produce
the same canonical summary shape, engine-independent by construction,
which is what :func:`repro.core.differential.validate_aggregation`
byte-compares and what the golden vectors freeze.

Summaries carry a sha256 ``service_digest`` over the *entire* service
event stream plus the first :data:`SERVICE_HEAD` events verbatim, so
golden files stay small while any divergence anywhere in the emission
order is still caught.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.aggregation.tier import AggregationCampaign, AggregationTier, _TierCore

__all__ = [
    "SERVICE_HEAD",
    "AggregationScenario",
    "generate_aggregation_scenario",
    "run_aggregation",
    "run_aggregation_bucket",
    "summarize_tier",
]

#: Service events stored verbatim in a summary (the rest is digested).
SERVICE_HEAD = 32

#: Stream weights offered by the generator.  All divide 1500 so SFQ
#: finish-tag arithmetic stays exact on the default packet length.
_WEIGHT_CHOICES = (1, 2, 3, 4, 5, 6, 10, 12)

_LENGTH_CHOICES = (300, 600, 900, 1500)


@dataclass(frozen=True)
class AggregationScenario:
    """One deterministic churn workload for the aggregation tier.

    ``initial`` joins happen before cycle 0.  ``events[t]`` is the
    ``(joins, leaves, arrivals)`` triple applied at the start of cycle
    ``t`` — joins as ``(sid, weight)``, leaves as bare sids, arrivals
    as ``(sid, deadline, length)``.  Leaving a stream with queued
    packets is legal (its weight leaves the aggregate immediately; the
    queued packets still drain), and the generator deliberately
    produces such events.
    """

    seed: int
    n_aggregates: int
    discipline: str = "pifo:sfq"
    salt: int = 0
    initial: tuple[tuple[int, int], ...] = ()
    events: tuple[
        tuple[
            tuple[tuple[int, int], ...],
            tuple[int, ...],
            tuple[tuple[int, int, int], ...],
        ],
        ...,
    ] = field(default=())

    @property
    def n_cycles(self) -> int:
        return len(self.events)

    @property
    def total_streams(self) -> int:
        """Distinct streams that ever join."""
        return len(self.initial) + sum(len(j) for j, _, _ in self.events)

    @property
    def total_arrivals(self) -> int:
        return sum(len(a) for _, _, a in self.events)

    def cache_payload(self) -> dict:
        """Resolved-config payload for the on-disk result cache.

        Keys the cache on the *aggregate topology* (aggregate count,
        bucketing salt, discipline) as well as the workload, so cached
        non-aggregated campaign entries can never satisfy aggregated
        lookups and two topologies never collide.
        """
        return {
            "kind": "aggregation-scenario",
            "seed": self.seed,
            "n_aggregates": self.n_aggregates,
            "discipline": self.discipline,
            "salt": self.salt,
            "initial": [list(pair) for pair in self.initial],
            "events": [
                [
                    [list(pair) for pair in joins],
                    list(leaves),
                    [list(pkt) for pkt in arrivals],
                ]
                for joins, leaves, arrivals in self.events
            ],
        }


def generate_aggregation_scenario(
    seed: int,
    *,
    n_streams: int = 48,
    n_aggregates: int = 8,
    n_cycles: int = 160,
    discipline: str = "pifo:sfq",
    salt: int = 0,
    max_arrivals: int = 3,
    join_rate: float = 0.15,
    leave_rate: float = 0.1,
) -> AggregationScenario:
    """Derive one churn workload deterministically from ``seed``.

    ``n_streams`` streams join up front; each cycle then joins a fresh
    stream with probability ``join_rate``, removes a uniformly chosen
    *active* stream (possibly with queued packets) with probability
    ``leave_rate`` while more than one remains, and lands
    ``0..max_arrivals`` packets on uniformly chosen active streams.
    Deadlines are loosely monotone (``t + U[1, 50]``) so ``pifo:edf``
    workloads stay meaningful; the active-stream list uses swap-remove
    so generation is O(1) per event.
    """
    if n_streams < 1:
        raise ValueError("need at least one initial stream")
    rng = random.Random(seed)
    next_sid = 0
    active: list[int] = []
    initial = []
    for _ in range(n_streams):
        initial.append((next_sid, rng.choice(_WEIGHT_CHOICES)))
        active.append(next_sid)
        next_sid += 1
    events = []
    for t in range(n_cycles):
        joins = []
        leaves = []
        if rng.random() < join_rate:
            joins.append((next_sid, rng.choice(_WEIGHT_CHOICES)))
            active.append(next_sid)
            next_sid += 1
        if len(active) > 1 and rng.random() < leave_rate:
            idx = rng.randrange(len(active))
            active[idx], active[-1] = active[-1], active[idx]
            leaves.append(active.pop())
        arrivals = []
        for _ in range(rng.randint(0, max_arrivals)):
            arrivals.append(
                (
                    rng.choice(active),
                    t + rng.randint(1, 50),
                    rng.choice(_LENGTH_CHOICES),
                )
            )
        events.append((tuple(joins), tuple(leaves), tuple(arrivals)))
    return AggregationScenario(
        seed=seed,
        n_aggregates=n_aggregates,
        discipline=discipline,
        salt=salt,
        initial=tuple(initial),
        events=tuple(events),
    )


def summarize_tier(
    scenario: AggregationScenario,
    core: _TierCore,
    services: list[tuple[int, int, int, int]],
) -> dict:
    """Canonical engine-independent summary of one replayed scenario.

    Everything here is derived from tier-core state and the service
    event stream ``(cycle, stream, aggregate, intra_rank)`` — nothing
    from the engine object — so reference/batch/tensor replays of the
    same scenario produce literally the same dict.  ``cycles`` is the
    last *serving* cycle + 1 (not the replay loop length): a campaign
    row idling in lockstep while sibling rows drain must summarize
    identically to a standalone run that stopped earlier.
    """
    blob = json.dumps(services, separators=(",", ":")).encode()
    stats = core.stats()
    return {
        "format": 1,
        "kind": "aggregation",
        "seed": scenario.seed,
        "discipline": scenario.discipline,
        "n_aggregates": scenario.n_aggregates,
        "salt": scenario.salt,
        "streams_joined": core.joined,
        "streams_left": core.left,
        "enqueued": core.enqueued,
        "serviced": core.serviced,
        "cycles": core.last_service_cycle + 1,
        "final_vtime": core._vtime,
        "per_aggregate": {
            "members": [s.members for s in stats],
            "weight": [s.weight for s in stats],
            "enqueued": [s.enqueued for s in stats],
            "serviced": [s.serviced for s in stats],
        },
        "service_digest": hashlib.sha256(blob).hexdigest(),
        "service_head": [list(evt) for evt in services[:SERVICE_HEAD]],
    }


def _apply_cycle(
    tier,
    cycle: tuple,
) -> None:
    joins, leaves, arrivals = cycle
    for sid, weight in joins:
        tier.join(sid, weight=weight)
    for sid in leaves:
        tier.leave(sid)
    for sid, deadline, length in arrivals:
        tier.submit(sid, deadline, length)


def run_aggregation(
    scenario: AggregationScenario,
    *,
    engine: str = "reference",
    observer=None,
) -> dict:
    """Replay one scenario on a standalone tier; canonical summary."""
    tier = AggregationTier(
        scenario.n_aggregates,
        engine=engine,
        discipline=scenario.discipline,
        salt=scenario.salt,
        observer=observer,
    )
    for sid, weight in scenario.initial:
        tier.join(sid, weight=weight)
    for cycle in scenario.events:
        _apply_cycle(tier, cycle)
        tier.decision_cycle()
    tier.drain()
    return summarize_tier(scenario, tier.core, tier.services)


def run_aggregation_bucket(
    scenarios: list[AggregationScenario],
    *,
    observers=None,
    engine_backend: str = "numpy",
) -> list[dict]:
    """Replay a same-shape scenario batch on one tensorized campaign.

    All scenarios must share ``(n_aggregates, discipline, salt)`` —
    the same-shape bucketing contract of the campaign engine.  Rows
    whose events end early idle in lockstep while the longest row
    finishes; the summaries are byte-identical to per-scenario
    :func:`run_aggregation` runs regardless.  ``engine_backend``
    selects the campaign engine's array namespace (``"numba"`` routes
    the fused compiled kernels); observables never depend on it.
    """
    if not scenarios:
        return []
    shape = (scenarios[0].n_aggregates, scenarios[0].discipline, scenarios[0].salt)
    for sc in scenarios[1:]:
        if (sc.n_aggregates, sc.discipline, sc.salt) != shape:
            raise ValueError(
                "bucket scenarios must share (n_aggregates, discipline, salt)"
            )
    campaign = AggregationCampaign(
        shape[0],
        len(scenarios),
        discipline=shape[1],
        salt=shape[2],
        observers=observers,
        engine_backend=engine_backend,
    )

    class _Row:
        __slots__ = ("campaign", "row")

        def __init__(self, campaign: AggregationCampaign, row: int) -> None:
            self.campaign = campaign
            self.row = row

        def join(self, sid, *, weight=None):
            return self.campaign.cores[self.row].join(sid, weight=weight)

        def leave(self, sid):
            return self.campaign.cores[self.row].leave(sid)

        def submit(self, sid, deadline, length=1500):
            self.campaign.submit(self.row, sid, deadline, length)

    rows = [_Row(campaign, i) for i in range(len(scenarios))]
    for row, sc in zip(rows, scenarios):
        for sid, weight in sc.initial:
            row.join(sid, weight=weight)
    horizon = max(sc.n_cycles for sc in scenarios)
    for t in range(horizon):
        for row, sc in zip(rows, scenarios):
            if t < sc.n_cycles:
                _apply_cycle(row, sc.events[t])
        campaign.decision_cycle()
    campaign.drain()
    return [
        summarize_tier(sc, campaign.cores[i], campaign.services[i])
        for i, sc in enumerate(scenarios)
    ]
