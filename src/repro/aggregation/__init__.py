"""Hierarchical million-stream aggregation tier (Section 4.3, scaled).

The paper's headline strategy is *aggregation*: many lightweight
streams multiplexed onto ``N`` hardware stream-slots.  This package
scales that idea to millions of concurrent streams on the existing
cross-validated engines:

* :func:`hash_bucket` deterministically buckets stream ids into
  aggregates (stable splitmix64 mixing — no salted process state);
* :class:`AggregationTier` runs one aggregate per scheduler slot on
  any of the three engines (``reference`` / ``batch`` / ``tensor``)
  with weighted start-time-fair queueing *across* aggregates and a
  registered programmable rank function (``pifo:<name>``,
  :mod:`repro.disciplines.pifo`) ordering packets *within* each
  aggregate;
* join/leave churn is O(1) per operation and never touches the
  engine's ``(S, N)`` tensor state — membership is pure bucket
  arithmetic plus per-aggregate counters;
* :mod:`repro.aggregation.scenario` derives seeded churn workloads and
  replays them byte-identically on all three engines (the
  aggregation-aware differential path,
  :func:`repro.core.differential.validate_aggregation`).

See ``docs/AGGREGATION.md`` for the model and churn semantics.
"""

from repro.aggregation.scenario import (
    AggregationScenario,
    generate_aggregation_scenario,
    run_aggregation,
    run_aggregation_bucket,
)
from repro.aggregation.tier import (
    AggregationCampaign,
    AggregationTier,
    aggregate_share_slos,
    hash_bucket,
)

__all__ = [
    "AggregationCampaign",
    "AggregationScenario",
    "AggregationTier",
    "aggregate_share_slos",
    "generate_aggregation_scenario",
    "hash_bucket",
    "run_aggregation",
    "run_aggregation_bucket",
]
