"""Two-tier hierarchical scheduler: aggregates on slots, streams in PIFOs.

The tier multiplexes an unbounded population of lightweight streams
onto ``n_aggregates`` scheduler slots of one existing engine:

* **Inter-aggregate** — each aggregate occupies one stream-slot of a
  ``deadline_only`` (simple-comparator) engine in the Section 4.3
  service-tag configuration.  The slot's deposited tag is a weighted
  start-time-fair rank over the aggregate's *member-weight sum*
  (``rank = max(agg_finish, vtime)``,
  ``agg_finish = rank + length // agg_weight``), which realizes the
  hierarchical weighted max-min round-robin of Luangsomboon &
  Liebeherr (arXiv:2108.09864) at aggregate granularity: backlogged
  aggregates share the link in proportion to their member weights.
* **Intra-aggregate** — packets inside an aggregate are ordered by a
  software PIFO heap whose rank comes from any registered programmable
  rank function (``pifo:<name>``, :mod:`repro.disciplines.pifo`);
  default ``pifo:sfq``.  Only the aggregate's head-of-line packet ever
  enters the engine slot, so the engine state is O(aggregates)
  regardless of the stream population.

Churn semantics
---------------
``join``/``leave`` are O(1): membership is pure hash-bucket arithmetic
(:func:`hash_bucket`) plus per-aggregate member/weight counters — the
engine's ``(S, N)`` tensor state is never re-bucketed or resized.  A
leaving stream's already-queued packets still drain (its weight leaves
the aggregate immediately; service of queued packets completes).  A
stream whose backlog drains re-enters start-time-fair competition at
the aggregate's current virtual time — per-stream rank state (finish
tag, service credits) exists *only while the stream is backlogged*, so
hot-path memory is O(aggregates + queued packets), independent of the
total joined population.

``strict=True`` (default) additionally keeps a per-stream membership
map for validation (duplicate joins rejected, per-stream weights
remembered across leave); ``strict=False`` drops that map for
O(aggregates) control-plane memory at million-stream scale and trusts
the caller to pass matching weights to :meth:`AggregationTier.leave`.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.disciplines.pifo import RankFunction, rank_function

__all__ = [
    "hash_bucket",
    "AggregateStats",
    "AggregationTier",
    "AggregationCampaign",
    "aggregate_share_slos",
]

_MASK64 = (1 << 64) - 1


def hash_bucket(sid: int, n_aggregates: int, *, salt: int = 0) -> int:
    """Deterministic stable bucket for stream ``sid`` (splitmix64 mix).

    Pure integer arithmetic — identical across processes, platforms
    and Python hash randomization, so scenario replay and the on-disk
    result cache can key on it.
    """
    x = (sid + 0x9E3779B97F4A7C15 * (salt + 1)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % n_aggregates


def _resolve_rank_function(discipline: str | RankFunction) -> RankFunction:
    if isinstance(discipline, RankFunction):
        return discipline
    name = discipline.removeprefix("pifo:")
    return rank_function(name)


def _tier_arch(n_aggregates: int) -> ArchConfig:
    """Service-tag engine configuration, one slot per aggregate."""
    return ArchConfig(
        n_slots=n_aggregates,
        routing=Routing.WR,
        deadline_only=True,
        wrap=False,
        extended=n_aggregates > 32,
    )


def _tier_streams(n_aggregates: int) -> list[StreamConfig]:
    return [
        StreamConfig(
            sid=a,
            period=0,
            mode=SchedulingMode.SERVICE_TAG,
            extended=n_aggregates > 32,
        )
        for a in range(n_aggregates)
    ]


@dataclass(frozen=True, slots=True)
class AggregateStats:
    """Read-only snapshot of one aggregate's rollup state."""

    aggregate: int
    members: int
    weight: int
    enqueued: int
    serviced: int
    backlog: int


class _TierCore:
    """Engine-agnostic tier state machine.

    Owns everything except the scheduler engine itself: membership
    counters, the per-aggregate PIFO heaps, the inter-aggregate
    start-time-fair tags and the service log.  Engine wrappers
    (:class:`AggregationTier`, :class:`AggregationCampaign`) feed the
    returned refill operations ``(aggregate, rank, arrival, length)``
    into their engine and deliver decision outcomes back via
    :meth:`service`.  Keeping this split lets the single-engine tier
    and the tensorized campaign share one behavior definition, which
    is what makes three-way byte-identity hold by construction.
    """

    __slots__ = (
        "n_aggregates",
        "fn",
        "strict",
        "salt",
        "default_weight",
        "default_priority",
        "joined",
        "left",
        "enqueued",
        "serviced",
        "last_service_cycle",
        "_members",
        "_weights",
        "_agg_enqueued",
        "_agg_serviced",
        "_heaps",
        "_inflight",
        "_agg_finish",
        "_vtime",
        "_intra_vtime",
        "_pending",
        "_finish",
        "_credits",
        "_stream_info",
        "_arrival_seq",
        "_refill_seq",
        "_rank_fn",
        "_finish_fn",
        "_vclock_served",
    )

    def __init__(
        self,
        n_aggregates: int,
        fn: RankFunction,
        *,
        strict: bool = True,
        salt: int = 0,
        default_weight: int = 1,
        default_priority: int = 0,
    ) -> None:
        if n_aggregates < 2 or n_aggregates & (n_aggregates - 1):
            raise ValueError("n_aggregates must be a power of two >= 2")
        if default_weight <= 0:
            raise ValueError("default_weight must be a positive integer")
        self.n_aggregates = n_aggregates
        self.fn = fn
        self.strict = strict
        self.salt = salt
        self.default_weight = default_weight
        self.default_priority = default_priority
        self.joined = 0
        self.left = 0
        self.enqueued = 0
        self.serviced = 0
        self.last_service_cycle = -1
        # O(aggregates) hot-path state.
        self._members = [0] * n_aggregates
        self._weights = [0] * n_aggregates
        self._agg_enqueued = [0] * n_aggregates
        self._agg_serviced = [0] * n_aggregates
        # (rank, arrival, sid, deadline, length) min-heaps per aggregate.
        self._heaps: list[list[tuple[int, int, int, int, int]]] = [
            [] for _ in range(n_aggregates)
        ]
        # In-flight head per aggregate: (sid, intra_rank) or None.
        self._inflight: list[tuple[int, int] | None] = [None] * n_aggregates
        self._agg_finish = [0] * n_aggregates
        self._vtime = 0
        self._intra_vtime = [0] * n_aggregates
        # Per-stream state, kept only while the stream is backlogged.
        self._pending: dict[int, int] = {}
        self._finish: dict[int, int] = {}
        self._credits: dict[int, int] = {}
        # strict-mode membership map: sid -> (weight, priority).
        self._stream_info: dict[int, tuple[int, int]] = {}
        self._arrival_seq = 0
        self._refill_seq = 0
        self._rank_fn = fn.compile_reference()
        self._finish_fn = fn.compile_finish(vectorized=False)
        self._vclock_served = fn.vclock == "served_rank"

    # -- membership (control plane, O(1) per op) -----------------------

    def bucket(self, sid: int) -> int:
        """The aggregate stream ``sid`` maps to (stable hash bucket)."""
        return hash_bucket(sid, self.n_aggregates, salt=self.salt)

    def join(
        self, sid: int, *, weight: int | None = None, priority: int | None = None
    ) -> int:
        """Admit one stream; returns its aggregate.  O(1)."""
        w = self.default_weight if weight is None else int(weight)
        p = self.default_priority if priority is None else int(priority)
        if w <= 0:
            raise ValueError("stream weight must be a positive integer")
        if self.strict:
            if sid in self._stream_info:
                raise ValueError(f"stream {sid} already joined")
            self._stream_info[sid] = (w, p)
        a = self.bucket(sid)
        self._members[a] += 1
        self._weights[a] += w
        self.joined += 1
        return a

    def leave(self, sid: int, *, weight: int | None = None) -> int:
        """Remove one stream; queued packets still drain.  O(1)."""
        if self.strict:
            try:
                w, _ = self._stream_info.pop(sid)
            except KeyError:
                raise KeyError(f"stream {sid} is not a member") from None
        else:
            w = self.default_weight if weight is None else int(weight)
        a = self.bucket(sid)
        if self._members[a] <= 0 or self._weights[a] < w:
            raise ValueError(
                f"aggregate {a} membership underflow leaving stream {sid}"
            )
        self._members[a] -= 1
        self._weights[a] -= w
        self.left += 1
        return a

    def _stream_weight_priority(self, sid: int) -> tuple[int, int]:
        if self.strict:
            try:
                return self._stream_info[sid]
            except KeyError:
                raise KeyError(f"stream {sid} is not a member") from None
        return self.default_weight, self.default_priority

    # -- data plane ----------------------------------------------------

    def _intra_rank(
        self, sid: int, a: int, deadline: int, arrival: int, length: int
    ) -> int:
        weight, priority = self._stream_weight_priority(sid)
        env = {
            "deadline": deadline,
            "arrival": arrival,
            "length": length,
            "sid": sid,
            "weight": weight,
            "priority": priority,
            "finish": self._finish.get(sid, 0),
            "credits": self._credits.get(sid, 0),
            "vtime": self._intra_vtime[a],
        }
        rank = self._rank_fn(env)
        if self._finish_fn is not None:
            env["rank"] = rank
            self._finish[sid] = int(self._finish_fn(env))
        return rank

    def _refill(self, a: int):
        """Move the aggregate's PIFO head into its engine slot.

        Returns the engine enqueue operation
        ``(aggregate, agg_rank, refill_seq, length)`` or ``None`` when
        the aggregate has no backlog.  The aggregate-level start tag is
        computed here (start-time fair queueing over member-weight
        sums), so inter-aggregate fairness tracks membership churn
        immediately.
        """
        heap = self._heaps[a]
        if not heap or self._inflight[a] is not None:
            return None
        intra_rank, _arrival, sid, _deadline, length = heapq.heappop(heap)
        agg_rank = max(self._agg_finish[a], self._vtime)
        self._agg_finish[a] = agg_rank + length // max(1, self._weights[a])
        self._inflight[a] = (sid, intra_rank)
        seq = self._refill_seq
        self._refill_seq += 1
        return (a, agg_rank, seq, length)

    def submit(self, sid: int, deadline: int, length: int = 1500):
        """Deposit one packet for stream ``sid``.

        Returns the engine enqueue op when this packet becomes the
        aggregate's in-flight head, else ``None``.
        """
        a = self.bucket(sid)
        arrival = self._arrival_seq
        self._arrival_seq += 1
        rank = self._intra_rank(sid, a, deadline, arrival, length)
        heapq.heappush(self._heaps[a], (rank, arrival, sid, deadline, length))
        self._pending[sid] = self._pending.get(sid, 0) + 1
        self.enqueued += 1
        self._agg_enqueued[a] += 1
        return self._refill(a)

    def service(self, a: int, agg_rank: int, now: int):
        """Account one engine service of aggregate ``a``.

        ``agg_rank`` is the serviced packet's deposited tag (the
        engine outcome's deadline field).  Returns
        ``(stream_sid, intra_rank, refill_op | None)``.
        """
        inflight = self._inflight[a]
        if inflight is None:
            raise RuntimeError(f"aggregate {a} serviced with nothing in flight")
        sid, intra_rank = inflight
        self._inflight[a] = None
        self._vtime = max(self._vtime, agg_rank)
        if self._vclock_served:
            self._intra_vtime[a] = max(self._intra_vtime[a], intra_rank)
        self.serviced += 1
        self.last_service_cycle = now
        self._agg_serviced[a] += 1
        self._credits[sid] = self._credits.get(sid, 0) + 1
        remaining = self._pending[sid] - 1
        if remaining:
            self._pending[sid] = remaining
        else:
            # Backlog drained: the stream re-enters at the aggregate's
            # current virtual time on its next packet, so its rank
            # state can be dropped — hot-path memory stays
            # O(aggregates + queued packets).
            del self._pending[sid]
            self._finish.pop(sid, None)
            del self._credits[sid]
        return sid, intra_rank, self._refill(a)

    # -- introspection -------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Packets accepted but not yet serviced."""
        return self.enqueued - self.serviced

    @property
    def active_members(self) -> int:
        """Streams currently joined (joins minus leaves)."""
        return self.joined - self.left

    def aggregate_stats(self, a: int) -> AggregateStats:
        backlog = len(self._heaps[a]) + (self._inflight[a] is not None)
        return AggregateStats(
            aggregate=a,
            members=self._members[a],
            weight=self._weights[a],
            enqueued=self._agg_enqueued[a],
            serviced=self._agg_serviced[a],
            backlog=backlog,
        )

    def stats(self) -> list[AggregateStats]:
        return [self.aggregate_stats(a) for a in range(self.n_aggregates)]


class AggregationTier:
    """Hierarchical aggregation tier over one scheduler engine.

    Parameters
    ----------
    n_aggregates:
        Scheduler slots (= aggregates); a power of two >= 2.
    engine:
        ``"reference"`` / ``"batch"`` / ``"tensor"`` — built via
        :func:`repro.core.batch_engine.make_scheduler`, so the tier
        rides the cross-validated engines rather than forking a
        fourth.
    discipline:
        Intra-aggregate ordering: any registered programmable rank
        function, as ``"pifo:<name>"`` (or a bare name /
        :class:`~repro.disciplines.pifo.RankFunction`).  Default
        ``pifo:sfq``.
    observer:
        Telemetry hook receiving every engine decision outcome —
        stream ids at this level are *aggregate* ids, so a
        :class:`~repro.observability.ConformanceMonitor` attached here
        produces per-aggregate SLO rollups (see
        :func:`aggregate_share_slos`).
    strict:
        Keep the per-stream membership map (validation + per-stream
        weights).  ``strict=False`` drops it for O(aggregates)
        control-plane memory at million-stream scale.
    salt:
        Bucketing salt (varies the stream->aggregate mapping).
    tracer:
        Optional :class:`~repro.observability.spans.SpanTracer`.  Churn
        and dispatch ops are accumulated (count + wall time per op kind)
        and emitted as aggregated spans by :meth:`flush_spans` — the
        per-op cost when disabled is one ``is not None`` check.
    """

    def __init__(
        self,
        n_aggregates: int,
        *,
        engine: str = "batch",
        discipline: str | RankFunction = "pifo:sfq",
        observer=None,
        strict: bool = True,
        salt: int = 0,
        default_weight: int = 1,
        default_priority: int = 0,
        tracer=None,
    ) -> None:
        from repro.core.batch_engine import make_scheduler

        self.core = _TierCore(
            n_aggregates,
            _resolve_rank_function(discipline),
            strict=strict,
            salt=salt,
            default_weight=default_weight,
            default_priority=default_priority,
        )
        self.engine_name = engine
        self.scheduler = make_scheduler(
            _tier_arch(n_aggregates),
            _tier_streams(n_aggregates),
            engine=engine,
            observer=observer,
        )
        self.services: list[tuple[int, int, int, int]] = []
        self.now = 0
        self.tracer = tracer
        #: op kind -> [ops, wall seconds]; fixed order fixes span order.
        self._span_acc: dict[str, list] | None = (
            {
                "churn.join": [0, 0.0],
                "churn.leave": [0, 0.0],
                "submit": [0, 0.0],
                "dispatch": [0, 0.0],
            }
            if tracer is not None
            else None
        )

    # -- delegated control plane ---------------------------------------

    @property
    def n_aggregates(self) -> int:
        return self.core.n_aggregates

    def bucket(self, sid: int) -> int:
        return self.core.bucket(sid)

    def join(self, sid: int, *, weight=None, priority=None) -> int:
        if self._span_acc is None:
            return self.core.join(sid, weight=weight, priority=priority)
        t0 = time.perf_counter()
        a = self.core.join(sid, weight=weight, priority=priority)
        acc = self._span_acc["churn.join"]
        acc[0] += 1
        acc[1] += time.perf_counter() - t0
        return a

    def leave(self, sid: int, *, weight=None) -> int:
        if self._span_acc is None:
            return self.core.leave(sid, weight=weight)
        t0 = time.perf_counter()
        a = self.core.leave(sid, weight=weight)
        acc = self._span_acc["churn.leave"]
        acc[0] += 1
        acc[1] += time.perf_counter() - t0
        return a

    # -- data plane ----------------------------------------------------

    def submit(self, sid: int, deadline: int, length: int = 1500) -> None:
        acc_map = self._span_acc
        t0 = time.perf_counter() if acc_map is not None else 0.0
        op = self.core.submit(sid, deadline, length)
        if op is not None:
            a, rank, seq, ln = op
            self.scheduler.enqueue(a, deadline=rank, arrival=seq, length=ln)
        if acc_map is not None:
            acc = acc_map["submit"]
            acc[0] += 1
            acc[1] += time.perf_counter() - t0

    def decision_cycle(self, now: int | None = None):
        """Run one engine decision cycle; service at most one packet.

        Returns ``(stream_sid, aggregate)`` for the serviced packet, or
        ``None`` on an idle cycle.
        """
        acc_map = self._span_acc
        t0 = time.perf_counter() if acc_map is not None else 0.0
        t = self.now if now is None else now
        outcome = self.scheduler.decision_cycle(
            t, consume="winner", count_misses=False
        )
        self.now = t + 1
        result = None
        if outcome.circulated_sid is not None:
            a = outcome.circulated_sid
            _, packet = outcome.serviced[0]
            sid, intra_rank, op = self.core.service(a, packet.deadline, t)
            if op is not None:
                ra, rank, seq, ln = op
                self.scheduler.enqueue(ra, deadline=rank, arrival=seq, length=ln)
            self.services.append((t, sid, a, intra_rank))
            result = (sid, a)
        if acc_map is not None:
            acc = acc_map["dispatch"]
            acc[0] += 1
            acc[1] += time.perf_counter() - t0
        return result

    def flush_spans(self) -> None:
        """Emit one aggregated span per op kind onto the tracer.

        Op counts (and the packets-serviced total) are workload-derived
        canonical tags; accumulated wall time rides in measures.  Resets
        the accumulators, so repeated flushes emit disjoint batches; op
        kinds that saw no operations emit nothing (which kinds appear is
        itself workload-derived, so canonical output stays deterministic).
        """
        if self.tracer is None or self._span_acc is None:
            return
        for name, (ops, wall) in self._span_acc.items():
            if ops == 0:
                continue
            tags = {"ops": ops}
            if name == "dispatch":
                tags["serviced"] = len(self.services)
            self.tracer.record_span(
                name,
                kind="dispatch" if name == "dispatch" else "churn",
                tags=tags,
                measures={"wall_us": int(wall * 1e6)},
            )
        for acc in self._span_acc.values():
            acc[0] = 0
            acc[1] = 0.0

    def drain(self, max_cycles: int | None = None) -> int:
        """Cycle until every accepted packet is serviced; returns cycles."""
        budget = (
            self.core.outstanding + 8 if max_cycles is None else max_cycles
        )
        ran = 0
        while self.core.outstanding and ran < budget:
            self.decision_cycle()
            ran += 1
        if self.core.outstanding:
            raise RuntimeError(
                f"tier failed to drain: {self.core.outstanding} packets "
                f"outstanding after {ran} cycles"
            )
        return ran

    # -- rollups -------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self.core.outstanding

    @property
    def active_members(self) -> int:
        return self.core.active_members

    def stats(self) -> list[AggregateStats]:
        return self.core.stats()

    def counters(self):
        """Per-aggregate engine performance counters."""
        return self.scheduler.counters()


class AggregationCampaign:
    """S same-shape aggregation tiers on one tensorized campaign engine.

    Every row holds its own :class:`_TierCore` (membership, heaps,
    fair tags) while all rows share a single
    :class:`~repro.core.tensor_engine.CampaignEngine` — the
    aggregation-aware analogue of
    :class:`~repro.disciplines.pifo.PifoCampaignFrontend`.  Row
    behavior is cycle-for-cycle identical to a standalone
    :class:`AggregationTier`, which the differential harness asserts
    byte-for-byte.
    """

    def __init__(
        self,
        n_aggregates: int,
        n_rows: int,
        *,
        discipline: str | RankFunction = "pifo:sfq",
        strict: bool = True,
        salt: int = 0,
        observers=None,
        engine_backend: str = "numpy",
    ) -> None:
        from repro.core.tensor_engine import CampaignEngine

        if n_rows < 1:
            raise ValueError("need at least one campaign row")
        fn = _resolve_rank_function(discipline)
        self.cores = [
            _TierCore(n_aggregates, fn, strict=strict, salt=salt)
            for _ in range(n_rows)
        ]
        self.engine = CampaignEngine(
            _tier_arch(n_aggregates),
            [_tier_streams(n_aggregates) for _ in range(n_rows)],
            observers=list(observers) if observers is not None else None,
            engine_backend=engine_backend,
        )
        self.services: list[list[tuple[int, int, int, int]]] = [
            [] for _ in range(n_rows)
        ]
        self.now = 0

    def submit(self, row: int, sid: int, deadline: int, length: int = 1500):
        op = self.cores[row].submit(sid, deadline, length)
        if op is not None:
            a, rank, seq, ln = op
            self.engine.enqueue(row, a, deadline=rank, arrival=seq, length=ln)

    def decision_cycle(self, now: int | None = None) -> None:
        """Advance every row by one lockstep decision cycle."""
        t = self.now if now is None else now
        outcomes = self.engine.decision_cycle_all(
            t, consume="winner", count_misses=False
        )
        self.now = t + 1
        for row, outcome in enumerate(outcomes):
            if outcome.circulated_sid is None:
                continue
            a = outcome.circulated_sid
            _, packet = outcome.serviced[0]
            sid, intra_rank, op = self.cores[row].service(a, packet.deadline, t)
            if op is not None:
                ra, rank, seq, ln = op
                self.engine.enqueue(
                    row, ra, deadline=rank, arrival=seq, length=ln
                )
            self.services[row].append((t, sid, a, intra_rank))

    @property
    def outstanding(self) -> int:
        return sum(core.outstanding for core in self.cores)

    def drain(self, max_cycles: int | None = None) -> int:
        budget = self.outstanding + 8 if max_cycles is None else max_cycles
        ran = 0
        while self.outstanding and ran < budget:
            self.decision_cycle()
            ran += 1
        if self.outstanding:
            raise RuntimeError(
                f"campaign failed to drain: {self.outstanding} packets "
                f"outstanding after {ran} cycles"
            )
        return ran

    def counters(self, row: int):
        return self.engine.counters(row)


def aggregate_share_slos(tier: AggregationTier, *, tolerance: float = 0.25):
    """Per-aggregate share-band SLOs from current member-weight sums.

    Maps the tier's inter-aggregate weighted-fair contract onto the
    PR-3 conformance machinery: each non-empty aggregate's expected
    service share is its member-weight sum over the total, banded by
    ``tolerance`` exactly like the Figure 8/10 objectives
    (:func:`repro.observability.monitor.slos_from_shares`).  Attach the
    resulting :class:`~repro.observability.ConformanceMonitor` as the
    tier's ``observer=`` for live per-aggregate rollups.
    """
    from repro.observability.monitor import slos_from_shares

    shares = {
        stat.aggregate: float(stat.weight)
        for stat in tier.stats()
        if stat.weight > 0
    }
    if not shares:
        return []
    return slos_from_shares(shares, tolerance=tolerance)
