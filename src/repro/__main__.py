"""``python -m repro`` — regenerate the paper's tables and figures."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
