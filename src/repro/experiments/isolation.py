"""Per-flow isolation: ShareStreams vs the Section 5.2 line-card peers.

Section 5.2's qualitative claims:

* the Cisco GSR 12000 line-card does DRR + RED with **8 queues per
  port**, while "ShareStreams can support 32 queues ... with more
  sophisticated DWCS scheduling to meet QoS guarantees required by a
  mix of real-time streams and best-effort streams.  ShareStreams can
  provide per-flow queuing";
* the Teracross chip "supports only four service-classes without any
  per-flow queuing".

This experiment makes those claims measurable: a mix of heterogeneous
real-time flows (distinct periods → distinct deadlines) plus bursty
best-effort flows runs through three systems —

1. **ShareStreams** — per-flow stream-slots, deadline scheduling
   (DWCS with zero window-constraints = pure EDF ordering);
2. **GSR-style** — flows hashed onto 8 DRR queues fronted by RED,
   FIFO within a queue;
3. **Teracross-style** — 4 static-priority classes, FIFO within class.

Metrics: the fraction of real-time packets that leave after their
deadline (or are dropped), and the p99 queueing delay of the
*tightest-period* flows.  Per-flow queuing with deadline scheduling
meets every deadline and keeps the urgent flows' delay flat; class
FIFOs let urgent packets wait behind loose ones; hashed DRR queues add
cross-flow interference and RED losses on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import make_scheduler
from repro.core.config import ArchConfig, Routing
from repro.disciplines.base import Packet
from repro.disciplines.red import REDQueue

__all__ = ["IsolationResult", "run_isolation"]


@dataclass(frozen=True, slots=True)
class IsolationResult:
    """One system's real-time QoS outcome."""

    system: str
    queues: int
    rt_packets: int
    rt_late_or_dropped: int
    be_packets_served: int
    tight_flow_p99_delay: float

    @property
    def rt_miss_rate(self) -> float:
        """Fraction of real-time packets late or lost."""
        return (
            self.rt_late_or_dropped / self.rt_packets if self.rt_packets else 0.0
        )


def _workload(
    horizon: int, rt_periods: list[int], n_be: int, seed: int
) -> tuple[list[tuple[int, int, int]], list[tuple[int, int]]]:
    """(rt arrivals, be arrivals) in packet-time units.

    rt: ``(t, flow, deadline)`` — flow ``i`` emits every ``periods[i]``
    with deadline one period out.  be: ``(t, flow)`` bursty arrivals.
    """
    rt = []
    for i, period in enumerate(rt_periods):
        for t in range(0, horizon, period):
            rt.append((t, i, t + period))
    rng = np.random.default_rng(seed)
    be = []
    for j in range(n_be):
        t = int(rng.integers(0, 20))
        while t < horizon:
            # Bursts of 4-12 back-to-back packets, then a gap.
            for b in range(int(rng.integers(4, 12))):
                if t + b < horizon:
                    be.append((t + b, j))
            t += int(rng.integers(30, 90))
    rt.sort()
    be.sort()
    return rt, be


def _p99(delays: list[float]) -> float:
    if not delays:
        return 0.0
    return float(np.percentile(np.asarray(delays), 99))


def _run_sharestreams(
    horizon: int, rt, be, periods, n_be: int, engine: str = "reference",
    observer=None,
) -> IsolationResult:
    """Per-flow slots: deadline ordering via DWCS(0,0) attributes."""
    n_rt = len(periods)
    tight = min(periods)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.DWCS)
        for i in range(n_rt + n_be)
    ]
    arch = ArchConfig(n_slots=32, routing=Routing.WR, wrap=False)
    scheduler = make_scheduler(arch, streams, engine=engine, observer=observer)
    rt_iter, be_iter = 0, 0
    late = 0
    be_served = 0
    tight_delays: list[float] = []
    for t in range(horizon):
        while rt_iter < len(rt) and rt[rt_iter][0] == t:
            _, flow, deadline = rt[rt_iter]
            scheduler.enqueue(flow, deadline=deadline, arrival=t)
            rt_iter += 1
        while be_iter < len(be) and be[be_iter][0] == t:
            _, flow = be[be_iter]
            # Best-effort: deadlines far beyond the horizon.
            scheduler.enqueue(n_rt + flow, deadline=horizon * 4, arrival=t)
            be_iter += 1
        outcome = scheduler.decision_cycle(
            t, consume="winner", count_misses=False
        )
        for sid, packet in outcome.serviced:
            if sid < n_rt:
                if t > packet.deadline:
                    late += 1
                if periods[sid] == tight:
                    tight_delays.append(t - packet.arrival)
            else:
                be_served += 1
    finalize = getattr(observer, "finalize", None)
    if finalize is not None:
        finalize()  # flush the conformance monitor's partial window
    # Unserved rt packets past their deadline at the horizon count too.
    for sid in range(n_rt):
        slot = scheduler.slot(sid)
        pending = list(slot.pending)
        if slot.head is not None:
            pending.insert(0, slot.head)
        late += sum(1 for p in pending if p.deadline < horizon)
    return IsolationResult(
        system="ShareStreams (32 per-flow slots, DWCS deadlines)",
        queues=32,
        rt_packets=len(rt),
        rt_late_or_dropped=late,
        be_packets_served=be_served,
        tight_flow_p99_delay=_p99(tight_delays),
    )


def _run_gsr(horizon: int, rt, be, periods, n_be: int, seed: int) -> IsolationResult:
    """8 DRR queues + RED, flows hashed to queues, FIFO within."""
    n_queues = 8
    tight = min(periods)
    rt_queues = [
        REDQueue(min_th=8, max_th=24, capacity=64, rng=seed + q)
        for q in range(4)
    ]
    be_queues = [
        REDQueue(min_th=4, max_th=12, capacity=32, rng=seed + 10 + q)
        for q in range(4)
    ]
    queues = rt_queues + be_queues
    # Real-time queues get 6x the best-effort weight (~86% of the link
    # when everything is backlogged) — comfortably above the rt load.
    weights = [6.0] * 4 + [1.0] * 4
    deficit = [0.0] * n_queues
    granted = [False] * n_queues
    cursor = 0
    rt_iter, be_iter = 0, 0
    late = 0
    dropped_rt = 0
    be_served = 0
    tight_delays: list[float] = []
    for t in range(horizon):
        while rt_iter < len(rt) and rt[rt_iter][0] == t:
            _, flow, deadline = rt[rt_iter]
            packet = Packet(
                stream_id=flow, seq=rt_iter, arrival=float(t),
                deadline=float(deadline), length=1,
            )
            if not rt_queues[flow % 4].enqueue(packet, now=float(t)):
                dropped_rt += 1
                if periods[flow] == tight:
                    tight_delays.append(float(periods[flow] * 4))
            rt_iter += 1
        while be_iter < len(be) and be[be_iter][0] == t:
            _, flow = be[be_iter]
            be_queues[flow % 4].enqueue(
                Packet(stream_id=flow, seq=be_iter, arrival=float(t), length=1),
                now=float(t),
            )
            be_iter += 1
        # One DRR service per packet-time; the round-robin state
        # (cursor, per-visit grant, remaining deficit) persists across
        # packet-times so each queue spends its quantum before the
        # rotation moves on.
        for _ in range(4 * n_queues):
            q = cursor % n_queues
            if len(queues[q]) == 0:
                deficit[q] = 0.0
                granted[q] = False
                cursor += 1
                continue
            if not granted[q]:
                deficit[q] += weights[q]
                granted[q] = True
            if deficit[q] < 1.0:
                granted[q] = False
                cursor += 1
                continue
            packet = queues[q].dequeue(now=float(t))
            deficit[q] -= 1.0
            if deficit[q] < 1.0 or len(queues[q]) == 0:
                granted[q] = False
                cursor += 1  # turn over after the quantum is spent
            if q < 4:
                if packet.deadline is not None and t > packet.deadline:
                    late += 1
                if periods[packet.stream_id] == tight:
                    tight_delays.append(t - packet.arrival)
            else:
                be_served += 1
            break
    # Residual late rt packets at the horizon.
    for q in rt_queues:
        while True:
            packet = q.dequeue(now=float(horizon))
            if packet is None:
                break
            if packet.deadline is not None and packet.deadline < horizon:
                late += 1
    return IsolationResult(
        system="GSR-style (8 queues, DRR + RED)",
        queues=8,
        rt_packets=len(rt),
        rt_late_or_dropped=late + dropped_rt,
        be_packets_served=be_served,
        tight_flow_p99_delay=_p99(tight_delays),
    )


def _run_teracross(horizon: int, rt, be, periods, n_be: int) -> IsolationResult:
    """4 static-priority classes, FIFO within class, no per-flow state."""
    tight = min(periods)
    classes: list[deque] = [deque() for _ in range(4)]
    rt_iter, be_iter = 0, 0
    late = 0
    be_served = 0
    tight_delays: list[float] = []
    for t in range(horizon):
        while rt_iter < len(rt) and rt[rt_iter][0] == t:
            _, flow, deadline = rt[rt_iter]
            # Two rt classes, flows split between them by id — no
            # per-flow or per-deadline differentiation inside a class.
            classes[flow % 2].append((t, deadline, flow))
            rt_iter += 1
        while be_iter < len(be) and be[be_iter][0] == t:
            _, flow = be[be_iter]
            classes[2 + flow % 2].append((t, None, flow))
            be_iter += 1
        for cls in classes:
            if cls:
                arrival, deadline, flow = cls.popleft()
                if deadline is None:
                    be_served += 1
                else:
                    if t > deadline:
                        late += 1
                    if periods[flow] == tight:
                        tight_delays.append(float(t - arrival))
                break
    for cls in classes[:2]:
        late += sum(1 for _, d, _f in cls if d is not None and d < horizon)
    return IsolationResult(
        system="Teracross-style (4 classes, no per-flow queuing)",
        queues=4,
        rt_packets=len(rt),
        rt_late_or_dropped=late,
        be_packets_served=be_served,
        tight_flow_p99_delay=_p99(tight_delays),
    )


def run_isolation(
    *,
    horizon: int = 4000,
    rt_periods: tuple[int, ...] = (8, 8, 12, 12, 16, 16, 20, 20, 24, 24, 32, 32),
    n_be: int = 12,
    seed: int = 11,
    engine: str = "reference",
    observer=None,
) -> list[IsolationResult]:
    """Run all three systems on the same workload.

    ``engine`` selects the ShareStreams scheduler implementation
    (``"reference"`` object model or ``"batch"`` vectorized engine);
    the peer systems are unaffected.  ``observer`` is the telemetry
    hook, attached to the ShareStreams scheduler only.
    """
    periods = list(rt_periods)
    rt, be = _workload(horizon, periods, n_be, seed)
    return [
        _run_sharestreams(horizon, rt, be, periods, n_be, engine, observer),
        _run_gsr(horizon, rt, be, periods, n_be, seed),
        _run_teracross(horizon, rt, be, periods, n_be),
    ]
