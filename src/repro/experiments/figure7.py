"""Figure 7: area-clock rate characteristics (Virtex-I, BA vs WR).

Sweeps the calibrated area/clock models over 4/8/16/32 stream-slots for
both routing variants and checks the paper's stated properties:

* area grows linearly with slot count, BA ~ WR ("maintains almost the
  same area");
* decision time grows logarithmically (2/3/4/5 sort cycles);
* WR shows less clock variation 4→32 than BA;
* BA's clock degradation vs WR is ~20% at 8/16 slots, ~10% at 32;
* a 32-slot design still fits a single Virtex 1000.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Routing
from repro.hwmodel.area import AreaBreakdown, area_model
from repro.hwmodel.timing import clock_rate_mhz, decision_cycles

__all__ = ["Figure7Point", "run_figure7", "SLOT_COUNTS"]

#: The slot counts Figure 7 sweeps.
SLOT_COUNTS = (4, 8, 16, 32)


@dataclass(frozen=True, slots=True)
class Figure7Point:
    """One (slot count, routing) design point of Figure 7."""

    n_slots: int
    routing: Routing
    area: AreaBreakdown
    clock_mhz: float
    sort_cycles: int

    @property
    def slices(self) -> float:
        """Design area in slices."""
        return self.area.total_slices


def run_figure7() -> list[Figure7Point]:
    """Both Figure 7 curves: (BA, WR) x (4, 8, 16, 32)."""
    points = []
    for routing in (Routing.BA, Routing.WR):
        for n in SLOT_COUNTS:
            points.append(
                Figure7Point(
                    n_slots=n,
                    routing=routing,
                    area=area_model(n, routing),
                    clock_mhz=clock_rate_mhz(n, routing),
                    sort_cycles=(n - 1).bit_length(),
                )
            )
    return points


def degradation_ba_vs_wr(points: list[Figure7Point]) -> dict[int, float]:
    """Relative clock-rate degradation of BA vs WR per slot count."""
    by_key = {(p.n_slots, p.routing): p for p in points}
    return {
        n: 1.0
        - by_key[(n, Routing.BA)].clock_mhz / by_key[(n, Routing.WR)].clock_mhz
        for n in SLOT_COUNTS
    }
