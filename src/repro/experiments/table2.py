"""Table 2: scheduler decision rules — exhaustive coverage check.

The Decision block implements the five pairwise ordering rules of
Table 2 by concurrent evaluation (Figure 5).  This experiment sweeps a
structured attribute grid through a Decision block and reports, per
rule, how many pairs it resolved — demonstrating every rule is
reachable and showing the priority encoding in action.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.attributes import HardwareAttributes
from repro.core.decision_block import DecisionBlock
from repro.core.rules import Rule

__all__ = ["RuleCoverage", "run_rule_coverage"]


@dataclass(frozen=True, slots=True)
class RuleCoverage:
    """How many pairwise decisions each Table 2 rule resolved."""

    counts: dict[Rule, int]
    total: int

    @property
    def all_rules_fired(self) -> bool:
        """Whether every substantive rule resolved at least one pair."""
        needed = {
            Rule.EARLIEST_DEADLINE,
            Rule.LOWEST_WINDOW_CONSTRAINT,
            Rule.HIGHEST_DENOMINATOR_ZERO_WC,
            Rule.LOWEST_NUMERATOR_EQUAL_WC,
            Rule.FCFS,
        }
        return needed <= {r for r, n in self.counts.items() if n > 0}


def _attribute_grid() -> list[HardwareAttributes]:
    """A structured grid hitting every rule's guard conditions."""
    deadlines = (10, 10, 12)
    windows = ((0, 0), (0, 4), (0, 8), (1, 2), (2, 4), (1, 4), (3, 4))
    arrivals = (0, 5)
    grid = []
    sid = 0
    for deadline, (x, y), arrival in itertools.product(
        deadlines, windows, arrivals
    ):
        grid.append(
            HardwareAttributes(
                sid=sid % 32,
                deadline=deadline,
                loss_numerator=x,
                loss_denominator=y,
                arrival=arrival,
            )
        )
        sid += 1
    return grid


def run_rule_coverage() -> RuleCoverage:
    """Push every grid pair through one Decision block."""
    block = DecisionBlock()
    grid = _attribute_grid()
    total = 0
    for a, b in itertools.combinations(grid, 2):
        block.decide(a, b)
        total += 1
    return RuleCoverage(counts=dict(block.rule_counts), total=total)
