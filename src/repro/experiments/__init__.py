"""One driver per table/figure of the paper's evaluation.

==========  ====================================================
Experiment  Driver
==========  ====================================================
Table 1     :mod:`repro.experiments.table1`
Table 2     :mod:`repro.experiments.table2`
Table 3     :mod:`repro.experiments.table3`
Figure 1    :mod:`repro.experiments.figure1`
Figure 6    :mod:`repro.experiments.figure6`
Figure 7    :mod:`repro.experiments.figure7`
Figure 8    :mod:`repro.experiments.figure8`
Figure 9    :mod:`repro.experiments.figure9`
Figure 10   :mod:`repro.experiments.figure10`
Section 5.2 :mod:`repro.experiments.comparison`
==========  ====================================================
"""

from repro.experiments.ablations import (
    aggregation_sweep,
    extensions_sweep,
    pio_dma_crossover,
    sort_schedule_sweep,
    transfer_cost_sweep,
)
from repro.experiments.comparison import run_comparison
from repro.experiments.figure1 import run_figure1
from repro.experiments.isolation import run_isolation
from repro.experiments.figure6 import render_timeline, run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.table1 import build_table1
from repro.experiments.table2 import run_rule_coverage
from repro.experiments.table3 import run_table3

__all__ = [
    "aggregation_sweep",
    "build_table1",
    "extensions_sweep",
    "pio_dma_crossover",
    "render_timeline",
    "run_comparison",
    "run_isolation",
    "sort_schedule_sweep",
    "transfer_cost_sweep",
    "run_figure1",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_rule_coverage",
    "run_table3",
]
