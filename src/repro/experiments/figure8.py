"""Figure 8: fair bandwidth allocation of four streams at 1:1:2:4.

Endsystem run: four fully-backlogged streams (the paper transfers
64000 16-bit arrival times per queue before starting the clock), DWCS
fair-share constraints set for a 1:1:2:4 split, output bandwidth
reported per stream over time windows.  Expected: ~2/2/4/8 MBps while
all streams are backlogged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.endsystem.host import EndsystemConfig, EndsystemResult, EndsystemRouter
from repro.metrics.bandwidth import BandwidthSeries
from repro.traffic.specs import ratio_workload

__all__ = ["Figure8Result", "run_figure8"]

#: The paper's ratio and per-stream frame count.
RATIOS = (1, 1, 2, 4)
FRAMES_PER_STREAM = 64_000


@dataclass
class Figure8Result:
    """Per-stream bandwidth series and summary ratios."""

    run: EndsystemResult
    series: dict[int, BandwidthSeries]
    steady_mbps: dict[int, float]

    @property
    def ratios(self) -> dict[int, float]:
        """Measured steady-state shares relative to the smallest."""
        base = min(v for v in self.steady_mbps.values() if v > 0)
        return {sid: v / base for sid, v in self.steady_mbps.items()}


def run_figure8(
    frames_per_stream: int = FRAMES_PER_STREAM,
    *,
    window_us: float | None = None,
    engine: str = "reference",
    observer=None,
) -> Figure8Result:
    """Run the Figure 8 workload and reduce to bandwidth series.

    ``steady_mbps`` averages each stream's bandwidth over the
    saturated phase (the first quarter of the run, before any stream
    drains), which is what the figure's flat segments show.  The
    window defaults to 100 ms, shrunk as needed so reduced-scale runs
    still land whole windows inside the saturated phase.
    """
    specs = ratio_workload(RATIOS, frames_per_stream=frames_per_stream)
    router = EndsystemRouter(
        specs, EndsystemConfig(engine=engine), observer=observer
    )
    run = router.run(preload=True)
    # Saturated phase: until the highest-share stream drains;
    # conservatively the first quarter of the run.
    horizon = run.elapsed_us / 4
    if window_us is None:
        window_us = min(100_000.0, horizon / 4)
    bw = run.te.bandwidth
    series = {
        sid: bw.series(sid, window_us, t_end=run.elapsed_us)
        for sid in bw.stream_ids
    }
    steady = {}
    for sid, s in series.items():
        mask = s.times_us <= horizon
        steady[sid] = float(s.mbps[mask].mean()) if mask.any() else 0.0
    return Figure8Result(run=run, series=series, steady_mbps=steady)
