"""Figure 1: the architectural-solutions framework sweep.

Figure 1(a) relates QoS bounds and scale to the required scheduling
rate; Figure 1(b) asks whether a discipline of given implementation
complexity can realize that rate on a target.  This experiment sweeps
(discipline, stream count, frame size, link rate, target) and reports
realizability — reproducing the paper's qualitative map: software
targets fall over well before gigabit wire-speeds for complex
disciplines, the FPGA realization holds to 10 Gb/s for all but
64-byte frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.complexity import PROFILES, FrameworkPoint, evaluate_point

__all__ = ["Figure1Sweep", "run_figure1"]


@dataclass(frozen=True, slots=True)
class Figure1Sweep:
    """All framework points of the sweep."""

    points: tuple[FrameworkPoint, ...]

    def realizable_fraction(self, target: str) -> float:
        """Share of swept points a target can realize."""
        subset = [p for p in self.points if p.target == target]
        if not subset:
            return 0.0
        return sum(p.realizable for p in subset) / len(subset)


def run_figure1(
    *,
    disciplines: tuple[str, ...] = ("edf", "wfq", "dwcs"),
    stream_counts: tuple[int, ...] = (4, 8, 16, 32),
    frame_sizes: tuple[int, ...] = (64, 1500),
    link_rates: tuple[float, ...] = (1e9, 1e10),
) -> Figure1Sweep:
    """Sweep the Figure 1 space for software and FPGA targets."""
    for d in disciplines:
        if d not in PROFILES:
            raise KeyError(f"unknown discipline {d!r}")
    points = []
    for discipline in disciplines:
        for n in stream_counts:
            for size in frame_sizes:
                for rate in link_rates:
                    for target in ("software", "fpga"):
                        points.append(
                            evaluate_point(
                                discipline, n, size, rate, target=target
                            )
                        )
    return Figure1Sweep(points=tuple(points))
