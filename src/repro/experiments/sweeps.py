"""Parameter sweeps over the figure experiments and isolation seeds.

The figure drivers answer "does the paper's effect reproduce at the
paper's scale"; the sweeps here answer "does it *keep* reproducing as
the workload scales and the random seed varies" — each sweep point is
an independent run, which makes the sweep exactly the shape of
workload :func:`repro.runner.run_sharded` exists for:

* ``sweep_figures("figure8", sizes)`` — frames-per-stream scaling of
  the fair-share ratios (Figure 8), burst-size scaling of the queuing
  delays (Figure 9), frames-per-stream scaling of the streamlet
  aggregation (Figure 10);
* ``sweep_isolation(seeds)`` — the Section 5.2 isolation comparison
  re-run under different best-effort arrival seeds.

Points merge in parameter order regardless of worker count, so
:meth:`SweepResult.summary` is a pure function of the sweep inputs —
byte-identical for ``workers=1`` and ``workers=N``.  With a
``cache_dir``, completed points are served from the on-disk result
cache (see ``docs/RUNNER.md``) keyed on the canonical
(experiment, parameters, engine, package-version) hash.

Every sweep accepts ``engine="reference"``, ``"batch"`` or
``"tensor"`` (the engine name rides the cache key, so switching
engines never serves a stale point); the figure drivers forward it to
:func:`repro.core.batch_engine.make_scheduler` unchanged.

CLI::

    python -m repro figure8 --sweep 2000,4000,8000 --workers 4
    python -m repro isolation --sweep 1,2,3,4 --cache-dir .sweepcache
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "SWEEPABLE",
    "SweepPoint",
    "SweepResult",
    "sweep_figures",
    "sweep_isolation",
    "sweep_point",
]

#: Experiments the ``--sweep`` CLI flag accepts.
SWEEPABLE = ("figure8", "figure9", "figure10", "isolation")

#: What the sweep parameter means per experiment.
PARAM_NAMES = {
    "figure8": "frames_per_stream",
    "figure9": "burst_size",
    "figure10": "frames_per_stream",
    "isolation": "seed",
}


def sweep_point(
    param: int, experiment: str, engine: str, horizon: int
) -> dict:
    """Run one sweep point; the sharded runner's unit of work.

    Returns a compact JSON-safe summary (string keys, plain floats) so
    the value survives the result cache's JSON round-trip unchanged —
    a cache hit and a fresh execution are indistinguishable downstream.
    ``horizon`` only applies to ``isolation`` (the figure drivers get
    their size from ``param``).
    """
    if experiment == "figure8":
        from repro.experiments.figure8 import run_figure8

        result = run_figure8(param, engine=engine)
        return {
            "steady_mbps": {
                str(sid): mbps
                for sid, mbps in sorted(result.steady_mbps.items())
            },
            "ratios": {
                str(sid): ratio
                for sid, ratio in sorted(result.ratios.items())
            },
        }
    if experiment == "figure9":
        from repro.experiments.figure9 import run_figure9

        result = run_figure9(burst_size=param, engine=engine)
        delays = result.mean_delays_us()
        return {
            "mean_delay_us": {
                str(sid): delay for sid, delay in sorted(delays.items())
            },
            "zigzag": {
                str(sid): result.zigzag_score(sid, param)
                for sid in sorted(delays)
            },
        }
    if experiment == "figure10":
        from repro.experiments.figure10 import run_figure10

        result = run_figure10(param, engine=engine)
        return {"representative_mbps": dict(result.representative_mbps())}
    if experiment == "isolation":
        from repro.experiments.isolation import run_isolation

        rows = run_isolation(horizon=horizon, seed=param, engine=engine)
        return {
            "systems": [
                {
                    "system": r.system,
                    "queues": r.queues,
                    "rt_miss_rate": r.rt_miss_rate,
                    "tight_flow_p99_delay": r.tight_flow_p99_delay,
                }
                for r in rows
            ]
        }
    raise ValueError(f"unknown sweep experiment {experiment!r}")


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One parameter value's summarized outcome."""

    param: int
    summary: dict


@dataclass(slots=True)
class SweepResult:
    """A completed sweep: points in parameter order plus run facts."""

    experiment: str
    engine: str
    horizon: int
    points: list[SweepPoint] = field(default_factory=list)
    #: :class:`repro.runner.ShardFailure` entries for points that died.
    failures: list = field(default_factory=list)
    cached: int = 0
    executed: int = 0
    workers: int = 1

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> dict:
        """Canonical merged summary (worker-count independent).

        Execution facts (worker count, cache hits) deliberately stay
        out so any two runs of the same sweep serialize identically.
        """
        return {
            "experiment": self.experiment,
            "engine": self.engine,
            "param": PARAM_NAMES[self.experiment],
            "passed": self.passed,
            "points": [
                {"param": p.param, **p.summary} for p in self.points
            ],
            "failures": [
                {
                    "shard": f.shard,
                    "params": list(f.items),
                    "error": (
                        f.error.strip().splitlines()[-1]
                        if f.error.strip()
                        else ""
                    ),
                }
                for f in self.failures
            ],
        }

    def summary_json(self) -> str:
        """The :meth:`summary` as canonical JSON text."""
        return json.dumps(self.summary(), sort_keys=True, indent=1) + "\n"


def _sweep(
    experiment: str,
    params,
    *,
    engine: str,
    horizon: int,
    workers: int | None,
    cache_dir,
    use_cache: bool,
    _task=None,
) -> SweepResult:
    from repro.runner import ResultCache, run_sharded

    params = [int(p) for p in params]
    cache = None
    if cache_dir is not None and use_cache:
        cache = ResultCache(cache_dir, namespace=f"sweep-{experiment}")
    pool = run_sharded(
        _task if _task is not None else sweep_point,
        params,
        workers=workers,
        task_args=(experiment, engine, horizon),
        cache=cache,
        cache_key=(
            (
                lambda param: {
                    "experiment": experiment,
                    "engine": engine,
                    "horizon": horizon if experiment == "isolation" else None,
                    PARAM_NAMES[experiment]: param,
                }
            )
            if cache is not None
            else None
        ),
    )
    result = SweepResult(
        experiment=experiment,
        engine=engine,
        horizon=horizon,
        failures=list(pool.failures),
        cached=pool.cached,
        executed=pool.executed,
        workers=pool.workers,
    )
    for param, summary in zip(params, pool.results):
        if summary is not None:
            result.points.append(SweepPoint(param=param, summary=summary))
    return result


def sweep_figures(
    experiment: str,
    sizes,
    *,
    engine: str = "reference",
    workers: int | None = 1,
    cache_dir=None,
    use_cache: bool = True,
    _task=None,
) -> SweepResult:
    """Sweep a figure experiment over workload sizes.

    ``experiment`` is ``figure8``/``figure10`` (sizes are frames per
    stream) or ``figure9`` (sizes are burst sizes).
    """
    if experiment not in ("figure8", "figure9", "figure10"):
        raise ValueError(f"not a sweepable figure: {experiment!r}")
    return _sweep(
        experiment,
        sizes,
        engine=engine,
        horizon=0,
        workers=workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
        _task=_task,
    )


def sweep_isolation(
    seeds,
    *,
    horizon: int = 4000,
    engine: str = "reference",
    workers: int | None = 1,
    cache_dir=None,
    use_cache: bool = True,
    _task=None,
) -> SweepResult:
    """Re-run the isolation comparison across best-effort seeds."""
    return _sweep(
        "isolation",
        seeds,
        engine=engine,
        horizon=horizon,
        workers=workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
        _task=_task,
    )
