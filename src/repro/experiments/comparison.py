"""Section 5.2: performance comparison with contemporary systems.

Reproduces the comparison's structure:

* **ShareStreams line-card** — behavioral 4-slot run at the calibrated
  Virtex clock: 7.6 Mpps.
* **ShareStreams endsystem** — the DES with a 10 GbE output link so the
  P-III host cost dominates: 469,483 pps without PCI transfer on the
  critical path, 299,065 pps with PIO included.
* **Published comparators** — Click (plain / SFQ), Qie et al., router
  plug-ins (DRR), carried as reference constants (2002-era hosts are
  not reconstructible; see DESIGN.md substitutions).
* **Live software baselines** — our SFQ/DRR/DWCS/EDF implementations
  measured on *this* machine (decisions/second), giving the same
  qualitative ordering: hardware >> software, and simple disciplines >
  complex ones in software.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.disciplines import Packet, SwStream, create
from repro.endsystem.host import EndsystemConfig, EndsystemRouter
from repro.hwmodel.host import PUBLISHED_COMPARATORS
from repro.linecard import Linecard
from repro.sim.nic import TEN_GIGABIT
from repro.traffic.specs import ratio_workload

__all__ = [
    "ComparisonRow",
    "run_linecard_throughput",
    "run_endsystem_throughput",
    "measure_software_discipline",
    "run_comparison",
]


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One system's row in the Section 5.2 comparison."""

    system: str
    pps: float
    source: str  # "model" | "simulated" | "published" | "measured-here"


def run_linecard_throughput(n_decisions: int = 2000) -> ComparisonRow:
    """Behavioral line-card run at the calibrated clock (4 slots, WR)."""
    arch = ArchConfig(n_slots=4, routing=Routing.WR, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(4)
    ]
    lc = Linecard(arch, streams)
    for sid in range(4):
        for k in range(n_decisions):
            lc.feed(sid, deadline=(sid + 1) + k, arrival=k)
    result = lc.run(n_decisions)
    return ComparisonRow(
        system="ShareStreams linecard (4 slots, Virtex-I)",
        pps=result.throughput_pps,
        source="simulated",
    )


def run_endsystem_throughput(
    *,
    include_pci: bool,
    peer_to_peer: bool = False,
    frames_per_stream: int = 8000,
) -> ComparisonRow:
    """Endsystem DES with a fast link so the host cost dominates."""
    specs = ratio_workload((1, 1, 2, 4), frames_per_stream=frames_per_stream)
    config = EndsystemConfig(
        link=TEN_GIGABIT, include_pci=include_pci, peer_to_peer=peer_to_peer
    )
    router = EndsystemRouter(specs, config)
    result = router.run(preload=True)
    if not include_pci:
        label = "ShareStreams endsystem (no PCI transfer)"
    elif peer_to_peer:
        label = "ShareStreams endsystem (peer-to-peer DMA) [extension]"
    else:
        label = "ShareStreams endsystem (PCI PIO included)"
    return ComparisonRow(system=label, pps=result.throughput_pps, source="simulated")


def measure_software_discipline(
    name: str, *, n_packets: int = 20_000, n_streams: int = 8
) -> ComparisonRow:
    """Measure a software discipline's decision rate on this host."""
    discipline = create(name)
    for sid in range(n_streams):
        discipline.add_stream(
            SwStream(
                stream_id=sid,
                weight=float(sid + 1),
                priority=sid,
                period=1.0,
                loss_numerator=1,
                loss_denominator=2,
            )
        )
    for k in range(n_packets):
        discipline.enqueue(
            Packet(
                stream_id=k % n_streams,
                seq=k,
                arrival=float(k),
                deadline=float(k + n_streams),
            )
        )
    start = time.perf_counter()
    count = 0
    while discipline.dequeue(float(count)) is not None:
        count += 1
    elapsed = time.perf_counter() - start
    return ComparisonRow(
        system=f"software {name} (this host, {n_streams} streams)",
        pps=count / elapsed if elapsed > 0 else 0.0,
        source="measured-here",
    )


def run_comparison(
    *, frames_per_stream: int = 8000, software: tuple[str, ...] = ("sfq", "drr", "edf", "dwcs")
) -> list[ComparisonRow]:
    """The full Section 5.2 comparison table."""
    rows = [
        run_linecard_throughput(),
        run_endsystem_throughput(include_pci=False, frames_per_stream=frames_per_stream),
        run_endsystem_throughput(include_pci=True, frames_per_stream=frames_per_stream),
        run_endsystem_throughput(
            include_pci=True,
            peer_to_peer=True,
            frames_per_stream=frames_per_stream,
        ),
    ]
    for system, pps in PUBLISHED_COMPARATORS.items():
        if system.startswith("ShareStreams"):
            rows.append(ComparisonRow(system=f"{system} [paper]", pps=pps, source="published"))
        else:
            rows.append(ComparisonRow(system=system, pps=pps, source="published"))
    for name in software:
        rows.append(measure_software_discipline(name))
    return rows
