"""Table 1: comparing scheduling-discipline families.

Regenerates the paper's qualitative comparison of priority-class,
fair-queuing and window-constrained disciplines from the registry
metadata, and backs each column with a *behavioral witness*: a small
run of the implemented disciplines demonstrating the classified
property (e.g. that fair-queuing service tags never change after
enqueue, while DWCS priorities change every decision cycle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disciplines import DWCS, SFQ, Packet, SwStream
from repro.disciplines.registry import FAMILY_INFO

__all__ = ["Table1Row", "build_table1", "witness_tag_stability", "witness_dwcs_dynamics"]


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One column of the paper's Table 1 (a discipline family)."""

    characteristic: str
    priority_class: str
    fair_queuing: str
    window_constrained: str


def build_table1() -> list[Table1Row]:
    """The five comparison rows of Table 1, from registry metadata."""
    pc = FAMILY_INFO["priority-class"]
    fq = FAMILY_INFO["fair-queuing"]
    wc = FAMILY_INFO["window-constrained"]
    return [
        Table1Row("Priority", pc.priority, fq.priority, wc.priority),
        Table1Row("Grain", pc.grain, fq.grain, wc.grain),
        Table1Row("Input Queue", pc.input_queue, fq.input_queue, wc.input_queue),
        Table1Row(
            "Service-tag Computation",
            pc.service_tag_computation,
            fq.service_tag_computation,
            wc.service_tag_computation,
        ),
        Table1Row("Concurrency", pc.concurrency, fq.concurrency, wc.concurrency),
    ]


def witness_tag_stability(n_packets: int = 64) -> bool:
    """Fair-queuing witness: tags are fixed at enqueue time.

    Enqueues packets into SFQ, records their tags, runs services in
    between, and confirms no queued packet's tag ever changes — the
    property that lets the canonical architecture bypass
    PRIORITY_UPDATE for fair-queuing mappings.
    """
    sfq = SFQ()
    for sid in range(4):
        sfq.add_stream(SwStream(stream_id=sid, weight=sid + 1.0))
    queued: list[tuple[Packet, float]] = []
    for k in range(n_packets):
        p = Packet(stream_id=k % 4, seq=k, arrival=float(k))
        sfq.enqueue(p)
        queued.append((p, p.tag))
        if k % 3 == 0:
            sfq.dequeue(float(k))
    return all(p.tag == tag for p, tag in queued)


def witness_dwcs_dynamics(n_decisions: int = 64) -> bool:
    """Window-constrained witness: priorities change every decision.

    Runs DWCS over contending streams and confirms the current window
    state (x', y') — the stream priority input — changes across
    decision cycles, unlike the fair-queuing tags.
    """
    dwcs = DWCS()
    for sid in range(4):
        dwcs.add_stream(
            SwStream(
                stream_id=sid, period=1, loss_numerator=1, loss_denominator=3
            )
        )
    for sid in range(4):
        for k in range(n_decisions):
            dwcs.enqueue(
                Packet(stream_id=sid, seq=k, arrival=float(k), deadline=float(k + 1))
            )
    changes = 0
    previous = {
        sid: (w.x_cur, w.y_cur) for sid, w in dwcs.windows.items()
    }
    for t in range(n_decisions):
        dwcs.dequeue(float(t))
        current = {
            sid: (w.x_cur, w.y_cur) for sid, w in dwcs.windows.items()
        }
        if current != previous:
            changes += 1
        previous = current
    return changes > n_decisions // 2
