"""Figure 10: aggregation of 100 streamlets into a stream-slot.

"We assigned 100 streamlet queues to each stream-slot and measured the
bandwidth at the Stream processor ... stream-slots are divided in the
ratio 1:1:2:4 ie. 2.0, 2.0, 4.0 and 8.0 MBps with 100 streamlets in
each slot with equal bandwidth allocation ... Stream-slot 4 has two
streamlet sets, set 1 with double bandwidth than set 2."
(Section 5.1.)

The FPGA enforces the slot-level shares (exactly Figure 8); the Stream
processor's round-robin attributes each slot service to a streamlet —
"Round-robin service policy can be completed fast and efficiently on
the Stream processor, while more complex ordering and decisions are
accelerated on the FPGA."

Expected streamlet bandwidths: 0.02 / 0.02 / 0.04 MBps in slots 1-3
(slot MBps / 100); in slot 4, set-1 streamlets get double the set-2
streamlets' bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.endsystem.aggregation import AggregatedSlot, StreamletKey, StreamletSet
from repro.endsystem.host import EndsystemConfig, EndsystemResult, EndsystemRouter
from repro.metrics.bandwidth import BandwidthMeter
from repro.traffic.specs import ratio_workload

__all__ = ["Figure10Result", "run_figure10"]

RATIOS = (1, 1, 2, 4)
STREAMLETS_PER_SLOT = 100


@dataclass
class Figure10Result:
    """Streamlet-level bandwidth attribution."""

    run: EndsystemResult
    streamlet_bw: BandwidthMeter
    aggregators: dict[int, AggregatedSlot]
    elapsed_us: float

    def streamlet_mbps(self) -> dict[StreamletKey, float]:
        """Mean bandwidth of every streamlet over the saturated phase.

        Uses a single window covering the phase so departures after it
        (when some slots have drained) do not skew the attribution.
        """
        keyed = {}
        for packed in self.streamlet_bw.stream_ids:
            key = _unpack(packed)
            series = self.streamlet_bw.series(
                packed, self.elapsed_us, t_end=self.elapsed_us
            )
            keyed[key] = float(series.mbps[0]) if len(series.mbps) else 0.0
        return keyed

    def representative_mbps(self) -> dict[str, float]:
        """One representative streamlet per (slot, set) — what the
        figure plots."""
        per_group: dict[str, list[float]] = {}
        for (slot, set_idx, _sl), mbps in self.streamlet_mbps().items():
            per_group.setdefault(f"slot{slot + 1}/set{set_idx + 1}", []).append(
                mbps
            )
        return {
            group: sum(vals) / len(vals) for group, vals in sorted(per_group.items())
        }


def _pack(key: StreamletKey) -> int:
    slot, set_idx, streamlet = key
    return slot * 10_000 + set_idx * 1_000 + streamlet


def _unpack(packed: int) -> StreamletKey:
    return packed // 10_000, (packed % 10_000) // 1_000, packed % 1_000


def run_figure10(
    frames_per_stream: int = 64_000,
    *,
    streamlets_per_slot: int = STREAMLETS_PER_SLOT,
    engine: str = "reference",
    observer=None,
) -> Figure10Result:
    """Run the aggregation experiment.

    Slots 1-3 carry one streamlet set each; slot 4 carries two sets
    (50 + 50 streamlets) with set 1 at double the bandwidth of set 2.
    """
    aggregators = {
        0: AggregatedSlot(0, [StreamletSet(0, streamlets_per_slot)]),
        1: AggregatedSlot(1, [StreamletSet(0, streamlets_per_slot)]),
        2: AggregatedSlot(2, [StreamletSet(0, streamlets_per_slot)]),
        3: AggregatedSlot(
            3,
            [
                StreamletSet(0, streamlets_per_slot // 2, weight=2.0),
                StreamletSet(1, streamlets_per_slot // 2, weight=1.0),
            ],
        ),
    }
    streamlet_bw = BandwidthMeter()

    def on_departure(sid: int, frame, departure_us: float) -> None:
        key = aggregators[sid].pick()
        streamlet_bw.record(_pack(key), departure_us, frame.length_bytes)

    specs = ratio_workload(RATIOS, frames_per_stream=frames_per_stream)
    router = EndsystemRouter(
        specs,
        EndsystemConfig(engine=engine),
        on_departure=on_departure,
        observer=observer,
    )
    run = router.run(preload=True)
    # Streamlet bandwidth is meaningful over the saturated phase; use
    # the first quarter of the run as in Figure 8.
    return Figure10Result(
        run=run,
        streamlet_bw=streamlet_bw,
        aggregators=aggregators,
        elapsed_us=run.elapsed_us / 4,
    )
