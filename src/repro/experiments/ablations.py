"""Ablation sweeps over the design choices DESIGN.md calls out.

Shared by the ablation benchmarks and the CLI:

* :func:`sort_schedule_sweep` — paper log2(N) recirculation vs full
  bitonic schedule (pass cost vs block-order quality);
* :func:`transfer_cost_sweep` — endsystem throughput vs the per-frame
  PCI cost (the SRAM bank-switch bottleneck);
* :func:`pio_dma_crossover` — the push/pull batch-size split;
* :func:`aggregation_sweep` — streamlets-per-slot vs per-streamlet
  bandwidth and FPGA state saved;
* :func:`extensions_sweep` — Section 6's compute-ahead and Virtex-II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import HardwareAttributes
from repro.core.config import Routing
from repro.core.rules import ordering_key
from repro.core.shuffle import ShuffleExchangeNetwork
from repro.endsystem.host import EndsystemConfig, EndsystemRouter
from repro.hwmodel.area import REGISTER_SLICES, area_model
from repro.hwmodel.host import PIII_550_LINUX24, HostCostModel
from repro.hwmodel.timing import scheduler_throughput_pps
from repro.hwmodel.virtex import VIRTEX_II_6000
from repro.sim.nic import TEN_GIGABIT
from repro.sim.pci import PCIBus
from repro.traffic.specs import ratio_workload

__all__ = [
    "SortQualityPoint",
    "sort_schedule_sweep",
    "transfer_cost_sweep",
    "pio_dma_crossover",
    "aggregation_sweep",
    "extensions_sweep",
]


@dataclass(frozen=True, slots=True)
class SortQualityPoint:
    """Block-order quality of one (slot count, schedule) pair."""

    n_slots: int
    schedule: str
    passes: int
    fully_sorted_fraction: float


def _random_bundles(rng: np.random.Generator, n: int) -> list[HardwareAttributes]:
    return [
        HardwareAttributes(
            sid=i,
            deadline=int(rng.integers(0, 500)),
            loss_numerator=int(rng.integers(0, 4)),
            loss_denominator=int(rng.integers(4, 8)),
            arrival=int(rng.integers(0, 100)),
        )
        for i in range(n)
    ]


def sort_schedule_sweep(
    *,
    slot_counts: tuple[int, ...] = (4, 8, 16, 32),
    trials: int = 200,
    seed: int = 7,
) -> list[SortQualityPoint]:
    """Measure emitted-block sortedness per schedule and slot count."""
    points = []
    for schedule in ("paper", "bitonic"):
        for n in slot_counts:
            rng = np.random.default_rng(seed)
            net = ShuffleExchangeNetwork(n, wrap=False, schedule=schedule)
            exact = 0
            for _ in range(trials):
                order = net.run(_random_bundles(rng, n)).order
                keys = [ordering_key(b) for b in order]
                exact += keys == sorted(keys)
            points.append(
                SortQualityPoint(
                    n_slots=n,
                    schedule=schedule,
                    passes=net.passes_per_decision,
                    fully_sorted_fraction=exact / trials,
                )
            )
    return points


def transfer_cost_sweep(
    pio_costs_us: tuple[float, ...] = (0.0, 0.6, 1.21, 2.5, 5.0),
    *,
    frames_per_stream: int = 600,
) -> list[tuple[float, float]]:
    """Endsystem pps as a function of the per-frame PCI cost."""
    rows = []
    for pio_us in pio_costs_us:
        host = HostCostModel(
            name=f"pio={pio_us}",
            cpu_mhz=550.0,
            packet_cost_us=PIII_550_LINUX24.packet_cost_us,
            pio_cost_us=pio_us,
        )
        specs = ratio_workload((1, 1, 2, 4), frames_per_stream=frames_per_stream)
        router = EndsystemRouter(
            specs, EndsystemConfig(link=TEN_GIGABIT, include_pci=True, host=host)
        )
        rows.append((pio_us, router.run(preload=True).throughput_pps))
    return rows


def pio_dma_crossover(
    word_counts: tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096),
) -> list[tuple[int, float, float, str]]:
    """(words, pio_us, dma_us, best mode) per transfer size."""
    bus = PCIBus()
    return [
        (w, bus.pio_time_us(w), bus.dma_time_us(w), bus.best_mode(w))
        for w in word_counts
    ]


def aggregation_sweep(
    degrees: tuple[int, ...] = (10, 50, 100, 200),
    *,
    frames_per_stream: int = 4000,
) -> list[dict]:
    """Streamlet bandwidth and FPGA state saved per aggregation degree."""
    from repro.experiments.figure10 import run_figure10

    rows = []
    for degree in degrees:
        result = run_figure10(
            frames_per_stream=frames_per_stream, streamlets_per_slot=degree
        )
        rep = result.representative_mbps()
        total = 4 * degree
        rows.append(
            {
                "degree": degree,
                "total_streams": total,
                "slot1_streamlet_mbps": rep["slot1/set1"],
                "slot4_set1_streamlet_mbps": rep["slot4/set1"],
                "dedicated_slices": total * REGISTER_SLICES,
                "aggregated_slices": area_model(4, Routing.WR).register_slices,
            }
        )
    return rows


def extensions_sweep(
    slot_counts: tuple[int, ...] = (4, 8, 16, 32),
) -> list[dict]:
    """Section 6 extensions priced per slot count."""
    rows = []
    for n in slot_counts:
        base = scheduler_throughput_pps(n, Routing.WR)
        ahead = scheduler_throughput_pps(n, Routing.WR, compute_ahead=True)
        v2 = scheduler_throughput_pps(
            n, Routing.WR, compute_ahead=True, device=VIRTEX_II_6000
        )
        rows.append(
            {
                "n_slots": n,
                "base_pps": base.packets_per_second,
                "compute_ahead_pps": ahead.packets_per_second,
                "virtex2_pps": v2.packets_per_second,
                "area_factor": area_model(n, Routing.WR, compute_ahead=True).total_slices
                / area_model(n, Routing.WR).total_slices,
            }
        )
    return rows
