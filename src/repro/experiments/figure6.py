"""Figure 6: the four-stream scheduler timeline.

Runs a 4-slot scheduler with FSM tracing enabled and renders the
Control & Steering unit's state residency: the power-on LOAD, then the
alternating SCHEDULE (log2 N = 2 cycles) and PRIORITY_UPDATE (1 cycle)
phases of each decision cycle.
"""

from __future__ import annotations

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.control import TimelineEntry
from repro.core.scheduler import ShareStreamsScheduler

__all__ = ["run_figure6", "render_timeline"]


def run_figure6(n_decisions: int = 6) -> list[TimelineEntry]:
    """Produce the FSM timeline for a short four-stream run."""
    arch = ArchConfig(n_slots=4, routing=Routing.BA, wrap=False)
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(4)
    ]
    scheduler = ShareStreamsScheduler(arch, streams, trace_timeline=True)
    for t in range(n_decisions):
        for sid in range(4):
            scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
        scheduler.decision_cycle(t, consume="block")
    return list(scheduler.control.timeline)


def render_timeline(timeline: list[TimelineEntry]) -> str:
    """ASCII rendering of the FSM timeline (one lane per state)."""
    total = timeline[-1].end_cycle if timeline else 0
    states = ["LOAD", "SCHEDULE", "PRIORITY_UPDATE"]
    lanes = {s: [" "] * total for s in states}
    for entry in timeline:
        lane = lanes[entry.state.value]
        for c in range(entry.start_cycle, entry.end_cycle):
            lane[c] = "#"
    lines = [f"hardware cycles 0..{total - 1} (4 stream-slots)"]
    for s in states:
        lines.append(f"{s:>16} |{''.join(lanes[s])}|")
    return "\n".join(lines)
