"""Table 3: block decisions vs max-finding (the headline experiment).

Setup (Section 5.1): four streams, one per stream-slot, initial
deadlines one time unit apart, each stream requested every decision
cycle (``T_i = 1``), scheduler in EDF mode, 64000 frames scheduled in
total (16000 per stream).

Three configurations are compared:

* **Max-finding (WR)** — one winner per decision cycle.  The offered
  load (four requests per cycle) is 4x the service rate, so queues
  grow without bound and nearly every request's deadline passes:
  ~64000 missed-deadline registrations per stream over 64000 decision
  cycles (paper: 63,986-63,989 per stream, 255,950 total).
* **Block, max-first (BA)** — the whole sorted block is transmitted in
  a single transaction each decision cycle, so all four streams are
  serviced per cycle, the same 64000 frames need only 16000 decision
  cycles, every deadline is met (0 misses), and the circulated-winner
  rotation gives each stream 4000 winner cycles.
* **Block, min-first (BA)** — the control case: the stream at the
  *end* of the block is circulated during PRIORITY_UPDATE and the
  block is consumed from its min end, so urgent frames transmit last
  within each block transaction and the priority update rotates the
  wrong stream.  Deadlines are missed wholesale (paper: 106,985 misses
  total; we report the misses our faithful mechanism produces — same
  order of magnitude and the identical qualitative conclusion).

See DESIGN.md ("Known interpretation points") for the min-first
mechanism reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import make_scheduler
from repro.core.config import ArchConfig, BlockMode, Routing

__all__ = [
    "CONFIGS",
    "StreamRow",
    "Table3Result",
    "run_max_finding",
    "run_block",
    "run_table3",
]

#: The paper's experiment size: 16000 frames per stream, 4 streams.
FRAMES_PER_STREAM = 16_000
N_STREAMS = 4


@dataclass(frozen=True, slots=True)
class StreamRow:
    """One stream's row in Table 3."""

    stream: int
    missed_deadlines: int
    winner_cycles: int


@dataclass(frozen=True, slots=True)
class Table3Result:
    """One configuration's columns in Table 3."""

    label: str
    rows: tuple[StreamRow, ...]
    decision_cycles: int
    frames_scheduled: int

    @property
    def total_missed(self) -> int:
        """Total missed deadlines across streams."""
        return sum(r.missed_deadlines for r in self.rows)


def _finalize_observer(observer) -> None:
    """Flush the telemetry monitor's partial rollup window, if any."""
    finalize = getattr(observer, "finalize", None)
    if finalize is not None:
        finalize()


def _make_scheduler(
    routing: Routing, block_mode: BlockMode, engine: str, observer=None
):
    arch = ArchConfig(
        n_slots=N_STREAMS,
        routing=routing,
        block_mode=block_mode,
        wrap=False,  # 64000-cycle runs exceed the 16-bit horizon
    )
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(N_STREAMS)
    ]
    return make_scheduler(arch, streams, engine=engine, observer=observer)


#: Initial deadlines one time unit apart across streams (Section 5.1).
_OFFSETS = np.arange(1, N_STREAMS + 1, dtype=np.int64)


def run_max_finding(
    frames_per_stream: int = FRAMES_PER_STREAM,
    *,
    engine: str = "reference",
    observer=None,
) -> Table3Result:
    """Max-finding (winner-only) configuration.

    One decision cycle per time unit; every stream deposits one request
    per cycle (deadline = initial offset + cycle); one winner serviced
    per cycle.  Runs for ``4 * frames_per_stream`` cycles so 64000
    frames get scheduled at the paper's full scale.

    ``engine="batch"`` executes the identical workload on the
    vectorized engine's self-advancing periodic path (bit-identical
    counters, cross-validated in the test suite).
    """
    scheduler = _make_scheduler(Routing.WR, BlockMode.MAX_FIRST, engine, observer)
    n_cycles = N_STREAMS * frames_per_stream
    if hasattr(scheduler, "run_periodic"):
        scheduler.run_periodic(
            n_cycles,
            offsets=_OFFSETS,
            step=1,
            consume="winner",
            count_misses=True,
        )
    else:
        for t in range(n_cycles):
            for sid in range(N_STREAMS):
                # Successive deadlines one time unit apart across
                # streams; request period T_i = 1 within each stream.
                scheduler.enqueue(sid, deadline=(sid + 1) + t, arrival=t)
            scheduler.decision_cycle(t, consume="winner", count_misses=True)
    _finalize_observer(observer)
    counters = scheduler.counters()
    rows = tuple(
        StreamRow(
            stream=sid + 1,
            missed_deadlines=counters[sid].missed_deadlines,
            winner_cycles=counters[sid].wins,
        )
        for sid in range(N_STREAMS)
    )
    return Table3Result(
        label="Max-finding (winner-only)",
        rows=rows,
        decision_cycles=n_cycles,
        frames_scheduled=sum(counters[s].serviced for s in range(N_STREAMS)),
    )


def run_block(
    block_mode: BlockMode,
    frames_per_stream: int = FRAMES_PER_STREAM,
    *,
    engine: str = "reference",
    observer=None,
) -> Table3Result:
    """Block-scheduling configuration (BA routing).

    One decision cycle schedules the whole sorted block in a single
    transaction; each stream deposits one request per decision cycle.
    In *max-first* the block head (winner) is circulated and the block
    transmits in priority order — every frame goes out within its
    decision cycle, before its deadline.  In *min-first* the block tail
    is circulated and the block is consumed from the min end: within
    the block transaction the most urgent frame transmits last, and
    the priority rotation is applied to the wrong stream; misses are
    counted per frame that leaves after its deadline, accumulating one
    count per time unit of lateness (the per-slot miss counters keep
    incrementing while a late frame is pending, as in the max-finding
    configuration).
    """
    scheduler = _make_scheduler(Routing.BA, block_mode, engine, observer)
    n_cycles = frames_per_stream
    missed = [0] * N_STREAMS
    if hasattr(scheduler, "run_periodic"):
        res = scheduler.run_periodic(
            n_cycles,
            offsets=_OFFSETS,
            step=1,
            consume="block",
            count_misses=False,
        )
        # Min-first forfeit accounting (see the loop below): every
        # block member except the circulated one misses its cycle, and
        # all four streams are serviced every cycle, so the per-stream
        # forfeit count is just cycles minus circulated wins.
        if block_mode is BlockMode.MIN_FIRST:
            missed = [n_cycles - int(res.wins[sid]) for sid in range(N_STREAMS)]
    else:
        for c in range(n_cycles):
            for sid in range(N_STREAMS):
                scheduler.enqueue(sid, deadline=(sid + 1) + c, arrival=c)
            outcome = scheduler.decision_cycle(
                c, consume="block", count_misses=False
            )
            # Max-first: the block is in priority order, so the single
            # block transaction delivers every frame within its deadline
            # ("deadlines of queued packets do not change during
            # scheduling discipline operation") — no misses.
            # Min-first: the block is circulated/consumed from its
            # *tail*, so the transaction presents frames in inverse
            # priority order; only the circulated frame reaches the
            # wire usefully and every other block member's deadline is
            # forfeited that cycle — the control case showing
            # mis-circulation destroys the block benefit.  Each
            # forfeited frame registers one missed deadline in its slot
            # counter.
            if block_mode is BlockMode.MIN_FIRST:
                for sid, _packet in outcome.serviced:
                    if sid != outcome.circulated_sid:
                        missed[sid] += 1
    _finalize_observer(observer)
    counters = scheduler.counters()
    rows = tuple(
        StreamRow(
            stream=sid + 1,
            missed_deadlines=counters[sid].missed_deadlines + missed[sid],
            winner_cycles=counters[sid].wins,
        )
        for sid in range(N_STREAMS)
    )
    label = (
        "Block (sorted-list), max-first"
        if block_mode is BlockMode.MAX_FIRST
        else "Block (sorted-list), min-first"
    )
    return Table3Result(
        label=label,
        rows=rows,
        decision_cycles=n_cycles,
        frames_scheduled=sum(counters[s].serviced for s in range(N_STREAMS)),
    )


#: The three Table 3 configurations, in presentation order.
CONFIGS = ("max_finding", "block_max_first", "block_min_first")


def _run_config(
    key: str, frames_per_stream: int, engine: str, spec
) -> tuple[Table3Result, dict | None]:
    """One configuration as a sharded-runner task (module-level, picklable).

    ``spec`` is the parent's picklable monitor recipe
    (:func:`repro.runner.monitor_spec`); the worker rebuilds a private
    observability facade from it and ships its telemetry back alongside
    the result so the parent can merge shards in configuration order.
    """
    from repro.runner import build_worker_observability, telemetry_shard

    obs = build_worker_observability(spec)
    if key == "max_finding":
        result = run_max_finding(frames_per_stream, engine=engine, observer=obs)
    elif key == "block_max_first":
        result = run_block(
            BlockMode.MAX_FIRST, frames_per_stream, engine=engine, observer=obs
        )
    elif key == "block_min_first":
        result = run_block(
            BlockMode.MIN_FIRST, frames_per_stream, engine=engine, observer=obs
        )
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown Table 3 configuration {key!r}")
    return result, telemetry_shard(obs)


def run_table3(
    frames_per_stream: int = FRAMES_PER_STREAM,
    *,
    engine: str = "reference",
    observer=None,
    workers: int | None = 1,
) -> dict[str, Table3Result]:
    """Run all three Table 3 configurations.

    ``workers > 1`` runs the independent configurations in parallel
    processes (:func:`repro.runner.run_sharded`).  The counters are
    identical either way; telemetry differs in one documented respect:
    parallel workers observe each configuration in isolation (fresh
    registry + monitor per config, merged back in configuration
    order), while the sequential path threads one shared observer
    through all three runs.  A worker that dies raises ``RuntimeError``
    naming the configurations it took down.
    """
    if workers == 1:
        return {
            "max_finding": run_max_finding(
                frames_per_stream, engine=engine, observer=observer
            ),
            "block_max_first": run_block(
                BlockMode.MAX_FIRST, frames_per_stream, engine=engine,
                observer=observer,
            ),
            "block_min_first": run_block(
                BlockMode.MIN_FIRST, frames_per_stream, engine=engine,
                observer=observer,
            ),
        }
    from repro.runner import absorb_telemetry, monitor_spec, run_sharded

    spec = (
        {"monitor": monitor_spec(observer)} if observer is not None else None
    )
    pool = run_sharded(
        _run_config,
        CONFIGS,
        workers=workers,
        task_args=(frames_per_stream, engine, spec),
    )
    if pool.failures:
        raise RuntimeError(
            "table3 worker failure: "
            + "; ".join(f.describe() for f in pool.failures)
        )
    absorb_telemetry(
        observer, (shard for _result, shard in pool.results)
    )
    return {
        key: result
        for key, (result, _shard) in zip(CONFIGS, pool.results)
    }
