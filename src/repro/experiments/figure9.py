"""Figure 9: queuing delay of streams 1-4 under bursty arrivals.

Same 1:1:2:4 endsystem setup as Figure 8, but frames arrive from the
paper's bursty traffic generator: bursts of 4000 frames with a multi-ms
inter-burst delay ("The zig-zag formation in Figure 9 is because of the
traffic generator, which introduces a multi-ms inter-burst delay after
the first 4000 frames").  Expected shape: per-frame queuing delay ramps
within each burst and collapses across the gaps (zig-zag), and stream 4
— holding the largest bandwidth share — has the lowest delay
("the reduced delay for Stream 4 is consistent with Figure 8").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.endsystem.host import EndsystemConfig, EndsystemResult, EndsystemRouter
from repro.metrics.delay import DelaySeries
from repro.traffic.generators import burst_arrivals
from repro.traffic.specs import EndsystemStreamSpec

__all__ = ["Figure9Result", "run_figure9"]

RATIOS = (1, 1, 2, 4)


@dataclass
class Figure9Result:
    """Per-stream queuing-delay series."""

    run: EndsystemResult
    series: dict[int, DelaySeries]

    def mean_delays_us(self) -> dict[int, float]:
        """Mean queuing delay per stream."""
        return {sid: s.mean_us for sid, s in self.series.items()}

    def zigzag_score(self, sid: int, burst_size: int) -> float:
        """Peak-to-trough delay ratio across bursts (>1 means zig-zag).

        Compares the mean delay of late-burst frames to early-burst
        frames; a pronounced ramp within each burst yields a high score.
        """
        s = self.series[sid]
        delays = s.delays_us
        if len(delays) < burst_size:
            return 1.0
        n_bursts = len(delays) // burst_size
        peak = trough = 0.0
        for b in range(n_bursts):
            chunk = delays[b * burst_size : (b + 1) * burst_size]
            q = max(1, burst_size // 8)
            trough += float(chunk[:q].mean())
            peak += float(chunk[-q:].mean())
        trough = max(trough / n_bursts, 1e-9)
        return (peak / n_bursts) / trough


def run_figure9(
    *,
    n_bursts: int = 3,
    burst_size: int = 4000,
    inter_burst_gap_ms: float | None = None,
    offered_rate_pps: float = 16_000.0,
    engine: str = "reference",
    observer=None,
) -> Figure9Result:
    """Run the bursty-arrival delay experiment.

    Each stream offers ``n_bursts`` bursts of ``burst_size`` frames at
    the same rate; the aggregate (``offered_rate_pps``) overcommits the
    128 Mbit/s playout drain (~10,667 fps) so queues build within each
    burst, and the inter-burst gap lets them drain — producing the
    zig-zag.  The default gap scales with the burst so even the
    lowest-share stream's backlog clears between bursts (the paper
    only says "multi-ms").
    """
    if inter_burst_gap_ms is None:
        # Worst backlog ~ burst * (1 - served/offered) for the 1/8-share
        # stream; drain rate = its service share.  Pad by 25%.
        inter_burst_gap_ms = burst_size * 0.75 * 1e3 / 1333.0 * 1.25
    n_frames = n_bursts * burst_size
    specs = []
    for sid, share in enumerate(RATIOS):
        # Every stream offers the same burst load; the DWCS shares
        # (1:1:2:4) — not the generator — differentiate their service,
        # so the high-share stream drains fast (the paper: "the reduced
        # delay for Stream 4 is consistent with Figure 8") while the
        # low-share streams ramp within each burst.
        rate = offered_rate_pps / len(RATIOS)
        specs.append(
            EndsystemStreamSpec(
                sid=sid,
                share=float(share),
                arrivals_us=burst_arrivals(
                    n_frames,
                    burst_size=burst_size,
                    intra_rate_pps=rate,
                    inter_burst_gap_us=inter_burst_gap_ms * 1e3,
                ),
            )
        )
    router = EndsystemRouter(
        specs, EndsystemConfig(engine=engine), observer=observer
    )
    run = router.run(preload=False)
    series = {
        sid: run.te.delay.series(sid) for sid in run.te.delay.stream_ids
    }
    return Figure9Result(run=run, series=series)
