"""Register Base block ("stream-slot"): per-stream state and updates.

A Register Base block stores one stream's (or streamlet set's) service
attributes in CLB flip-flops, drives them onto the shuffle network each
SCHEDULE cycle, and applies the attribute-adjustment logic during the
PRIORITY_UPDATE cycle when the circulated winner ID arrives
(Section 4.3, Figure 4).  It also keeps the per-slot performance
counters (missed deadlines, wins, window violations) Table 3 reports.

DWCS attribute adjustment
-------------------------
The paper defers the update pseudocode to [13]/[26]; DESIGN.md records
the reconstruction implemented here.  ``(x', y')`` are the *current*
window counters, ``(x, y)`` the original constraint:

* **Serviced before deadline** (the slot's head packet went out on
  time): the window consumed one on-time packet — ``y' -= 1``; when the
  remaining window is trivially satisfiable (``y' <= x'`` — every
  remaining packet may be late) or exhausted (``y' == 0``) the pair
  resets to ``(x, y)``.  The effective constraint ``x'/y'`` *rises*, so
  the winner's priority drops, exactly the "winner has priority
  effectively lowered" behavior the paper describes.
* **Missed deadline**: one loss consumed — ``x' -= 1`` and ``y' -= 1``,
  resetting when ``x' == y'`` or ``y' == 0``.  The constraint
  *tightens*, raising the loser's priority.
* **Violation** (miss with ``x' == 0``: the window constraint is
  already broken): the denominator *increments* (saturating at the
  8-bit field maximum).  Under Table 2's rule 3 (zero constraints order
  by highest denominator) this monotonically boosts the violated
  stream's priority until it gets service.

In ``EDF`` mode the adjustment degenerates to advancing the deadline to
the next request period; in ``STATIC_PRIORITY`` and ``SERVICE_TAG``
modes nothing changes (the update cycle is bypassed, Section 4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.attributes import HardwareAttributes, SchedulingMode, StreamConfig
from repro.core.fields import (
    DEADLINE_FIELD,
    LOSS_DEN_FIELD,
    serial_add,
    serial_lt,
)

__all__ = ["SlotCounters", "PendingPacket", "RegisterBaseBlock"]


@dataclass(slots=True)
class SlotCounters:
    """Per-slot performance counters (the hardware's counter registers)."""

    wins: int = 0
    serviced: int = 0
    missed_deadlines: int = 0
    violations: int = 0
    window_resets: int = 0
    loads: int = 0


@dataclass(frozen=True, slots=True)
class PendingPacket:
    """One queued request: head-of-line candidate for the slot.

    ``deadline`` and ``arrival`` are absolute times in scheduler units;
    they are wrapped into the 16-bit hardware fields when latched.
    ``length`` (bytes) only matters to the endsystem/link simulation.
    """

    deadline: int
    arrival: int
    length: int = 1500


class RegisterBaseBlock:
    """One stream-slot: attribute registers + pending-request queue.

    The pending queue models the slot's per-stream buffering in card
    SRAM / on-chip block RAM; the streaming unit appends to it and the
    PRIORITY_UPDATE pops it as packets are serviced.

    Parameters
    ----------
    config:
        The stream service constraints loaded into the slot.
    wrap:
        Use 16-bit wrapped deadline arithmetic (hardware behavior).
    """

    def __init__(self, config: StreamConfig, *, wrap: bool = True) -> None:
        self.config = config
        self.wrap = wrap
        self.attributes = HardwareAttributes.from_config(config)
        self.attributes.valid = False
        self.pending: deque[PendingPacket] = deque()
        self.counters = SlotCounters()
        self._current: PendingPacket | None = None
        # EDF-mode winner bias: each circulated win pushes the slot's
        # effective deadline one request period later ("the winner
        # stream ... has priority effectively lowered", Section 2) so
        # waiting streams are picked eventually even under deadline
        # ties or block service.
        self._edf_bias = 0

    # ------------------------------------------------------------------
    # queue / load path (LOAD state and streaming unit)
    # ------------------------------------------------------------------

    def enqueue(self, packet: PendingPacket) -> None:
        """Append one request to the slot's pending queue."""
        self.pending.append(packet)
        if not self.attributes.valid:
            self._latch_next()

    def enqueue_request(self, deadline: int, arrival: int, length: int = 1500) -> None:
        """Convenience wrapper building the :class:`PendingPacket`."""
        self.enqueue(PendingPacket(deadline=deadline, arrival=arrival, length=length))

    def _latch_next(self) -> None:
        """Latch the next pending request into the attribute registers."""
        if not self.pending:
            self.attributes.valid = False
            self._current = None
            return
        packet = self.pending.popleft()
        self._current = packet
        deadline = packet.deadline
        if self.config.mode is SchedulingMode.EDF:
            deadline += self._edf_bias
        if self.wrap:
            # Hardware registers hold 16-bit offsets.
            self.attributes.deadline = deadline & DEADLINE_FIELD.mask
            self.attributes.arrival = packet.arrival & DEADLINE_FIELD.mask
        else:
            # Ideal-arithmetic mode: unbounded integers pass through.
            self.attributes.deadline = deadline
            self.attributes.arrival = packet.arrival
        self.attributes.valid = True
        self.counters.loads += 1

    @property
    def head(self) -> PendingPacket | None:
        """The request currently latched in the registers, if any."""
        return self._current

    @property
    def backlog(self) -> int:
        """Requests waiting behind the latched head."""
        return len(self.pending)

    def head_is_late(self, now: int) -> bool:
        """Whether the latched head's deadline has passed at time ``now``.

        Uses the packet's *actual* deadline: the EDF winner bias is an
        ordering adjustment (priority effectively lowered), not an
        extension of the deadline the packet must meet.
        """
        if self._current is None:
            return False
        if self.wrap:
            return serial_lt(
                self._current.deadline & DEADLINE_FIELD.mask,
                now & DEADLINE_FIELD.mask,
            )
        return self._current.deadline < now

    # ------------------------------------------------------------------
    # PRIORITY_UPDATE path
    # ------------------------------------------------------------------

    def record_miss(self, now: int) -> bool:
        """Count one missed-deadline event if the head is late at ``now``.

        Called once per decision cycle by the control unit; this is the
        counter Table 3's "Missed Deadlines" column reads.  In DWCS and
        fair-share modes the miss also triggers the loser window
        adjustment; in EDF / static / service-tag modes only the counter
        moves (those mappings bypass attribute updates).
        """
        if not self.head_is_late(now):
            return False
        self.counters.missed_deadlines += 1
        if self.config.mode in (SchedulingMode.DWCS, SchedulingMode.FAIR_SHARE):
            self._apply_loss_update()
        return True

    def service(
        self, now: int, *, as_winner: bool | None = None
    ) -> PendingPacket | None:
        """Consume the latched head: it was transmitted at time ``now``.

        Applies the attribute adjustment for the slot's mode and latches
        the next pending request.  Returns the serviced packet (``None``
        if the slot was empty).

        ``as_winner`` controls the DWCS adjustment for *block*
        consumption: in hardware only the circulated ID receives the
        winner update, while other transmitted block members merely pop
        their heads (their windows adjust only through the miss path).
        ``True`` forces the winner update, ``False`` suppresses it, and
        ``None`` (default, the max-finding/per-winner path) applies the
        winner update when the packet went out on time and the loss
        update when it was late.
        """
        packet = self._current
        if packet is None:
            return None
        self.counters.serviced += 1
        mode = self.config.mode
        if mode in (SchedulingMode.DWCS, SchedulingMode.FAIR_SHARE):
            if as_winner is None:
                if self.head_is_late(now):
                    # Serviced late: the window still saw a late packet.
                    self._apply_loss_update()
                else:
                    self._apply_win_update()
            elif as_winner:
                self._apply_win_update()
        elif mode is SchedulingMode.EDF and as_winner is not False:
            # EDF winner update: the circulated stream's effective
            # deadline moves one request period later, rotating service
            # among deadline-contending streams.
            self._edf_bias += self.config.period
        self._latch_next()
        return packet

    def record_win(self) -> None:
        """Count that this slot's ID was circulated as the winner."""
        self.counters.wins += 1

    # -- DWCS window-counter adjustments --------------------------------

    def _reset_window(self) -> None:
        self.attributes.loss_numerator = self.config.loss_numerator
        self.attributes.loss_denominator = self.config.loss_denominator
        self.counters.window_resets += 1

    def _apply_win_update(self) -> None:
        """On-time service: ``y' -= 1``; reset when window completes."""
        attrs = self.attributes
        if attrs.loss_denominator > 0:
            attrs.loss_denominator -= 1
        if attrs.loss_denominator == 0 or (
            attrs.loss_denominator <= attrs.loss_numerator
        ):
            self._reset_window()

    def _apply_loss_update(self) -> None:
        """Missed deadline: consume a loss, or register a violation."""
        attrs = self.attributes
        if attrs.loss_numerator > 0:
            attrs.loss_numerator -= 1
            if attrs.loss_denominator > 0:
                attrs.loss_denominator -= 1
            if (
                attrs.loss_denominator == 0
                or attrs.loss_numerator == attrs.loss_denominator
            ):
                self._reset_window()
        else:
            self.counters.violations += 1
            attrs.loss_denominator = min(
                attrs.loss_denominator + 1, LOSS_DEN_FIELD.mask
            )

    def drop_late_head(self, now: int) -> PendingPacket | None:
        """Discard a late head packet (droppable-stream policy).

        DWCS may drop packets whose deadlines already passed instead of
        transmitting them late.  Returns the dropped packet, if any.
        """
        if self._current is None or not self.head_is_late(now):
            return None
        packet = self._current
        self._latch_next()
        return packet

    # ------------------------------------------------------------------

    def snapshot(self) -> HardwareAttributes:
        """Copy of the attribute registers as driven onto the network."""
        return self.attributes.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegisterBaseBlock(sid={self.config.sid}, "
            f"deadline={self.attributes.deadline}, "
            f"W'={self.attributes.loss_numerator}/"
            f"{self.attributes.loss_denominator}, "
            f"valid={self.attributes.valid}, backlog={self.backlog})"
        )
