"""Legacy fast-simulation entry points (thin batch-engine wrappers).

Historically this module carried two special-cased NumPy loops for the
Table 3 workloads.  Both are now thin wrappers over the general
vectorized engine (:class:`repro.core.batch_engine.BatchScheduler`),
whose :meth:`~repro.core.batch_engine.BatchScheduler.run_periodic`
subsumes them: the same periodic request feed, parameterized over slot
count, routing, block mode and discipline, cross-validated cycle by
cycle against the object model in ``tests/test_differential_engines.py``.

The entry points and their :class:`FastRunResult` shape are preserved
so existing callers (``tests/test_core_fast_sim.py``, benchmark
harnesses) keep working unchanged:

* :func:`simulate_max_finding` — EDF max-finding over per-slot
  self-advancing request streams (Table 3's first configuration);
* :func:`simulate_block_max_first` — block scheduling with the EDF
  winner bias rotation (Table 3's second configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import BatchScheduler
from repro.core.config import ArchConfig, BlockMode, Routing

__all__ = [
    "FastRunResult",
    "simulate_max_finding",
    "simulate_block_max_first",
]


@dataclass(frozen=True, slots=True)
class FastRunResult:
    """Aggregate outcome of a vectorized run."""

    n_streams: int
    decision_cycles: int
    wins: np.ndarray  # per-stream circulated-winner counts
    misses: np.ndarray  # per-stream missed-deadline registrations
    frames_scheduled: int


def _build(n_streams: int, routing: Routing, block_mode: BlockMode) -> BatchScheduler:
    """Batch engine sized for ``n_streams`` EDF slots (T_i = 1).

    The architecture wants a power-of-two slot count; extra slots stay
    unloaded and never enter the sort.
    """
    n_slots = max(2, 1 << (n_streams - 1).bit_length())
    arch = ArchConfig(
        n_slots=n_slots,
        routing=routing,
        block_mode=block_mode,
        wrap=False,  # these runs exceed the 16-bit horizon
        extended=n_slots > 32,
    )
    streams = [
        StreamConfig(sid=i, period=1, mode=SchedulingMode.EDF)
        for i in range(n_streams)
    ]
    return BatchScheduler(arch, streams)


def _pad(offsets: np.ndarray, n_slots: int) -> np.ndarray:
    padded = np.zeros(n_slots, dtype=np.int64)
    padded[: offsets.shape[0]] = offsets
    return padded


def simulate_max_finding(
    n_streams: int = 4,
    n_cycles: int = 64_000,
    *,
    initial_offsets: np.ndarray | None = None,
) -> FastRunResult:
    """Vectorized Table 3 max-finding run.

    Stream ``i``'s head deadline is ``offset_i + serviced_i`` (requests
    every cycle, ``T = 1``); each cycle the earliest head (FCFS →
    lowest id on ties, matching the hardware tie-break after equal
    arrivals) wins and is consumed; every late head registers a miss.
    """
    if initial_offsets is None:
        offsets = np.arange(1, n_streams + 1, dtype=np.int64)
    else:
        offsets = np.asarray(initial_offsets, dtype=np.int64)
        if offsets.shape != (n_streams,):
            raise ValueError("initial_offsets shape mismatch")
    engine = _build(n_streams, Routing.WR, BlockMode.MAX_FIRST)
    res = engine.run_periodic(
        n_cycles,
        offsets=_pad(offsets, engine.config.n_slots),
        step=1,
        consume="winner",
        count_misses=True,
    )
    return FastRunResult(
        n_streams=n_streams,
        decision_cycles=n_cycles,
        wins=res.wins[:n_streams],
        misses=res.misses[:n_streams],
        frames_scheduled=res.frames_scheduled,
    )


def simulate_block_max_first(
    n_streams: int = 4,
    n_cycles: int = 16_000,
    *,
    initial_offsets: np.ndarray | None = None,
) -> FastRunResult:
    """Vectorized Table 3 block/max-first run.

    Every cycle the whole block is consumed (all heads serviced), the
    block head (biased-EDF minimum) is circulated and receives the
    winner bias; misses register for late heads (never, at this
    balanced load).
    """
    if initial_offsets is None:
        offsets = np.arange(1, n_streams + 1, dtype=np.int64)
    else:
        offsets = np.asarray(initial_offsets, dtype=np.int64)
        if offsets.shape != (n_streams,):
            raise ValueError("initial_offsets shape mismatch")
    engine = _build(n_streams, Routing.BA, BlockMode.MAX_FIRST)
    res = engine.run_periodic(
        n_cycles,
        offsets=_pad(offsets, engine.config.n_slots),
        step=1,
        consume="block",
        count_misses=True,
    )
    return FastRunResult(
        n_streams=n_streams,
        decision_cycles=n_cycles,
        wins=res.wins[:n_streams],
        misses=res.misses[:n_streams],
        frames_scheduled=res.frames_scheduled,
    )
