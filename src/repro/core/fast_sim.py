"""Vectorized batch simulator for large-scale scheduling runs.

The cycle-level object model (:mod:`repro.core.scheduler`) is the
reference; at 64000-cycle experiment scale it costs seconds per run.
This module provides a NumPy formulation of the two workloads the big
experiments repeat millions of times:

* :func:`simulate_max_finding` — EDF max-finding over per-slot
  self-advancing request streams (Table 3's first configuration);
* :func:`simulate_block_max_first` — block scheduling with the EDF
  winner bias rotation (Table 3's second configuration).

Both run whole decision loops in a few array operations per cycle and
are **cross-validated against the object model** in
``tests/test_core_fast_sim.py`` — the guides' profile-first discipline:
the hot loop got a vectorized twin instead of complicating the
reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FastRunResult",
    "simulate_max_finding",
    "simulate_block_max_first",
]


@dataclass(frozen=True, slots=True)
class FastRunResult:
    """Aggregate outcome of a vectorized run."""

    n_streams: int
    decision_cycles: int
    wins: np.ndarray  # per-stream circulated-winner counts
    misses: np.ndarray  # per-stream missed-deadline registrations
    frames_scheduled: int


def simulate_max_finding(
    n_streams: int = 4,
    n_cycles: int = 64_000,
    *,
    initial_offsets: np.ndarray | None = None,
) -> FastRunResult:
    """Vectorized Table 3 max-finding run.

    Stream ``i``'s head deadline is ``offset_i + serviced_i`` (requests
    every cycle, ``T = 1``); each cycle the earliest head (FCFS →
    lowest id on ties, matching the hardware tie-break after equal
    arrivals) wins and is consumed; every late head registers a miss.
    """
    if initial_offsets is None:
        offsets = np.arange(1, n_streams + 1, dtype=np.int64)
    else:
        offsets = np.asarray(initial_offsets, dtype=np.int64)
        if offsets.shape != (n_streams,):
            raise ValueError("initial_offsets shape mismatch")
    serviced = np.zeros(n_streams, dtype=np.int64)
    bias = np.zeros(n_streams, dtype=np.int64)
    wins = np.zeros(n_streams, dtype=np.int64)
    misses = np.zeros(n_streams, dtype=np.int64)
    sid = np.arange(n_streams, dtype=np.int64)
    # Lexicographic tie-break mirroring Table 2: deadline key, then
    # FCFS on the head's arrival (its request index), then stream id.
    arrival_scale = np.int64(n_cycles + 2)
    for t in range(n_cycles):
        # Heads exist whenever serviced_i <= t (one arrival per cycle).
        valid = serviced <= t
        real_deadline = offsets + serviced
        keys = real_deadline + bias
        combined = (keys * arrival_scale + serviced) * n_streams + sid
        combined = np.where(valid, combined, np.iinfo(np.int64).max)
        winner = int(np.argmin(combined))
        # Miss registration: any valid late head (real deadline < t).
        late = valid & (real_deadline < t)
        misses[late] += 1
        # Winner update: EDF bias only when the head was on time.
        if not late[winner]:
            bias[winner] += 1
        serviced[winner] += 1
        wins[winner] += 1
    return FastRunResult(
        n_streams=n_streams,
        decision_cycles=n_cycles,
        wins=wins,
        misses=misses,
        frames_scheduled=int(serviced.sum()),
    )


def simulate_block_max_first(
    n_streams: int = 4,
    n_cycles: int = 16_000,
    *,
    initial_offsets: np.ndarray | None = None,
) -> FastRunResult:
    """Vectorized Table 3 block/max-first run.

    Every cycle the whole block is consumed (all heads serviced), the
    block head (biased-EDF minimum) is circulated and receives the
    winner bias; misses register for late heads (never, at this
    balanced load).
    """
    if initial_offsets is None:
        offsets = np.arange(1, n_streams + 1, dtype=np.int64)
    else:
        offsets = np.asarray(initial_offsets, dtype=np.int64)
    bias = np.zeros(n_streams, dtype=np.int64)
    wins = np.zeros(n_streams, dtype=np.int64)
    misses = np.zeros(n_streams, dtype=np.int64)
    for c in range(n_cycles):
        real_deadline = offsets + c
        keys = real_deadline + bias
        winner = int(np.argmin(keys))
        misses[real_deadline < c] += 1
        bias[winner] += 1
        wins[winner] += 1
    return FastRunResult(
        n_streams=n_streams,
        decision_cycles=n_cycles,
        wins=wins,
        misses=misses,
        frames_scheduled=n_streams * n_cycles,
    )
