"""Hardware bit-field definitions and wrap-aware (serial) arithmetic.

The ShareStreams hardware stores per-stream service attributes in fixed
width registers (Figure 4 of the paper gives every field length in bits):

====================  =====  =========================================
Field                 Bits   Role
====================  =====  =========================================
deadline              16     absolute deadline of the head packet
loss numerator        8      window-constraint numerator ``x``
loss denominator      8      window-constraint denominator ``y``
arrival time          16     head-packet arrival-time offset
stream / register id  5      slot identity (up to 32 slots on one chip)
====================  =====  =========================================

Because deadlines and arrival times are 16-bit offsets while experiments
run for tens of thousands of time units, the hardware compares them with
*serial-number* (wrap-aware) ordering: ``a`` precedes ``b`` when the
signed 16-bit difference ``(a - b) mod 2**16`` interpreted two's
complement is negative.  This is the same scheme RFC 1982 specifies for
DNS serial numbers and the scheme TCP uses for sequence numbers; it is
what a synchronous comparator on offset-encoded timestamps implements.

The module exposes both the wrapped comparators used by the
cycle-level hardware model and an *ideal* (unbounded integer) mode used
to cross-validate against the pure-software reference disciplines.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEADLINE_BITS",
    "LOSS_NUM_BITS",
    "LOSS_DEN_BITS",
    "ARRIVAL_BITS",
    "STREAM_ID_BITS",
    "MAX_STREAM_SLOTS",
    "FieldSpec",
    "wrap",
    "serial_lt",
    "serial_le",
    "serial_gt",
    "serial_cmp",
    "serial_add",
    "serial_distance",
]

#: Width of the packet-deadline field (bits), per Figure 4.
DEADLINE_BITS = 16
#: Width of the window-constraint (loss-tolerance) numerator ``x`` (bits).
LOSS_NUM_BITS = 8
#: Width of the window-constraint denominator ``y`` (bits).
LOSS_DEN_BITS = 8
#: Width of the packet arrival-time offset exchanged over PCI (bits).
ARRIVAL_BITS = 16
#: Width of the Stream/Register ID (bits); 2**5 = 32 slots max per chip.
STREAM_ID_BITS = 5

#: Largest stream-slot count a single scheduler instance supports.
MAX_STREAM_SLOTS = 1 << STREAM_ID_BITS


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """Width and derived masks of one hardware register field.

    Attributes
    ----------
    name:
        Human-readable field name (used in error messages and traces).
    bits:
        Field width in bits.
    """

    name: str
    bits: int

    @property
    def modulus(self) -> int:
        """Number of representable values (``2**bits``)."""
        return 1 << self.bits

    @property
    def mask(self) -> int:
        """Bit mask selecting the field (``2**bits - 1``)."""
        return self.modulus - 1

    @property
    def half(self) -> int:
        """Half the modulus; the serial-arithmetic comparison horizon."""
        return 1 << (self.bits - 1)

    def check(self, value: int) -> int:
        """Validate that ``value`` fits in the field and return it.

        Raises
        ------
        ValueError
            If ``value`` is negative or does not fit in ``bits`` bits.
        """
        if not 0 <= value <= self.mask:
            raise ValueError(
                f"{self.name} value {value} does not fit in {self.bits} bits"
            )
        return value


DEADLINE_FIELD = FieldSpec("deadline", DEADLINE_BITS)
LOSS_NUM_FIELD = FieldSpec("loss_numerator", LOSS_NUM_BITS)
LOSS_DEN_FIELD = FieldSpec("loss_denominator", LOSS_DEN_BITS)
ARRIVAL_FIELD = FieldSpec("arrival", ARRIVAL_BITS)
STREAM_ID_FIELD = FieldSpec("stream_id", STREAM_ID_BITS)


def wrap(value: int, bits: int = DEADLINE_BITS) -> int:
    """Reduce ``value`` into an unsigned ``bits``-bit representation."""
    return value & ((1 << bits) - 1)


def serial_cmp(a: int, b: int, bits: int = DEADLINE_BITS) -> int:
    """Wrap-aware three-way comparison of two ``bits``-bit serials.

    Returns ``-1`` if ``a`` precedes ``b`` on the wrapped number circle,
    ``0`` if equal, ``+1`` if ``a`` follows ``b``.

    The comparison interprets the unsigned difference as a two's
    complement signed value, so it is correct as long as the two
    timestamps are within half the modulus (``2**(bits-1)``) of each
    other — the standard serial-number-arithmetic contract.  The
    hardware guarantees this by construction: the control unit never
    lets live deadlines spread further than the comparison horizon.
    """
    if a == b:
        return 0
    half = 1 << (bits - 1)
    diff = (a - b) & ((1 << bits) - 1)
    return 1 if diff < half else -1


def serial_lt(a: int, b: int, bits: int = DEADLINE_BITS) -> bool:
    """True when serial ``a`` strictly precedes ``b`` (wrap-aware)."""
    return serial_cmp(a, b, bits) < 0


def serial_le(a: int, b: int, bits: int = DEADLINE_BITS) -> bool:
    """True when serial ``a`` precedes or equals ``b`` (wrap-aware)."""
    return serial_cmp(a, b, bits) <= 0


def serial_gt(a: int, b: int, bits: int = DEADLINE_BITS) -> bool:
    """True when serial ``a`` strictly follows ``b`` (wrap-aware)."""
    return serial_cmp(a, b, bits) > 0


def serial_add(a: int, delta: int, bits: int = DEADLINE_BITS) -> int:
    """Advance serial ``a`` by ``delta`` with wrap-around."""
    return (a + delta) & ((1 << bits) - 1)


def serial_distance(a: int, b: int, bits: int = DEADLINE_BITS) -> int:
    """Signed distance ``a - b`` on the wrapped circle.

    The result lies in ``[-2**(bits-1), 2**(bits-1))`` and satisfies
    ``serial_add(b, serial_distance(a, b)) == a``.
    """
    modulus = 1 << bits
    half = modulus >> 1
    diff = (a - b) & (modulus - 1)
    return diff - modulus if diff >= half else diff
