"""Control & Steering logic unit: the scheduler's state machine.

The Control and Steering logic unit (Section 4.3, Figure 6) loads the
Register Base blocks, sets the shuffle-network steering muxes every
cycle, and sequences the scheduler through its three states:

* ``LOAD`` — stream service constraints / fresh arrival times are
  latched into the Register Base blocks (entered at start-up and
  whenever the streaming unit delivers a batch);
* ``SCHEDULE`` — ``log2(N)`` recirculation passes order the streams;
* ``PRIORITY_UPDATE`` — the circulated winner ID reaches every Register
  Base block and per-stream attribute adjustments are applied.

After the initial LOAD the unit alternates SCHEDULE and PRIORITY_UPDATE
(Figure 6's four-stream timeline).  The unit counts hardware cycles and
records a timeline trace that :mod:`repro.experiments.figure6`
regenerates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ControlState", "TimelineEntry", "ControlUnit"]


class ControlState(enum.Enum):
    """FSM states of the Control & Steering unit (Figure 6)."""

    LOAD = "LOAD"
    SCHEDULE = "SCHEDULE"
    PRIORITY_UPDATE = "PRIORITY_UPDATE"


@dataclass(frozen=True, slots=True)
class TimelineEntry:
    """One FSM residency interval on the hardware-cycle timeline."""

    start_cycle: int
    cycles: int
    state: ControlState
    detail: str = ""

    @property
    def end_cycle(self) -> int:
        """First cycle after the interval."""
        return self.start_cycle + self.cycles


@dataclass
class ControlUnit:
    """Cycle accountant and timeline recorder for the scheduler FSM.

    Parameters
    ----------
    trace:
        When true, every state residency is appended to ``timeline``.
        Experiments that only need cycle totals leave it off.
    """

    trace: bool = False
    state: ControlState = field(default=ControlState.LOAD, init=False)
    hw_cycle: int = field(default=0, init=False)
    decision_cycles: int = field(default=0, init=False)
    timeline: list[TimelineEntry] = field(default_factory=list, init=False)

    def _enter(self, state: ControlState, cycles: int, detail: str = "") -> None:
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        if self.trace:
            self.timeline.append(
                TimelineEntry(self.hw_cycle, cycles, state, detail)
            )
        self.state = state
        self.hw_cycle += cycles

    def load(self, cycles: int = 1, detail: str = "") -> None:
        """Spend ``cycles`` in LOAD (constraint / arrival-time latch)."""
        self._enter(ControlState.LOAD, cycles, detail)

    def schedule(self, passes: int, detail: str = "") -> None:
        """Spend ``passes`` cycles in SCHEDULE (network recirculation)."""
        self._enter(ControlState.SCHEDULE, passes, detail)

    def priority_update(self, cycles: int = 1, detail: str = "") -> None:
        """Spend ``cycles`` in PRIORITY_UPDATE (winner-ID circulation).

        Also closes out one *decision cycle* (SCHEDULE +
        PRIORITY_UPDATE pair) in the decision counter.
        """
        self._enter(ControlState.PRIORITY_UPDATE, cycles, detail)
        self.decision_cycles += 1

    def advance_decision_cycles(
        self,
        count: int,
        schedule_passes: int,
        update_cycles: int = 1,
        detail: str = "",
    ) -> None:
        """Account ``count`` idle SCHEDULE + PRIORITY_UPDATE pairs at once.

        The bulk path of the idle-cycle fast-forward: ``hw_cycle`` and
        ``decision_cycles`` advance exactly as ``count`` individual
        :meth:`schedule` / :meth:`priority_update` pairs would, in O(1)
        when the timeline trace is off.  With tracing on, the
        individual residencies are still recorded so the timeline stays
        entry-for-entry identical to the unskipped run.
        """
        if count < 0:
            raise ValueError("cycle count must be non-negative")
        if count == 0:
            return
        if self.trace:
            for _ in range(count):
                self.schedule(schedule_passes, detail)
                self.priority_update(update_cycles, detail)
            return
        self.hw_cycle += count * (schedule_passes + update_cycles)
        self.decision_cycles += count
        self.state = ControlState.PRIORITY_UPDATE

    def elapsed_seconds(self, clock_mhz: float) -> float:
        """Wall time the consumed hardware cycles take at ``clock_mhz``."""
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        return self.hw_cycle / (clock_mhz * 1e6)

    def reset(self) -> None:
        """Return to the power-on state, clearing counters and trace."""
        self.state = ControlState.LOAD
        self.hw_cycle = 0
        self.decision_cycles = 0
        self.timeline.clear()
